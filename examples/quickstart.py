#!/usr/bin/env python3
"""Quickstart: compare LCMP against ECMP and UCMP on the 8-DC testbed.

This is the smallest end-to-end use of the public API:

1. build the paper's 8-DC evaluation topology,
2. generate a WebSearch traffic matrix between DC1 and DC8 at 30 % load,
3. run the fluid simulation once per routing algorithm (same traffic), and
4. print the per-flow-size P50/P99 slowdown tables the paper plots.

Run with::

    python examples/quickstart.py [num_flows]
"""

from __future__ import annotations

import sys

from repro.analysis import reduction, reduction_report, slowdown_table
from repro.experiments import ExperimentRunner, ExperimentSpec, TESTBED_ENDPOINT_PAIRS


def main(num_flows: int = 800) -> None:
    runner = ExperimentRunner()
    base = ExperimentSpec(
        name="quickstart",
        topology="testbed8",
        workload="websearch",
        load=0.3,
        cc="dcqcn",
        num_flows=num_flows,
        pairs=TESTBED_ENDPOINT_PAIRS,
        seed=2024,
    )

    print(f"Running {num_flows} WebSearch flows between DC1 and DC8 at 30% load ...")
    runs = runner.run_router_comparison(base, ["lcmp", "ecmp", "ucmp"])

    profiles = [runs[name].profile for name in ("lcmp", "ecmp", "ucmp")]
    print("\nMedian (P50) FCT slowdown by flow size")
    print(slowdown_table(profiles, "p50"))
    print("\nTail (P99) FCT slowdown by flow size")
    print(slowdown_table(profiles, "p99"))

    reductions = {
        name: reduction(runs["lcmp"].profile, runs[name].profile)
        for name in ("ecmp", "ucmp")
    }
    print("\nLCMP reduction vs baselines")
    print(reduction_report(reductions))

    lcmp_stats = runs["lcmp"].result
    print(
        f"\nLCMP run: {len(lcmp_stats.records)} flows completed, "
        f"{lcmp_stats.routing_decisions} routing decisions, "
        f"{lcmp_stats.monitor_samples} queue-monitor sweeps."
    )


if __name__ == "__main__":
    flows = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    main(flows)
