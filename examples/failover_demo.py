#!/usr/bin/env python3
"""Data-plane fast-failover demo (paper §3.4, fault tolerance).

LCMP handles link failures entirely in the data plane: port liveness is
tracked in real time, flow-cache entries pointing at a dead port are
invalidated lazily when the next packet arrives, and the flow is re-hashed
onto a healthy candidate — no control-plane batch update, microsecond-scale
recovery.

This demo drives the failure through the scenario engine
(:mod:`repro.scenarios`) instead of hand-scheduling state flips: the canned
``single-link-cut`` scenario kills the most attractive low-delay link
(DC1 <-> DC7) one third of the way through a steady DC1 -> DC8 stream and
repairs it two thirds of the way through.  The injector re-evaluates
in-flight flows the instant the port dies, which is what exercises the lazy
flow-cache invalidation for real, and reports per-event recovery metrics:

* where new flows were placed before, during and after the failure,
* how many in-flight flows were disrupted / re-routed / restored,
* the post-event FCT-slowdown delta around the cut and the repair, and
* that every flow completed (no blackholing) despite the failure.

Run with::

    python examples/failover_demo.py [num_flows]
"""

from __future__ import annotations

import sys
from collections import Counter

import numpy as np

from repro.analysis import event_impacts, recovery_report
from repro.congestion_control import make_cc_factory
from repro.core import lcmp_router_factory
from repro.scenarios import single_link_cut
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.topology import build_testbed8, testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator


def main(num_flows: int = 600) -> None:
    topology = build_testbed8(capacity_scale=0.1)
    paths = testbed8_pathset(topology)
    config = SimulationConfig(seed=11)
    network = RuntimeNetwork(topology, paths, lcmp_router_factory(topology, paths), config)

    traffic = TrafficConfig(
        workload="websearch", load=0.3, num_flows=num_flows,
        pairs=[("DC1", "DC8")], seed=11,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()

    fail_at = demands[num_flows // 3].arrival_s
    recover_at = demands[2 * num_flows // 3].arrival_s
    scenario = single_link_cut(
        fail_at_s=fail_at, recover_at_s=recover_at, src="DC1", dst="DC7"
    )
    sim = FluidSimulation(
        network, demands, make_cc_factory("dcqcn"), config, scenario=scenario
    )

    print(
        f"Sending {num_flows} flows DC1 -> DC8; DC1<->DC7 fails at t={fail_at * 1e3:.1f} ms "
        f"and recovers at t={recover_at * 1e3:.1f} ms ..."
    )
    result = sim.run()

    # placement phases straight off the columnar decision log: one pass
    # over (time, first-hop) columns instead of per-decision objects
    log = network.switch("DC1").decision_log
    decision_times = log.times()
    first_hops = log.first_hops()

    def placement(start: float, end: float) -> Counter:
        mask = (decision_times >= start) & (decision_times < end)
        return Counter(hop for hop, hit in zip(first_hops, mask.tolist()) if hit)

    phases = {
        "before failure": placement(0.0, fail_at),
        "while DC1->DC7 is down": placement(fail_at, recover_at),
        "after recovery": placement(recover_at, float("inf")),
    }
    for phase, counts in phases.items():
        total = sum(counts.values()) or 1
        spread = ", ".join(
            f"{hop}: {100 * n / total:.0f}%" for hop, n in sorted(counts.items())
        )
        print(f"  {phase:<24s} {spread}")

    # recovery metrics from the MetricsStore columns (no record loops):
    # completion counts, and the slowdown experienced by flows arriving
    # while the port was down vs around it
    store = result.store
    completed = len(store)
    arrivals = store.arrivals()
    slowdowns = store.slowdowns()
    during_mask = (arrivals >= fail_at) & (arrivals < recover_at)
    outside_mask = ~during_mask
    metrics = result.scenario_metrics
    print(
        f"\nFlows completed: {completed}/{num_flows} "
        f"(unfinished: {result.unfinished_flows}, failed: {len(result.failed_flows)})"
    )
    if during_mask.any() and outside_mask.any():
        print(
            f"Median slowdown of flows arriving during the outage: "
            f"{float(np.median(slowdowns[during_mask])):.2f} "
            f"(vs {float(np.median(slowdowns[outside_mask])):.2f} outside it)"
        )
    print(
        f"In-flight flows disrupted: {metrics.total_disrupted}, "
        f"re-routed: {metrics.total_rerouted}, restored: {metrics.total_restored}"
    )
    lcmp_router = network.switch("DC1").router
    print(
        f"Lazy flow-cache invalidations on DC1: {lcmp_router.liveness.lazy_invalidations}, "
        f"failover re-hashes: {lcmp_router.failover_rehashes}"
    )

    window = max(0.05, (recover_at - fail_at) / 2)
    print("\nPer-event recovery metrics:")
    print(recovery_report(event_impacts(result, window_s=window)))

    during = phases["while DC1->DC7 is down"]
    assert "DC7" not in during, "no new flow may be placed on the dead port"
    # tiny runs may have nothing in flight at the cut; when flows *were*
    # disrupted, every one must have gone through a lazy invalidation
    if metrics.total_disrupted:
        assert lcmp_router.liveness.lazy_invalidations > 0, "the cut must invalidate cached entries"
    assert completed + len(result.failed_flows) == num_flows
    print("\nNo flow was placed on the failed port while it was down — fast-failover works.")


if __name__ == "__main__":
    flows = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    main(flows)
