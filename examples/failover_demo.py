#!/usr/bin/env python3
"""Data-plane fast-failover demo (paper §3.4, fault tolerance).

LCMP handles link failures entirely in the data plane: port liveness is
tracked in real time, flow-cache entries pointing at a dead port are
invalidated lazily when the next packet arrives, and the flow is re-hashed
onto a healthy candidate — no control-plane batch update, microsecond-scale
recovery.

This demo sends a steady stream of flows from DC1 to DC8, kills the most
attractive low-delay link (DC1 -> DC7) one third of the way through, brings
it back two thirds of the way through, and reports:

* where new flows were placed before, during and after the failure, and
* that every flow completed (no blackholing) despite the failure.

Run with::

    python examples/failover_demo.py [num_flows]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro.congestion_control import make_cc_factory
from repro.core import lcmp_router_factory
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.topology import build_testbed8, testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator


def main(num_flows: int = 600) -> None:
    topology = build_testbed8(capacity_scale=0.1)
    paths = testbed8_pathset(topology)
    config = SimulationConfig(seed=11)
    network = RuntimeNetwork(topology, paths, lcmp_router_factory(topology, paths), config)

    traffic = TrafficConfig(
        workload="websearch", load=0.3, num_flows=num_flows,
        pairs=[("DC1", "DC8")], seed=11,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    sim = FluidSimulation(network, demands, make_cc_factory("dcqcn"), config)

    fail_at = demands[num_flows // 3].arrival_s
    recover_at = demands[2 * num_flows // 3].arrival_s
    sim.engine.schedule(fail_at, lambda: network.fail_link("DC1", "DC7"))
    sim.engine.schedule(recover_at, lambda: network.recover_link("DC1", "DC7"))

    print(
        f"Sending {num_flows} flows DC1 -> DC8; DC1->DC7 fails at t={fail_at * 1e3:.1f} ms "
        f"and recovers at t={recover_at * 1e3:.1f} ms ..."
    )
    result = sim.run()

    def placement(start: float, end: float) -> Counter:
        return Counter(
            d.chosen.first_hop
            for d in network.switch("DC1").decisions
            if start <= d.time_s < end
        )

    phases = {
        "before failure": placement(0.0, fail_at),
        "while DC1->DC7 is down": placement(fail_at, recover_at),
        "after recovery": placement(recover_at, float("inf")),
    }
    for phase, counts in phases.items():
        total = sum(counts.values()) or 1
        spread = ", ".join(
            f"{hop}: {100 * n / total:.0f}%" for hop, n in sorted(counts.items())
        )
        print(f"  {phase:<24s} {spread}")

    lcmp_router = network.switch("DC1").router
    print(
        f"\nFlows completed: {len(result.records)}/{num_flows} "
        f"(unfinished: {result.unfinished_flows})"
    )
    print(
        f"Lazy flow-cache invalidations on DC1: {lcmp_router.liveness.lazy_invalidations}, "
        f"failover re-hashes: {lcmp_router.failover_rehashes}"
    )
    during = phases["while DC1->DC7 is down"]
    assert "DC7" not in during, "no new flow may be placed on the dead port"
    print("No flow was placed on the failed port while it was down — fast-failover works.")


if __name__ == "__main__":
    flows = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    main(flows)
