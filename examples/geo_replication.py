#!/usr/bin/env python3
"""Geo-replicated storage scenario on the 13-DC European topology.

The paper motivates LCMP with RDMA-empowered cloud services such as
geo-replicated storage: a primary region continuously replicates writes to a
remote region over long-haul paths, and replication latency directly bounds
the user-visible commit latency.

This example models a storage service replicating from DC1 (western Europe)
to DC13 (eastern edge of the topology) with the Alibaba-storage flow-size
mix, and shows how routing affects both the median replication latency and
the tail that dominates quorum waits.

The storage fleet is mid-migration between congestion controls: 80 % of the
replication streams still run DCQCN while 20 % already run HPCC
(``DEFAULT_CC_MIX``, assigned per flow deterministically from the seed).
The whole run executes on the vectorized structure-of-arrays core — the
default ``ExperimentSpec`` configuration — where a heterogeneous fleet is
advanced through per-class in-place column kernels (DESIGN.md, "Congestion
control (arrays)").

Run with::

    python examples/geo_replication.py [num_flows]
"""

from __future__ import annotations

import sys

from repro.analysis import slowdown_table
from repro.experiments import (
    CASE_STUDY_PAIRS,
    DEFAULT_CC_MIX,
    ExperimentRunner,
    ExperimentSpec,
)


def main(num_flows: int = 1200) -> None:
    runner = ExperimentRunner()
    base = ExperimentSpec(
        name="geo-replication",
        topology="bso13",
        workload="alistorage",
        load=0.5,
        cc_mix=DEFAULT_CC_MIX,    # 80% DCQCN + 20% HPCC, mid-migration
        num_flows=num_flows,
        pairs=CASE_STUDY_PAIRS,   # DC1 <-> DC13, the continent-spanning pair
        seed=7,
        vectorized=True,          # SoA core: grouped in-place CC kernels
    )

    print(
        f"Replicating {num_flows} storage writes between DC1 and DC13 "
        "(AliStorage mix, 50% load, 80% DCQCN + 20% HPCC fleet) ..."
    )
    runs = runner.run_router_comparison(base, ["lcmp", "ecmp", "ucmp", "redte"])

    profiles = [runs[name].profile for name in ("lcmp", "ecmp", "ucmp", "redte")]
    print("\nReplication slowdown, median (P50)")
    print(slowdown_table(profiles, "p50"))
    print("\nReplication slowdown, tail (P99) — what quorum waits see")
    print(slowdown_table(profiles, "p99"))

    print("\nCandidate routes between DC1 and DC13:")
    topology, paths = runner.topology_for(base)
    for cand in paths.candidates("DC1", "DC13"):
        print(f"  {cand}")

    lcmp = runs["lcmp"].profile
    ecmp = runs["ecmp"].profile
    saved = (1 - lcmp.overall_p99 / ecmp.overall_p99) * 100
    print(
        f"\nLCMP cuts the P99 replication slowdown by {saved:.0f}% vs ECMP "
        "on this continent-spanning pair."
    )


if __name__ == "__main__":
    flows = int(sys.argv[1]) if len(sys.argv) > 1 else 1200
    main(flows)
