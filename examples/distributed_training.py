#!/usr/bin/env python3
"""Cross-DC distributed training: gradient bursts vs. latency-sensitive RPCs.

Distributed ML training across datacenters produces synchronized bursts: at
every step boundary all workers push large gradient shards to the remote
site at once.  Those bursts are exactly the "simultaneous flow arrivals"
challenge (C3) of the paper — and the flows that suffer most are not the
gradients themselves but the small, latency-sensitive RPCs (parameter
lookups, coordination traffic) that share the inter-DC paths with them.

This example mixes the two traffic classes between DC1 and DC8 on the 8-DC
topology and compares three placement policies on the *RPC tail*:

* full LCMP — path quality + on-switch congestion + diversity-preserving hash,
* LCMP with the congestion term removed (``rm-beta``) — still delay-aware but
  blind to the queues the gradient bursts build, and
* ECMP — oblivious hashing across all six paths, including the 250 ms ones.

Run with::

    python examples/distributed_training.py [rounds] [workers]
"""

from __future__ import annotations

import sys

from repro.analysis import SlowdownProfile, slowdown_table
from repro.congestion_control import make_cc_factory
from repro.core import LCMPConfig, lcmp_router_factory
from repro.routing import make_router_factory
from repro.simulator import FlowDemand, FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.topology import build_testbed8, testbed8_pathset

RPC_BYTES = 20_000
SHARD_BYTES = 8_000_000
STEP_PERIOD_S = 0.25


def training_mix_demands(rounds: int, workers: int, rpcs_per_round: int):
    """Synchronized gradient bursts plus a steady trickle of small RPCs."""
    demands = []
    flow_id = 0
    for step in range(rounds):
        step_start = step * STEP_PERIOD_S
        for worker in range(workers):
            demands.append(
                FlowDemand(flow_id, "DC1", "DC8", worker % 16, worker % 16,
                           SHARD_BYTES, step_start)
            )
            flow_id += 1
        for i in range(rpcs_per_round):
            when = step_start + (i + 1) * STEP_PERIOD_S / (rpcs_per_round + 1)
            demands.append(
                FlowDemand(flow_id, "DC1", "DC8", i % 16, (i + 3) % 16,
                           RPC_BYTES, when)
            )
            flow_id += 1
    return demands


def run_policy(label, demands, topology, paths, config, router="lcmp", lcmp_config=None):
    if router == "lcmp":
        factory = lcmp_router_factory(topology, paths, lcmp_config or LCMPConfig())
    else:
        factory = make_router_factory(router)
    network = RuntimeNetwork(topology, paths, factory, config)
    result = FluidSimulation(network, demands, make_cc_factory("dcqcn"), config).run()
    rpc_records = [r for r in result.records if r.size_bytes == RPC_BYTES]
    shard_records = [r for r in result.records if r.size_bytes == SHARD_BYTES]
    return (
        SlowdownProfile.from_records(label, rpc_records),
        SlowdownProfile.from_records(label, shard_records),
    )


def main(rounds: int = 8, workers: int = 48) -> None:
    topology = build_testbed8(capacity_scale=0.1)
    paths = testbed8_pathset(topology)
    # the vectorized SoA core with in-place CC column kernels (the
    # defaults, spelled out): the gradient bursts put ~all flows through
    # DCQCN's feedback/advance kernels every step
    config = SimulationConfig(seed=3, vectorized=True, soa=True, cc_blocks=True)

    demands = training_mix_demands(rounds, workers, rpcs_per_round=40)
    print(
        f"{rounds} training rounds x {workers} workers ({SHARD_BYTES / 1e6:.0f} MB shards), "
        f"plus 40 coordination RPCs per round, DC1 -> DC8 ..."
    )

    policies = [
        ("lcmp", dict(router="lcmp")),
        ("lcmp rm-beta", dict(router="lcmp", lcmp_config=LCMPConfig().ablate_congestion())),
        ("ecmp", dict(router="ecmp")),
    ]
    rpc_profiles, shard_profiles = [], []
    for label, kwargs in policies:
        rpc, shard = run_policy(label, demands, topology, paths, config, **kwargs)
        rpc_profiles.append(rpc)
        shard_profiles.append(shard)

    print("\nCoordination-RPC slowdown (these bound step latency)")
    print(slowdown_table(rpc_profiles, "p50"))
    print(slowdown_table(rpc_profiles, "p99"))
    print("\nGradient-shard slowdown")
    print(slowdown_table(shard_profiles, "p99"))

    lcmp_rpc, rm_beta_rpc, ecmp_rpc = rpc_profiles
    lcmp_shard, rm_beta_shard, ecmp_shard = shard_profiles
    print("\nTakeaway:")
    print(
        f"  RPC P99:   full LCMP {lcmp_rpc.overall_p99:6.1f}   "
        f"rm-beta {rm_beta_rpc.overall_p99:6.1f}   ECMP {ecmp_rpc.overall_p99:6.1f}"
    )
    print(
        f"  shard P99: full LCMP {lcmp_shard.overall_p99:6.1f}   "
        f"rm-beta {rm_beta_shard.overall_p99:6.1f}   ECMP {ecmp_shard.overall_p99:6.1f}"
    )
    print(
        "  ECMP sprays both classes onto 250 ms routes, wrecking the RPC tail; the\n"
        "  delay-aware variants keep RPCs on low-delay routes.  Full LCMP additionally\n"
        "  steers traffic around the queues the bursts build, which is what gives it\n"
        "  the best gradient-shard tail (the C2+C3 mechanisms of the paper).  The\n"
        "  delay-only rm-beta variant shows the best RPC tail *in this fluid model*\n"
        "  because mice are not charged FIFO queueing delay behind the bursts they\n"
        "  share a port with (see DESIGN.md, simulator notes)."
    )


if __name__ == "__main__":
    n_rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    n_workers = int(sys.argv[2]) if len(sys.argv) > 2 else 48
    main(n_rounds, n_workers)
