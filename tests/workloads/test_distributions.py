"""Tests for the embedded workload distributions."""

import pytest

from repro.workloads import (
    ALI_STORAGE,
    FB_HADOOP,
    WEB_SEARCH,
    available_workloads,
    get_workload,
)


class TestCatalogue:
    def test_three_workloads_available(self):
        assert set(available_workloads()) == {"websearch", "alistorage", "fbhadoop"}

    def test_lookup_case_insensitive(self):
        assert get_workload("WebSearch") is WEB_SEARCH
        assert get_workload("ALISTORAGE") is ALI_STORAGE

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("uniform")


class TestDistributionShapes:
    def test_all_valid_and_heavy_tailed(self):
        for cdf in (WEB_SEARCH, ALI_STORAGE, FB_HADOOP):
            # heavy tail: the mean is far above the median
            assert cdf.mean_bytes() > cdf.quantile(0.5)
            assert cdf.max_bytes() >= 1_000_000

    def test_websearch_mean_in_expected_range(self):
        # the DCTCP web-search workload has a mean around 1-2 MB
        assert 0.5e6 < WEB_SEARCH.mean_bytes() < 3e6

    def test_alistorage_is_small_request_dominated(self):
        assert ALI_STORAGE.quantile(0.5) < 10_000
        assert ALI_STORAGE.max_bytes() <= 4_000_000

    def test_fbhadoop_has_largest_tail(self):
        assert FB_HADOOP.max_bytes() >= WEB_SEARCH.max_bytes()
        assert FB_HADOOP.quantile(0.5) < 5_000

    def test_workload_means_are_distinct(self):
        means = {int(c.mean_bytes()) for c in (WEB_SEARCH, ALI_STORAGE, FB_HADOOP)}
        assert len(means) == 3
