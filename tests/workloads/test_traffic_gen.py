"""Tests for the synthetic traffic generator."""

import pytest

from repro.workloads import (
    TrafficConfig,
    TrafficGenerator,
    aggregate_egress_capacity,
    get_workload,
)


class TestAggregateCapacity:
    def test_counts_only_source_egress(self, tiny_topology):
        cap_a = aggregate_egress_capacity(tiny_topology, ["A"])
        assert cap_a == pytest.approx((100 + 40) * 1e9)
        cap_ab = aggregate_egress_capacity(tiny_topology, ["A", "B"])
        assert cap_ab > cap_a


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficConfig(load=0).validate()
        with pytest.raises(ValueError):
            TrafficConfig(num_flows=0).validate()
        TrafficConfig(load=0.8, num_flows=10).validate()

    def test_resolve_cdf_by_name_or_instance(self):
        assert TrafficConfig(workload="websearch").resolve_cdf().name == "websearch"
        cdf = get_workload("alistorage")
        assert TrafficConfig(workload=cdf).resolve_cdf() is cdf


class TestGeneration:
    def test_flow_count_and_ids(self, tiny_topology, tiny_pathset):
        config = TrafficConfig(num_flows=200, seed=3)
        demands = TrafficGenerator(tiny_topology, tiny_pathset, config).generate()
        assert len(demands) == 200
        assert sorted(d.flow_id for d in demands) == list(range(200))

    def test_arrivals_increasing(self, tiny_topology, tiny_pathset):
        config = TrafficConfig(num_flows=100, seed=4)
        demands = TrafficGenerator(tiny_topology, tiny_pathset, config).generate()
        arrivals = [d.arrival_s for d in demands]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] >= 0

    def test_all_to_all_uses_many_pairs(self, tiny_topology, tiny_pathset):
        config = TrafficConfig(num_flows=300, pairs="all_to_all", seed=5)
        demands = TrafficGenerator(tiny_topology, tiny_pathset, config).generate()
        pairs = {(d.src_dc, d.dst_dc) for d in demands}
        assert len(pairs) >= 4
        assert all(src != dst for src, dst in pairs)

    def test_explicit_pair_mode(self, tiny_topology, tiny_pathset):
        config = TrafficConfig(num_flows=100, pairs=[("A", "B"), ("B", "A")], seed=6)
        demands = TrafficGenerator(tiny_topology, tiny_pathset, config).generate()
        assert {(d.src_dc, d.dst_dc) for d in demands} <= {("A", "B"), ("B", "A")}

    def test_invalid_pair_rejected(self, tiny_topology, tiny_pathset):
        with pytest.raises(ValueError):
            TrafficGenerator(
                tiny_topology, tiny_pathset, TrafficConfig(pairs=[("A", "A")])
            )

    def test_host_indices_within_group(self, tiny_topology, tiny_pathset):
        config = TrafficConfig(num_flows=200, seed=7)
        demands = TrafficGenerator(tiny_topology, tiny_pathset, config).generate()
        for d in demands:
            assert 0 <= d.src_host < 4
            assert 0 <= d.dst_host < 4

    def test_deterministic_with_seed(self, tiny_topology, tiny_pathset):
        config = TrafficConfig(num_flows=50, seed=42)
        a = TrafficGenerator(tiny_topology, tiny_pathset, config).generate()
        b = TrafficGenerator(tiny_topology, tiny_pathset, config).generate()
        assert [(d.arrival_s, d.size_bytes, d.src_dc) for d in a] == [
            (d.arrival_s, d.size_bytes, d.src_dc) for d in b
        ]


class TestLoadScaling:
    def test_higher_load_means_denser_arrivals(self, tiny_topology, tiny_pathset):
        low = TrafficGenerator(
            tiny_topology, tiny_pathset, TrafficConfig(load=0.3, num_flows=400, seed=1)
        ).generate()
        high = TrafficGenerator(
            tiny_topology, tiny_pathset, TrafficConfig(load=0.8, num_flows=400, seed=1)
        ).generate()
        assert high[-1].arrival_s < low[-1].arrival_s

    def test_offered_load_close_to_target(self, tiny_topology, tiny_pathset):
        """Total offered bits / (capacity x span) should approximate the load."""
        config = TrafficConfig(load=0.5, num_flows=3000, seed=2, pairs=[("A", "B")])
        generator = TrafficGenerator(tiny_topology, tiny_pathset, config)
        demands = generator.generate()
        span = demands[-1].arrival_s - demands[0].arrival_s
        offered_bits = sum(d.size_bytes for d in demands) * 8
        capacity = aggregate_egress_capacity(tiny_topology, ["A"])
        measured_load = offered_bits / (capacity * span)
        assert measured_load == pytest.approx(0.5, rel=0.25)

    def test_expected_duration_estimate(self, tiny_topology, tiny_pathset):
        config = TrafficConfig(load=0.5, num_flows=1000, seed=2)
        generator = TrafficGenerator(tiny_topology, tiny_pathset, config)
        demands = generator.generate()
        estimate = generator.expected_duration_s()
        actual = demands[-1].arrival_s
        assert actual == pytest.approx(estimate, rel=0.3)
