"""Tests for the flow-size CDF representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import FlowSizeCDF

SIMPLE = FlowSizeCDF.from_pairs("simple", [(100, 0.5), (1000, 1.0)])


class TestValidation:
    def test_valid_cdf(self):
        assert SIMPLE.min_bytes() == 100
        assert SIMPLE.max_bytes() == 1000

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FlowSizeCDF.from_pairs("x", [])

    def test_must_end_at_one(self):
        with pytest.raises(ValueError):
            FlowSizeCDF.from_pairs("x", [(100, 0.5), (200, 0.9)])

    def test_non_monotonic_rejected(self):
        with pytest.raises(ValueError):
            FlowSizeCDF.from_pairs("x", [(100, 0.5), (50, 1.0)])
        with pytest.raises(ValueError):
            FlowSizeCDF.from_pairs("x", [(100, 0.7), (200, 0.5), (300, 1.0)])

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FlowSizeCDF.from_pairs("x", [(100, 1.2)])

    def test_non_positive_size_rejected(self):
        with pytest.raises(ValueError):
            FlowSizeCDF.from_pairs("x", [(0, 1.0)])


class TestStatistics:
    def test_mean_between_min_and_max(self):
        mean = SIMPLE.mean_bytes()
        assert 100 <= mean <= 1000

    def test_mean_of_point_mass(self):
        point = FlowSizeCDF.from_pairs("point", [(500, 1.0)])
        assert point.mean_bytes() == 500

    def test_quantile_interpolation(self):
        assert SIMPLE.quantile(0.0) == 100
        assert SIMPLE.quantile(0.5) == 100
        assert SIMPLE.quantile(0.75) == pytest.approx(550)
        assert SIMPLE.quantile(1.0) == 1000

    def test_quantile_out_of_range(self):
        with pytest.raises(ValueError):
            SIMPLE.quantile(1.5)


class TestSampling:
    def test_samples_within_support(self, rng):
        samples = SIMPLE.sample(rng, 500)
        assert samples.min() >= 1
        assert samples.max() <= 1000
        assert samples.dtype == np.int64

    def test_sample_count(self, rng):
        assert len(SIMPLE.sample(rng, 7)) == 7
        assert len(SIMPLE.sample(rng, 0)) == 0
        with pytest.raises(ValueError):
            SIMPLE.sample(rng, -1)

    def test_sample_mean_near_analytic_mean(self, rng):
        samples = SIMPLE.sample(rng, 20_000)
        assert samples.mean() == pytest.approx(SIMPLE.mean_bytes(), rel=0.05)

    def test_deterministic_with_seed(self):
        a = SIMPLE.sample(np.random.default_rng(5), 100)
        b = SIMPLE.sample(np.random.default_rng(5), 100)
        assert (a == b).all()


@settings(max_examples=40, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(
            st.floats(min_value=1, max_value=1e8, allow_nan=False),
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_property_sorted_pairs_make_valid_cdf(pairs):
    """Property: any sorted point set ending at probability 1 forms a valid
    CDF whose quantiles stay inside the support."""
    sizes = sorted(p[0] for p in pairs)
    probs = sorted(p[1] for p in pairs)
    probs[-1] = 1.0
    cdf = FlowSizeCDF.from_pairs("prop", list(zip(sizes, probs)))
    tolerance = 1e-9 * cdf.max_bytes()
    assert cdf.min_bytes() - tolerance <= cdf.mean_bytes() <= cdf.max_bytes() + tolerance
    for q in (0.0, 0.25, 0.5, 0.9, 1.0):
        assert cdf.min_bytes() <= cdf.quantile(q) <= cdf.max_bytes()
