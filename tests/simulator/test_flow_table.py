"""Unit tests for the structure-of-arrays FlowTable.

Covers the row-slot lifecycle (acquire / release / reuse / growth) under
arrive–finish–fail churn, the bound-view semantics of Flow and DCQCN
(properties read and write the table row; release copies final values
back), and the epoch guard that keeps recycled slots from receiving a
previous tenant's in-flight feedback.
"""

import numpy as np
import pytest

from repro.congestion_control import DCQCN, FixedRate
from repro.congestion_control import make_cc_factory
from repro.routing import make_router_factory
from repro.simulator import (
    FlowDemand,
    FlowTable,
    FluidSimulation,
    RuntimeLink,
    RuntimeNetwork,
)
from repro.simulator.flow import Flow
from repro.topology.graph import LinkSpec


def make_flow(flow_id: int, cc=None, size_bytes: int = 1_000_000) -> Flow:
    demand = FlowDemand(
        flow_id=flow_id,
        src_dc="DC1",
        dst_dc="DC2",
        src_host=0,
        dst_host=1,
        size_bytes=size_bytes,
        arrival_s=0.0,
    )
    link = RuntimeLink(LinkSpec("A", "B", 1e9, 0.005, 1_000_000, True))
    cc = cc or FixedRate(1e9, 0.01)
    return Flow(demand, [link], cc, base_rtt_s=0.01)


class TestSlotLifecycle:
    def test_slots_are_stable_and_reused_lifo(self):
        table = FlowTable(capacity=4)
        flows = [make_flow(i) for i in range(3)]
        slots = [table.acquire(f) for f in flows]
        assert slots == [0, 1, 2]
        assert len(table) == 3

        table.release(flows[1])
        assert len(table) == 2
        assert table.flow_at(1) is None
        # the freed slot is handed to the next arrival
        newcomer = make_flow(99)
        assert table.acquire(newcomer) == 1
        assert table.flow_at(1) is newcomer

    def test_release_requires_occupancy(self):
        table = FlowTable(capacity=2)
        flow = make_flow(0)
        table.acquire(flow)
        table.release(flow)
        with pytest.raises(ValueError):
            table.release(flow)

    def test_growth_preserves_rows(self):
        table = FlowTable(capacity=2)
        flows = [make_flow(i, size_bytes=1000 * (i + 1)) for i in range(5)]
        for f in flows:
            table.acquire(f)
        assert table.capacity >= 5
        for i, f in enumerate(flows):
            assert table.remaining_bytes[f._slot] == 1000 * (i + 1)
            assert table.flow_at(f._slot) is f

    def test_churn_interleavings(self):
        """Arrive/finish/fail interleavings never alias two live flows."""
        table = FlowTable(capacity=2)
        rng = np.random.default_rng(42)
        live = []
        next_id = 0
        for _ in range(300):
            if live and rng.random() < 0.45:
                victim = live.pop(int(rng.integers(len(live))))
                table.release(victim)
            else:
                flow = make_flow(next_id, size_bytes=next_id + 1)
                next_id += 1
                table.acquire(flow)
                live.append(flow)
            # invariant: every live flow occupies its own slot and the
            # table sees exactly the live set
            assert len(table) == len(live)
            slots = {f._slot for f in live}
            assert len(slots) == len(live)
            for f in live:
                assert table.flow_at(f._slot) is f
                assert table.remaining_bytes[f._slot] == f.demand.flow_id + 1

    def test_epoch_bumps_on_reuse(self):
        table = FlowTable(capacity=2)
        first = make_flow(0)
        slot = table.acquire(first)
        epoch_first = int(table.epoch[slot])
        table.release(first)
        second = make_flow(1)
        assert table.acquire(second) == slot
        assert int(table.epoch[slot]) == epoch_first + 1
        # feedback addressed to the first tenant fails the epoch guard
        assert bool(table.feedback_live[slot])
        assert int(table.epoch[slot]) != epoch_first


class TestBoundViews:
    def test_flow_properties_are_table_resident_while_bound(self):
        table = FlowTable(capacity=2)
        flow = make_flow(0, size_bytes=5000)
        slot = table.acquire(flow)
        assert table.remaining_bytes[slot] == 5000
        flow.remaining_bytes = 1234.5
        assert table.remaining_bytes[slot] == 1234.5
        table.remaining_bytes[slot] = 99.0
        assert flow.remaining_bytes == 99.0
        flow.disrupted_s = 0.25
        assert table.disrupted_s[slot] == 0.25
        flow.disrupted_s = None
        assert np.isnan(table.disrupted_s[slot])

    def test_release_copies_final_values_back(self):
        table = FlowTable(capacity=2)
        flow = make_flow(0, size_bytes=5000)
        table.acquire(flow)
        flow.remaining_bytes = 0.0
        flow.achieved_bps = 3e9
        table.release(flow)
        assert flow._table is None
        assert flow.remaining_bytes == 0.0
        assert flow.achieved_bps == 3e9
        assert flow.completed

    def test_dcqcn_state_is_block_resident_while_bound(self):
        table = FlowTable(capacity=2)
        cc = DCQCN(100e9, 0.05)
        flow = make_flow(0, cc=cc)
        slot = table.acquire(flow)
        block = table.cc_block(DCQCN)
        assert block.alpha[slot] == 1.0
        assert table.cc_rate_bps[slot] == 100e9
        cc.alpha = 0.5
        cc.rate_bps = 42e9
        cc._increase_stage = 7
        assert block.alpha[slot] == 0.5
        assert table.cc_rate_bps[slot] == 42e9
        assert block.stage[slot] == 7.0
        table.release(flow)
        assert cc.alpha == 0.5
        assert cc.rate_bps == 42e9
        assert cc._increase_stage == 7

    def test_bound_and_unbound_dcqcn_stay_bitwise_identical(self):
        """The scalar methods produce identical state through the views."""
        table = FlowTable(capacity=2)
        bound_cc = DCQCN(100e9, 0.05)
        plain_cc = DCQCN(100e9, 0.05)
        flow = make_flow(0, cc=bound_cc)
        table.acquire(flow)
        from repro.simulator.flow import FeedbackSignal

        for step in range(50):
            signal = FeedbackSignal(step * 1e-3, 0.1 if step % 7 == 0 else 0.0, 0.5, 0.05, 0.0)
            bound_cc.on_feedback(signal, step * 1e-3)
            plain_cc.on_feedback(signal, step * 1e-3)
            bound_cc.on_interval(1e-3, step * 1e-3)
            plain_cc.on_interval(1e-3, step * 1e-3)
        assert bound_cc.rate_bps == plain_cc.rate_bps
        assert bound_cc.alpha == plain_cc.alpha
        assert bound_cc.target_rate_bps == plain_cc.target_rate_bps
        assert bound_cc._increase_stage == plain_cc._increase_stage

    def test_class_counts_track_live_fleet(self):
        table = FlowTable(capacity=4)
        dcqcn_flow = make_flow(0, cc=DCQCN(100e9, 0.05))
        fixed_flow = make_flow(1)
        table.acquire(dcqcn_flow)
        table.acquire(fixed_flow)
        assert table.class_counts == {DCQCN: 1, FixedRate: 1}
        table.release(dcqcn_flow)
        assert table.class_counts == {FixedRate: 1}


class TestClassRowRegistries:
    """Cached per-class row sets + the class-id column (grouped dispatch)."""

    def test_rows_tracked_per_class(self):
        table = FlowTable(capacity=4)
        dcqcn_flows = [make_flow(i, cc=DCQCN(100e9, 0.05)) for i in range(2)]
        fixed_flows = [make_flow(10 + i) for i in range(3)]
        for f in dcqcn_flows + fixed_flows:
            table.acquire(f)
        assert sorted(table.class_rows(DCQCN).tolist()) == sorted(
            f._slot for f in dcqcn_flows
        )
        assert sorted(table.class_rows(FixedRate).tolist()) == sorted(
            f._slot for f in fixed_flows
        )
        for f in dcqcn_flows:
            assert table.cc_class_at(int(table.cc_class_id[f._slot])) is DCQCN
        by_class = dict(table.rows_by_class())
        assert set(by_class) == {DCQCN, FixedRate}
        assert len(by_class[FixedRate]) == 3

    def test_swap_remove_keeps_registry_consistent(self):
        table = FlowTable(capacity=4)
        flows = [make_flow(i, cc=DCQCN(100e9, 0.05)) for i in range(4)]
        for f in flows:
            table.acquire(f)
        # remove from the middle: the registry swap-removes and repositions
        table.release(flows[1])
        assert sorted(table.class_rows(DCQCN).tolist()) == sorted(
            f._slot for f in (flows[0], flows[2], flows[3])
        )
        assert table.cc_class_id[1] == -1
        # the freed slot goes to a different class; registries stay disjoint
        newcomer = make_flow(99)
        slot = table.acquire(newcomer)
        assert slot == 1
        assert table.class_rows(FixedRate).tolist() == [1]
        assert 1 not in table.class_rows(DCQCN).tolist()

    def test_registry_survives_growth_and_churn(self):
        table = FlowTable(capacity=2)
        rng = np.random.default_rng(3)
        live = []
        next_id = 0
        for _ in range(400):
            if live and rng.random() < 0.45:
                victim = live.pop(int(rng.integers(len(live))))
                table.release(victim)
            else:
                cc = DCQCN(100e9, 0.05) if next_id % 3 else FixedRate(1e9, 0.01)
                flow = make_flow(next_id, cc=cc)
                next_id += 1
                table.acquire(flow)
                live.append(flow)
            # invariant: registries partition the live set exactly
            union = []
            for cc_cls, rows in table.rows_by_class():
                rows = rows.tolist()
                assert len(set(rows)) == len(rows)
                for slot in rows:
                    assert type(table.flow_at(slot).cc) is cc_cls
                    assert table.cc_class_at(int(table.cc_class_id[slot])) is cc_cls
                union.extend(rows)
            assert sorted(union) == sorted(f._slot for f in live)


class TestSimulationChurn:
    def test_slot_reuse_under_simulated_churn(self, tiny_topology, tiny_pathset, quick_sim_config):
        """Staggered arrivals/completions force slot reuse mid-run and the
        run still completes every flow exactly once."""
        demands = [
            FlowDemand(i, "A", "B", i % 4, (i + 1) % 4, 2_000_000, 0.002 * i)
            for i in range(40)
        ]
        config = quick_sim_config.with_overrides(vectorized=True, soa=True)
        network = RuntimeNetwork(
            tiny_topology, tiny_pathset, make_router_factory("ecmp"), config
        )
        sim = FluidSimulation(network, demands, make_cc_factory("dcqcn"), config)
        result = sim.run()
        assert result.unfinished_flows == 0
        assert sorted(r.flow_id for r in result.records) == list(range(40))
        # churn kept the table far smaller than the demand count
        assert sim._table.capacity < 256 + 1
        assert len(sim._table) == 0
