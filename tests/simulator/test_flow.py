"""Unit tests for flow demands, runtime flows and feedback delivery."""

import pytest

from repro.congestion_control import FixedRate
from repro.simulator import FeedbackSignal, Flow, FlowDemand, RuntimeLink
from repro.topology.graph import LinkSpec


def make_demand(**overrides) -> FlowDemand:
    base = dict(
        flow_id=1,
        src_dc="DC1",
        dst_dc="DC2",
        src_host=0,
        dst_host=1,
        size_bytes=1_000_000,
        arrival_s=0.0,
    )
    base.update(overrides)
    return FlowDemand(**base)


def make_link(cap_bps=1e9, delay_s=0.005) -> RuntimeLink:
    spec = LinkSpec("A", "B", cap_bps, delay_s, 1_000_000, True)
    return RuntimeLink(spec)


def make_flow(size_bytes=1_000_000, rate=1e9) -> Flow:
    demand = make_demand(size_bytes=size_bytes)
    link = make_link()
    cc = FixedRate(rate, 0.01)
    return Flow(demand, [link], cc, base_rtt_s=0.01)


class TestFlowDemand:
    def test_valid_demand(self):
        demand = make_demand()
        assert demand.size_bytes == 1_000_000

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_demand(size_bytes=0)

    def test_invalid_arrival(self):
        with pytest.raises(ValueError):
            make_demand(arrival_s=-1)

    def test_self_flow_rejected(self):
        with pytest.raises(ValueError):
            make_demand(dst_dc="DC1", dst_host=0)

    def test_same_dc_different_host_allowed(self):
        demand = make_demand(dst_dc="DC1", dst_host=3)
        assert demand.dst_host == 3


class TestFlowProgress:
    def test_transfer_decrements_remaining(self):
        flow = make_flow(size_bytes=1_000_000)
        sent = flow.transfer(achieved_bps=8e6, dt=0.5)  # 500 kB
        assert sent == pytest.approx(500_000)
        assert flow.remaining_bytes == pytest.approx(500_000)
        assert not flow.completed

    def test_transfer_never_overshoots(self):
        flow = make_flow(size_bytes=1_000)
        sent = flow.transfer(achieved_bps=1e9, dt=1.0)
        assert sent == 1_000
        assert flow.completed

    def test_fct_includes_propagation(self):
        flow = make_flow(size_bytes=1_000)
        flow.transfer(1e9, 1.0)
        flow.mark_finished(now=2.0)
        # one-way delay of the single 5 ms link is added
        assert flow.fct_s() == pytest.approx(2.0 + 0.005 - flow.start_s)

    def test_fct_before_completion_raises(self):
        flow = make_flow()
        with pytest.raises(RuntimeError):
            flow.fct_s()

    def test_mark_finished_idempotent(self):
        flow = make_flow(size_bytes=1)
        flow.transfer(1e9, 1.0)
        flow.mark_finished(1.0)
        first = flow.finish_s
        flow.mark_finished(5.0)
        assert flow.finish_s == first


class TestFeedback:
    def signal(self, t):
        return FeedbackSignal(
            generated_s=t, ecn_fraction=0.5, max_utilization=1.2, rtt_s=0.02, queue_delay_s=0.01
        )

    def test_feedback_delivered_only_when_due(self):
        flow = make_flow()
        flow.enqueue_feedback(self.signal(0.0), deliver_s=0.5)
        assert flow.deliver_due_feedback(now=0.1) == 0
        assert flow.cc.feedback_count == 0
        assert flow.deliver_due_feedback(now=0.5) == 1
        assert flow.cc.feedback_count == 1

    def test_feedback_delivered_in_order(self):
        flow = make_flow()
        flow.enqueue_feedback(self.signal(0.0), deliver_s=0.3)
        flow.enqueue_feedback(self.signal(0.1), deliver_s=0.2)
        delivered = flow.deliver_due_feedback(now=1.0)
        assert delivered == 2
        assert flow.cc.feedback_count == 2

    def test_inter_dc_links_property(self):
        demand = make_demand()
        intra_spec = LinkSpec("h", "A", 1e9, 1e-6, 1_000, False)
        inter = make_link()
        flow = Flow(demand, [RuntimeLink(intra_spec), inter], FixedRate(1e9, 0.01), 0.01)
        assert flow.inter_dc_links == (inter,)
