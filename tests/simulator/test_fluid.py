"""Integration tests for the fluid flow-level simulation."""

import numpy as np
import pytest

from repro.congestion_control import make_cc_factory
from repro.routing import make_router_factory
from repro.simulator import (
    FlowDemand,
    FluidSimulation,
    RuntimeNetwork,
)


def make_network(topology, pathset, config, router="ecmp"):
    return RuntimeNetwork(topology, pathset, make_router_factory(router), config)


def run_sim(topology, pathset, demands, config, cc="fixed", router="ecmp", **kwargs):
    network = make_network(topology, pathset, config, router)
    sim = FluidSimulation(network, demands, make_cc_factory(cc), config, **kwargs)
    return sim.run()


class TestSingleFlow:
    def test_unloaded_flow_close_to_ideal(self, tiny_topology, tiny_pathset, quick_sim_config):
        """A single flow with no competition should finish near its ideal FCT."""
        size = 50_000_000  # 50 MB so transmission dominates the 1 ms step size
        demands = [FlowDemand(0, "A", "B", 0, 0, size, 0.0)]
        result = run_sim(tiny_topology, tiny_pathset, demands, quick_sim_config)
        assert len(result.records) == 1
        record = result.records[0]
        assert result.unfinished_flows == 0
        # slowdown close to 1 (some slack for the discrete update step and
        # for landing on a path other than the ideal one)
        assert record.slowdown < 3.0
        assert record.fct_s >= record.ideal_fct_s * 0.99

    def test_flow_record_fields(self, tiny_topology, tiny_pathset, quick_sim_config):
        demands = [FlowDemand(3, "A", "C", 1, 2, 1_000_000, 0.5)]
        result = run_sim(tiny_topology, tiny_pathset, demands, quick_sim_config)
        record = result.records[0]
        assert record.flow_id == 3
        assert record.src_dc == "A" and record.dst_dc == "C"
        assert record.arrival_s == pytest.approx(0.5)
        assert record.path_dcs[0] == "A" and record.path_dcs[-1] == "C"


class TestContention:
    def test_two_flows_share_bottleneck(self, tiny_topology, tiny_pathset, quick_sim_config):
        """Two simultaneous flows on the same host NIC take about twice as long."""
        size = 100_000_000
        solo = run_sim(
            tiny_topology, tiny_pathset,
            [FlowDemand(0, "A", "B", 0, 0, size, 0.0)],
            quick_sim_config,
        ).records[0]
        shared = run_sim(
            tiny_topology, tiny_pathset,
            [
                FlowDemand(0, "A", "B", 0, 0, size, 0.0),
                FlowDemand(1, "A", "B", 0, 1, size, 0.0),
            ],
            quick_sim_config,
        )
        assert shared.unfinished_flows == 0
        mean_shared_fct = np.mean([r.fct_s for r in shared.records])
        assert mean_shared_fct > solo.fct_s * 1.4

    def test_overload_builds_queues(self, tiny_topology, tiny_pathset, quick_sim_config):
        """Many synchronised flows toward one DC must grow some egress queue."""
        size = 20_000_000
        demands = [FlowDemand(i, "A", "B", i % 4, i % 4, size, 0.0) for i in range(12)]
        result = run_sim(tiny_topology, tiny_pathset, demands, quick_sim_config, cc="fixed")
        peak = max(stats.peak_queue_bytes for stats in result.link_stats)
        assert peak > 0
        assert result.unfinished_flows == 0


class TestCongestionControlInteraction:
    def test_dcqcn_throttles_under_overload(self, tiny_topology, tiny_pathset, quick_sim_config):
        """With DCQCN the peak queue should stay below the fixed-rate peak."""
        size = 40_000_000
        demands = [FlowDemand(i, "A", "B", i % 4, i % 4, size, 0.0) for i in range(8)]
        fixed = run_sim(tiny_topology, tiny_pathset, demands, quick_sim_config, cc="fixed")
        dcqcn = run_sim(tiny_topology, tiny_pathset, demands, quick_sim_config, cc="dcqcn")
        peak_fixed = max(s.peak_queue_bytes for s in fixed.link_stats)
        peak_dcqcn = max(s.peak_queue_bytes for s in dcqcn.link_stats)
        assert peak_dcqcn <= peak_fixed


class TestBookkeeping:
    def test_determinism_same_seed(self, tiny_topology, tiny_pathset, quick_sim_config):
        demands = [FlowDemand(i, "A", "B", i % 4, i % 4, 5_000_000, i * 0.001) for i in range(20)]
        r1 = run_sim(tiny_topology, tiny_pathset, demands, quick_sim_config, cc="dcqcn")
        r2 = run_sim(tiny_topology, tiny_pathset, demands, quick_sim_config, cc="dcqcn")
        assert [rec.fct_s for rec in r1.records] == [rec.fct_s for rec in r2.records]

    def test_monitor_and_decision_counters(self, tiny_topology, tiny_pathset, quick_sim_config):
        demands = [FlowDemand(i, "A", "B", 0, 0, 1_000_000, 0.0) for i in range(5)]
        result = run_sim(tiny_topology, tiny_pathset, demands, quick_sim_config)
        assert result.monitor_samples > 0
        # at least one decision per flow; flows routed over multi-hop
        # candidates trigger one decision per intermediate DCI switch too
        assert result.routing_decisions >= 5

    def test_trace_collection(self, tiny_topology, tiny_pathset, quick_sim_config):
        demands = [FlowDemand(0, "A", "B", 0, 0, 10_000_000, 0.0)]
        network = make_network(tiny_topology, tiny_pathset, quick_sim_config)
        sim = FluidSimulation(
            network, demands, make_cc_factory("fixed"), quick_sim_config, trace_links=True
        )
        result = sim.run()
        assert result.trace is not None
        assert result.trace.keys()
        series = result.trace.series(result.trace.keys()[0])
        assert len(series) > 0

    def test_empty_demand_list(self, tiny_topology, tiny_pathset, quick_sim_config):
        result = run_sim(tiny_topology, tiny_pathset, [], quick_sim_config)
        assert result.records == []
        assert result.unfinished_flows == 0

    def test_link_stats_utilization_bounded(self, tiny_topology, tiny_pathset, quick_sim_config):
        demands = [FlowDemand(i, "A", "B", i % 4, i % 4, 10_000_000, 0.0) for i in range(6)]
        result = run_sim(tiny_topology, tiny_pathset, demands, quick_sim_config)
        for stats in result.link_stats:
            assert 0.0 <= stats.utilization <= 1.0
