"""Tests for the columnar MetricsStore and DecisionLog.

Covers column growth, intern tables, record views, pair masks — and the
accessor-safety satellite: every accessor that used to hand back an
internal list must now return copies, so callers cannot mutate collector,
switch or trace state from outside.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator import LinkTrace, MetricsStore, RuntimeLink
from repro.simulator.switch import DecisionLog
from repro.topology.graph import GBPS, MS, LinkSpec
from repro.topology.paths import CandidatePath


def fill(store: MetricsStore, count: int) -> None:
    for i in range(count):
        src, dst = ("DC1", "DC8") if i % 2 == 0 else ("DC8", "DC1")
        store.append(
            flow_id=i,
            src_dc=src,
            dst_dc=dst,
            size_bytes=10_000 * (i + 1),
            arrival_s=0.001 * i,
            fct_s=0.01 + 0.001 * i,
            ideal_fct_s=0.01,
            slowdown=1.0 + 0.1 * i,
            path_index=store.intern_route((src, "DC7", dst)),
        )


class TestMetricsStore:
    def test_append_and_growth(self):
        store = MetricsStore(capacity=4)
        fill(store, 100)  # forces several doublings
        assert len(store) == 100
        assert store.slowdowns().tolist() == pytest.approx(
            [1.0 + 0.1 * i for i in range(100)]
        )
        assert store.sizes()[-1] == 10_000 * 100

    def test_record_views_round_trip(self):
        store = MetricsStore()
        fill(store, 10)
        rec = store.record(3)
        assert rec.flow_id == 3
        assert rec.src_dc == "DC8" and rec.dst_dc == "DC1"
        assert rec.path_dcs == ("DC8", "DC7", "DC1")
        assert rec.slowdown == pytest.approx(1.3)

    def test_records_returns_fresh_copies(self):
        store = MetricsStore()
        fill(store, 5)
        first = store.records()
        first.clear()
        assert len(store.records()) == 5  # clearing the view changed nothing

    def test_columns_are_copies(self):
        store = MetricsStore()
        fill(store, 5)
        col = store.slowdowns()
        col[:] = -1.0
        assert store.slowdowns()[0] == pytest.approx(1.0)

    def test_pair_mask(self):
        store = MetricsStore()
        fill(store, 10)
        forward = store.pair_mask("DC1", "DC8")
        assert forward.sum() == 5
        both = store.pair_mask("DC1", "DC8", bidirectional=True)
        assert both.sum() == 10
        assert store.pair_mask("DC1", "DC9").sum() == 0

    def test_masked_records(self):
        store = MetricsStore()
        fill(store, 10)
        recs = store.records(store.pair_mask("DC1", "DC8"))
        assert [r.flow_id for r in recs] == [0, 2, 4, 6, 8]

    def test_intern_tables_deduplicate(self):
        store = MetricsStore()
        a = store.intern_route(("DC1", "DC8"))
        b = store.intern_route(("DC1", "DC8"))
        c = store.intern_route(("DC1", "DC7", "DC8"))
        assert a == b != c
        assert store.route(a) == ("DC1", "DC8")
        assert store.intern_dc("DC1") == store.intern_dc("DC1")

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            MetricsStore(capacity=0)


def make_candidate(dcs):
    links = tuple(
        LinkSpec(a, b, 100 * GBPS, 5 * MS, 1_000_000, True)
        for a, b in zip(dcs[:-1], dcs[1:])
    )
    return CandidatePath(
        dcs=tuple(dcs),
        links=links,
        delay_s=sum(l.delay_s for l in links),
        bottleneck_bps=min(l.cap_bps for l in links),
    )


class TestDecisionLog:
    def test_append_and_materialize(self):
        log = DecisionLog(capacity=2)
        direct = make_candidate(["A", "B"])
        detour = make_candidate(["A", "C", "B"])
        for i in range(10):
            log.append(
                flow_id=i,
                time_s=0.01 * i,
                chosen=direct if i % 2 == 0 else detour,
                dst_dc="B",
                num_candidates=2,
                fallback=False,
            )
        assert len(log) == 10
        decisions = log.materialize("A")
        assert decisions[1].chosen.dcs == ("A", "C", "B")
        assert decisions[0].switch == "A"
        assert decisions[3].time_s == pytest.approx(0.03)
        assert log.first_hops() == ["B", "C"] * 5

    def test_materialized_list_is_a_copy(self):
        log = DecisionLog()
        log.append(0, 0.0, make_candidate(["A", "B"]), "B", 1, False)
        view = log.materialize("A")
        view.clear()
        assert len(log) == 1
        assert len(log.materialize("A")) == 1

    def test_append_batch_matches_scalar_appends(self):
        from repro.simulator.flow import FlowDemand

        direct = make_candidate(["A", "B"])
        detour = make_candidate(["A", "C", "B"])
        candidates = [direct, detour]
        demands = [FlowDemand(i, "A", "B", 0, 1, 1_000, 0.0) for i in range(6)]
        times = np.array([0.001 * i for i in range(6)])
        chosen_idx = np.array([0, 1, 0, 0, 1, 1], dtype=np.intp)

        batched = DecisionLog()
        batched.append_batch(demands, times, candidates, chosen_idx, "B", False)
        scalar = DecisionLog()
        for i, d in enumerate(demands):
            scalar.append(
                d.flow_id, float(times[i]), candidates[int(chosen_idx[i])], "B", 2, False
            )
        import dataclasses

        got = [dataclasses.asdict(d) for d in batched.materialize("A")]
        want = [dataclasses.asdict(d) for d in scalar.materialize("A")]
        # append_batch records len(candidates) as num_candidates per row
        assert got == want


class TestAccessorCopies:
    def test_link_trace_series_is_a_copy(self):
        trace = LinkTrace()
        link = RuntimeLink(LinkSpec("A", "B", 100 * GBPS, 5 * MS, 1_000_000, True))
        link.queue_bytes = 500.0
        trace.observe(link, now=0.0)
        series = trace.series(("A", "B"))
        series.clear()
        assert len(trace.series(("A", "B"))) == 1
        times, queues, _, _ = trace.columns(("A", "B"))
        queues[:] = 0.0
        assert trace.peak_queue(("A", "B")) == 500.0
