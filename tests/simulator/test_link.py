"""Unit and property tests for the runtime link (egress-port) model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import RuntimeLink
from repro.topology.graph import LinkSpec


def make_link(cap_bps=1e9, buffer_bytes=1_000_000, **kwargs) -> RuntimeLink:
    spec = LinkSpec(
        src="A",
        dst="B",
        cap_bps=cap_bps,
        delay_s=0.005,
        buffer_bytes=buffer_bytes,
        inter_dc=True,
    )
    return RuntimeLink(spec, **kwargs)


class TestIntegration:
    def test_underload_leaves_queue_empty(self):
        link = make_link(cap_bps=1e9)
        link.integrate(offered_bps=0.5e9, dt=0.01)
        assert link.queue_bytes == 0.0
        assert link.carried_bytes == pytest.approx(0.5e9 * 0.01 / 8)

    def test_overload_builds_queue(self):
        link = make_link(cap_bps=1e9)
        link.integrate(offered_bps=2e9, dt=0.01)
        # surplus of 1 Gbps for 10 ms = 1.25 MB, capped at the 1 MB buffer
        assert link.queue_bytes == pytest.approx(1_000_000)
        assert link.dropped_bytes > 0

    def test_queue_drains_when_load_drops(self):
        link = make_link(cap_bps=1e9, buffer_bytes=10_000_000)
        link.integrate(offered_bps=2e9, dt=0.01)
        q_after_burst = link.queue_bytes
        link.integrate(offered_bps=0.0, dt=0.005)
        assert link.queue_bytes < q_after_burst
        link.integrate(offered_bps=0.0, dt=10.0)
        assert link.queue_bytes == 0.0

    def test_peak_queue_tracked(self):
        link = make_link(cap_bps=1e9, buffer_bytes=10_000_000)
        link.integrate(offered_bps=3e9, dt=0.01)
        peak = link.peak_queue_bytes
        link.integrate(offered_bps=0.0, dt=10.0)
        assert link.peak_queue_bytes == peak > 0

    def test_down_port_carries_nothing(self):
        link = make_link()
        link.fail()
        carried_fraction = link.integrate(offered_bps=1e9, dt=0.01)
        assert carried_fraction == 0.0
        assert link.carried_bytes == 0.0
        link.recover()
        assert link.up

    def test_carried_fraction_bounds(self):
        link = make_link()
        assert link.integrate(offered_bps=0.0, dt=0.01) == 1.0
        fraction = link.integrate(offered_bps=100e9, dt=0.1)
        assert 0.0 <= fraction <= 1.0


class TestSignals:
    def test_ecn_profile(self):
        link = make_link(buffer_bytes=1_000_000, ecn_kmin_fraction=0.1, ecn_kmax_fraction=0.5, ecn_pmax=0.2)
        link.queue_bytes = 0
        assert link.ecn_mark_probability() == 0.0
        link.queue_bytes = 50_000  # below kmin (100 kB)
        assert link.ecn_mark_probability() == 0.0
        link.queue_bytes = 300_000  # halfway between kmin and kmax
        assert 0.0 < link.ecn_mark_probability() < 0.2
        link.queue_bytes = 600_000  # above kmax (500 kB)
        assert link.ecn_mark_probability() == 1.0

    def test_queueing_delay(self):
        link = make_link(cap_bps=1e9)
        link.queue_bytes = 125_000  # 1 Mbit at 1 Gbps -> 1 ms
        assert link.queueing_delay_s() == pytest.approx(1e-3)

    def test_utilization(self):
        link = make_link(cap_bps=1e9)
        link.integrate(offered_bps=0.5e9, dt=1.0)
        assert link.utilization(1.0) == pytest.approx(0.5, rel=1e-6)
        assert link.utilization(0.0) == 0.0

    def test_reset_counters(self):
        link = make_link()
        link.integrate(offered_bps=1e9, dt=0.1)
        link.reset_counters()
        assert link.carried_bytes == 0.0
        assert link.dropped_bytes == 0.0


@settings(max_examples=60, deadline=None)
@given(
    offered=st.lists(st.floats(min_value=0, max_value=10e9, allow_nan=False), min_size=1, max_size=30),
    dt=st.floats(min_value=1e-4, max_value=0.1, allow_nan=False),
)
def test_property_queue_invariants(offered, dt):
    """Property: the queue never goes negative nor exceeds the buffer, and
    carried bytes never exceed capacity * elapsed time."""
    link = make_link(cap_bps=1e9, buffer_bytes=2_000_000)
    elapsed = 0.0
    for load in offered:
        link.integrate(offered_bps=load, dt=dt)
        elapsed += dt
        assert 0.0 <= link.queue_bytes <= link.buffer_bytes
        assert link.carried_bytes <= link.cap_bps * elapsed / 8 + 1e-6
        assert 0.0 <= link.ecn_mark_probability() <= 1.0


class TestCapacityFactor:
    def test_effective_capacity_scales(self):
        link = make_link(cap_bps=1e9)
        link.set_capacity_factor(0.25)
        assert link.cap_bps == pytest.approx(0.25e9)
        link.set_capacity_factor(1.0)
        assert link.cap_bps == pytest.approx(1e9)

    def test_non_positive_factor_rejected(self):
        link = make_link()
        with pytest.raises(ValueError, match="capacity factor"):
            link.set_capacity_factor(0.0)

    def test_utilization_integrates_capacity_over_time(self):
        """A mid-run degradation must not retroactively re-rate the whole
        run: 1 s at full rate + 1 s at half rate = 1.5 cap-seconds."""
        link = make_link(cap_bps=1e9)
        # fully utilise the first second at the provisioned rate
        link.integrate(offered_bps=1e9, dt=1.0)
        link.set_capacity_factor(0.5, now=1.0)
        # fully utilise the second second at the degraded rate
        link.integrate(offered_bps=0.5e9, dt=1.0)
        assert link.utilization(2.0) == pytest.approx(1.0, rel=1e-6)

    def test_utilization_without_factor_changes_unchanged(self):
        link = make_link(cap_bps=1e9)
        link.integrate(offered_bps=0.5e9, dt=1.0)
        assert link.utilization(1.0) == pytest.approx(0.5)


class TestDownCauseCounting:
    def test_overlapping_causes_compose(self):
        link = make_link()
        link.fail()
        link.fail()
        link.recover()
        assert not link.up
        link.recover()
        assert link.up

    def test_recover_on_up_link_is_a_noop(self):
        link = make_link()
        link.recover()
        assert link.up
        link.fail()
        assert not link.up
        link.recover()
        assert link.up

    def test_direct_up_assignment_overrides_bookkeeping(self):
        link = make_link()
        link.fail()
        link.fail()
        link.up = True
        assert link.up
