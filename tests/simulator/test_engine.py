"""Unit and property tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import SimulationEngine, SimulationError
from repro.simulator.engine import EventQueue


class TestEventQueue:
    def test_pop_order(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        assert q.pop().time == 1.0
        assert q.pop().time == 2.0
        assert q.pop().time == 3.0
        assert q.pop() is None

    def test_same_time_fifo(self):
        q = EventQueue()
        first = q.push(1.0, lambda: None)
        second = q.push(1.0, lambda: None)
        assert q.pop() is first
        assert q.pop() is second

    def test_cancelled_events_skipped(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        event.cancel()
        assert len(q) == 1
        assert q.pop().time == 2.0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        event = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        event.cancel()
        assert q.peek_time() == 5.0

    def test_live_counter_tracks_push_pop_cancel(self):
        """len()/bool() come from an O(1) counter, kept exact through any
        push/pop/cancel interleaving (including double-cancel and
        cancel-after-pop)."""
        q = EventQueue()
        assert len(q) == 0 and not q
        events = [q.push(float(i), lambda: None) for i in range(5)]
        assert len(q) == 5 and q
        events[1].cancel()
        events[1].cancel()  # idempotent
        assert len(q) == 4
        popped = q.pop()
        assert popped is events[0]
        assert len(q) == 3
        popped.cancel()  # cancelling a popped event must not re-decrement
        assert len(q) == 3
        events[2].cancel()
        events[3].cancel()
        events[4].cancel()
        assert len(q) == 0 and not q
        assert q.pop() is None
        assert len(q) == 0

    def test_lifetime_counters_track_push_pop_cancel(self):
        """pushed/popped/cancelled are monotone lifetime counters: pushed
        counts every push, popped only live pops, cancelled only pending
        cancels (double-cancel and cancel-after-pop don't count)."""
        q = EventQueue()
        assert (q.pushed, q.popped, q.cancelled) == (0, 0, 0)
        events = [q.push(float(i), lambda: None) for i in range(5)]
        assert q.pushed == 5
        assert q.peak_live == 5
        events[1].cancel()
        events[1].cancel()  # double-cancel counts once
        assert q.cancelled == 1
        popped = q.pop()
        popped.cancel()  # cancel-after-pop counts as neither
        assert (q.popped, q.cancelled) == (1, 1)
        while q.pop() is not None:
            pass
        # the cancelled event is skipped by pop, not popped
        assert (q.pushed, q.popped, q.cancelled) == (5, 4, 1)
        q.push(9.0, lambda: None)
        assert q.pushed == 6
        assert q.peak_live == 5  # peak is a high-water mark, not current

    def test_live_counter_matches_brute_force_sweep(self):
        import random

        rng = random.Random(7)
        q = EventQueue()
        handles = []
        for _ in range(500):
            action = rng.random()
            if action < 0.5 or not handles:
                handles.append(q.push(rng.random() * 100, lambda: None))
            elif action < 0.75:
                rng.choice(handles).cancel()
            else:
                event = q.pop()
                if event is not None and event in handles:
                    handles.remove(event)
            expected = sum(1 for e in q._heap if not e.cancelled)
            assert len(q) == expected


class TestEngine:
    def test_events_fire_in_time_order(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1.0))
        engine.schedule(0.5, lambda: seen.append(0.5))
        engine.schedule(0.75, lambda: seen.append(0.75))
        engine.run()
        assert seen == [0.5, 0.75, 1.0]
        assert engine.now == 1.0
        assert engine.processed_events == 3

    def test_schedule_in_past_rejected(self):
        engine = SimulationEngine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.schedule(5.0, lambda: None)

    def test_schedule_after(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule_after(0.25, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [0.25]
        with pytest.raises(SimulationError):
            engine.schedule_after(-1, lambda: None)

    def test_run_until_advances_clock(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: None)
        engine.run(until=5.0)
        assert engine.now == 5.0

    def test_run_until_excludes_later_events(self):
        engine = SimulationEngine()
        seen = []
        engine.schedule(1.0, lambda: seen.append("early"))
        engine.schedule(10.0, lambda: seen.append("late"))
        engine.run(until=5.0)
        assert seen == ["early"]
        assert engine.pending_events == 1

    def test_stop_preserves_clock(self):
        engine = SimulationEngine()
        engine.schedule(1.0, lambda: engine.stop())
        engine.schedule(2.0, lambda: None)
        engine.run(until=100.0)
        # stopped early: the clock stays at the stopping event, not at `until`
        assert engine.now == 1.0

    def test_periodic_scheduling(self):
        engine = SimulationEngine()
        ticks = []
        engine.schedule_periodic(0.1, lambda: ticks.append(round(engine.now, 3)))
        engine.run(until=0.55)
        assert ticks == [0.1, 0.2, 0.3, 0.4, 0.5]

    def test_periodic_with_until_bound(self):
        engine = SimulationEngine()
        ticks = []
        # binary-representable interval so the recurrence accumulates no
        # floating-point error against the bound
        engine.schedule_periodic(0.125, lambda: ticks.append(engine.now), until=0.375)
        engine.run(until=10.0)
        assert len(ticks) == 3

    def test_periodic_invalid_interval(self):
        engine = SimulationEngine()
        with pytest.raises(SimulationError):
            engine.schedule_periodic(0, lambda: None)

    def test_events_can_schedule_events(self):
        engine = SimulationEngine()
        seen = []

        def chain():
            seen.append(engine.now)
            if len(seen) < 4:
                engine.schedule_after(0.5, chain)

        engine.schedule(0.0, chain)
        engine.run()
        assert seen == [0.0, 0.5, 1.0, 1.5]

    def test_max_events(self):
        engine = SimulationEngine()
        for i in range(10):
            engine.schedule(float(i), lambda: None)
        engine.run(max_events=3)
        assert engine.processed_events == 3

    def test_engine_surfaces_queue_lifetime_counters(self):
        """The engine exposes its queue's lifetime counters, so the
        observability plane can harvest them without reaching into
        ``_queue``."""
        engine = SimulationEngine()
        keep = [engine.schedule(float(i), lambda: None) for i in range(4)]
        keep[3].cancel()
        assert engine.events_scheduled == 4
        assert engine.peak_pending_events == 4
        engine.run()
        assert engine.events_fired == 3
        assert engine.events_cancelled == 1
        # periodic events reschedule themselves: scheduled keeps growing
        engine2 = SimulationEngine()
        engine2.schedule_periodic(0.1, lambda: None, until=0.35)
        engine2.run(until=1.0)
        assert engine2.events_fired == 3
        assert engine2.events_scheduled >= 3


@settings(max_examples=50, deadline=None)
@given(times=st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), min_size=1, max_size=40))
def test_property_events_execute_in_nondecreasing_time(times):
    """Property: regardless of scheduling order, execution times are sorted."""
    engine = SimulationEngine()
    fired = []
    for t in times:
        engine.schedule(t, (lambda tt=t: fired.append(tt)))
    engine.run()
    assert fired == sorted(times)
    assert len(fired) == len(times)
