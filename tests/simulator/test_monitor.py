"""Tests for the queue monitor and link tracing."""

import pytest

from repro.routing import make_router_factory
from repro.simulator import LinkTrace, QueueMonitor, RuntimeNetwork, SimulationConfig


@pytest.fixture
def network(tiny_topology, tiny_pathset):
    return RuntimeNetwork(
        tiny_topology, tiny_pathset, make_router_factory("ecmp"), SimulationConfig()
    )


class TestQueueMonitor:
    def test_sample_counts(self, network):
        monitor = QueueMonitor(network)
        monitor.sample(now=0.001)
        monitor.sample(now=0.002)
        assert monitor.samples_taken == 2

    def test_sample_with_trace(self, network):
        trace = LinkTrace()
        monitor = QueueMonitor(network, trace=trace)
        network.link("A", "B").queue_bytes = 500.0
        monitor.sample(now=0.001)
        monitor.sample(now=0.002)
        series = trace.series(("A", "B"))
        assert len(series) == 2
        assert series[0].queue_bytes == 500.0
        assert monitor.trace is trace


class TestLinkTrace:
    def test_peak_queue(self, network):
        trace = LinkTrace()
        link = network.link("A", "C")
        link.queue_bytes = 100
        trace.observe(link, now=0.0)
        link.queue_bytes = 900
        trace.observe(link, now=0.1)
        link.queue_bytes = 300
        trace.observe(link, now=0.2)
        assert trace.peak_queue(("A", "C")) == 900
        assert trace.peak_queue(("C", "A")) == 0.0

    def test_unknown_key_empty(self):
        trace = LinkTrace()
        assert trace.series(("X", "Y")) == []
        assert trace.keys() == []
