"""Tests for the runtime network and hop-by-hop path resolution."""

import pytest

from repro.routing import make_router_factory
from repro.simulator import FlowDemand, RuntimeNetwork, SimulationConfig
from repro.topology import TopologyError


@pytest.fixture
def tiny_network(tiny_topology, tiny_pathset):
    return RuntimeNetwork(
        tiny_topology, tiny_pathset, make_router_factory("ecmp"), SimulationConfig()
    )


def demand(flow_id=1, src="A", dst="B", size=10_000):
    return FlowDemand(flow_id, src, dst, 0, 1, size, 0.0)


class TestConstruction:
    def test_switch_per_dc_with_ports(self, tiny_network):
        assert set(tiny_network.switches) == {"A", "B", "C"}
        assert set(tiny_network.switch("A").ports) == {"B", "C"}
        assert set(tiny_network.switch("C").ports) == {"A", "B"}

    def test_runtime_link_per_directed_inter_dc_link(self, tiny_network, tiny_topology):
        assert len(tiny_network.inter_dc_links) == len(tiny_topology.inter_dc_links())
        assert tiny_network.link("A", "B").cap_bps == tiny_topology.link("A", "B").cap_bps

    def test_missing_link_raises(self, tiny_network):
        with pytest.raises(TopologyError):
            tiny_network.link("B", "Z")


class TestHostLinks:
    def test_host_links_created_lazily_and_cached(self, tiny_network):
        up1 = tiny_network.host_link("A", 0, "up")
        up2 = tiny_network.host_link("A", 0, "up")
        down = tiny_network.host_link("A", 0, "down")
        assert up1 is up2
        assert up1 is not down
        assert up1.cap_bps == 100e9
        assert not up1.spec.inter_dc

    def test_invalid_host_requests(self, tiny_network):
        with pytest.raises(ValueError):
            tiny_network.host_link("A", 0, "sideways")
        with pytest.raises(TopologyError):
            tiny_network.host_link("A", 99, "up")


class TestPathResolution:
    def test_path_structure(self, tiny_network):
        path = tiny_network.resolve_path(demand(), now=0.0)
        # NIC uplink, >=1 inter-DC link, NIC downlink
        assert len(path) >= 3
        assert not path[0].spec.inter_dc
        assert not path[-1].spec.inter_dc
        assert any(l.spec.inter_dc for l in path)
        # the inter-DC portion starts at A and ends at B
        inter = [l for l in path if l.spec.inter_dc]
        assert inter[0].spec.src == "A"
        assert inter[-1].spec.dst == "B"

    def test_paths_are_loop_free(self, tiny_network):
        for flow_id in range(50):
            path = tiny_network.resolve_path(demand(flow_id), now=0.0)
            inter = [l for l in path if l.spec.inter_dc]
            visited = [inter[0].spec.src] + [l.spec.dst for l in inter]
            assert len(set(visited)) == len(visited)

    def test_decisions_recorded_at_source_switch(self, tiny_network):
        tiny_network.resolve_path(demand(), now=0.0)
        assert len(tiny_network.switch("A").decisions) == 1

    def test_failed_first_hop_avoided(self, tiny_network):
        tiny_network.fail_link("A", "B")
        for flow_id in range(20):
            path = tiny_network.resolve_path(demand(flow_id), now=0.0)
            inter = [l for l in path if l.spec.inter_dc]
            assert inter[0].spec.dst == "C"
        tiny_network.recover_link("A", "B")

    def test_same_dc_flow_uses_only_host_links(self, tiny_network):
        d = FlowDemand(9, "A", "A", 0, 1, 1_000, 0.0)
        path = tiny_network.resolve_path(d, now=0.0)
        assert len(path) == 2
        assert not any(l.spec.inter_dc for l in path)

    def test_sample_and_tick_all(self, tiny_network):
        tiny_network.sample_all_ports(now=0.5)
        tiny_network.tick_all(now=0.5)


class TestLargerTopologyResolution:
    def test_testbed_paths_resolve_for_all_pairs(self, scaled_testbed, scaled_testbed_paths):
        network = RuntimeNetwork(
            scaled_testbed, scaled_testbed_paths, make_router_factory("ecmp"), SimulationConfig()
        )
        flow_id = 0
        for src, dst in scaled_testbed.dc_pairs(ordered=True):
            d = FlowDemand(flow_id, src, dst, 0, 1, 1_000, 0.0)
            flow_id += 1
            path = network.resolve_path(d, now=0.0)
            inter = [l for l in path if l.spec.inter_dc]
            assert inter[0].spec.src == src
            assert inter[-1].spec.dst == dst
