"""Tests for the DCI switch runtime model."""

import pytest

from repro.routing import ECMPRouter
from repro.simulator import DCISwitch, FlowDemand, RuntimeLink
from repro.topology.graph import GBPS, MS, LinkSpec
from repro.topology.paths import CandidatePath


def make_link(src, dst, cap=100 * GBPS, delay=5 * MS) -> RuntimeLink:
    return RuntimeLink(LinkSpec(src, dst, cap, delay, 1_000_000, True))


def make_candidate(dcs, links) -> CandidatePath:
    return CandidatePath(
        dcs=tuple(dcs),
        links=tuple(l.spec for l in links),
        delay_s=sum(l.delay_s for l in links),
        bottleneck_bps=min(l.cap_bps for l in links),
    )


@pytest.fixture
def switch_and_candidates():
    link_b = make_link("A", "B")
    link_c = make_link("A", "C", cap=40 * GBPS)
    switch = DCISwitch("A", ECMPRouter())
    switch.add_port("B", link_b)
    switch.add_port("C", link_c)
    cand_direct = make_candidate(["A", "B"], [link_b])
    cand_via_c = make_candidate(["A", "C", "B"], [link_c, make_link("C", "B")])
    return switch, [cand_direct, cand_via_c], link_b, link_c


def demand(flow_id=1):
    return FlowDemand(flow_id, "A", "B", 0, 0, 1_000, 0.0)


class TestPorts:
    def test_ports_registered(self, switch_and_candidates):
        switch, _, link_b, link_c = switch_and_candidates
        assert switch.port_to("B") is link_b
        assert switch.port_to("C") is link_c
        assert switch.port_to("Z") is None
        assert switch.port_up("B")
        assert not switch.port_up("Z")


class TestRouting:
    def test_route_flow_records_decision(self, switch_and_candidates):
        switch, candidates, _, _ = switch_and_candidates
        chosen = switch.route_flow("B", candidates, demand(1), now=0.0)
        assert chosen in candidates
        assert len(switch.decisions) == 1
        assert switch.decisions[0].num_candidates == 2
        assert not switch.decisions[0].fallback

    def test_empty_candidates_rejected(self, switch_and_candidates):
        switch, _, _, _ = switch_and_candidates
        with pytest.raises(ValueError):
            switch.route_flow("B", [], demand(), now=0.0)

    def test_dead_port_excluded(self, switch_and_candidates):
        switch, candidates, link_b, _ = switch_and_candidates
        link_b.fail()
        for flow_id in range(20):
            chosen = switch.route_flow("B", candidates, demand(flow_id), now=0.0)
            assert chosen.first_hop == "C"

    def test_all_ports_dead_falls_back(self, switch_and_candidates):
        switch, candidates, link_b, link_c = switch_and_candidates
        link_b.fail()
        link_c.fail()
        chosen = switch.route_flow("B", candidates, demand(), now=0.0)
        assert chosen in candidates
        assert switch.decisions[-1].fallback


class TestTelemetry:
    def test_sample_ports_feeds_router(self, switch_and_candidates):
        switch, _, link_b, _ = switch_and_candidates
        link_b.queue_bytes = 12_345
        samples = switch.sample_ports(now=1.0)
        assert len(samples) == 2
        by_dc = {s.next_dc: s for s in samples}
        assert by_dc["B"].queue_bytes == 12_345
        assert by_dc["B"].switch == "A"
        assert by_dc["B"].time_s == 1.0

    def test_tick_delegates_to_router(self, switch_and_candidates):
        switch, _, _, _ = switch_and_candidates
        switch.tick(now=2.0)  # ECMP's on_tick is a no-op; must not raise
