"""Tests for ideal-FCT computation and the FCT collector."""

import numpy as np
import pytest

from repro.congestion_control import FixedRate
from repro.simulator import FCTCollector, Flow, FlowDemand, IdealFctModel, RuntimeLink
from repro.topology import GBPS, MS
from repro.topology.graph import LinkSpec


@pytest.fixture
def ideal_model(tiny_topology, tiny_pathset):
    return IdealFctModel(tiny_topology, tiny_pathset)


class TestIdealFct:
    def test_small_flow_uses_shortest_delay_path(self, ideal_model):
        # for a small flow the best candidate is the low-delay route via C:
        # 2 ms propagation, 40 Gbps bottleneck
        demand = FlowDemand(1, "A", "B", 0, 0, size_bytes=100_000, arrival_s=0.0)
        ideal = ideal_model.ideal_fct_s(demand)
        expected = 2 * 2e-6 + 2 * MS + 100_000 * 8 / (40 * GBPS)
        assert ideal == pytest.approx(expected, rel=1e-6)

    def test_large_flow_may_prefer_high_capacity_path(self, ideal_model):
        # a 100 MB flow finishes earlier on the direct 100 Gbps / 5 ms route
        demand = FlowDemand(1, "A", "B", 0, 0, size_bytes=100_000_000, arrival_s=0.0)
        ideal = ideal_model.ideal_fct_s(demand)
        expected_direct = 2 * 2e-6 + 5 * MS + 100_000_000 * 8 / (100 * GBPS)
        assert ideal == pytest.approx(expected_direct, rel=1e-6)

    def test_ideal_is_lower_bound_over_candidates(self, ideal_model):
        demand = FlowDemand(1, "A", "B", 0, 0, size_bytes=1_000_000, arrival_s=0.0)
        ideal = ideal_model.ideal_fct_s(demand)
        for delay, rate in ideal_model.reference("A", "B"):
            assert ideal <= delay + demand.size_bytes * 8 / rate + 1e-12

    def test_nic_rate_limits_ideal(self, tiny_topology, tiny_pathset):
        # hosts have 100 Gbps NICs; every attainable rate is clamped to that
        model = IdealFctModel(tiny_topology, tiny_pathset)
        for _, rate in model.reference("A", "B"):
            assert rate <= 100 * GBPS

    def test_reference_cached(self, ideal_model):
        first = ideal_model.reference("A", "B")
        second = ideal_model.reference("A", "B")
        assert first == second

    def test_unknown_pair_raises(self, tiny_topology, tiny_pathset):
        model = IdealFctModel(tiny_topology, tiny_pathset)
        demand = FlowDemand(1, "A", "Z", 0, 0, size_bytes=100, arrival_s=0.0)
        with pytest.raises(Exception):
            model.ideal_fct_s(demand)


class TestCollector:
    def _finished_flow(self, demand):
        spec = LinkSpec(demand.src_dc, demand.dst_dc, 40 * GBPS, 2 * MS, 1_000_000, True)
        flow = Flow(demand, [RuntimeLink(spec)], FixedRate(40 * GBPS, 4 * MS), 4 * MS)
        flow.transfer(40 * GBPS, 10.0)
        flow.mark_finished(now=demand.arrival_s + 0.01)
        return flow

    def test_record_computes_slowdown(self, ideal_model):
        collector = FCTCollector(ideal_model)
        demand = FlowDemand(7, "A", "B", 0, 0, size_bytes=10_000, arrival_s=1.0)
        record = collector.record(self._finished_flow(demand))
        assert record.flow_id == 7
        assert record.fct_s > 0
        assert record.slowdown == pytest.approx(record.fct_s / record.ideal_fct_s)
        assert len(collector) == 1

    def test_filter_pair(self, ideal_model):
        collector = FCTCollector(ideal_model)
        for i, (src, dst) in enumerate([("A", "B"), ("A", "C"), ("A", "B")]):
            demand = FlowDemand(i, src, dst, 0, 0, size_bytes=1_000, arrival_s=0.0)
            collector.record(self._finished_flow(demand))
        assert len(collector.filter_pair("A", "B")) == 2
        assert len(collector.filter_pair("B", "A")) == 0
        assert len(collector.slowdowns()) == 3

    def test_fidelity_noise_perturbs_fct(self, ideal_model):
        rng = np.random.default_rng(3)
        noisy = FCTCollector(ideal_model, fidelity_noise=0.2, rng=rng)
        clean = FCTCollector(ideal_model)
        demand = FlowDemand(1, "A", "B", 0, 0, size_bytes=50_000, arrival_s=0.0)
        noisy_rec = noisy.record(self._finished_flow(demand))
        clean_rec = clean.record(self._finished_flow(demand))
        assert noisy_rec.fct_s != pytest.approx(clean_rec.fct_s)

    def test_path_dcs_recorded(self, ideal_model):
        collector = FCTCollector(ideal_model)
        demand = FlowDemand(1, "A", "B", 0, 0, size_bytes=1_000, arrival_s=0.0)
        record = collector.record(self._finished_flow(demand))
        assert record.path_dcs[0] == "A"
        assert record.path_dcs[-1] == "B"
