"""Integration tests for the simulator's observability plane.

One instrumented run must yield: a populated ``result.stats`` snapshot
whose ``update.*`` sub-phases account for ≥95 % of ``step.update`` wall
time, non-zero counters for every layer the run exercised, a
perfetto-loadable Chrome trace — and bit-identical numerics to the same
run without instrumentation.  An uninstrumented run must carry no stats
and register no metrics (the NOOP null-object path).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.congestion_control import make_cc_factory
from repro.obs import NOOP, chrome_trace, prometheus_text
from repro.routing import make_router_factory
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator


def run_sim(instrumentation, num_flows=120, **config_overrides):
    """One small websearch run; returns (simulation, result)."""
    topology = build_testbed8(capacity_scale=0.1)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(
        seed=7, instrumentation=instrumentation, **config_overrides
    )
    traffic = TrafficConfig(
        workload="websearch",
        load=0.35,
        num_flows=num_flows,
        pairs=[("DC1", "DC8"), ("DC8", "DC1")],
        seed=7,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(network, demands, make_cc_factory("dcqcn"), config)
    return sim, sim.run()


@pytest.fixture(scope="module")
def instrumented():
    return run_sim(instrumentation=True)


class TestDisabledPath:
    def test_uninstrumented_run_attaches_no_stats(self):
        sim, result = run_sim(instrumentation=False)
        assert result.stats is None
        assert sim.obs is NOOP
        assert sim.obs.trace_events() == []

    def test_noop_registers_zero_metrics(self):
        sim, _ = run_sim(instrumentation=False)
        # NullInstrumentation has no registry at all — nothing accumulated
        assert not hasattr(sim.obs, "registry")


class TestInstrumentedRun:
    def test_stats_snapshot_attached_and_serialisable(self, instrumented):
        _, result = instrumented
        assert result.stats is not None
        assert set(result.stats) == {"counters", "gauges", "histograms", "phases"}
        json.dumps(result.stats)

    @staticmethod
    def subphase_coverage(result):
        phases = result.stats["phases"]
        update_total = phases["step.update"]["total_ns"]
        assert update_total > 0
        sub_total = sum(
            p["total_ns"] for name, p in phases.items() if name.startswith("update.")
        )
        return sub_total / update_total

    def test_subphases_cover_95_percent_of_update(self, instrumented):
        """Acceptance: spans cover ≥95 % of the step wall-time — the
        ``update.*`` sub-phases must account for nearly all of the
        enclosing ``step.update`` span.

        The fraction is wall-clock (a context switch landing between two
        sub-spans counts against it), so like the benchmark gates this
        allows one re-measurement on a fresh run.
        """
        _, result = instrumented
        coverage = self.subphase_coverage(result)
        if coverage < 0.95:
            _, result = run_sim(instrumentation=True)
            coverage = self.subphase_coverage(result)
        assert coverage >= 0.95, (
            f"update.* sub-phases cover only {coverage:.1%} of step.update"
        )

    def test_expected_phases_present(self, instrumented):
        _, result = instrumented
        phases = result.stats["phases"]
        for name in (
            "step.update",
            "step.monitor",
            "step.arrivals",
            "arrivals.route",
            "update.signals",
            "update.feedback",
            "update.cc_advance",
            "update.completions",
        ):
            assert phases[name]["count"] > 0, f"phase {name} never ran"

    def test_layer_counters_harvested(self, instrumented):
        _, result = instrumented
        counters = result.stats["counters"]
        for name in (
            "engine.events_scheduled",
            "engine.events_fired",
            "incidence.registry_rebuilds",
            "telemetry.sweeps",
            "monitor.samples",
            "routing.decisions",
            "routing.batch_calls",
            "arrivals.batches",
            "arrivals.flows_admitted",
            "cc.kernel_dispatches",
        ):
            assert counters.get(name, 0) > 0, f"counter {name} is zero"
        assert counters["arrivals.flows_admitted"] == 120
        assert counters["engine.events_fired"] <= counters["engine.events_scheduled"]
        assert result.stats["gauges"]["engine.peak_pending_events"]["max"] > 0
        assert result.stats["histograms"]["arrivals.batch_size"]["count"] == (
            counters["arrivals.batches"]
        )

    def test_monitor_and_routing_counters_match_result_fields(self, instrumented):
        _, result = instrumented
        counters = result.stats["counters"]
        assert counters["monitor.samples"] == result.monitor_samples
        assert counters["routing.decisions"] == result.routing_decisions

    def test_chrome_trace_loadable_with_spans(self, instrumented, tmp_path):
        sim, _ = instrumented
        doc = chrome_trace(sim.obs)
        path = tmp_path / "run.trace.json"
        path.write_text(json.dumps(doc))
        loaded = json.loads(path.read_text())
        events = loaded["traceEvents"]
        assert len(events) > 0
        assert {e["name"] for e in events} >= {"step.update", "update.signals"}
        for e in events:
            assert e["ph"] == "X" and e["dur"] >= 0.0

    def test_prometheus_text_renders(self, instrumented):
        _, result = instrumented
        text = prometheus_text(result.stats)
        assert "engine_events_fired" in text
        assert "step_update_seconds_count" in text


class TestBitIdentity:
    def test_instrumentation_leaves_numerics_untouched(self, instrumented):
        """The observability plane observes; it must never perturb the
        simulation (numerics, RNG draws, event ordering)."""
        _, inst = instrumented
        _, base = run_sim(instrumentation=False)
        assert len(base.records) == len(inst.records)
        for a, b in zip(base.records, inst.records):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
        assert base.duration_s == inst.duration_s
        assert base.unfinished_flows == inst.unfinished_flows

    def test_scalar_core_instruments_outer_phases_only(self):
        _, result = run_sim(instrumentation=True, vectorized=False)
        phases = result.stats["phases"]
        assert phases["step.update"]["count"] > 0
        # SoA sub-phases belong to the vectorized core
        assert phases["update.signals"]["count"] == 0
