"""Scalar-vs-vectorized equivalence: the core guarantee of the numpy paths.

Both vectorized cores — the structure-of-arrays FlowTable core
(``SimulationConfig(vectorized=True)``, the default) and the object-resident
legacy core (``soa=False``, the PR-2 layout kept as the benchmark baseline)
— must produce *bit-for-bit* identical results to the pure-Python scalar
update loop on the same seed: every FCT record field, every link statistic,
every scenario recovery metric.  These tests run the paths on identical
inputs — static runs, scenario runs exercising mid-run reroutes, capacity
changes, refcounted link-down windows, surges and stranded-flow failures,
and a high-concurrency (≥1500 flows) run with mid-run reroutes that forces
FlowTable slot churn — and compare everything the simulation reports.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.congestion_control import make_cc_factory, make_mixed_cc_factory
from repro.routing import make_router_factory
from repro.scenarios import get_scenario
from repro.scenarios.events import CapacityChange, LinkDown, LinkUp, Scenario, TrafficSurge
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.simulator.flow import FlowDemand
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator


def run_sim(
    vectorized,
    scenario=None,
    cc="dcqcn",
    num_flows=160,
    trace_links=False,
    soa=True,
    batched=True,
    cc_blocks=True,
):
    topology = build_testbed8(capacity_scale=0.1)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(
        seed=7, vectorized=vectorized, soa=soa, batched_control=batched,
        cc_blocks=cc_blocks,
    )
    traffic = TrafficConfig(
        workload="websearch",
        load=0.35,
        num_flows=num_flows,
        pairs=[("DC1", "DC8"), ("DC8", "DC1")],
        seed=7,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    factory = (
        make_mixed_cc_factory(cc, seed=7) if isinstance(cc, tuple) else make_cc_factory(cc)
    )
    sim = FluidSimulation(
        network,
        demands,
        factory,
        config,
        trace_links=trace_links,
        scenario=scenario,
    )
    return sim.run()


#: heterogeneous fleet used by the mixed-CC equivalence cases
MIX = (("dcqcn", 0.6), ("hpcc", 0.2), ("timely", 0.2))


def assert_records_identical(scalar, vectorized):
    assert len(scalar.records) == len(vectorized.records)
    for a, b in zip(scalar.records, vectorized.records):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def assert_results_identical(scalar, vectorized):
    assert_records_identical(scalar, vectorized)
    assert scalar.duration_s == vectorized.duration_s
    assert scalar.unfinished_flows == vectorized.unfinished_flows
    assert scalar.routing_decisions == vectorized.routing_decisions
    assert scalar.monitor_samples == vectorized.monitor_samples
    assert len(scalar.link_stats) == len(vectorized.link_stats)
    for a, b in zip(scalar.link_stats, vectorized.link_stats):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
    assert len(scalar.failed_flows) == len(vectorized.failed_flows)
    for a, b in zip(scalar.failed_flows, vectorized.failed_flows):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def assert_scenario_metrics_identical(scalar, vectorized):
    a, b = scalar.scenario_metrics, vectorized.scenario_metrics
    assert (a is None) == (b is None)
    if a is None:
        return
    assert a.scenario_name == b.scenario_name
    assert len(a.outcomes) == len(b.outcomes)
    for oa, ob in zip(a.outcomes, b.outcomes):
        assert dataclasses.asdict(oa) == dataclasses.asdict(ob)



#: per-scenario builder kwargs that land every event inside the default
#: ~50 ms run of :func:`run_sim`, so the scenario equivalence cases
#: exercise real mid-run disruptions instead of passing vacuously
EARLY_EVENTS = {
    "single-link-cut": dict(fail_at_s=0.01, recover_at_s=0.03),
    "cascading-failure": dict(first_at_s=0.01, interval_s=0.005, repair_at_s=0.035),
    "diurnal-surge": dict(first_peak_s=0.01, period_s=0.015, peaks=2, flows_per_peak=40),
    "rolling-maintenance": dict(first_at_s=0.005, window_s=0.01, gap_s=0.005),
    "conduit-cut": dict(cut_at_s=0.01, repair_at_s=0.025, stagger_s=0.005),
    "regional-power-outage": dict(start_at_s=0.01, duration_s=0.025),
    "maintenance-calendar": dict(first_at_s=0.005, window_s=0.01, period_s=0.02, occurrences=2),
}


def early_scenario(name):
    """A canned scenario whose events actually fire inside a run_sim run."""
    return get_scenario(name, **EARLY_EVENTS[name])


class TestStaticEquivalence:
    def test_static_run_bitwise_identical(self):
        scalar = run_sim(vectorized=False)
        vector = run_sim(vectorized=True)
        assert_results_identical(scalar, vector)

    def test_legacy_core_bitwise_identical(self):
        """The object-resident PR-2 core (``soa=False``) stays equivalent
        to both the scalar spec and the SoA core."""
        scalar = run_sim(vectorized=False)
        legacy = run_sim(vectorized=True, soa=False)
        soa = run_sim(vectorized=True, soa=True)
        assert_results_identical(scalar, legacy)
        assert_results_identical(legacy, soa)

    @pytest.mark.parametrize("cc", ["dcqcn", "hpcc", "timely", "dctcp", "ideal"])
    def test_every_congestion_control(self, cc):
        scalar = run_sim(vectorized=False, cc=cc, num_flows=80)
        vector = run_sim(vectorized=True, cc=cc, num_flows=80)
        assert_results_identical(scalar, vector)

    def test_mixed_fleet_all_cores(self):
        """A heterogeneous fleet (grouped in-place kernels on the SoA
        core) matches the scalar spec and the legacy core bit for bit."""
        factory = make_mixed_cc_factory(MIX, seed=7)
        assigned = {factory.labels[factory.assign(i)] for i in range(160)}
        assert len(assigned) > 1  # the run genuinely mixes classes
        scalar = run_sim(vectorized=False, cc=MIX)
        soa = run_sim(vectorized=True, cc=MIX)
        legacy = run_sim(vectorized=True, soa=False, cc=MIX)
        assert_results_identical(scalar, soa)
        assert_results_identical(scalar, legacy)

    def test_object_gather_dispatch_bitwise_identical(self):
        """The retained object-gather CC dispatch (``cc_blocks=False``,
        the CC benchmark baseline) matches the block kernels, on a
        uniform non-DCQCN fleet and on a mixed fleet."""
        for cc in ("hpcc", MIX):
            blocks = run_sim(vectorized=True, cc=cc, num_flows=80)
            gathered = run_sim(vectorized=True, cc=cc, num_flows=80, cc_blocks=False)
            assert_results_identical(blocks, gathered)

    def test_link_trace_identical(self):
        scalar = run_sim(vectorized=False, num_flows=60, trace_links=True)
        vector = run_sim(vectorized=True, num_flows=60, trace_links=True)
        assert scalar.trace.keys() == vector.trace.keys()
        for key in scalar.trace.keys():
            sa, sb = scalar.trace.series(key), vector.trace.series(key)
            assert len(sa) == len(sb)
            for pa, pb in zip(sa, sb):
                assert dataclasses.asdict(pa) == dataclasses.asdict(pb)

    def test_pr3_control_plane_bitwise_identical(self):
        """The per-flow control plane (``batched_control=False``, the PR-3
        benchmark baseline) stays equivalent to the batched default."""
        batched = run_sim(vectorized=True)
        legacy_cp = run_sim(vectorized=True, batched=False)
        assert_results_identical(batched, legacy_cp)


class TestScenarioEquivalence:
    """Mid-run reroutes, capacity events and refcounted link-down windows
    must stay bit-for-bit compatible (the ISSUE's hard requirement)."""

    @pytest.mark.parametrize(
        "name", ["single-link-cut", "cascading-failure", "diurnal-surge", "rolling-maintenance"]
    )
    def test_canned_scenarios(self, name):
        scalar = run_sim(vectorized=False, scenario=early_scenario(name))
        vector = run_sim(vectorized=True, scenario=early_scenario(name))
        assert any(
            o.applied_s is not None for o in scalar.scenario_metrics.outcomes
        ), f"{name}: no event fired; the equivalence case is vacuous"
        assert_results_identical(scalar, vector)
        assert_scenario_metrics_identical(scalar, vector)

    @pytest.mark.parametrize("name", ["single-link-cut", "diurnal-surge"])
    def test_canned_scenarios_legacy_core(self, name):
        legacy = run_sim(vectorized=True, soa=False, scenario=early_scenario(name))
        soa = run_sim(vectorized=True, soa=True, scenario=early_scenario(name))
        assert_results_identical(legacy, soa)
        assert_scenario_metrics_identical(legacy, soa)

    @pytest.mark.parametrize(
        "name", ["single-link-cut", "cascading-failure", "diurnal-surge", "rolling-maintenance"]
    )
    def test_canned_scenarios_pr3_control_plane(self, name):
        """Batched arrivals + telemetry columns under every canned scenario
        (surges, drains, maintenance windows, exact arrival/event time
        ties) match the per-flow PR-3 control plane bit for bit."""
        batched = run_sim(vectorized=True, scenario=early_scenario(name))
        legacy_cp = run_sim(vectorized=True, batched=False, scenario=early_scenario(name))
        assert_results_identical(batched, legacy_cp)
        assert_scenario_metrics_identical(batched, legacy_cp)

    @pytest.mark.parametrize("cc", ["hpcc", "timely", "dctcp", "ideal"])
    def test_single_link_cut_per_cc(self, cc):
        """Scenario disruption under every migrated CC class: the in-place
        kernels stay bit-identical through mid-run reroutes."""
        scalar = run_sim(
            vectorized=False, cc=cc, num_flows=100,
            scenario=early_scenario("single-link-cut"),
        )
        soa = run_sim(
            vectorized=True, cc=cc, num_flows=100,
            scenario=early_scenario("single-link-cut"),
        )
        assert_results_identical(scalar, soa)
        assert_scenario_metrics_identical(scalar, soa)

    def test_single_link_cut_mixed_fleet(self):
        """Scenario disruption on a heterogeneous fleet (grouped kernels)."""
        scalar = run_sim(
            vectorized=False, cc=MIX, num_flows=100,
            scenario=early_scenario("single-link-cut"),
        )
        soa = run_sim(
            vectorized=True, cc=MIX, num_flows=100,
            scenario=early_scenario("single-link-cut"),
        )
        assert_results_identical(scalar, soa)
        assert_scenario_metrics_identical(scalar, soa)

    def test_overlapping_faults_and_capacity_events(self):
        # an explicit cut overlapping a brownout plus a surge: exercises
        # refcounted down-causes, capacity_factor changes and injected
        # arrivals on the vectorized incidence structure
        scenario = Scenario(
            name="composite",
            events=(
                CapacityChange(0.2, "DC1", "DC7", factor=0.5),
                LinkDown(0.3, "DC1", "DC7"),
                TrafficSurge(
                    0.4,
                    pairs=(("DC1", "DC8"),),
                    load=0.3,
                    num_flows=60,
                    workload="websearch",
                    seed=99,
                ),
                LinkUp(0.9, "DC1", "DC7"),
                CapacityChange(1.1, "DC1", "DC7", factor=1.0),
            ),
            stranded_timeout_s=0.4,
        )
        scalar = run_sim(vectorized=False, scenario=scenario)
        vector = run_sim(vectorized=True, scenario=scenario)
        assert_results_identical(scalar, vector)
        assert_scenario_metrics_identical(scalar, vector)


class TestRttShorteningRerouteEquivalence:
    """Several feedback lanes coming due in one step — the repeated-delivery
    slow path (``fluid._deliver_repeated``).

    Flows hashed onto the 500 ms DC1–DC2 route lose it mid-run and re-route
    onto paths with RTTs shorter by far more than an update step, so the
    signals already in flight (stamped with the old RTT) land in the same
    ticks as freshly enqueued ones.  Delivery order must match the scalar
    core's per-flow deliver-time order exactly, for every CC class and for
    a mixed fleet; the test also asserts the slow path actually ran."""

    NUM_FLOWS = 80
    WINDOW_S = 1.3

    def run_reroute(self, vectorized, cc, instrumentation=False):
        topology = build_testbed8(capacity_scale=0.1)
        paths = _testbed8_pathset(topology)
        hosts = topology.host_groups["DC1"].count
        demands = [
            FlowDemand(
                flow_id=i,
                src_dc="DC1" if i % 2 == 0 else "DC8",
                dst_dc="DC8" if i % 2 == 0 else "DC1",
                src_host=i % hosts,
                dst_host=(i * 7 + 1) % hosts,
                # huge flows outlive the old-RTT feedback horizon under
                # every CC (the collision needs the rerouted flows alive
                # when their stale signals land); small ones yield records
                size_bytes=120_000 if i % 5 == 0 else 2_000_000_000,
                arrival_s=0.001 * (i % 10) + 1e-4,
            )
            for i in range(self.NUM_FLOWS)
        ]
        scenario = Scenario(
            name="rtt-shortening",
            events=(LinkDown(0.05, "DC1", "DC2"), LinkUp(1.2, "DC1", "DC2")),
        )
        config = SimulationConfig(
            seed=11,
            vectorized=vectorized,
            max_sim_time_s=self.WINDOW_S,
            drain_timeout_s=self.WINDOW_S,
            instrumentation=instrumentation,
        )
        network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
        factory = (
            make_mixed_cc_factory(cc, seed=11)
            if isinstance(cc, tuple)
            else make_cc_factory(cc)
        )
        sim = FluidSimulation(network, demands, factory, config, scenario=scenario)
        return sim.run()

    @pytest.mark.parametrize(
        "cc", ["dcqcn", "hpcc", "timely", "dctcp", "ideal", MIX],
        ids=["dcqcn", "hpcc", "timely", "dctcp", "ideal", "mixed"],
    )
    def test_repeated_delivery_matches_scalar(self, cc):
        # the SoA run carries the observability plane, which both proves
        # the slow path ran (slow_path.deliver_repeated) and — compared
        # against the uninstrumented scalar run — that instrumentation
        # leaves the numerics untouched
        soa = self.run_reroute(vectorized=True, cc=cc, instrumentation=True)
        repeated = soa.stats["counters"].get("slow_path.deliver_repeated", 0)
        assert repeated > 0, "the repeated-delivery path never ran"
        assert soa.scenario_metrics.total_rerouted > 0
        assert soa.stats["counters"]["slow_path.reroutes"] > 0
        assert len(soa.records) > 0
        scalar = self.run_reroute(vectorized=False, cc=cc)
        assert scalar.stats is None
        assert_results_identical(scalar, soa)
        assert_scenario_metrics_identical(scalar, soa)


class TestHighConcurrencyEquivalence:
    """≥1500 concurrent flows with mid-run reroutes: the SoA acceptance
    case.  Sustained concurrency at this scale plus a link-down/link-up
    window exercises FlowTable slot churn, the slot-keyed feedback delay
    line, the epoch guard and the flatnonzero-based re-validation sweep —
    and the result must still be bit-for-bit identical across all three
    update cores."""

    NUM_FLOWS = 1500
    WINDOW_S = 0.08

    def run_high_concurrency(self, vectorized, soa=True):
        topology = build_testbed8(capacity_scale=0.1)
        paths = _testbed8_pathset(topology)
        hosts = topology.host_groups["DC1"].count
        demands = [
            FlowDemand(
                flow_id=i,
                src_dc="DC1" if i % 2 == 0 else "DC8",
                dst_dc="DC8" if i % 2 == 0 else "DC1",
                src_host=i % hosts,
                dst_host=(i * 7 + 1) % hosts,
                # mixed sizes so a share of flows completes inside the
                # window (slot reuse) while most sustain the concurrency
                size_bytes=60_000 if i % 5 == 0 else 20_000_000,
                arrival_s=0.001 * (i % 10) + 1e-4,
            )
            for i in range(self.NUM_FLOWS)
        ]
        scenario = Scenario(
            name="hc-reroute",
            events=(
                LinkDown(0.02, "DC1", "DC7"),
                LinkUp(0.055, "DC1", "DC7"),
            ),
        )
        config = SimulationConfig(
            seed=11,
            vectorized=vectorized,
            soa=soa,
            max_sim_time_s=self.WINDOW_S,
            drain_timeout_s=self.WINDOW_S,
        )
        network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
        sim = FluidSimulation(
            network, demands, make_cc_factory("dcqcn"), config, scenario=scenario
        )
        return sim.run()

    def test_all_three_cores_bitwise_identical(self):
        scalar = self.run_high_concurrency(vectorized=False)
        legacy = self.run_high_concurrency(vectorized=True, soa=False)
        soa = self.run_high_concurrency(vectorized=True, soa=True)
        # the run is cut at the window, so some flows must still be live
        # (sustained concurrency) and some must have finished (slot churn)
        assert soa.unfinished_flows > 1000
        assert len(soa.records) > 100
        assert soa.scenario_metrics.total_disrupted > 0
        assert (
            soa.scenario_metrics.total_rerouted
            + soa.scenario_metrics.total_restored
            > 0
        )
        assert_results_identical(scalar, legacy)
        assert_results_identical(scalar, soa)
        assert_scenario_metrics_identical(scalar, soa)
        assert_scenario_metrics_identical(legacy, soa)


class TestCorrelatedScenarioEquivalence:
    """The correlated-failure families (SRLG conduit cuts, regional power
    events, compiled maintenance calendars) on every core: per-link
    staggered repairs, blackout/degraded partitions and calendar-expanded
    timelines must not disturb cross-core bit-identity."""

    @pytest.mark.parametrize(
        "name", ["conduit-cut", "regional-power-outage", "maintenance-calendar"]
    )
    def test_all_cores_bitwise_identical(self, name):
        scenario = early_scenario(name)
        scalar = run_sim(vectorized=False, scenario=scenario)
        fired = [o for o in scalar.scenario_metrics.outcomes if o.applied_s is not None]
        assert fired, f"{name}: no event fired; the equivalence case is vacuous"
        assert any(o.links_affected > 0 for o in fired)
        for kwargs in (
            dict(vectorized=True),                  # cc_blocks (default SoA)
            dict(vectorized=True, soa=False),       # legacy object core
            dict(vectorized=True, cc_blocks=False), # object-gather dispatch
            dict(vectorized=True, batched=False),   # per-flow control plane
        ):
            other = run_sim(scenario=scenario, **kwargs)
            assert_results_identical(scalar, other)
            assert_scenario_metrics_identical(scalar, other)

    def test_conduit_cut_mixed_fleet(self):
        scenario = early_scenario("conduit-cut")
        scalar = run_sim(vectorized=False, cc=MIX, scenario=scenario)
        soa = run_sim(vectorized=True, cc=MIX, scenario=scenario)
        assert_results_identical(scalar, soa)
        assert_scenario_metrics_identical(scalar, soa)

    def test_empty_timeline_matches_no_scenario(self):
        """A scenario with no events (and no recurring expansion) leaves
        the run bit-identical to a scenario-free one: compiled_events() is
        the identity for non-calendar timelines."""
        empty = Scenario(name="empty")
        with_scenario = run_sim(vectorized=True, scenario=empty)
        without = run_sim(vectorized=True, scenario=None)
        assert_results_identical(with_scenario, without)
