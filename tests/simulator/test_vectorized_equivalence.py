"""Scalar-vs-vectorized equivalence: the core guarantee of the numpy paths.

Both vectorized cores — the structure-of-arrays FlowTable core
(``SimulationConfig(vectorized=True)``, the default) and the object-resident
legacy core (``soa=False``, the PR-2 layout kept as the benchmark baseline)
— must produce *bit-for-bit* identical results to the pure-Python scalar
update loop on the same seed: every FCT record field, every link statistic,
every scenario recovery metric.  These tests run the paths on identical
inputs — static runs, scenario runs exercising mid-run reroutes, capacity
changes, refcounted link-down windows, surges and stranded-flow failures,
and a high-concurrency (≥1500 flows) run with mid-run reroutes that forces
FlowTable slot churn — and compare everything the simulation reports.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.congestion_control import make_cc_factory
from repro.routing import make_router_factory
from repro.scenarios import get_scenario
from repro.scenarios.events import CapacityChange, LinkDown, LinkUp, Scenario, TrafficSurge
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.simulator.flow import FlowDemand
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator


def run_sim(
    vectorized,
    scenario=None,
    cc="dcqcn",
    num_flows=160,
    trace_links=False,
    soa=True,
    batched=True,
):
    topology = build_testbed8(capacity_scale=0.1)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(
        seed=7, vectorized=vectorized, soa=soa, batched_control=batched
    )
    traffic = TrafficConfig(
        workload="websearch",
        load=0.35,
        num_flows=num_flows,
        pairs=[("DC1", "DC8"), ("DC8", "DC1")],
        seed=7,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(
        network,
        demands,
        make_cc_factory(cc),
        config,
        trace_links=trace_links,
        scenario=scenario,
    )
    return sim.run()


def assert_records_identical(scalar, vectorized):
    assert len(scalar.records) == len(vectorized.records)
    for a, b in zip(scalar.records, vectorized.records):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def assert_results_identical(scalar, vectorized):
    assert_records_identical(scalar, vectorized)
    assert scalar.duration_s == vectorized.duration_s
    assert scalar.unfinished_flows == vectorized.unfinished_flows
    assert scalar.routing_decisions == vectorized.routing_decisions
    assert scalar.monitor_samples == vectorized.monitor_samples
    assert len(scalar.link_stats) == len(vectorized.link_stats)
    for a, b in zip(scalar.link_stats, vectorized.link_stats):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
    assert len(scalar.failed_flows) == len(vectorized.failed_flows)
    for a, b in zip(scalar.failed_flows, vectorized.failed_flows):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def assert_scenario_metrics_identical(scalar, vectorized):
    a, b = scalar.scenario_metrics, vectorized.scenario_metrics
    assert (a is None) == (b is None)
    if a is None:
        return
    assert a.scenario_name == b.scenario_name
    assert len(a.outcomes) == len(b.outcomes)
    for oa, ob in zip(a.outcomes, b.outcomes):
        assert dataclasses.asdict(oa) == dataclasses.asdict(ob)


class TestStaticEquivalence:
    def test_static_run_bitwise_identical(self):
        scalar = run_sim(vectorized=False)
        vector = run_sim(vectorized=True)
        assert_results_identical(scalar, vector)

    def test_legacy_core_bitwise_identical(self):
        """The object-resident PR-2 core (``soa=False``) stays equivalent
        to both the scalar spec and the SoA core."""
        scalar = run_sim(vectorized=False)
        legacy = run_sim(vectorized=True, soa=False)
        soa = run_sim(vectorized=True, soa=True)
        assert_results_identical(scalar, legacy)
        assert_results_identical(legacy, soa)

    @pytest.mark.parametrize("cc", ["dcqcn", "hpcc", "timely", "dctcp"])
    def test_every_congestion_control(self, cc):
        scalar = run_sim(vectorized=False, cc=cc, num_flows=80)
        vector = run_sim(vectorized=True, cc=cc, num_flows=80)
        assert_results_identical(scalar, vector)

    def test_link_trace_identical(self):
        scalar = run_sim(vectorized=False, num_flows=60, trace_links=True)
        vector = run_sim(vectorized=True, num_flows=60, trace_links=True)
        assert scalar.trace.keys() == vector.trace.keys()
        for key in scalar.trace.keys():
            sa, sb = scalar.trace.series(key), vector.trace.series(key)
            assert len(sa) == len(sb)
            for pa, pb in zip(sa, sb):
                assert dataclasses.asdict(pa) == dataclasses.asdict(pb)

    def test_pr3_control_plane_bitwise_identical(self):
        """The per-flow control plane (``batched_control=False``, the PR-3
        benchmark baseline) stays equivalent to the batched default."""
        batched = run_sim(vectorized=True)
        legacy_cp = run_sim(vectorized=True, batched=False)
        assert_results_identical(batched, legacy_cp)


class TestScenarioEquivalence:
    """Mid-run reroutes, capacity events and refcounted link-down windows
    must stay bit-for-bit compatible (the ISSUE's hard requirement)."""

    @pytest.mark.parametrize(
        "name", ["single-link-cut", "cascading-failure", "diurnal-surge", "rolling-maintenance"]
    )
    def test_canned_scenarios(self, name):
        scalar = run_sim(vectorized=False, scenario=get_scenario(name))
        vector = run_sim(vectorized=True, scenario=get_scenario(name))
        assert_results_identical(scalar, vector)
        assert_scenario_metrics_identical(scalar, vector)

    @pytest.mark.parametrize("name", ["single-link-cut", "diurnal-surge"])
    def test_canned_scenarios_legacy_core(self, name):
        legacy = run_sim(vectorized=True, soa=False, scenario=get_scenario(name))
        soa = run_sim(vectorized=True, soa=True, scenario=get_scenario(name))
        assert_results_identical(legacy, soa)
        assert_scenario_metrics_identical(legacy, soa)

    @pytest.mark.parametrize(
        "name", ["single-link-cut", "cascading-failure", "diurnal-surge", "rolling-maintenance"]
    )
    def test_canned_scenarios_pr3_control_plane(self, name):
        """Batched arrivals + telemetry columns under every canned scenario
        (surges, drains, maintenance windows, exact arrival/event time
        ties) match the per-flow PR-3 control plane bit for bit."""
        batched = run_sim(vectorized=True, scenario=get_scenario(name))
        legacy_cp = run_sim(vectorized=True, batched=False, scenario=get_scenario(name))
        assert_results_identical(batched, legacy_cp)
        assert_scenario_metrics_identical(batched, legacy_cp)

    def test_overlapping_faults_and_capacity_events(self):
        # an explicit cut overlapping a brownout plus a surge: exercises
        # refcounted down-causes, capacity_factor changes and injected
        # arrivals on the vectorized incidence structure
        scenario = Scenario(
            name="composite",
            events=(
                CapacityChange(0.2, "DC1", "DC7", factor=0.5),
                LinkDown(0.3, "DC1", "DC7"),
                TrafficSurge(
                    0.4,
                    pairs=(("DC1", "DC8"),),
                    load=0.3,
                    num_flows=60,
                    workload="websearch",
                    seed=99,
                ),
                LinkUp(0.9, "DC1", "DC7"),
                CapacityChange(1.1, "DC1", "DC7", factor=1.0),
            ),
            stranded_timeout_s=0.4,
        )
        scalar = run_sim(vectorized=False, scenario=scenario)
        vector = run_sim(vectorized=True, scenario=scenario)
        assert_results_identical(scalar, vector)
        assert_scenario_metrics_identical(scalar, vector)


class TestHighConcurrencyEquivalence:
    """≥1500 concurrent flows with mid-run reroutes: the SoA acceptance
    case.  Sustained concurrency at this scale plus a link-down/link-up
    window exercises FlowTable slot churn, the slot-keyed feedback delay
    line, the epoch guard and the flatnonzero-based re-validation sweep —
    and the result must still be bit-for-bit identical across all three
    update cores."""

    NUM_FLOWS = 1500
    WINDOW_S = 0.08

    def run_high_concurrency(self, vectorized, soa=True):
        topology = build_testbed8(capacity_scale=0.1)
        paths = _testbed8_pathset(topology)
        hosts = topology.host_groups["DC1"].count
        demands = [
            FlowDemand(
                flow_id=i,
                src_dc="DC1" if i % 2 == 0 else "DC8",
                dst_dc="DC8" if i % 2 == 0 else "DC1",
                src_host=i % hosts,
                dst_host=(i * 7 + 1) % hosts,
                # mixed sizes so a share of flows completes inside the
                # window (slot reuse) while most sustain the concurrency
                size_bytes=60_000 if i % 5 == 0 else 20_000_000,
                arrival_s=0.001 * (i % 10) + 1e-4,
            )
            for i in range(self.NUM_FLOWS)
        ]
        scenario = Scenario(
            name="hc-reroute",
            events=(
                LinkDown(0.02, "DC1", "DC7"),
                LinkUp(0.055, "DC1", "DC7"),
            ),
        )
        config = SimulationConfig(
            seed=11,
            vectorized=vectorized,
            soa=soa,
            max_sim_time_s=self.WINDOW_S,
            drain_timeout_s=self.WINDOW_S,
        )
        network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
        sim = FluidSimulation(
            network, demands, make_cc_factory("dcqcn"), config, scenario=scenario
        )
        return sim.run()

    def test_all_three_cores_bitwise_identical(self):
        scalar = self.run_high_concurrency(vectorized=False)
        legacy = self.run_high_concurrency(vectorized=True, soa=False)
        soa = self.run_high_concurrency(vectorized=True, soa=True)
        # the run is cut at the window, so some flows must still be live
        # (sustained concurrency) and some must have finished (slot churn)
        assert soa.unfinished_flows > 1000
        assert len(soa.records) > 100
        assert soa.scenario_metrics.total_disrupted > 0
        assert (
            soa.scenario_metrics.total_rerouted
            + soa.scenario_metrics.total_restored
            > 0
        )
        assert_results_identical(scalar, legacy)
        assert_results_identical(scalar, soa)
        assert_scenario_metrics_identical(scalar, soa)
        assert_scenario_metrics_identical(legacy, soa)
