"""Scalar-vs-vectorized equivalence: the core guarantee of the numpy path.

``SimulationConfig(vectorized=True)`` (the default) must produce *bit-for-
bit* identical results to the pure-Python scalar update loop on the same
seed: every FCT record field, every link statistic, every scenario recovery
metric.  These tests run both paths on identical inputs — static runs and
scenario runs exercising mid-run reroutes, capacity changes, refcounted
link-down windows, surges and stranded-flow failures — and compare
everything the simulation reports.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.congestion_control import make_cc_factory
from repro.routing import make_router_factory
from repro.scenarios import get_scenario
from repro.scenarios.events import CapacityChange, LinkDown, LinkUp, Scenario, TrafficSurge
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator


def run_sim(vectorized, scenario=None, cc="dcqcn", num_flows=160, trace_links=False):
    topology = build_testbed8(capacity_scale=0.1)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(seed=7, vectorized=vectorized)
    traffic = TrafficConfig(
        workload="websearch",
        load=0.35,
        num_flows=num_flows,
        pairs=[("DC1", "DC8"), ("DC8", "DC1")],
        seed=7,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(
        network,
        demands,
        make_cc_factory(cc),
        config,
        trace_links=trace_links,
        scenario=scenario,
    )
    return sim.run()


def assert_records_identical(scalar, vectorized):
    assert len(scalar.records) == len(vectorized.records)
    for a, b in zip(scalar.records, vectorized.records):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def assert_results_identical(scalar, vectorized):
    assert_records_identical(scalar, vectorized)
    assert scalar.duration_s == vectorized.duration_s
    assert scalar.unfinished_flows == vectorized.unfinished_flows
    assert scalar.routing_decisions == vectorized.routing_decisions
    assert scalar.monitor_samples == vectorized.monitor_samples
    assert len(scalar.link_stats) == len(vectorized.link_stats)
    for a, b in zip(scalar.link_stats, vectorized.link_stats):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)
    assert len(scalar.failed_flows) == len(vectorized.failed_flows)
    for a, b in zip(scalar.failed_flows, vectorized.failed_flows):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def assert_scenario_metrics_identical(scalar, vectorized):
    a, b = scalar.scenario_metrics, vectorized.scenario_metrics
    assert (a is None) == (b is None)
    if a is None:
        return
    assert a.scenario_name == b.scenario_name
    assert len(a.outcomes) == len(b.outcomes)
    for oa, ob in zip(a.outcomes, b.outcomes):
        assert dataclasses.asdict(oa) == dataclasses.asdict(ob)


class TestStaticEquivalence:
    def test_static_run_bitwise_identical(self):
        scalar = run_sim(vectorized=False)
        vector = run_sim(vectorized=True)
        assert_results_identical(scalar, vector)

    @pytest.mark.parametrize("cc", ["dcqcn", "hpcc", "timely", "dctcp"])
    def test_every_congestion_control(self, cc):
        scalar = run_sim(vectorized=False, cc=cc, num_flows=80)
        vector = run_sim(vectorized=True, cc=cc, num_flows=80)
        assert_results_identical(scalar, vector)

    def test_link_trace_identical(self):
        scalar = run_sim(vectorized=False, num_flows=60, trace_links=True)
        vector = run_sim(vectorized=True, num_flows=60, trace_links=True)
        assert scalar.trace.keys() == vector.trace.keys()
        for key in scalar.trace.keys():
            sa, sb = scalar.trace.series(key), vector.trace.series(key)
            assert len(sa) == len(sb)
            for pa, pb in zip(sa, sb):
                assert dataclasses.asdict(pa) == dataclasses.asdict(pb)


class TestScenarioEquivalence:
    """Mid-run reroutes, capacity events and refcounted link-down windows
    must stay bit-for-bit compatible (the ISSUE's hard requirement)."""

    @pytest.mark.parametrize(
        "name", ["single-link-cut", "cascading-failure", "diurnal-surge", "rolling-maintenance"]
    )
    def test_canned_scenarios(self, name):
        scalar = run_sim(vectorized=False, scenario=get_scenario(name))
        vector = run_sim(vectorized=True, scenario=get_scenario(name))
        assert_results_identical(scalar, vector)
        assert_scenario_metrics_identical(scalar, vector)

    def test_overlapping_faults_and_capacity_events(self):
        # an explicit cut overlapping a brownout plus a surge: exercises
        # refcounted down-causes, capacity_factor changes and injected
        # arrivals on the vectorized incidence structure
        scenario = Scenario(
            name="composite",
            events=(
                CapacityChange(0.2, "DC1", "DC7", factor=0.5),
                LinkDown(0.3, "DC1", "DC7"),
                TrafficSurge(
                    0.4,
                    pairs=(("DC1", "DC8"),),
                    load=0.3,
                    num_flows=60,
                    workload="websearch",
                    seed=99,
                ),
                LinkUp(0.9, "DC1", "DC7"),
                CapacityChange(1.1, "DC1", "DC7", factor=1.0),
            ),
            stranded_timeout_s=0.4,
        )
        scalar = run_sim(vectorized=False, scenario=scenario)
        vector = run_sim(vectorized=True, scenario=scenario)
        assert_results_identical(scalar, vector)
        assert_scenario_metrics_identical(scalar, vector)
