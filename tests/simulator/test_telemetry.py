"""Tests for the array-resident telemetry plane.

The plane's contract: its columns hold exactly the values the object-path
sampler reads, its :class:`PortSample` shims are field-for-field identical
to :meth:`DCISwitch.sample_ports` output, oblivious routers are skipped,
and telemetry-hungry routers end up in the same state whether fed per
sample or per columnar sweep.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import lcmp_router_factory
from repro.routing import make_router_factory
from repro.routing.ecmp import ECMPRouter
from repro.routing.redte import RedTERouter
from repro.simulator import (
    FluidSimulation,
    RuntimeNetwork,
    SimulationConfig,
    TelemetryPlane,
)
from repro.simulator.flow import FlowDemand
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset


@pytest.fixture
def network(tiny_topology, tiny_pathset):
    return RuntimeNetwork(
        tiny_topology, tiny_pathset, make_router_factory("ecmp"), SimulationConfig()
    )


class TestRegistry:
    def test_ports_grouped_per_switch(self, network):
        plane = TelemetryPlane(network)
        assert plane.num_ports == len(network.inter_dc_links)
        assert set(plane.switches) == set(network.switches)
        for dc in plane.switches:
            view = plane.view(dc)
            assert set(view.port_dcs) == set(network.switch(dc).ports)

    def test_oblivious_routers_not_consumers(self, network):
        plane = TelemetryPlane(network)
        assert plane._consumers == []
        assert not ECMPRouter().consumes_telemetry()
        assert RedTERouter().consumes_telemetry()

    def test_rejects_bad_alpha(self, network):
        with pytest.raises(ValueError, match="ewma_alpha"):
            TelemetryPlane(network, ewma_alpha=0.0)


class TestSweep:
    def test_columns_match_object_samples(self, network):
        link = network.link("A", "B")
        link.queue_bytes = 123_456.0
        link.carried_bytes = 42.0
        plane = TelemetryPlane(network)
        plane.sweep(now=0.001)
        for dc in plane.switches:
            view = plane.view(dc)
            samples = network.switch(dc).sample_ports(now=0.001)
            for i, sample in enumerate(samples):
                assert view.queue_bytes[i] == sample.queue_bytes
                assert view.carried_bytes[i] == sample.carried_bytes
                assert view.cap_bps[i] == sample.cap_bps
                assert bool(view.up[i]) == sample.up
                assert view.buffer_bytes[i] == sample.buffer_bytes

    def test_shim_samples_identical_to_object_path(self, network):
        network.link("A", "C").queue_bytes = 77_000.0
        plane = TelemetryPlane(network)
        plane.sweep(now=0.002)
        for dc in plane.switches:
            shim = plane.view(dc).build_samples(now=0.002)
            direct = network.switch(dc).sample_ports(now=0.002)
            assert [dataclasses.asdict(s) for s in shim] == [
                dataclasses.asdict(s) for s in direct
            ]

    def test_utilization_and_ewma_columns(self, network):
        plane = TelemetryPlane(network, ewma_alpha=0.5)
        link = network.link("A", "B")
        plane.sweep(now=0.0)
        assert plane.utilization.max() == 0.0  # first sweep: no interval yet
        link.queue_bytes = 1000.0
        link.carried_bytes = 12_500.0  # 100 kbit over 1 ms
        plane.sweep(now=0.001)
        view = plane.view("A")
        i = view.port_dcs.index("B")
        expected_util = (12_500.0 * 8.0) / (link.cap_bps * 0.001)
        assert view.utilization[i] == pytest.approx(expected_util)
        assert view.queue_ewma[i] == pytest.approx(0.5 * 1000.0)  # EWMA from 0
        plane.sweep(now=0.002)
        assert plane.view("A").queue_ewma[i] == pytest.approx(750.0)
        assert plane.sweeps == 3

    def test_liveness_column_tracks_failures(self, network):
        plane = TelemetryPlane(network)
        plane.sweep(now=0.0)
        network.fail_link("A", "B")
        plane.sweep(now=0.001)
        view = plane.view("A")
        assert not view.up[view.port_dcs.index("B")]

    def test_columns_are_read_only(self, network):
        """Views window the live plane arrays; an in-place write by a
        router must raise instead of silently corrupting shared state."""
        plane = TelemetryPlane(network)
        plane.sweep(now=0.001)
        view = plane.view("A")
        with pytest.raises(ValueError):
            view.queue_bytes[:] = 0.0
        with pytest.raises(ValueError):
            view.queue_ewma[0] = 1.0


class TestRouterStateEquivalence:
    """Columnar delivery must leave routers in exactly the per-sample state."""

    @pytest.mark.parametrize("router", ["redte", "lcmp"])
    def test_sweep_vs_samples(self, router, tiny_topology, tiny_pathset):
        def build(use_plane):
            if router == "lcmp":
                factory = lcmp_router_factory(tiny_topology, tiny_pathset)
            else:
                factory = make_router_factory(router)
            network = RuntimeNetwork(
                tiny_topology, tiny_pathset, factory, SimulationConfig()
            )
            network.link("A", "B").queue_bytes = 300_000.0
            network.link("A", "C").queue_bytes = 10_000.0
            if use_plane:
                plane = TelemetryPlane(network)
                for step in range(5):
                    network.link("A", "B").queue_bytes += 50_000.0
                    plane.sweep(now=0.001 * (step + 1))
                    plane.feed_routers(now=0.001 * (step + 1))
            else:
                for step in range(5):
                    network.link("A", "B").queue_bytes += 50_000.0
                    network.sample_all_ports(now=0.001 * (step + 1))
            return network.switch("A").router

        plane_router = build(use_plane=True)
        sample_router = build(use_plane=False)
        candidates = tiny_pathset.candidates("A", "B")
        for flow_id in range(40):
            demand = FlowDemand(flow_id, "A", "B", 0, 1, 50_000, 0.01)
            a = plane_router.select("B", candidates, demand, 0.01)
            b = sample_router.select("B", candidates, demand, 0.01)
            assert a.dcs == b.dcs
        if router == "redte":
            assert plane_router._weights == sample_router._weights
            assert plane_router._carried == sample_router._carried
        else:
            for port in sample_router.estimator.ports():
                a_state = plane_router.estimator.port_state(port)
                b_state = sample_router.estimator.port_state(port)
                assert dataclasses.asdict(a_state) == dataclasses.asdict(b_state)


class TestEndToEndTraceEquivalence:
    """Telemetry traces must stay bit-identical across all control planes
    (the monitored half of the ISSUE's equivalence criterion; the
    three-core scenario equivalence lives in
    test_vectorized_equivalence.py)."""

    def run(self, batched, vectorized=True, soa=True):
        from repro.congestion_control import make_cc_factory
        from repro.workloads import TrafficConfig, TrafficGenerator

        topology = build_testbed8(capacity_scale=0.1)
        paths = _testbed8_pathset(topology)
        config = SimulationConfig(
            seed=3, vectorized=vectorized, soa=soa, batched_control=batched
        )
        traffic = TrafficConfig(
            workload="websearch",
            load=0.3,
            num_flows=80,
            pairs=[("DC1", "DC8")],
            seed=3,
        )
        demands = TrafficGenerator(topology, paths, traffic).generate()
        network = RuntimeNetwork(
            topology, paths, lcmp_router_factory(topology, paths), config
        )
        sim = FluidSimulation(
            network, demands, make_cc_factory("dcqcn"), config, trace_links=True
        )
        return sim.run()

    def test_trace_identical_across_control_planes(self):
        batched = self.run(batched=True)
        legacy = self.run(batched=False)
        scalar = self.run(batched=True, vectorized=False)  # scalar ignores flag
        assert batched.trace.keys() == legacy.trace.keys() == scalar.trace.keys()
        for key in batched.trace.keys():
            sa = batched.trace.series(key)
            sb = legacy.trace.series(key)
            sc = scalar.trace.series(key)
            assert len(sa) == len(sb) == len(sc)
            for pa, pb, pc in zip(sa, sb, sc):
                assert dataclasses.asdict(pa) == dataclasses.asdict(pb)
                assert dataclasses.asdict(pa) == dataclasses.asdict(pc)
        assert [r.fct_s for r in batched.records] == [r.fct_s for r in legacy.records]
        assert [r.fct_s for r in batched.records] == [r.fct_s for r in scalar.records]
