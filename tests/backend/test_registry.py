"""Backend registry and ``SimulationConfig.backend`` plumbing tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    available_backends,
    get_backend,
    register_backend,
    torch_available,
)
from repro.backend.core import _FACTORIES
from repro.simulator import SimulationConfig


class TestRegistry:
    def test_numpy_backends_always_available(self):
        names = available_backends()
        assert "numpy" in names
        assert "numpy_fused" in names

    def test_torch_listed_only_when_importable(self):
        assert ("torch" in available_backends()) == torch_available()

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_backend("cupy_nonexistent")

    def test_torch_factory_registered_even_without_torch(self):
        # the registry entry exists so the config error message names it;
        # construction raises ImportError when torch is absent
        assert "torch" in _FACTORIES
        if not torch_available():
            with pytest.raises(ImportError):
                get_backend("torch")

    def test_register_custom_backend(self):
        class Custom(ArrayBackend):
            name = "custom_test"

        register_backend("custom_test", Custom)
        try:
            assert get_backend("custom_test").name == "custom_test"
        finally:
            from repro.backend.core import _INSTANCES

            _FACTORIES.pop("custom_test", None)
            _INSTANCES.pop("custom_test", None)

    def test_backend_attributes(self):
        numpy_bk = get_backend("numpy")
        fused_bk = get_backend("numpy_fused")
        assert numpy_bk.name == "numpy"
        assert fused_bk.name == "numpy_fused"
        assert numpy_bk.xp is np
        assert not numpy_bk.is_device
        assert not fused_bk.is_device


class TestConfigPlumbing:
    def test_default_backend_is_numpy(self):
        config = SimulationConfig()
        config.validate()
        assert config.backend == "numpy"

    def test_fused_backend_accepted(self):
        SimulationConfig(backend="numpy_fused").validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            SimulationConfig(backend="jax").validate()

    def test_scalar_core_only_runs_reference_backend(self):
        with pytest.raises(ValueError, match="scalar core"):
            SimulationConfig(vectorized=False, backend="numpy_fused").validate()

    def test_experiment_spec_carries_backend(self):
        from repro.experiments.configs import ExperimentSpec
        from repro.experiments.runner import ExperimentRunner

        spec = ExperimentSpec(name="bk", backend="numpy_fused")
        config = ExperimentRunner().simulation_config_for(spec)
        assert config.backend == "numpy_fused"
