"""End-to-end backend equivalence: full simulations across array backends.

The fused numpy backend promises **bitwise** identity with the reference
on every observable output (FCT records, link stats, failures, scenario
outcomes); the torch backend (exercised only where torch is installed)
promises equivalence within the documented tolerance.  These runs cover
the paths the kernels rewired: offered-load scatter-add, queue/ECN
reductions, feedback delivery, batched routing and the CC slot kernels.
"""

from __future__ import annotations

import pytest

from repro.congestion_control import make_cc_factory, make_mixed_cc_factory
from repro.routing import make_router_factory
from repro.scenarios.invariants import (
    assert_results_close,
    assert_results_identical,
)
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator

CCS = ["dcqcn", "hpcc", "timely", "dctcp", "ideal"]
ROUTERS = ["ecmp", "wcmp", "ucmp", "redte"]


def run_with(backend: str, cc="dcqcn", router="ecmp", cc_mix=None, seed=7):
    """One small-but-complete testbed8 run on the given backend."""
    topology = build_testbed8(capacity_scale=0.1)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(seed=seed, backend=backend)
    traffic = TrafficConfig(
        workload="websearch", load=0.4, num_flows=300,
        pairs=[("DC1", "DC8"), ("DC2", "DC7")], seed=seed,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    network = RuntimeNetwork(topology, paths, make_router_factory(router), config)
    if cc_mix is not None:
        factory = make_mixed_cc_factory(cc_mix, seed=seed)
    else:
        factory = make_cc_factory(cc)
    sim = FluidSimulation(network, demands, factory, config)
    result = sim.run()
    assert result.records, "equivalence run completed no flows"
    return result


class TestFusedBitIdentity:
    @pytest.mark.parametrize("cc", CCS)
    def test_fused_identical_per_cc(self, cc):
        reference = run_with("numpy", cc=cc)
        fused = run_with("numpy_fused", cc=cc)
        assert_results_identical(reference, fused, label=f"numpy vs fused [{cc}]")

    @pytest.mark.parametrize("router", ROUTERS)
    def test_fused_identical_per_router(self, router):
        reference = run_with("numpy", router=router)
        fused = run_with("numpy_fused", router=router)
        assert_results_identical(
            reference, fused, label=f"numpy vs fused [{router}]"
        )

    def test_fused_identical_lcmp(self):
        from repro.core import lcmp_router_factory

        def run(backend):
            topology = build_testbed8(capacity_scale=0.1)
            paths = _testbed8_pathset(topology)
            config = SimulationConfig(seed=3, backend=backend)
            traffic = TrafficConfig(
                workload="websearch", load=0.4, num_flows=200,
                pairs=[("DC1", "DC8")], seed=3,
            )
            demands = TrafficGenerator(topology, paths, traffic).generate()
            factory = lcmp_router_factory(topology, paths)
            network = RuntimeNetwork(topology, paths, factory, config)
            sim = FluidSimulation(network, demands, make_cc_factory("dcqcn"), config)
            return sim.run()

        assert_results_identical(
            run("numpy"), run("numpy_fused"), label="numpy vs fused [lcmp]"
        )

    def test_fused_identical_mixed_cc_fleet(self):
        mix = (("dcqcn", 0.5), ("hpcc", 0.3), ("dctcp", 0.2))
        reference = run_with("numpy", cc_mix=mix)
        fused = run_with("numpy_fused", cc_mix=mix)
        assert_results_identical(reference, fused, label="numpy vs fused [mix]")

    def test_fused_identical_to_scalar_core(self):
        topology = build_testbed8(capacity_scale=0.1)
        paths = _testbed8_pathset(topology)
        traffic = TrafficConfig(
            workload="websearch", load=0.4, num_flows=120,
            pairs=[("DC1", "DC8")], seed=11,
        )
        demands = TrafficGenerator(topology, paths, traffic).generate()

        def run(config):
            network = RuntimeNetwork(
                topology, paths, make_router_factory("ecmp"), config
            )
            sim = FluidSimulation(
                network, list(demands), make_cc_factory("dcqcn"), config
            )
            return sim.run()

        scalar = run(SimulationConfig(seed=11, vectorized=False))
        fused = run(SimulationConfig(seed=11, backend="numpy_fused"))
        assert_results_identical(scalar, fused, label="scalar vs fused")


class TestTorchTolerance:
    def test_torch_within_tolerance(self):
        pytest.importorskip("torch")
        reference = run_with("numpy")
        torch_run = run_with("torch")
        assert_results_close(reference, torch_run, label="numpy vs torch")

    @pytest.mark.parametrize("cc", ["hpcc", "dctcp"])
    def test_torch_within_tolerance_per_cc(self, cc):
        pytest.importorskip("torch")
        reference = run_with("numpy", cc=cc)
        torch_run = run_with("torch", cc=cc)
        assert_results_close(reference, torch_run, label=f"numpy vs torch [{cc}]")
