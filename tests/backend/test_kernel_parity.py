"""Kernel-parity suite: every backend kernel vs a naive loop reference.

Each registered backend (``available_backends()`` — numpy and numpy_fused
always, torch when installed) is driven through every kernel of the
:class:`~repro.backend.ArrayBackend` contract and compared against a
hand-written per-element Python loop on the geometries that historically
break fused kernels:

* empty segments (length 0 → op identity),
* single-element segments,
* duplicate scatter indices (accumulation order),
* non-contiguous / permuted row subsets,
* uniform segment lengths (the fused backend's reshape fast path) and
  ragged mixes (its fallback path).

The numpy-family backends must match the loop reference **bitwise**; the
torch backend is allowed the documented tolerance on float kernels (see
DESIGN.md, "Array backends & kernels").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, get_backend

BACKENDS = available_backends()

#: bitwise-contract backends; torch gets the tolerance comparison
EXACT = {"numpy", "numpy_fused"}


def _assert_equal(name: str, got, want) -> None:
    got = np.asarray(got)
    want = np.asarray(want)
    assert got.shape == want.shape
    if name in EXACT:
        np.testing.assert_array_equal(got, want)
    else:
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)


# --------------------------------------------------------------------- #
# geometries
# --------------------------------------------------------------------- #
def csr_cases():
    """CSR (values, starts, lengths) geometries covering the edge shapes."""
    rng = np.random.default_rng(42)
    cases = {}

    # ragged: empty + single + long segments interleaved
    lengths = np.array([0, 1, 3, 0, 5, 1, 0], dtype=np.int64)
    starts = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    values = rng.normal(size=int(lengths.sum()))
    cases["ragged"] = (values, starts, lengths)

    # uniform length (fused reshape fast path), includes negatives/zeros
    lengths = np.full(6, 4, dtype=np.int64)
    starts = np.arange(6, dtype=np.int64) * 4
    values = rng.normal(size=24)
    values[3] = 0.0
    values[7] = -0.0
    cases["uniform"] = (values, starts, lengths)

    # single uniform column (L == 1)
    lengths = np.ones(5, dtype=np.int64)
    starts = np.arange(5, dtype=np.int64)
    cases["unit"] = (rng.normal(size=5), starts, lengths)

    # all-empty
    cases["empty"] = (
        np.empty(0),
        np.zeros(4, dtype=np.int64),
        np.zeros(4, dtype=np.int64),
    )

    # zero segments over a zero lane array
    cases["none"] = (
        np.empty(0),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
    )
    return cases


CSR_CASES = csr_cases()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return get_backend(request.param)


# --------------------------------------------------------------------- #
# scatter_add
# --------------------------------------------------------------------- #
class TestScatterAdd:
    def test_duplicate_indices_accumulate(self, backend):
        idx = np.array([0, 2, 2, 2, 5, 0], dtype=np.intp)
        values = np.array([1.5, 2.0, -0.5, 4.0, 1.0, 0.25])
        want = np.zeros(7)
        for i, v in zip(idx, values):
            want[i] += v
        _assert_equal(backend.name, backend.scatter_add(7, idx, values), want)

    def test_empty_input(self, backend):
        out = backend.scatter_add(
            4, np.empty(0, dtype=np.intp), np.empty(0)
        )
        _assert_equal(backend.name, out, np.zeros(4))

    def test_signed_zero_accumulation(self, backend):
        # 0.0 + (-0.0) must be +0.0, never a copied -0.0
        idx = np.array([1, 1], dtype=np.intp)
        values = np.array([0.0, -0.0])
        out = np.asarray(backend.scatter_add(3, idx, values))
        assert np.signbit(out[1]) == np.signbit(np.float64(0.0))

    def test_every_index_distinct(self, backend):
        rng = np.random.default_rng(3)
        values = rng.normal(size=8)
        idx = rng.permutation(8).astype(np.intp)
        want = np.zeros(8)
        want[idx] = values
        _assert_equal(backend.name, backend.scatter_add(8, idx, values), want)


# --------------------------------------------------------------------- #
# segment_reduce
# --------------------------------------------------------------------- #
class TestSegmentReduce:
    @pytest.mark.parametrize("case", list(CSR_CASES))
    @pytest.mark.parametrize("op", ["sum", "prod", "min", "max"])
    def test_matches_loop_reference(self, backend, case, op):
        values, starts, lengths = CSR_CASES[case]
        want = backend._segment_reduce_loop(values, starts, lengths, op)
        got = backend.segment_reduce(values, starts, lengths, op)
        _assert_equal(backend.name, got, want)

    def test_empty_segments_yield_identity(self, backend):
        values, starts, lengths = CSR_CASES["ragged"]
        empties = np.flatnonzero(lengths == 0)
        assert len(empties)
        for op, identity in [
            ("sum", 0.0),
            ("prod", 1.0),
            ("min", np.inf),
            ("max", -np.inf),
        ]:
            out = np.asarray(backend.segment_reduce(values, starts, lengths, op))
            np.testing.assert_array_equal(out[empties], identity)

    def test_non_contiguous_segment_subset(self, backend):
        # starts that skip lanes and revisit earlier ones (shared lanes)
        values = np.array([2.0, 3.0, 5.0, 7.0, 11.0, 13.0])
        starts = np.array([4, 0, 2, 0], dtype=np.int64)
        lengths = np.array([2, 1, 3, 4], dtype=np.int64)
        for op in ("sum", "prod", "min", "max"):
            want = backend._segment_reduce_loop(values, starts, lengths, op)
            got = backend.segment_reduce(values, starts, lengths, op)
            _assert_equal(backend.name, got, want)

    def test_unknown_op_raises(self, backend):
        values, starts, lengths = CSR_CASES["uniform"]
        with pytest.raises((KeyError, ValueError)):
            backend.segment_reduce(values, starts, lengths, "mean")


# --------------------------------------------------------------------- #
# segment_cumidx / expand_segments
# --------------------------------------------------------------------- #
class TestSegmentMaps:
    @pytest.mark.parametrize("case", list(CSR_CASES))
    def test_cumidx_matches_loop(self, backend, case):
        _, _, lengths = CSR_CASES[case]
        want = [i for i, n in enumerate(lengths) for _ in range(int(n))]
        got = np.asarray(backend.segment_cumidx(lengths))
        np.testing.assert_array_equal(got, np.asarray(want, dtype=np.intp))

    @pytest.mark.parametrize("case", list(CSR_CASES))
    def test_expand_matches_loop(self, backend, case):
        _, _, lengths = CSR_CASES[case]
        per_segment = np.arange(len(lengths), dtype=np.float64) * 1.5
        want = [per_segment[i] for i, n in enumerate(lengths) for _ in range(int(n))]
        got = backend.expand_segments(per_segment, lengths)
        _assert_equal(backend.name, got, np.asarray(want))


# --------------------------------------------------------------------- #
# path_signals
# --------------------------------------------------------------------- #
class TestPathSignals:
    @pytest.mark.parametrize("case", ["ragged", "uniform", "unit", "empty"])
    def test_matches_segment_reduce_pair(self, backend, case):
        values, starts, lengths = CSR_CASES[case]
        rng = np.random.default_rng(9)
        num_links = 11
        idx = rng.integers(0, num_links, size=len(values)).astype(np.intp)
        not_marked_links = rng.uniform(0.5, 1.0, size=num_links)
        delay_links = rng.uniform(0.0, 1e-3, size=num_links)
        want_nm = backend._segment_reduce_loop(
            not_marked_links[idx], starts, lengths, "prod"
        )
        want_qd = backend._segment_reduce_loop(
            delay_links[idx], starts, lengths, "sum"
        )
        nm, qd = backend.path_signals(
            idx, starts, lengths, not_marked_links, delay_links
        )
        _assert_equal(backend.name, nm, want_nm)
        _assert_equal(backend.name, qd, want_qd)


# --------------------------------------------------------------------- #
# weighted_choice_searchsorted
# --------------------------------------------------------------------- #
class TestWeightedChoice:
    def test_matches_scalar_cursor_loop(self, backend):
        weights = np.array([2.0, 1.0, 3.0, 0.5])
        cumulative = np.cumsum(weights)
        rng = np.random.default_rng(11)
        points = np.concatenate(
            [rng.uniform(0, cumulative[-1], size=64), cumulative, [0.0]]
        )
        want = []
        for p in points:
            for j, c in enumerate(cumulative):
                if p <= c:
                    want.append(j)
                    break
            else:
                want.append(len(cumulative) - 1)
        got = np.asarray(backend.weighted_choice_searchsorted(cumulative, points))
        np.testing.assert_array_equal(got, np.asarray(want, dtype=np.intp))

    def test_point_above_table_clamps(self, backend):
        cumulative = np.array([1.0, 2.0])
        got = np.asarray(
            backend.weighted_choice_searchsorted(
                cumulative, np.array([2.0000001, 99.0])
            )
        )
        np.testing.assert_array_equal(got, [1, 1])


# --------------------------------------------------------------------- #
# gather / scatter rows, masked select / divide
# --------------------------------------------------------------------- #
class TestRowKernels:
    def test_gather_non_contiguous_rows(self, backend):
        column = np.arange(10, dtype=np.float64) * 2.0
        rows = np.array([7, 0, 7, 3], dtype=np.intp)
        _assert_equal(
            backend.name, backend.gather_rows(column, rows), column[rows]
        )

    def test_scatter_rows_in_place(self, backend):
        column = np.zeros(6)
        rows = np.array([5, 1, 3], dtype=np.intp)
        values = np.array([1.0, 2.0, 3.0])
        backend.scatter_rows(column, rows, values)
        want = np.zeros(6)
        want[rows] = values
        _assert_equal(backend.name, column, want)

    def test_masked_where(self, backend):
        cond = np.array([True, False, True, False])
        a = np.array([1.0, 2.0, 3.0, 4.0])
        b = np.array([-1.0, -2.0, -3.0, -4.0])
        _assert_equal(
            backend.name, backend.masked_where(cond, a, b), np.where(cond, a, b)
        )

    def test_masked_divide_zero_denominator(self, backend):
        num = np.array([1.0, 2.0, 3.0, -4.0])
        den = np.array([2.0, 0.0, 4.0, 0.0])
        mask = den > 0
        out = np.asarray(backend.masked_divide(num, den, mask))
        np.testing.assert_array_equal(out, [0.5, 0.0, 0.75, 0.0])

    def test_masked_divide_broadcasts(self, backend):
        num = np.array([1.0, 2.0, 3.0])
        den = 2.0
        out = np.asarray(backend.masked_divide(num, den, np.array([True, False, True])))
        np.testing.assert_array_equal(out, [0.5, 0.0, 1.5])


# --------------------------------------------------------------------- #
# sync points
# --------------------------------------------------------------------- #
class TestSyncPoints:
    def test_roundtrip_preserves_values(self, backend):
        host = np.array([1.0, -0.0, np.inf, 3.5])
        native = backend.asarray(host)
        back = backend.to_numpy(native)
        np.testing.assert_array_equal(back, host)
