"""Tests for the HPCC model."""

import pytest

from repro.congestion_control import HPCC
from repro.simulator import FeedbackSignal


def signal(util, t=0.0):
    return FeedbackSignal(generated_s=t, ecn_fraction=0.0, max_utilization=util, rtt_s=0.01, queue_delay_s=0.0)


class TestHPCC:
    def test_decreases_above_target_utilisation(self):
        cc = HPCC(100e9, 0.01, eta=0.95)
        cc.on_feedback(signal(util=1.5), now=0.0)
        assert cc.rate_bps < 100e9

    def test_scales_roughly_with_overload_factor(self):
        cc = HPCC(100e9, 0.01, eta=0.95, wai_fraction=0.0)
        cc.on_feedback(signal(util=1.9), now=0.0)
        assert cc.rate_bps == pytest.approx(100e9 * 0.95 / 1.9, rel=0.01)

    def test_additive_increase_below_target(self):
        cc = HPCC(100e9, 0.01, eta=0.95, wai_fraction=0.01)
        cc.rate_bps = cc._reference_rate_bps = 10e9
        cc.on_feedback(signal(util=0.3), now=0.0)
        assert cc.rate_bps == pytest.approx(10e9 + 1e9)

    def test_max_stage_forces_multiplicative_update(self):
        cc = HPCC(100e9, 0.01, eta=0.95, max_stage=2, wai_fraction=0.001)
        cc.rate_bps = cc._reference_rate_bps = 10e9
        for step in range(5):
            cc.on_feedback(signal(util=0.5), now=step * 1e-3)
        # after max_stage AI steps, the MI step kicks the rate up toward
        # eta/util of the reference (still clamped to the line rate)
        assert cc.rate_bps > 10e9

    def test_interval_is_noop(self):
        cc = HPCC(100e9, 0.01)
        before = cc.rate_bps
        cc.on_interval(1e-3, now=0.0)
        assert cc.rate_bps == before
