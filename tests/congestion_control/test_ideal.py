"""Tests for the idealised congestion-control stand-ins."""

import pytest

from repro.congestion_control import FixedRate, IdealCC
from repro.simulator import FeedbackSignal


def signal(util):
    return FeedbackSignal(generated_s=0.0, ecn_fraction=0.5, max_utilization=util, rtt_s=0.01, queue_delay_s=0.0)


class TestFixedRate:
    def test_never_changes_rate(self):
        cc = FixedRate(10e9, 0.01)
        cc.on_feedback(signal(5.0), now=0.0)
        cc.on_interval(1e-3, now=0.0)
        assert cc.rate_bps == 10e9
        assert cc.feedback_count == 1


class TestIdealCC:
    def test_moves_to_target_utilisation(self):
        cc = IdealCC(100e9, 0.01, target_utilization=0.9)
        cc.on_feedback(signal(util=1.8), now=0.0)
        assert cc.rate_bps == pytest.approx(100e9 * 0.9 / 1.8)

    def test_probes_upward_when_idle(self):
        cc = IdealCC(100e9, 0.01)
        cc.rate_bps = 1e9
        cc.on_interval(1e-3, now=0.0)
        assert cc.rate_bps > 1e9

    def test_clamped_to_line_rate(self):
        cc = IdealCC(100e9, 0.01)
        cc.on_feedback(signal(util=0.01), now=0.0)
        assert cc.rate_bps <= 100e9
