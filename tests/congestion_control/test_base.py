"""Tests for the congestion-control registry and base behaviour."""

import pytest

from repro.congestion_control import (
    available_ccs,
    make_cc_factory,
)
from repro.simulator import FeedbackSignal


def signal(ecn=0.0, util=0.5, rtt=0.01, qdelay=0.0, t=0.0):
    return FeedbackSignal(
        generated_s=t,
        ecn_fraction=ecn,
        max_utilization=util,
        rtt_s=rtt,
        queue_delay_s=qdelay,
    )


class TestRegistry:
    def test_all_paper_ccs_registered(self):
        names = available_ccs()
        for expected in ("dcqcn", "hpcc", "timely", "dctcp"):
            assert expected in names

    def test_factory_builds_instances(self):
        factory = make_cc_factory("dcqcn")
        cc = factory(100e9, 0.01)
        assert cc.rate_bps == 100e9
        assert cc.base_rtt_s == 0.01

    def test_unknown_cc_rejected(self):
        with pytest.raises(KeyError):
            make_cc_factory("cubic")

    def test_factory_forwards_params(self):
        factory = make_cc_factory("dcqcn", g=0.25)
        assert factory(1e9, 0.01).g == 0.25


class TestBaseValidation:
    def test_invalid_line_rate(self):
        factory = make_cc_factory("fixed")
        with pytest.raises(ValueError):
            factory(0, 0.01)

    def test_invalid_rtt(self):
        factory = make_cc_factory("fixed")
        with pytest.raises(ValueError):
            factory(1e9, -1)


class TestClamping:
    def test_rate_never_exceeds_line_rate_nor_drops_below_floor(self):
        for name in available_ccs():
            factory = make_cc_factory(name)
            cc = factory(10e9, 0.02)
            # alternate heavy congestion and long idle recovery
            for step in range(200):
                congested = step % 3 != 0
                cc.on_feedback(
                    signal(ecn=0.9 if congested else 0.0, util=2.0 if congested else 0.1,
                           rtt=0.08 if congested else 0.02, qdelay=0.06 if congested else 0.0,
                           t=step * 1e-3),
                    now=step * 1e-3,
                )
                cc.on_interval(1e-3, now=step * 1e-3)
                assert cc.min_rate_bps <= cc.rate_bps <= cc.line_rate_bps, name
