"""Tests for the DCQCN model."""

import pytest

from repro.congestion_control import DCQCN
from repro.simulator import FeedbackSignal


def signal(ecn, t=0.0):
    return FeedbackSignal(generated_s=t, ecn_fraction=ecn, max_utilization=1.0, rtt_s=0.01, queue_delay_s=0.0)


class TestDCQCN:
    def test_starts_at_line_rate(self):
        cc = DCQCN(100e9, 0.01)
        assert cc.rate_bps == 100e9
        assert cc.alpha == 1.0

    def test_cnp_cuts_rate(self):
        cc = DCQCN(100e9, 0.01)
        cc.on_feedback(signal(ecn=0.5), now=0.0)
        assert cc.rate_bps < 100e9
        assert cc.target_rate_bps == 100e9

    def test_repeated_cnps_cut_further(self):
        cc = DCQCN(100e9, 0.01)
        cc.on_feedback(signal(ecn=0.8), now=0.0)
        after_one = cc.rate_bps
        cc.on_feedback(signal(ecn=0.8), now=0.001)
        assert cc.rate_bps < after_one

    def test_clean_feedback_does_not_cut(self):
        cc = DCQCN(100e9, 0.01)
        cc.on_feedback(signal(ecn=0.0), now=0.0)
        assert cc.rate_bps == 100e9

    def test_recovery_moves_back_toward_target(self):
        cc = DCQCN(100e9, 0.01, increase_timer_s=1e-3)
        cc.on_feedback(signal(ecn=0.9), now=0.0)
        throttled = cc.rate_bps
        for step in range(1, 50):
            cc.on_interval(1e-3, now=step * 1e-3)
        assert cc.rate_bps > throttled

    def test_alpha_decays_without_cnps(self):
        cc = DCQCN(100e9, 0.01, alpha_resume_interval_s=1e-3)
        cc.on_feedback(signal(ecn=0.9), now=0.0)
        alpha_after_cnp = cc.alpha
        for step in range(1, 100):
            cc.on_interval(1e-3, now=step * 1e-3)
        assert cc.alpha < alpha_after_cnp

    def test_eventual_full_recovery_via_hyper_increase(self):
        cc = DCQCN(100e9, 0.01, increase_timer_s=1e-3, rate_hai_bps=5e9)
        cc.on_feedback(signal(ecn=0.9), now=0.0)
        for step in range(1, 2000):
            cc.on_interval(1e-3, now=step * 1e-3)
        assert cc.rate_bps == pytest.approx(100e9, rel=0.05)
