"""Tests for the TIMELY model."""

from repro.congestion_control import Timely
from repro.simulator import FeedbackSignal


def signal(rtt, t=0.0):
    return FeedbackSignal(generated_s=t, ecn_fraction=0.0, max_utilization=0.5, rtt_s=rtt, queue_delay_s=0.0)


BASE_RTT = 0.010


class TestTimely:
    def test_low_rtt_increases_rate(self):
        cc = Timely(100e9, BASE_RTT)
        cc.rate_bps = 10e9
        cc.on_feedback(signal(rtt=BASE_RTT), now=0.0)
        assert cc.rate_bps > 10e9

    def test_high_rtt_decreases_rate(self):
        cc = Timely(100e9, BASE_RTT)
        cc.on_feedback(signal(rtt=BASE_RTT + 0.05), now=0.0)
        assert cc.rate_bps < 100e9

    def test_gradient_decrease_between_thresholds(self):
        cc = Timely(100e9, BASE_RTT, t_low_extra_s=1e-6, t_high_extra_s=0.1)
        # rising RTT samples inside the [t_low, t_high] band -> positive
        # gradient -> multiplicative decrease
        cc.on_feedback(signal(rtt=BASE_RTT + 0.001), now=0.0)
        cc.on_feedback(signal(rtt=BASE_RTT + 0.004), now=0.001)
        cc.on_feedback(signal(rtt=BASE_RTT + 0.009), now=0.002)
        assert cc.rate_bps < 100e9

    def test_hyperactive_increase_after_persistent_low_rtt(self):
        cc = Timely(100e9, BASE_RTT, addstep_fraction=0.01)
        cc.rate_bps = 10e9
        for step in range(4):
            cc.on_feedback(signal(rtt=BASE_RTT), now=step * 1e-3)
        rate_after_four = cc.rate_bps
        cc.on_feedback(signal(rtt=BASE_RTT), now=5e-3)
        fifth_step = cc.rate_bps - rate_after_four
        assert fifth_step > 100e9 * 0.01 * 1.5  # HAI multiplies the step

    def test_rate_clamped_to_line_rate(self):
        cc = Timely(100e9, BASE_RTT)
        for step in range(1000):
            cc.on_feedback(signal(rtt=BASE_RTT), now=step * 1e-3)
        assert cc.rate_bps <= 100e9
