"""Tests for deterministic per-flow congestion-control mixes."""

import pickle

import pytest

from repro.congestion_control import DCQCN, HPCC, MixedCCFactory, make_mixed_cc_factory
from repro.experiments import DEFAULT_CC_MIX, ExperimentSpec, mixed_fleet_spec


class TestMixedCCFactory:
    def test_assignment_is_deterministic_per_seed_and_flow(self):
        a = make_mixed_cc_factory((("dcqcn", 0.8), ("hpcc", 0.2)), seed=3)
        b = make_mixed_cc_factory((("dcqcn", 0.8), ("hpcc", 0.2)), seed=3)
        assert [a.assign(i) for i in range(200)] == [b.assign(i) for i in range(200)]
        other_seed = make_mixed_cc_factory((("dcqcn", 0.8), ("hpcc", 0.2)), seed=4)
        assert [a.assign(i) for i in range(200)] != [
            other_seed.assign(i) for i in range(200)
        ]

    def test_shares_roughly_follow_weights(self):
        factory = make_mixed_cc_factory((("dcqcn", 0.8), ("hpcc", 0.2)), seed=1)
        picks = [factory.assign(i) for i in range(2000)]
        hpcc_share = picks.count(1) / len(picks)
        assert 0.15 < hpcc_share < 0.25

    def test_builds_the_assigned_class(self):
        factory = make_mixed_cc_factory((("dcqcn", 0.5), ("hpcc", 0.5)), seed=1)
        for flow_id in range(50):
            cc = factory(10e9, 0.02, flow_id=flow_id)
            expected = (DCQCN, HPCC)[factory.assign(flow_id)]
            assert type(cc) is expected

    def test_accepts_mapping_and_ready_made_factories(self):
        by_mapping = make_mixed_cc_factory({"dcqcn": 1.0})
        assert type(by_mapping(10e9, 0.02, flow_id=0)) is DCQCN
        custom = MixedCCFactory((((lambda lr, rtt: HPCC(lr, rtt)), 1.0),), seed=0)
        assert type(custom(10e9, 0.02, flow_id=0)) is HPCC

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            MixedCCFactory(())
        with pytest.raises(ValueError):
            make_mixed_cc_factory((("dcqcn", 0.0),))
        with pytest.raises(KeyError):
            make_mixed_cc_factory((("cubic", 1.0),))

    def test_marked_per_flow(self):
        factory = make_mixed_cc_factory(DEFAULT_CC_MIX, seed=9)
        assert factory.per_flow

    def test_spec_with_mix_is_picklable(self):
        """Parallel sweeps ship specs (not factories) to workers; a mixed
        spec must survive the round trip with its mix intact."""
        spec = mixed_fleet_spec(num_flows=10)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.cc_mix == spec.cc_mix
        assert clone.seed == spec.seed


class TestSpecWiring:
    def test_mixed_fleet_spec_defaults(self):
        spec = mixed_fleet_spec(num_flows=10)
        assert spec.cc_mix == DEFAULT_CC_MIX
        spec.validate()

    def test_validate_accepts_mapping_form(self):
        spec = ExperimentSpec(name="map", cc_mix={"dcqcn": 0.8, "hpcc": 0.2})
        spec.validate()

    def test_validate_rejects_unknown_mix_names(self):
        spec = ExperimentSpec(name="bad", cc_mix=(("cubic", 1.0),))
        with pytest.raises(ValueError):
            spec.validate()

    def test_validate_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="bad", cc_mix=(("dcqcn", -1.0),)).validate()
        with pytest.raises(ValueError):
            ExperimentSpec(name="bad", cc_mix=()).validate()
