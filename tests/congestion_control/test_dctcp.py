"""Tests for the DCTCP model."""

import pytest

from repro.congestion_control import DCTCP
from repro.simulator import FeedbackSignal


def signal(ecn, t=0.0):
    return FeedbackSignal(generated_s=t, ecn_fraction=ecn, max_utilization=1.0, rtt_s=0.01, queue_delay_s=0.0)


BASE_RTT = 0.010


class TestDCTCP:
    def test_window_update_happens_once_per_rtt(self):
        cc = DCTCP(100e9, BASE_RTT)
        cc.on_feedback(signal(0.5), now=0.0)
        cc.on_interval(dt=BASE_RTT / 4, now=0.0)
        assert cc.rate_bps == 100e9  # not a full RTT yet
        cc.on_interval(dt=BASE_RTT, now=BASE_RTT)
        assert cc.rate_bps < 100e9

    def test_alpha_tracks_marking_fraction(self):
        cc = DCTCP(100e9, BASE_RTT, g=0.5)
        cc.on_feedback(signal(1.0), now=0.0)
        cc.on_interval(dt=BASE_RTT, now=BASE_RTT)
        assert cc.alpha == pytest.approx(0.5)
        cc.on_feedback(signal(1.0), now=BASE_RTT)
        cc.on_interval(dt=BASE_RTT, now=2 * BASE_RTT)
        assert cc.alpha == pytest.approx(0.75)

    def test_cut_proportional_to_alpha(self):
        heavy = DCTCP(100e9, BASE_RTT, g=1.0)
        light = DCTCP(100e9, BASE_RTT, g=1.0)
        heavy.on_feedback(signal(1.0), now=0.0)
        light.on_feedback(signal(0.1), now=0.0)
        heavy.on_interval(dt=BASE_RTT, now=BASE_RTT)
        light.on_interval(dt=BASE_RTT, now=BASE_RTT)
        assert heavy.rate_bps < light.rate_bps

    def test_additive_increase_without_marks(self):
        cc = DCTCP(100e9, BASE_RTT)
        cc.rate_bps = 1e9
        cc.on_interval(dt=BASE_RTT, now=BASE_RTT)
        assert cc.rate_bps > 1e9

    def test_rate_recovers_over_time(self):
        cc = DCTCP(100e9, BASE_RTT)
        cc.on_feedback(signal(1.0), now=0.0)
        cc.on_interval(dt=BASE_RTT, now=BASE_RTT)
        throttled = cc.rate_bps
        for step in range(2, 50):
            cc.on_interval(dt=BASE_RTT, now=step * BASE_RTT)
        assert cc.rate_bps > throttled
