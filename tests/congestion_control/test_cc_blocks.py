"""Per-class CC column-block suite: spec derivation and kernel equivalence.

Every congestion-control class declares its FlowTable block declaratively
(``cc_columns``); the base class derives the block layout, the bound-view
properties and the bind/release push/pull from it.  These tests check that
derivation for each class, and — the load-bearing contract — that each
class's in-place ``feedback_batch_slots`` / ``advance_batch_slots`` kernels
are *bit-for-bit* identical to its scalar ``on_feedback`` / ``on_interval``
under arrival/finish churn and slot reuse.
"""

import numpy as np
import pytest

from repro.congestion_control import DCQCN, DCTCP, HPCC, FixedRate, IdealCC, Timely
from repro.congestion_control.base import CongestionControl
from repro.simulator import FlowTable
from repro.simulator.flow import FeedbackSignal, Flow, FlowDemand
from repro.simulator.link import RuntimeLink
from repro.topology.graph import LinkSpec

#: every registered CC class (the ISSUE's five paper CCs + FixedRate)
CC_CLASSES = [DCQCN, DCTCP, HPCC, Timely, IdealCC, FixedRate]

LINE_RATE = 10e9
BASE_RTT = 0.02


def make_flow(flow_id: int, cc) -> Flow:
    demand = FlowDemand(
        flow_id=flow_id,
        src_dc="DC1",
        dst_dc="DC2",
        src_host=0,
        dst_host=1,
        size_bytes=1_000_000,
        arrival_s=0.0,
    )
    link = RuntimeLink(LinkSpec("A", "B", 1e9, 0.005, 1_000_000, True))
    return Flow(demand, [link], cc, base_rtt_s=BASE_RTT)


def state_attrs(cc_cls):
    return [col.attr for col in cc_cls.cc_columns.values() if col.kind == "state"]


def assert_same_state(bound, plain, cc_cls, context=""):
    assert bound.rate_bps == plain.rate_bps, f"rate {context}"
    assert bound.feedback_count == plain.feedback_count, f"feedback_count {context}"
    for attr in state_attrs(cc_cls):
        assert getattr(bound, attr) == getattr(plain, attr), f"{attr} {context}"


def lane_signal(step: int, lane: int):
    """A deterministic, varied signal for one lane at one step."""
    congested = (step + lane) % 3 != 0
    ecn = ((step * 7 + lane * 3) % 11) / 11.0 if congested else 0.0
    util = 0.1 + ((step * 5 + lane) % 13) / 6.5
    qd = ((step + lane * 2) % 9) * 2.5e-4
    rtt = BASE_RTT + qd
    return ecn, util, rtt, qd


@pytest.mark.parametrize("cc_cls", CC_CLASSES, ids=lambda c: c.name)
class TestSpecDerivation:
    def test_block_spec_derived_from_columns(self, cc_cls):
        assert set(cc_cls.table_block_spec) == set(cc_cls.cc_columns)
        for name, col in cc_cls.cc_columns.items():
            assert cc_cls.table_block_spec[name] == col.dtype

    def test_state_properties_dispatch_to_block(self, cc_cls):
        table = FlowTable(capacity=4)
        cc = cc_cls(LINE_RATE, BASE_RTT)
        unbound_values = {attr: getattr(cc, attr) for attr in state_attrs(cc_cls)}
        flow = make_flow(0, cc)
        slot = table.acquire(flow)
        block = table.cc_block(cc_cls) if cc_cls.cc_columns else None
        for name, col in cc_cls.cc_columns.items():
            if col.kind != "state":
                continue
            # bind pushed the unbound value into the column
            assert col.py(getattr(block, name)[slot]) == unbound_values[col.attr]
            # writes through the property land in the column
            new = (not unbound_values[col.attr]) if col.py is bool else col.py(1)
            setattr(cc, col.attr, new)
            assert col.py(getattr(block, name)[slot]) == new
        for name, col in cc_cls.cc_columns.items():
            if col.kind == "param":
                # parameters are replicated into the row at bind
                assert float(getattr(block, name)[slot]) == float(
                    getattr(cc, col.attr)
                )
        table.release(flow)
        assert cc._table is None

    def test_release_pulls_state_back(self, cc_cls):
        table = FlowTable(capacity=4)
        cc = cc_cls(LINE_RATE, BASE_RTT)
        flow = make_flow(0, cc)
        table.acquire(flow)
        # mutate through the scalar methods while bound
        for step in range(20):
            ecn, util, rtt, qd = lane_signal(step, 0)
            cc.on_feedback(FeedbackSignal(step * 1e-3, ecn, util, rtt, qd), step * 1e-3)
            cc.on_interval(1e-3, step * 1e-3)
        snapshot = {attr: getattr(cc, attr) for attr in state_attrs(cc_cls)}
        rate, count = cc.rate_bps, cc.feedback_count
        table.release(flow)
        assert cc.rate_bps == rate
        assert cc.feedback_count == count
        for attr, value in snapshot.items():
            assert getattr(cc, attr) == value


@pytest.mark.parametrize("cc_cls", CC_CLASSES, ids=lambda c: c.name)
class TestBoundScalarEquivalence:
    def test_bound_and_unbound_instances_stay_bitwise_identical(self, cc_cls):
        """The scalar methods act identically through the block views."""
        table = FlowTable(capacity=4)
        bound = cc_cls(LINE_RATE, BASE_RTT)
        plain = cc_cls(LINE_RATE, BASE_RTT)
        flow = make_flow(0, cc=bound)
        table.acquire(flow)
        for step in range(120):
            now = step * 1e-3
            ecn, util, rtt, qd = lane_signal(step, 0)
            signal = FeedbackSignal(now, ecn, util, rtt, qd)
            bound.on_feedback(signal, now)
            plain.on_feedback(signal, now)
            bound.on_interval(1e-3, now)
            plain.on_interval(1e-3, now)
        assert_same_state(bound, plain, cc_cls)


@pytest.mark.parametrize("cc_cls", CC_CLASSES, ids=lambda c: c.name)
class TestKernelEquivalence:
    """feedback_batch_slots / advance_batch_slots == scalar, under churn."""

    N = 24

    def run_lockstep(self, cc_cls, steps, churn=False):
        table = FlowTable(capacity=8)  # force growth
        bound, plain, flows = [], [], []
        next_id = 0
        for _ in range(self.N):
            b = cc_cls(LINE_RATE, BASE_RTT)
            p = cc_cls(LINE_RATE, BASE_RTT)
            f = make_flow(next_id, b)
            next_id += 1
            table.acquire(f)
            bound.append(b)
            plain.append(p)
            flows.append(f)

        rng = np.random.default_rng(7)
        for step in range(steps):
            now = step * 1e-3
            if churn and step and step % 40 == 0:
                # release a few rows and hand their slots to newcomers —
                # kernels must neither read stale state nor leak any into
                # the next tenant
                for _ in range(3):
                    victim = int(rng.integers(len(flows)))
                    table.release(flows.pop(victim))
                    bound.pop(victim)
                    plain.pop(victim)
                for _ in range(3):
                    b = cc_cls(LINE_RATE, BASE_RTT)
                    p = cc_cls(LINE_RATE, BASE_RTT)
                    f = make_flow(next_id, b)
                    next_id += 1
                    table.acquire(f)
                    bound.append(b)
                    plain.append(p)
                    flows.append(f)

            slots = np.array([f._slot for f in flows], dtype=np.intp)
            n = len(slots)
            sig = [lane_signal(step, lane) for lane in range(n)]
            ecn = np.array([s[0] for s in sig])
            util = np.array([s[1] for s in sig])
            rtt = np.array([s[2] for s in sig])
            qd = np.array([s[3] for s in sig])

            cc_cls.feedback_batch_slots(table, slots, now, ecn, util, rtt, qd, now)
            for i, p in enumerate(plain):
                p.on_feedback(
                    FeedbackSignal(now, ecn[i], util[i], rtt[i], qd[i]), now
                )
            cc_cls.advance_batch_slots(table, slots, 1e-3, now)
            for p in plain:
                p.on_interval(1e-3, now)

            for i, (b, p) in enumerate(zip(bound, plain)):
                assert_same_state(b, p, cc_cls, context=f"step {step} lane {i}")

        # release everything; final values must survive unbinding
        for f, b, p in zip(flows, bound, plain):
            table.release(f)
            assert_same_state(b, p, cc_cls, context="after release")

    def test_kernels_match_scalar(self, cc_cls):
        self.run_lockstep(cc_cls, steps=150)

    def test_kernels_match_scalar_under_slot_churn(self, cc_cls):
        self.run_lockstep(cc_cls, steps=200, churn=True)


class TestKernelSubsetDispatch:
    def test_kernels_touch_only_their_slots(self):
        """Delivering to a subset leaves the other rows' state untouched
        (the grouped mixed-fleet dispatch relies on this)."""
        table = FlowTable(capacity=8)
        ccs = [DCQCN(LINE_RATE, BASE_RTT) for _ in range(6)]
        flows = [make_flow(i, cc) for i, cc in enumerate(ccs)]
        for f in flows:
            table.acquire(f)
        before = [
            (cc.rate_bps, cc.alpha, cc.feedback_count) for cc in ccs
        ]
        subset = np.array([flows[1]._slot, flows[4]._slot], dtype=np.intp)
        DCQCN.feedback_batch_slots(
            table, subset, 0.0,
            np.array([0.9, 0.9]), np.array([1.5, 1.5]),
            np.array([0.03, 0.03]), np.array([0.01, 0.01]), 0.0,
        )
        for i, cc in enumerate(ccs):
            if i in (1, 4):
                assert cc.feedback_count == 1
                assert cc.rate_bps < before[i][0]
            else:
                assert (cc.rate_bps, cc.alpha, cc.feedback_count) == before[i]


def test_base_subclass_without_spec_keeps_object_dispatch():
    """A CC class with no cc_columns still works through the base
    slot-batch fallback (gather objects, loop the scalar methods)."""

    class Plain(CongestionControl):
        name = "plain-test"

        def on_feedback(self, signal, now):
            self.feedback_count += 1
            self.rate_bps *= 0.5
            self._clamp()

        def on_interval(self, dt, now):
            self.rate_bps *= 1.01
            self._clamp()

    table = FlowTable(capacity=4)
    ccs = [Plain(LINE_RATE, BASE_RTT) for _ in range(3)]
    flows = [make_flow(i, cc) for i, cc in enumerate(ccs)]
    for f in flows:
        table.acquire(f)
    slots = np.array([f._slot for f in flows], dtype=np.intp)
    Plain.feedback_batch_slots(
        table, slots, 0.0, np.zeros(3), np.ones(3), np.full(3, 0.02), np.zeros(3), 0.0
    )
    Plain.advance_batch_slots(table, slots, 1e-3, 0.0)
    twin = Plain(LINE_RATE, BASE_RTT)
    twin.on_feedback(FeedbackSignal(0.0, 0.0, 1.0, 0.02, 0.0), 0.0)
    twin.on_interval(1e-3, 0.0)
    for cc in ccs:
        assert cc.rate_bps == twin.rate_bps
        assert cc.feedback_count == 1
