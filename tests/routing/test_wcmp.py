"""Tests for WCMP: static capacity-weighted hashing."""

from collections import Counter

from repro.routing import WCMPRouter
from repro.simulator import FlowDemand


def demand(flow_id):
    return FlowDemand(flow_id, "DC1", "DC8", 0, 0, 1_000, 0.0)


class TestWCMP:
    def test_deterministic_per_flow(self, testbed_paths):
        router = WCMPRouter()
        candidates = testbed_paths.candidates("DC1", "DC8")
        assert (
            router.select("DC8", candidates, demand(3), 0.0)
            is router.select("DC8", candidates, demand(3), 1.0)
        )

    def test_allocation_proportional_to_capacity(self, testbed_paths):
        router = WCMPRouter()
        candidates = testbed_paths.candidates("DC1", "DC8")
        counts = Counter(
            router.select("DC8", candidates, demand(i), 0.0).first_hop for i in range(6000)
        )
        # 200G relays (DC2, DC3) should each carry roughly 5x the flows of a
        # 40G relay (DC6, DC7)
        high = (counts["DC2"] + counts["DC3"]) / 2
        low = (counts["DC6"] + counts["DC7"]) / 2
        assert 3.0 < high / low < 8.0

    def test_every_candidate_reachable(self, testbed_paths):
        router = WCMPRouter()
        candidates = testbed_paths.candidates("DC1", "DC8")
        chosen = {
            router.select("DC8", candidates, demand(i), 0.0).first_hop for i in range(6000)
        }
        assert chosen == {c.first_hop for c in candidates}
