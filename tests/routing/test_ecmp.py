"""Tests for ECMP: oblivious, deterministic hashing."""

from collections import Counter

from repro.routing import ECMPRouter
from repro.simulator import FlowDemand


def demand(flow_id):
    return FlowDemand(flow_id, "DC1", "DC8", 0, 0, 1_000, 0.0)


class TestECMP:
    def test_deterministic_per_flow(self, testbed_paths):
        router = ECMPRouter()
        candidates = testbed_paths.candidates("DC1", "DC8")
        first = router.select("DC8", candidates, demand(7), now=0.0)
        second = router.select("DC8", candidates, demand(7), now=5.0)
        assert first is second

    def test_spreads_over_all_candidates(self, testbed_paths):
        """ECMP is oblivious: over many flows every candidate is used,
        including the high-delay ones (the paper's motivation)."""
        router = ECMPRouter()
        candidates = testbed_paths.candidates("DC1", "DC8")
        counts = Counter(
            router.select("DC8", candidates, demand(i), now=0.0).first_hop
            for i in range(600)
        )
        assert set(counts) == {c.first_hop for c in candidates}
        # roughly uniform: no relay gets less than half its fair share
        assert min(counts.values()) > 600 / 6 / 2

    def test_ignores_congestion_hooks(self, testbed_paths):
        router = ECMPRouter()
        router.on_tick(0.0)  # no-ops must not raise
        assert router.decisions == 0

    def test_single_candidate(self, testbed_paths):
        router = ECMPRouter()
        candidates = testbed_paths.candidates("DC1", "DC4")
        assert router.select("DC4", candidates, demand(1), now=0.0) is candidates[0]
