"""Batch-vs-single equivalence: ``select_batch`` must reproduce ``select``.

The ISSUE's hard requirement: for every shipped router, routing a batch of
demands through one ``select_batch`` call must yield exactly the candidate
the sequential ``select`` loop picks for each flow — same seeds, same
telemetry, identical path choices.  These tests drive both entry points of
two independently constructed router instances over identical inputs (so
stateful routers like LCMP cannot leak state between the two paths) and
compare the decisions index by index.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LCMPConfig, lcmp_router_factory
from repro.core.lcmp_router import LCMPRouter
from repro.routing import make_router_factory
from repro.routing.base import flow_hash, flow_hash_array
from repro.simulator import DCISwitch, FlowDemand, RuntimeLink
from repro.simulator.switch import PortSample
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset

ROUTERS = ["ecmp", "wcmp", "ucmp", "redte", "lcmp"]


@pytest.fixture(scope="module")
def testbed():
    topology = build_testbed8(capacity_scale=0.1)
    return topology, _testbed8_pathset(topology)


def make_demands(count, src="DC1", dst="DC8", id_offset=0):
    return [
        FlowDemand(
            flow_id=id_offset + i,
            src_dc=src,
            dst_dc=dst,
            src_host=i % 4,
            dst_host=(i + 1) % 4,
            size_bytes=100_000 + i,
            arrival_s=0.001 * i,
        )
        for i in range(count)
    ]


def make_router(name, topology, pathset, dc="DC1"):
    if name == "lcmp":
        return lcmp_router_factory(topology, pathset, config=LCMPConfig())(dc)
    return make_router_factory(name)(dc)


def attach_switch(router, topology, dc="DC1"):
    """Give the router a switch with live ports for every DC1 neighbour."""
    switch = DCISwitch(dc, router)
    for spec in topology.inter_dc_links():
        if spec.src == dc:
            switch.add_port(spec.dst, RuntimeLink(spec))
    return switch


def feed_samples(router, switch, queue_bytes=250_000.0, now=0.0):
    """Identical port telemetry for both router instances."""
    for next_dc, link in switch.ports.items():
        router.on_port_sample(
            PortSample(
                switch=switch.dc,
                next_dc=next_dc,
                link_key=link.key,
                queue_bytes=queue_bytes * (1 + hash(next_dc) % 3),
                carried_bytes=1e6,
                cap_bps=link.cap_bps,
                buffer_bytes=link.buffer_bytes,
                up=True,
                time_s=now,
            ),
            now,
        )


class TestFlowHashArray:
    def test_matches_scalar_hash(self):
        ids = np.array([0, 1, 2, 17, 991, 65_535, 1_000_000, 1_099_999, 2**31 - 1])
        for salt in (0x9E3779B1, 0x2545F491, 0x7FEB352D, 0x61C88647):
            batched = flow_hash_array(ids, salt)
            for i, flow_id in enumerate(ids.tolist()):
                assert int(batched[i]) == flow_hash(flow_id, salt)


class TestBatchEqualsSequential:
    @pytest.mark.parametrize("name", ROUTERS)
    def test_identical_choices(self, name, testbed):
        topology, pathset = testbed
        candidates = pathset.candidates("DC1", "DC8")
        assert len(candidates) >= 2

        sequential = make_router(name, topology, pathset)
        batched = make_router(name, topology, pathset)
        seq_switch = attach_switch(sequential, topology)
        bat_switch = attach_switch(batched, topology)
        feed_samples(sequential, seq_switch)
        feed_samples(batched, bat_switch)

        demands = make_demands(200)
        times = np.array([d.arrival_s for d in demands])

        expected = [
            sequential.select("DC8", candidates, d, float(times[i]))
            for i, d in enumerate(demands)
        ]
        got_idx = batched.select_batch("DC8", candidates, demands, times)
        got = [candidates[int(j)] for j in got_idx]
        assert [c.dcs for c in got] == [c.dcs for c in expected]
        assert sequential.decisions == batched.decisions == len(demands)

    @pytest.mark.parametrize("name", ROUTERS)
    def test_base_class_loop_matches_override(self, name, testbed):
        """The vectorized overrides agree with the generic select() loop."""
        topology, pathset = testbed
        candidates = pathset.candidates("DC1", "DC8")
        vector = make_router(name, topology, pathset)
        loop = make_router(name, topology, pathset)
        for router in (vector, loop):
            switch = attach_switch(router, topology)
            feed_samples(router, switch)

        demands = make_demands(64, id_offset=5_000)
        times = np.array([d.arrival_s for d in demands])
        from repro.routing.base import Router

        got = vector.select_batch("DC8", candidates, demands, times)
        ref = Router.select_batch(loop, "DC8", candidates, demands, times)
        assert got.tolist() == ref.tolist()

    def test_lcmp_unprovisioned_fallback(self, testbed):
        """The ECMP safe-fallback path must batch identically too."""
        topology, pathset = testbed
        candidates = pathset.candidates("DC1", "DC8")
        sequential = LCMPRouter()
        batched = LCMPRouter()
        demands = make_demands(50)
        times = np.array([d.arrival_s for d in demands])
        expected = [
            sequential.select("DC8", candidates, d, float(times[i]))
            for i, d in enumerate(demands)
        ]
        got_idx = batched.select_batch("DC8", candidates, demands, times)
        assert [candidates[int(j)].dcs for j in got_idx] == [c.dcs for c in expected]
        assert sequential.ecmp_fallbacks == batched.ecmp_fallbacks == 50

    def test_lcmp_sticky_entries_honoured(self, testbed):
        """Flows already in the cache stay on their recorded egress."""
        topology, pathset = testbed
        candidates = pathset.candidates("DC1", "DC8")
        sequential = make_router("lcmp", topology, pathset)
        batched = make_router("lcmp", topology, pathset)
        for router in (sequential, batched):
            switch = attach_switch(router, topology)
            feed_samples(router, switch)

        demands = make_demands(30)
        times = np.array([d.arrival_s for d in demands])
        # first pass inserts every flow; second pass must hit sticky
        for i, d in enumerate(demands):
            sequential.select("DC8", candidates, d, float(times[i]))
        batched.select_batch("DC8", candidates, demands, times)

        expected = [
            sequential.select("DC8", candidates, d, float(times[i]) + 0.01)
            for i, d in enumerate(demands)
        ]
        got_idx = batched.select_batch("DC8", candidates, demands, times + 0.01)
        assert [candidates[int(j)].dcs for j in got_idx] == [c.dcs for c in expected]
        assert sequential.sticky_hits == batched.sticky_hits == 30

    def test_lcmp_batch_under_cache_eviction_pressure(self, testbed):
        """A full flow cache forces LRU evictions; batch must still equal
        sequential (the batched router falls back to the per-flow loop
        whenever the batch could interact with eviction state)."""
        topology, pathset = testbed
        candidates = pathset.candidates("DC1", "DC8")
        config = LCMPConfig(flow_cache_capacity=16)
        sequential = lcmp_router_factory(topology, pathset, config=config)("DC1")
        batched = lcmp_router_factory(topology, pathset, config=config)("DC1")
        for router in (sequential, batched):
            switch = attach_switch(router, topology)
            feed_samples(router, switch)

        # overfill, then route a mixed batch of cached + fresh ids
        warm = make_demands(16)
        warm_times = np.array([d.arrival_s for d in warm])
        for i, d in enumerate(warm):
            sequential.select("DC8", candidates, d, float(warm_times[i]))
        batched.select_batch("DC8", candidates, warm, warm_times)

        mixed = make_demands(8) + make_demands(24, id_offset=1_000)
        times = np.array([d.arrival_s for d in mixed])
        expected = [
            sequential.select("DC8", candidates, d, float(times[i]))
            for i, d in enumerate(mixed)
        ]
        got_idx = batched.select_batch("DC8", candidates, mixed, times)
        assert [candidates[int(j)].dcs for j in got_idx] == [c.dcs for c in expected]
        assert sequential.stats() == batched.stats()
        assert sequential.flow_cache.evictions == batched.flow_cache.evictions > 0

    def test_lcmp_state_counters_match(self, testbed):
        topology, pathset = testbed
        candidates = pathset.candidates("DC1", "DC8")
        sequential = make_router("lcmp", topology, pathset)
        batched = make_router("lcmp", topology, pathset)
        for router in (sequential, batched):
            switch = attach_switch(router, topology)
            feed_samples(router, switch)
        demands = make_demands(120)
        times = np.array([d.arrival_s for d in demands])
        for i, d in enumerate(demands):
            sequential.select("DC8", candidates, d, float(times[i]))
        batched.select_batch("DC8", candidates, demands, times)
        assert sequential.stats() == batched.stats()
