"""Tests for the router registry and the flow hash."""

import pytest

from repro.routing import Router, available_routers, flow_hash, make_router_factory


class TestFlowHash:
    def test_deterministic(self):
        assert flow_hash(42) == flow_hash(42)
        assert flow_hash(42, salt=7) == flow_hash(42, salt=7)

    def test_salt_changes_mapping(self):
        values_a = [flow_hash(i, salt=1) for i in range(100)]
        values_b = [flow_hash(i, salt=2) for i in range(100)]
        assert values_a != values_b

    def test_32_bit_range(self):
        for i in range(0, 10_000, 97):
            assert 0 <= flow_hash(i) <= 0xFFFFFFFF

    def test_disperses_consecutive_ids(self):
        """Consecutive flow ids (as the traffic generator produces) must
        spread roughly evenly across a small number of buckets."""
        buckets = [0] * 6
        for i in range(6000):
            buckets[flow_hash(i) % 6] += 1
        assert min(buckets) > 700  # perfectly even would be 1000 each


class TestRegistry:
    def test_all_expected_routers_registered(self):
        names = available_routers()
        for expected in ("ecmp", "wcmp", "ucmp", "redte", "lcmp"):
            assert expected in names

    def test_factory_builds_fresh_instances(self):
        factory = make_router_factory("ecmp")
        a, b = factory("DC1"), factory("DC2")
        assert a is not b
        assert a.name == "ecmp"

    def test_unknown_router_rejected(self):
        with pytest.raises(KeyError):
            make_router_factory("ospf")

    def test_factory_forwards_params(self):
        factory = make_router_factory("ecmp", salt=123)
        assert factory("DC1").salt == 123

    def test_router_base_attach(self):
        class Dummy(Router):
            name = "dummy-test"

            def select(self, dst_dc, candidates, demand, now):
                return candidates[0]

        router = Dummy()
        assert router.switch_name == ""
