"""Tests for the UCMP reproduction: capacity-first unified cost."""

from collections import Counter

from repro.routing import UCMPRouter
from repro.simulator import FlowDemand


def demand(flow_id):
    return FlowDemand(flow_id, "DC1", "DC8", 0, 0, 1_000, 0.0)


class TestUCMP:
    def test_only_top_capacity_class_used(self, testbed_paths):
        """UCMP's capacity bias: all flows land on the two 200 Gbps relays
        and the 40/100 Gbps relays see zero traffic (Fig. 1b shows exactly
        this 0 % utilisation pattern)."""
        router = UCMPRouter()
        candidates = testbed_paths.candidates("DC1", "DC8")
        counts = Counter(
            router.select("DC8", candidates, demand(i), 0.0).first_hop for i in range(500)
        )
        assert set(counts) == {"DC2", "DC3"}

    def test_unified_cost_prefers_capacity(self, testbed_paths):
        router = UCMPRouter()
        candidates = {c.first_hop: c for c in testbed_paths.candidates("DC1", "DC8")}
        assert router.unified_cost(candidates["DC2"]) < router.unified_cost(candidates["DC7"])

    def test_delay_breaks_ties_within_class(self, testbed_paths):
        router = UCMPRouter()
        candidates = {c.first_hop: c for c in testbed_paths.candidates("DC1", "DC8")}
        # same 200G capacity class: the 50 ms route costs less than the 500 ms one
        assert router.unified_cost(candidates["DC3"]) < router.unified_cost(candidates["DC2"])

    def test_deterministic_per_flow(self, testbed_paths):
        router = UCMPRouter()
        candidates = testbed_paths.candidates("DC1", "DC8")
        assert (
            router.select("DC8", candidates, demand(11), 0.0)
            is router.select("DC8", candidates, demand(11), 9.0)
        )

    def test_single_candidate_class(self, testbed_paths):
        router = UCMPRouter()
        candidates = testbed_paths.candidates("DC1", "DC4")  # single path
        assert router.select("DC4", candidates, demand(1), 0.0) is candidates[0]
