"""Tests for the RedTE-style split-ratio TE baseline."""

from collections import Counter


from repro.routing import RedTERouter
from repro.simulator import FlowDemand, PortSample
from repro.topology import GBPS


def demand(flow_id):
    return FlowDemand(flow_id, "DC1", "DC8", 0, 0, 1_000, 0.0)


def sample(next_dc, carried_bytes, cap_bps=100 * GBPS, t=0.0):
    return PortSample(
        switch="DC1",
        next_dc=next_dc,
        link_key=("DC1", next_dc),
        queue_bytes=0.0,
        carried_bytes=carried_bytes,
        cap_bps=cap_bps,
        buffer_bytes=1 << 30,
        up=True,
        time_s=t,
    )


class TestControlLoop:
    def test_no_update_before_control_interval(self, testbed_paths):
        router = RedTERouter(control_interval_s=0.1)
        router.on_port_sample(sample("DC2", 0), now=0.0)
        router.on_tick(now=0.05)
        assert router.control_updates == 0

    def test_update_after_control_interval(self, testbed_paths):
        router = RedTERouter(control_interval_s=0.1)
        router.on_port_sample(sample("DC2", 0), now=0.0)
        router.on_port_sample(sample("DC3", 0), now=0.0)
        router.on_port_sample(sample("DC2", 10_000_000), now=0.1)
        router.on_port_sample(sample("DC3", 1_000_000), now=0.1)
        router.on_tick(now=0.15)
        assert router.control_updates == 1

    def test_weights_shift_toward_underutilised_ports(self, testbed_paths):
        router = RedTERouter(control_interval_s=0.1, step_size=0.5)
        # DC2 carried 10x the bytes of DC3 over the interval
        router.on_port_sample(sample("DC2", 0), now=0.0)
        router.on_port_sample(sample("DC3", 0), now=0.0)
        router.on_port_sample(sample("DC2", 50_000_000), now=0.1)
        router.on_port_sample(sample("DC3", 5_000_000), now=0.1)
        router.on_tick(now=0.11)
        assert router._weights["DC3"] > router._weights["DC2"]

    def test_weights_never_drop_below_floor(self, testbed_paths):
        router = RedTERouter(control_interval_s=0.05, step_size=1.0, min_weight=0.05)
        router.on_port_sample(sample("DC2", 0), now=0.0)
        router.on_port_sample(sample("DC3", 0), now=0.0)
        for i in range(1, 30):
            router.on_port_sample(sample("DC2", i * 50_000_000), now=i * 0.05)
            router.on_port_sample(sample("DC3", 0), now=i * 0.05)
            router.on_tick(now=i * 0.05 + 0.01)
        assert router._weights["DC2"] >= 0.05


class TestSelection:
    def test_uniform_before_any_telemetry(self, testbed_paths):
        """Before the first control-loop execution RedTE behaves like static
        hashing — the paper's observation about its coarse timescale."""
        router = RedTERouter()
        candidates = testbed_paths.candidates("DC1", "DC8")
        counts = Counter(
            router.select("DC8", candidates, demand(i), 0.0).first_hop for i in range(1200)
        )
        assert set(counts) == {c.first_hop for c in candidates}
        assert min(counts.values()) > 1200 / 6 / 2

    def test_selection_follows_updated_weights(self, testbed_paths):
        router = RedTERouter(control_interval_s=0.1, step_size=1.0, min_weight=0.01)
        candidates = testbed_paths.candidates("DC1", "DC8")
        # make DC2 look persistently overloaded relative to everyone else
        for port in ("DC2", "DC3", "DC4", "DC5", "DC6", "DC7"):
            router.on_port_sample(sample(port, 0), now=0.0)
        for step in range(1, 6):
            now = step * 0.1
            router.on_port_sample(sample("DC2", step * 100_000_000), now=now)
            for port in ("DC3", "DC4", "DC5", "DC6", "DC7"):
                router.on_port_sample(sample(port, step * 1_000_000), now=now)
            router.on_tick(now=now + 0.01)
        counts = Counter(
            router.select("DC8", candidates, demand(i), 1.0).first_hop for i in range(3000)
        )
        assert counts["DC2"] < counts["DC3"]

    def test_deterministic_per_flow(self, testbed_paths):
        router = RedTERouter()
        candidates = testbed_paths.candidates("DC1", "DC8")
        assert (
            router.select("DC8", candidates, demand(5), 0.0)
            is router.select("DC8", candidates, demand(5), 0.0)
        )
