"""JSON roundtrips for scenario timelines and fuzz corpus fixtures."""

import json

import pytest

from repro.scenarios import (
    CapacityChange,
    DCMaintenance,
    LinkDown,
    LinkUp,
    MaintenanceCalendar,
    RegionalPowerEvent,
    Scenario,
    SRLGFailure,
    TrafficDrain,
    TrafficSurge,
    get_scenario,
    scenario_names,
)
from repro.scenarios.serialize import (
    EVENT_TYPES,
    event_from_dict,
    event_to_dict,
    scenario_from_dict,
    scenario_to_dict,
)

EXAMPLES = [
    LinkDown(0.5, "A", "B"),
    LinkUp(1.0, "A", "B", bidirectional=False),
    CapacityChange(0.25, "A", "B", factor=0.5),
    TrafficSurge(0.5, pairs=(("A", "B"),), load=0.4, num_flows=5, seed=9),
    TrafficDrain(0.5, src_dc="A", fraction=0.25),
    DCMaintenance(0.5, dc="B", duration_s=0.3),
    SRLGFailure(0.5, name="conduit", links=(("A", "B"), ("A", "C")), recover_at_s=1.0, stagger_s=0.1),
    RegionalPowerEvent(0.5, region="west", duration_s=0.2, degraded_factor=0.5),
    MaintenanceCalendar(0.5, dc="B", window_s=0.2, period_s=1.0, occurrences=3),
]


class TestEventRoundtrip:
    @pytest.mark.parametrize("event", EXAMPLES, ids=lambda e: e.kind)
    def test_roundtrip_through_json(self, event):
        payload = json.loads(json.dumps(event_to_dict(event)))
        assert event_from_dict(payload) == event

    def test_every_event_kind_is_registered(self):
        assert sorted(EVENT_TYPES) == sorted(e.kind for e in EXAMPLES)

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError, match="unknown event kind"):
            event_from_dict({"kind": "meteor-strike", "time_s": 0.5})


class TestScenarioRoundtrip:
    def test_roundtrip_preserves_timeline(self):
        scenario = Scenario(
            name="mixed",
            events=tuple(EXAMPLES),
            stranded_timeout_s=0.5,
            description="every event kind once",
        )
        payload = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert scenario_from_dict(payload) == scenario

    @pytest.mark.parametrize("name", scenario_names())
    def test_every_canned_scenario_roundtrips(self, name):
        scenario = get_scenario(name)
        payload = json.loads(json.dumps(scenario_to_dict(scenario)))
        assert scenario_from_dict(payload) == scenario
