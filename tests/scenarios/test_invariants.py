"""The reusable invariant checkers: they hold on good runs and fire on bad.

The cross-core fuzz harness (``tests/scenarios/fuzz``) exercises the
checkers on real simulations; these unit tests feed them synthetic
results to pin down their *sensitivity* — a checker that never fires is
no invariant at all — and the declarative outage-interval reconstruction
they share.
"""

import math

import pytest

from repro.scenarios import Scenario
from repro.scenarios.events import (
    DCMaintenance,
    LinkDown,
    LinkUp,
    MaintenanceCalendar,
    SRLGFailure,
)
from repro.scenarios.injector import EventOutcome, ScenarioMetrics
from repro.scenarios.invariants import (
    CORE_CONFIGS,
    InvariantViolation,
    assert_results_identical,
    check_demand_conservation,
    check_recovery_bound,
    down_intervals,
)
from repro.simulator import SimulationResult
from repro.simulator.fct import FlowRecord


def record(flow_id, arrival_s=0.0, fct_s=0.01):
    return FlowRecord(
        flow_id=flow_id,
        src_dc="A",
        dst_dc="B",
        size_bytes=100_000,
        arrival_s=arrival_s,
        fct_s=fct_s,
        ideal_fct_s=fct_s,
        slowdown=1.0,
        path_dcs=("A", "B"),
    )


def result_of(num_records, unfinished=0, metrics=None):
    return SimulationResult(
        records=[record(i) for i in range(num_records)],
        link_stats=[],
        duration_s=1.0,
        unfinished_flows=unfinished,
        routing_decisions=0,
        monitor_samples=0,
        scenario_metrics=metrics,
    )


class TestCoreConfigs:
    def test_cores_with_distinct_flag_combinations(self):
        expected = {"scalar", "vectorized", "soa", "cc_blocks", "numpy_fused"}
        # a torch entry appears only where torch is importable
        assert expected <= set(CORE_CONFIGS) <= expected | {"torch"}
        combos = {tuple(sorted(c.items())) for c in CORE_CONFIGS.values()}
        assert len(combos) == len(CORE_CONFIGS)


class TestDemandConservation:
    def test_balanced_run_passes(self):
        check_demand_conservation(result_of(10), num_demands=10)

    def test_lost_demand_fires(self):
        with pytest.raises(InvariantViolation, match="demand conservation"):
            check_demand_conservation(result_of(9), num_demands=10)

    def test_injected_and_cancelled_enter_the_balance(self):
        metrics = ScenarioMetrics(
            scenario_name="s",
            outcomes=[
                EventOutcome(
                    index=0, kind="traffic-surge", description="", scheduled_s=0.1,
                    applied_s=0.1, flows_injected=3,
                ),
                EventOutcome(
                    index=1, kind="traffic-drain", description="", scheduled_s=0.2,
                    applied_s=0.2, flows_cancelled=2,
                ),
            ],
        )
        # 10 base + 3 injected == 11 completed + 2 cancelled
        check_demand_conservation(result_of(11, metrics=metrics), num_demands=10)
        with pytest.raises(InvariantViolation):
            check_demand_conservation(result_of(12, metrics=metrics), num_demands=10)

    def test_duplicate_completion_fires(self):
        result = result_of(2)
        # records is a view; replace the whole list to build the bad run
        result.records = [record(0), record(0)]
        with pytest.raises(InvariantViolation, match="duplicate"):
            check_demand_conservation(result, num_demands=2)


class TestDownIntervals:
    def topo(self, tiny_topology):
        return tiny_topology

    def test_cut_and_repair_span(self, tiny_topology):
        scenario = Scenario(
            name="s", events=(LinkDown(0.1, "A", "B"), LinkUp(0.3, "A", "B"))
        )
        intervals = down_intervals(scenario, tiny_topology)
        assert intervals[("A", "B")] == [(0.1, 0.3)]
        assert intervals[("B", "A")] == [(0.1, 0.3)]

    def test_unrepaired_cut_extends_forever(self, tiny_topology):
        scenario = Scenario(name="s", events=(LinkDown(0.1, "A", "B"),))
        (span,) = down_intervals(scenario, tiny_topology)[("A", "B")]
        assert span[0] == 0.1 and math.isinf(span[1])

    def test_coincident_cut_and_repair_net_to_nothing(self, tiny_topology):
        scenario = Scenario(
            name="s", events=(LinkDown(0.1, "A", "B"), LinkUp(0.1, "A", "B"))
        )
        assert down_intervals(scenario, tiny_topology) == {}

    def test_overlapping_causes_merge(self, tiny_topology):
        scenario = Scenario(
            name="s",
            events=(
                DCMaintenance(0.1, dc="B", duration_s=0.2),
                SRLGFailure(
                    0.2, name="g", links=(("A", "B"),), recover_at_s=0.5
                ),
            ),
        )
        intervals = down_intervals(scenario, tiny_topology)
        # maintenance [0.1, 0.3) and the cut [0.2, 0.5) merge into one span
        assert intervals[("A", "B")] == [(0.1, 0.5)]
        # the C<->B ports only suffer the maintenance window
        assert intervals[("C", "B")] == [(0.1, pytest.approx(0.3))]

    def test_staggered_srlg_repairs(self, tiny_topology):
        scenario = Scenario(
            name="s",
            events=(
                SRLGFailure(
                    0.1,
                    name="g",
                    links=(("A", "B"), ("C", "B")),
                    recover_at_s=0.2,
                    stagger_s=0.1,
                ),
            ),
        )
        intervals = down_intervals(scenario, tiny_topology)
        assert intervals[("A", "B")] == [(0.1, 0.2)]
        assert intervals[("C", "B")] == [(0.1, pytest.approx(0.3))]

    def test_calendar_expands_before_reconstruction(self, tiny_topology):
        scenario = Scenario(
            name="s",
            events=(
                MaintenanceCalendar(
                    0.1, dc="C", window_s=0.1, period_s=0.3, occurrences=2
                ),
            ),
        )
        intervals = down_intervals(scenario, tiny_topology)
        assert intervals[("A", "C")] == [
            (0.1, pytest.approx(0.2)),
            (pytest.approx(0.4), pytest.approx(0.5)),
        ]


class TestRecoveryBound:
    def metrics(self, disrupted=2, rerouted=2, restored=0, failed=0, latencies=()):
        return ScenarioMetrics(
            scenario_name="s",
            outcomes=[
                EventOutcome(
                    index=0, kind="link-down", description="", scheduled_s=0.1,
                    applied_s=0.1, flows_disrupted=disrupted,
                    flows_rerouted=rerouted, flows_restored=restored,
                    flows_failed=failed, reroute_latencies_s=list(latencies),
                ),
            ],
        )

    def scenario(self):
        return Scenario(
            name="s", events=(LinkDown(0.1, "A", "B"), LinkUp(0.3, "A", "B"))
        )

    def test_closed_disruptions_pass(self):
        result = result_of(5, metrics=self.metrics())
        check_recovery_bound(result, self.scenario(), update_interval_s=1e-3)

    def test_open_disruption_fires(self):
        result = result_of(5, metrics=self.metrics(disrupted=3, rerouted=2))
        with pytest.raises(InvariantViolation, match="open"):
            check_recovery_bound(result, self.scenario(), update_interval_s=1e-3)

    def test_slow_recovery_fires(self):
        # repair span is 0.2s; a 0.5s reroute latency breaches the bound
        result = result_of(5, metrics=self.metrics(latencies=(0.5,)))
        with pytest.raises(InvariantViolation, match="exceeding"):
            check_recovery_bound(result, self.scenario(), update_interval_s=1e-3)

    def test_residual_flows_fire_when_drain_required(self):
        result = result_of(5, unfinished=1, metrics=self.metrics())
        with pytest.raises(InvariantViolation, match="unfinished"):
            check_recovery_bound(result, self.scenario(), update_interval_s=1e-3)
        check_recovery_bound(
            result, self.scenario(), update_interval_s=1e-3, require_drained=False
        )


class TestBitIdentity:
    def test_identical_results_pass(self):
        assert_results_identical(result_of(3), result_of(3))

    def test_differing_record_fires(self):
        a, b = result_of(3), result_of(3)
        b.records = [record(0), record(1, fct_s=0.011), record(2)]
        with pytest.raises(InvariantViolation, match="record mismatch"):
            assert_results_identical(a, b)

    def test_differing_counter_fires(self):
        a, b = result_of(3), result_of(3)
        b.unfinished_flows = 1
        with pytest.raises(InvariantViolation, match="unfinished_flows"):
            assert_results_identical(a, b)

    def test_metrics_presence_mismatch_fires(self):
        a = result_of(1)
        b = result_of(1, metrics=ScenarioMetrics(scenario_name="s"))
        with pytest.raises(InvariantViolation, match="only one side"):
            assert_results_identical(a, b)
