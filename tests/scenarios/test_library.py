"""The canned scenario library and its registry."""

import pytest

from repro.scenarios import (
    DCMaintenance,
    LinkDown,
    LinkUp,
    MaintenanceCalendar,
    RegionalPowerEvent,
    SRLGFailure,
    TrafficSurge,
    cascading_failure,
    conduit_cut,
    diurnal_surge,
    get_scenario,
    maintenance_calendar,
    regional_power_outage,
    rolling_maintenance,
    scenario_names,
    single_link_cut,
)


class TestRegistry:
    def test_names_cover_all_builders(self):
        assert scenario_names() == sorted(
            [
                "single-link-cut",
                "cascading-failure",
                "diurnal-surge",
                "rolling-maintenance",
                "conduit-cut",
                "regional-power-outage",
                "maintenance-calendar",
            ]
        )

    def test_get_scenario_builds(self):
        scenario = get_scenario("single-link-cut")
        assert scenario.name == "single-link-cut"

    def test_get_scenario_forwards_kwargs(self):
        scenario = get_scenario("single-link-cut", fail_at_s=0.1, recover_at_s=0.2)
        times = [e.time_s for e in scenario.sorted_events()]
        assert times == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="single-link-cut"):
            get_scenario("does-not-exist")


class TestBuilders:
    def test_single_link_cut_shape(self, testbed_topology):
        scenario = single_link_cut()
        scenario.validate(testbed_topology)
        down, up = scenario.sorted_events()
        assert isinstance(down, LinkDown) and isinstance(up, LinkUp)
        assert down.time_s < up.time_s

    def test_single_link_cut_rejects_inverted_times(self):
        with pytest.raises(ValueError, match="recover_at_s"):
            single_link_cut(fail_at_s=1.0, recover_at_s=0.5)

    def test_cascading_failure_staggers_cuts(self, testbed_topology):
        scenario = cascading_failure()
        scenario.validate(testbed_topology)
        downs = [e for e in scenario.sorted_events() if isinstance(e, LinkDown)]
        ups = [e for e in scenario.sorted_events() if isinstance(e, LinkUp)]
        assert len(downs) == 3 and len(ups) == 3
        cut_times = [e.time_s for e in downs]
        assert cut_times == sorted(cut_times) and len(set(cut_times)) == 3
        assert len({e.time_s for e in ups}) == 1  # repaired at once
        assert scenario.stranded_timeout_s is not None

    def test_cascading_failure_needs_links(self):
        with pytest.raises(ValueError, match="at least one link"):
            cascading_failure(links=())

    def test_diurnal_surge_periodic_peaks(self, testbed_topology):
        scenario = diurnal_surge(peaks=3, period_s=1.0, first_peak_s=0.5)
        scenario.validate(testbed_topology)
        events = scenario.sorted_events()
        assert all(isinstance(e, TrafficSurge) for e in events)
        assert [e.time_s for e in events] == [
            pytest.approx(0.5),
            pytest.approx(1.5),
            pytest.approx(2.5),
        ]

    def test_rolling_maintenance_windows_do_not_overlap(self, testbed_topology):
        scenario = rolling_maintenance(
            dcs=("DC2", "DC4"), first_at_s=0.5, window_s=0.4, gap_s=0.2
        )
        scenario.validate(testbed_topology)
        events = scenario.sorted_events()
        assert all(isinstance(e, DCMaintenance) for e in events)
        for earlier, later in zip(events, events[1:]):
            assert later.time_s >= earlier.end_s

    def test_rolling_maintenance_needs_dcs(self):
        with pytest.raises(ValueError, match="at least one DC"):
            rolling_maintenance(dcs=())


class TestCorrelatedFailureBuilders:
    def test_conduit_cut_shape(self, testbed_topology):
        scenario = conduit_cut()
        scenario.validate(testbed_topology)
        (event,) = scenario.sorted_events()
        assert isinstance(event, SRLGFailure)
        assert len(event.links) == 3
        repairs = event.recovery_times()
        assert list(repairs) == sorted(repairs) and len(set(repairs)) == 3
        assert scenario.stranded_timeout_s is not None

    def test_conduit_cut_rejects_inverted_times(self):
        with pytest.raises(ValueError, match="repair_at_s"):
            conduit_cut(cut_at_s=1.0, repair_at_s=0.5)

    def test_regional_power_outage_shape(self, testbed_topology):
        scenario = regional_power_outage()
        scenario.validate(testbed_topology)
        (event,) = scenario.sorted_events()
        assert isinstance(event, RegionalPowerEvent)
        blackout, degraded = event.classify_dcs(testbed_topology)
        assert blackout and degraded  # the default hits both classes

    def test_maintenance_calendar_shape(self, testbed_topology):
        scenario = maintenance_calendar(occurrences=3)
        scenario.validate(testbed_topology)
        (calendar,) = scenario.sorted_events()
        assert isinstance(calendar, MaintenanceCalendar)
        windows = scenario.compiled_events()
        assert len(windows) == 3
        assert all(isinstance(w, DCMaintenance) for w in windows)
        for earlier, later in zip(windows, windows[1:]):
            assert later.time_s >= earlier.end_s
