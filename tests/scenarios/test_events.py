"""Validation and shape of the declarative scenario event model."""

import pytest

from repro.scenarios import (
    CapacityChange,
    DCMaintenance,
    LinkDown,
    LinkUp,
    Scenario,
    TrafficDrain,
    TrafficSurge,
)


class TestLinkEvents:
    def test_valid_link_down(self, tiny_topology):
        LinkDown(0.5, "A", "B").validate(tiny_topology)

    def test_negative_time_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="non-negative"):
            LinkDown(-0.1, "A", "B").validate(tiny_topology)

    def test_unknown_link_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="no inter-DC link"):
            LinkDown(0.0, "A", "Z").validate(tiny_topology)

    def test_unidirectional_checks_one_direction(self, tiny_topology):
        # every tiny-topology link exists in both directions, so both pass;
        # the directed form must not require the reverse key of a bogus pair
        LinkUp(0.0, "B", "A", bidirectional=False).validate(tiny_topology)

    def test_describe_mentions_endpoints(self):
        text = LinkDown(1.25, "A", "B").describe()
        assert "A" in text and "B" in text and "link-down" in text


class TestCapacityChange:
    def test_valid(self, tiny_topology):
        CapacityChange(0.1, "A", "B", factor=0.5).validate(tiny_topology)

    @pytest.mark.parametrize("factor", [0.0, -1.0])
    def test_non_positive_factor_rejected(self, tiny_topology, factor):
        with pytest.raises(ValueError, match="factor must be positive"):
            CapacityChange(0.1, "A", "B", factor=factor).validate(tiny_topology)


class TestTrafficSurge:
    def test_valid_with_num_flows(self, tiny_topology):
        TrafficSurge(0.2, pairs=(("A", "B"),), num_flows=10).validate(tiny_topology)

    def test_valid_with_duration(self, tiny_topology):
        TrafficSurge(0.2, pairs=(("A", "B"),), duration_s=0.5).validate(tiny_topology)

    def test_needs_exactly_one_sizing(self, tiny_topology):
        with pytest.raises(ValueError, match="exactly one"):
            TrafficSurge(0.2, pairs=(("A", "B"),)).validate(tiny_topology)
        with pytest.raises(ValueError, match="exactly one"):
            TrafficSurge(
                0.2, pairs=(("A", "B"),), num_flows=5, duration_s=0.5
            ).validate(tiny_topology)

    def test_unknown_dc_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="unknown DC"):
            TrafficSurge(0.2, pairs=(("A", "Z"),), num_flows=5).validate(tiny_topology)

    def test_empty_pairs_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="at least one"):
            TrafficSurge(0.2, pairs=(), num_flows=5).validate(tiny_topology)


class TestTrafficDrain:
    def test_valid(self, tiny_topology):
        TrafficDrain(0.3, src_dc="A").validate(tiny_topology)

    @pytest.mark.parametrize("fraction", [0.0, 1.5, -0.2])
    def test_fraction_bounds(self, tiny_topology, fraction):
        with pytest.raises(ValueError, match="fraction"):
            TrafficDrain(0.3, fraction=fraction).validate(tiny_topology)

    def test_matches_filters_by_pair(self):
        drain = TrafficDrain(0.0, src_dc="A", dst_dc="B")

        class Demand:
            def __init__(self, fid, src, dst):
                self.flow_id, self.src_dc, self.dst_dc = fid, src, dst

        assert drain.matches(Demand(1, "A", "B"))
        assert not drain.matches(Demand(1, "A", "C"))
        assert not drain.matches(Demand(1, "C", "B"))

    def test_fractional_drain_is_deterministic_subset(self):
        drain = TrafficDrain(0.0, fraction=0.5)

        class Demand:
            def __init__(self, fid):
                self.flow_id, self.src_dc, self.dst_dc = fid, "A", "B"

        picked = [fid for fid in range(1000) if drain.matches(Demand(fid))]
        again = [fid for fid in range(1000) if drain.matches(Demand(fid))]
        assert picked == again
        # roughly half, and a strict subset
        assert 350 < len(picked) < 650


class TestDCMaintenance:
    def test_valid(self, tiny_topology):
        DCMaintenance(0.5, dc="C", duration_s=0.2).validate(tiny_topology)

    def test_unknown_dc_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="unknown DC"):
            DCMaintenance(0.5, dc="Z", duration_s=0.2).validate(tiny_topology)

    def test_non_positive_duration_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="duration_s"):
            DCMaintenance(0.5, dc="C", duration_s=0.0).validate(tiny_topology)

    def test_end_time(self):
        event = DCMaintenance(0.5, dc="C", duration_s=0.25)
        assert event.end_s == pytest.approx(0.75)


class TestScenario:
    def test_sorted_events(self, tiny_topology):
        scenario = Scenario(
            name="s",
            events=(LinkUp(1.0, "A", "B"), LinkDown(0.5, "A", "B")),
        )
        times = [e.time_s for e in scenario.sorted_events()]
        assert times == sorted(times)
        scenario.validate(tiny_topology)

    def test_validate_propagates_event_errors(self, tiny_topology):
        scenario = Scenario(name="s", events=(LinkDown(0.0, "A", "Z"),))
        with pytest.raises(ValueError, match="no inter-DC link"):
            scenario.validate(tiny_topology)

    def test_needs_name(self, tiny_topology):
        with pytest.raises(ValueError, match="name"):
            Scenario(name="", events=()).validate(tiny_topology)

    def test_stranded_timeout_positive(self, tiny_topology):
        with pytest.raises(ValueError, match="stranded_timeout_s"):
            Scenario(name="s", stranded_timeout_s=0.0).validate(tiny_topology)

    def test_describe_lists_events(self, tiny_topology):
        scenario = Scenario(
            name="cut", events=(LinkDown(0.5, "A", "B"), LinkUp(1.0, "A", "B"))
        )
        text = scenario.describe()
        assert "cut" in text and "link-down" in text and "link-up" in text
