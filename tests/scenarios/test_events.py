"""Validation and shape of the declarative scenario event model."""

import pytest

from repro.scenarios import (
    CapacityChange,
    DCMaintenance,
    LinkDown,
    LinkUp,
    MaintenanceCalendar,
    RegionalPowerEvent,
    Scenario,
    SRLGFailure,
    TrafficDrain,
    TrafficSurge,
)


class TestLinkEvents:
    def test_valid_link_down(self, tiny_topology):
        LinkDown(0.5, "A", "B").validate(tiny_topology)

    def test_negative_time_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="non-negative"):
            LinkDown(-0.1, "A", "B").validate(tiny_topology)

    def test_unknown_link_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="no inter-DC link"):
            LinkDown(0.0, "A", "Z").validate(tiny_topology)

    def test_unidirectional_checks_one_direction(self, tiny_topology):
        # every tiny-topology link exists in both directions, so both pass;
        # the directed form must not require the reverse key of a bogus pair
        LinkUp(0.0, "B", "A", bidirectional=False).validate(tiny_topology)

    def test_describe_mentions_endpoints(self):
        text = LinkDown(1.25, "A", "B").describe()
        assert "A" in text and "B" in text and "link-down" in text


class TestCapacityChange:
    def test_valid(self, tiny_topology):
        CapacityChange(0.1, "A", "B", factor=0.5).validate(tiny_topology)

    @pytest.mark.parametrize("factor", [0.0, -1.0])
    def test_non_positive_factor_rejected(self, tiny_topology, factor):
        with pytest.raises(ValueError, match="factor must be positive"):
            CapacityChange(0.1, "A", "B", factor=factor).validate(tiny_topology)


class TestTrafficSurge:
    def test_valid_with_num_flows(self, tiny_topology):
        TrafficSurge(0.2, pairs=(("A", "B"),), num_flows=10).validate(tiny_topology)

    def test_valid_with_duration(self, tiny_topology):
        TrafficSurge(0.2, pairs=(("A", "B"),), duration_s=0.5).validate(tiny_topology)

    def test_needs_exactly_one_sizing(self, tiny_topology):
        with pytest.raises(ValueError, match="exactly one"):
            TrafficSurge(0.2, pairs=(("A", "B"),)).validate(tiny_topology)
        with pytest.raises(ValueError, match="exactly one"):
            TrafficSurge(
                0.2, pairs=(("A", "B"),), num_flows=5, duration_s=0.5
            ).validate(tiny_topology)

    def test_unknown_dc_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="unknown DC"):
            TrafficSurge(0.2, pairs=(("A", "Z"),), num_flows=5).validate(tiny_topology)

    def test_empty_pairs_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="at least one"):
            TrafficSurge(0.2, pairs=(), num_flows=5).validate(tiny_topology)


class TestTrafficDrain:
    def test_valid(self, tiny_topology):
        TrafficDrain(0.3, src_dc="A").validate(tiny_topology)

    @pytest.mark.parametrize("fraction", [0.0, 1.5, -0.2])
    def test_fraction_bounds(self, tiny_topology, fraction):
        with pytest.raises(ValueError, match="fraction"):
            TrafficDrain(0.3, fraction=fraction).validate(tiny_topology)

    def test_matches_filters_by_pair(self):
        drain = TrafficDrain(0.0, src_dc="A", dst_dc="B")

        class Demand:
            def __init__(self, fid, src, dst):
                self.flow_id, self.src_dc, self.dst_dc = fid, src, dst

        assert drain.matches(Demand(1, "A", "B"))
        assert not drain.matches(Demand(1, "A", "C"))
        assert not drain.matches(Demand(1, "C", "B"))

    def test_fractional_drain_is_deterministic_subset(self):
        drain = TrafficDrain(0.0, fraction=0.5)

        class Demand:
            def __init__(self, fid):
                self.flow_id, self.src_dc, self.dst_dc = fid, "A", "B"

        picked = [fid for fid in range(1000) if drain.matches(Demand(fid))]
        again = [fid for fid in range(1000) if drain.matches(Demand(fid))]
        assert picked == again
        # roughly half, and a strict subset
        assert 350 < len(picked) < 650


class TestDCMaintenance:
    def test_valid(self, tiny_topology):
        DCMaintenance(0.5, dc="C", duration_s=0.2).validate(tiny_topology)

    def test_unknown_dc_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="unknown DC"):
            DCMaintenance(0.5, dc="Z", duration_s=0.2).validate(tiny_topology)

    def test_non_positive_duration_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="duration_s"):
            DCMaintenance(0.5, dc="C", duration_s=0.0).validate(tiny_topology)

    def test_end_time(self):
        event = DCMaintenance(0.5, dc="C", duration_s=0.25)
        assert event.end_s == pytest.approx(0.75)


class TestScenario:
    def test_sorted_events(self, tiny_topology):
        scenario = Scenario(
            name="s",
            events=(LinkUp(1.0, "A", "B"), LinkDown(0.5, "A", "B")),
        )
        times = [e.time_s for e in scenario.sorted_events()]
        assert times == sorted(times)
        scenario.validate(tiny_topology)

    def test_validate_propagates_event_errors(self, tiny_topology):
        scenario = Scenario(name="s", events=(LinkDown(0.0, "A", "Z"),))
        with pytest.raises(ValueError, match="no inter-DC link"):
            scenario.validate(tiny_topology)

    def test_needs_name(self, tiny_topology):
        with pytest.raises(ValueError, match="name"):
            Scenario(name="", events=()).validate(tiny_topology)

    def test_stranded_timeout_positive(self, tiny_topology):
        with pytest.raises(ValueError, match="stranded_timeout_s"):
            Scenario(name="s", stranded_timeout_s=0.0).validate(tiny_topology)

    def test_describe_lists_events(self, tiny_topology):
        scenario = Scenario(
            name="cut", events=(LinkDown(0.5, "A", "B"), LinkUp(1.0, "A", "B"))
        )
        text = scenario.describe()
        assert "cut" in text and "link-down" in text and "link-up" in text


class TestSRLGFailure:
    def test_valid_group(self, tiny_topology):
        SRLGFailure(
            0.5, name="conduit", links=(("A", "B"), ("A", "C")), recover_at_s=1.0
        ).validate(tiny_topology)

    def test_needs_name_and_links(self, tiny_topology):
        with pytest.raises(ValueError, match="group name"):
            SRLGFailure(0.5, links=(("A", "B"),)).validate(tiny_topology)
        with pytest.raises(ValueError, match="at least one link"):
            SRLGFailure(0.5, name="conduit").validate(tiny_topology)

    def test_duplicate_link_rejected(self, tiny_topology):
        with pytest.raises(ValueError, match="duplicate"):
            SRLGFailure(
                0.5, name="conduit", links=(("A", "B"), ("A", "B"))
            ).validate(tiny_topology)

    def test_repair_must_follow_cut(self, tiny_topology):
        with pytest.raises(ValueError, match="recover_at_s"):
            SRLGFailure(
                0.5, name="conduit", links=(("A", "B"),), recover_at_s=0.5
            ).validate(tiny_topology)

    def test_recovery_times_staggered(self):
        event = SRLGFailure(
            0.5,
            name="conduit",
            links=(("A", "B"), ("A", "C"), ("C", "B")),
            recover_at_s=1.0,
            stagger_s=0.25,
        )
        assert event.recovery_times() == (1.0, 1.25, 1.5)

    def test_no_repair_means_no_recovery_times(self):
        event = SRLGFailure(0.5, name="conduit", links=(("A", "B"),))
        assert event.recovery_times() == ()

    def test_affected_keys_cover_both_directions(self):
        event = SRLGFailure(0.5, name="conduit", links=(("A", "B"),))
        assert event.affected_link_keys(None) == (("A", "B"), ("B", "A"))


class TestRegionalPowerEvent:
    def test_valid_region_filter(self, testbed_topology):
        RegionalPowerEvent(0.5, region="west", duration_s=1.0).validate(
            testbed_topology
        )

    def test_needs_some_filter(self, testbed_topology):
        with pytest.raises(ValueError, match="filter"):
            RegionalPowerEvent(0.5, duration_s=1.0).validate(testbed_topology)

    def test_filter_must_match_a_dc(self, testbed_topology):
        with pytest.raises(ValueError, match="no DC matches"):
            RegionalPowerEvent(0.5, region="atlantis", duration_s=1.0).validate(
                testbed_topology
            )

    def test_unknown_redundancy_level_rejected(self, testbed_topology):
        with pytest.raises(ValueError):
            RegionalPowerEvent(
                0.5, region="west", duration_s=1.0, survives_redundancy="3N"
            ).validate(testbed_topology)

    def test_classification_honours_redundancy(self, testbed_topology):
        event = RegionalPowerEvent(
            0.5, region="west", duration_s=1.0, survives_redundancy="2N"
        )
        blackout, degraded = event.classify_dcs(testbed_topology)
        assert "DC1" in degraded  # 2N endpoint rides through
        assert set(blackout) == {"DC2", "DC3"}  # N+1 relays black out

    def test_everything_survives_at_lowest_threshold(self, testbed_topology):
        event = RegionalPowerEvent(
            0.5, region="west", duration_s=1.0, survives_redundancy="N"
        )
        blackout, degraded = event.classify_dcs(testbed_topology)
        assert blackout == ()
        assert set(degraded) == {"DC1", "DC2", "DC3"}

    def test_window_end(self):
        event = RegionalPowerEvent(0.5, region="west", duration_s=0.25)
        assert event.end_s == pytest.approx(0.75)


class TestMaintenanceCalendar:
    def test_compiles_into_windows(self, tiny_topology):
        calendar = MaintenanceCalendar(
            0.5, dc="B", window_s=0.2, period_s=1.0, occurrences=3
        )
        calendar.validate(tiny_topology)
        windows = calendar.compile()
        assert all(isinstance(w, DCMaintenance) for w in windows)
        assert [w.time_s for w in windows] == [
            pytest.approx(0.5),
            pytest.approx(1.5),
            pytest.approx(2.5),
        ]
        assert all(w.duration_s == pytest.approx(0.2) for w in windows)

    def test_period_must_cover_window(self, tiny_topology):
        with pytest.raises(ValueError, match="period"):
            MaintenanceCalendar(
                0.5, dc="B", window_s=0.5, period_s=0.2, occurrences=2
            ).validate(tiny_topology)

    def test_needs_positive_occurrences(self, tiny_topology):
        with pytest.raises(ValueError, match="occurrence"):
            MaintenanceCalendar(
                0.5, dc="B", window_s=0.2, period_s=0.5, occurrences=0
            ).validate(tiny_topology)

    def test_back_to_back_windows_allowed(self, tiny_topology):
        calendar = MaintenanceCalendar(
            0.5, dc="B", window_s=0.2, period_s=0.2, occurrences=2
        )
        calendar.validate(tiny_topology)
        first, second = calendar.compile()
        assert second.time_s == pytest.approx(first.end_s)


class TestCompiledEvents:
    def test_identity_without_recurring_events(self, tiny_topology):
        scenario = Scenario(
            name="plain",
            events=(LinkDown(0.5, "A", "B"), LinkUp(1.0, "A", "B")),
        )
        assert scenario.compiled_events() == scenario.sorted_events()

    def test_calendar_expands_and_sorts(self, tiny_topology):
        scenario = Scenario(
            name="mixed",
            events=(
                LinkDown(1.2, "A", "B"),
                MaintenanceCalendar(0.5, dc="B", window_s=0.2, period_s=1.0, occurrences=2),
            ),
        )
        compiled = scenario.compiled_events()
        assert [type(e).__name__ for e in compiled] == [
            "DCMaintenance",
            "LinkDown",
            "DCMaintenance",
        ]
        assert [e.time_s for e in compiled] == sorted(e.time_s for e in compiled)
