"""Injector behaviour: events applied mid-run, metrics, traffic events."""

import pytest

from repro.congestion_control import make_cc_factory
from repro.routing import make_router_factory
from repro.scenarios import (
    SURGE_FLOW_ID_BASE,
    CapacityChange,
    DCMaintenance,
    LinkDown,
    LinkUp,
    MaintenanceCalendar,
    RegionalPowerEvent,
    Scenario,
    SRLGFailure,
    TrafficDrain,
    TrafficSurge,
)
from repro.simulator import FlowDemand, FluidSimulation, RuntimeNetwork
from repro.topology import GBPS, MS, PathSet, Topology


def make_sim(topology, pathset, config, demands, scenario=None, router="ecmp", cc="fixed"):
    network = RuntimeNetwork(topology, pathset, make_router_factory(router), config)
    sim = FluidSimulation(
        network, demands, make_cc_factory(cc), config, scenario=scenario
    )
    return network, sim


def steady_demands(count=20, size=100_000_000, spacing=0.005):
    return [
        FlowDemand(i, "A", "B", i % 4, i % 4, size, i * spacing) for i in range(count)
    ]


class TestStateEvents:
    def test_link_down_applies_at_event_time(self, tiny_topology, tiny_pathset, quick_sim_config):
        scenario = Scenario(name="cut", events=(LinkDown(0.02, "A", "B"),))
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(), scenario
        )
        result = sim.run()
        assert not network.link("A", "B").up
        assert not network.link("B", "A").up
        outcome = result.scenario_metrics.outcomes[0]
        assert outcome.applied_s == pytest.approx(0.02)
        assert result.unfinished_flows == 0

    def test_cut_and_repair_restores_liveness(self, tiny_topology, tiny_pathset, quick_sim_config):
        scenario = Scenario(
            name="cut-repair",
            events=(LinkDown(0.02, "A", "B"), LinkUp(0.05, "A", "B")),
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(), scenario
        )
        result = sim.run()
        assert network.link("A", "B").up
        metrics = result.scenario_metrics
        # flows riding A->B when it died must have been moved or restored
        assert metrics.total_disrupted >= 1
        assert (
            metrics.total_rerouted + metrics.total_restored == metrics.total_disrupted
        )
        assert result.unfinished_flows == 0
        assert len(result.records) == 20

    def test_disrupted_flows_reroute_onto_detour(self, tiny_topology, tiny_pathset, quick_sim_config):
        # one big flow A->B; the direct link dies mid-transfer, the only
        # healthy path is the A->C->B detour
        demands = [FlowDemand(0, "A", "B", 0, 0, 200_000_000, 0.0)]
        scenario = Scenario(name="cut", events=(LinkDown(0.01, "A", "B"),))
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, demands, scenario
        )
        result = sim.run()
        assert len(result.records) == 1
        outcome = result.scenario_metrics.outcomes[0]
        assert outcome.flows_disrupted == 1
        assert outcome.flows_rerouted == 1
        assert result.records[0].path_dcs == ("A", "C", "B")

    def test_capacity_change_scales_effective_rate(self, tiny_topology, tiny_pathset, quick_sim_config):
        scenario = Scenario(
            name="brownout", events=(CapacityChange(0.02, "A", "B", factor=0.25),)
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(), scenario
        )
        provisioned = network.link("A", "B").spec.cap_bps
        sim.run()
        assert network.link("A", "B").cap_bps == pytest.approx(0.25 * provisioned)
        assert network.link("B", "A").cap_bps == pytest.approx(0.25 * provisioned)

    def test_maintenance_revert_does_not_resurrect_explicit_cut(self, tiny_topology, tiny_pathset, quick_sim_config):
        """An explicit LinkDown overlapping a maintenance window must keep
        the link dead after the window closes (down-causes are counted)."""
        scenario = Scenario(
            name="overlap",
            events=(
                LinkDown(0.005, "A", "C"),
                DCMaintenance(0.01, dc="C", duration_s=0.01),
            ),
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(count=4), scenario
        )
        sim.run()
        # maintenance ended at 0.02 but the explicit cut was never repaired
        assert not network.link("A", "C").up
        # links only the maintenance touched did come back
        assert network.link("C", "B").up

    def test_overlapping_maintenance_windows_compose(self, tiny_topology, tiny_pathset, quick_sim_config):
        """The shared A-C... A-B link of two overlapping windows stays down
        until the *second* window closes."""
        scenario = Scenario(
            name="double-maint",
            events=(
                DCMaintenance(0.01, dc="A", duration_s=0.03),   # ends 0.04
                DCMaintenance(0.02, dc="B", duration_s=0.04),   # ends 0.06
            ),
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(count=4), scenario
        )
        seen = {}
        # A<->B is adjacent to both windows; probe between the two ends
        sim.engine.schedule(0.05, lambda: seen.update(shared=network.link("A", "B").up))
        sim.run()
        assert seen["shared"] is False
        assert network.link("A", "B").up  # both windows closed by run end

    def test_dc_maintenance_window_downs_and_restores(self, tiny_topology, tiny_pathset, quick_sim_config):
        scenario = Scenario(
            name="maint", events=(DCMaintenance(0.02, dc="C", duration_s=0.03),)
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(), scenario
        )
        seen = {}

        def probe():
            seen["during"] = (
                network.link("A", "C").up,
                network.link("C", "B").up,
            )

        sim.engine.schedule(0.03, probe)
        result = sim.run()
        assert seen["during"] == (False, False)
        assert network.link("A", "C").up and network.link("C", "B").up
        outcome = result.scenario_metrics.outcomes[0]
        assert outcome.applied_s == pytest.approx(0.02)
        assert outcome.reverted_s == pytest.approx(0.05)


class TestStrandedFlows:
    def test_total_blackhole_fails_flows_after_timeout(self, tiny_topology, tiny_pathset, quick_sim_config):
        # kill every path out of A: flows in flight are stranded and must be
        # explicitly failed once the scenario timeout expires
        demands = steady_demands(count=8, size=50_000_000, spacing=0.001)
        scenario = Scenario(
            name="blackhole",
            events=(LinkDown(0.02, "A", "B"), LinkDown(0.02, "A", "C")),
            stranded_timeout_s=0.05,
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, demands, scenario
        )
        result = sim.run()
        assert result.failed_flows, "stranded flows must be recorded as failed"
        assert result.unfinished_flows == 0
        assert len(result.records) + len(result.failed_flows) == len(demands)
        for failure in result.failed_flows:
            assert failure.failed_s - failure.disrupted_s >= 0.05 - 1e-9
            assert failure.remaining_bytes > 0
        metrics = result.scenario_metrics
        assert metrics.total_failed == len(result.failed_flows)

    def test_without_timeout_flows_wait_for_recovery(self, tiny_topology, tiny_pathset, quick_sim_config):
        demands = steady_demands(count=4, size=50_000_000, spacing=0.001)
        # both paths die; the link the flows end up pinned on (A->C->B,
        # after the first cut re-routed them there) is repaired first, so
        # their paths heal *in place* — a restore, not a re-route
        scenario = Scenario(
            name="outage",
            events=(
                LinkDown(0.01, "A", "B"),
                LinkDown(0.01, "A", "C"),
                LinkUp(0.2, "A", "C"),
                LinkUp(0.25, "A", "B"),
            ),
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, demands, scenario
        )
        result = sim.run()
        assert not result.failed_flows
        assert result.unfinished_flows == 0
        assert len(result.records) == len(demands)
        # pinned flows resumed only after the repair
        assert all(r.fct_s > 0.1 for r in result.records)
        # in-place repair waits are recorded separately and never pollute
        # the fast-failover (reroute) latency metric
        pinning_cut = result.scenario_metrics.outcomes[1]  # LinkDown(A, C)
        assert pinning_cut.flows_restored > 0
        assert pinning_cut.reroute_latencies_s == []
        assert all(lat >= 0.15 for lat in pinning_cut.restore_latencies_s)
        assert pinning_cut.mean_restore_latency_s >= 0.15
        assert pinning_cut.mean_reroute_latency_s == 0.0


class TestTrafficEvents:
    def test_surge_injects_offset_flow_ids(self, tiny_topology, tiny_pathset, quick_sim_config):
        scenario = Scenario(
            name="surge",
            events=(
                TrafficSurge(0.05, pairs=(("A", "B"),), load=0.3, num_flows=15),
            ),
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(), scenario
        )
        result = sim.run()
        surge_records = [r for r in result.records if r.flow_id >= SURGE_FLOW_ID_BASE]
        assert len(surge_records) == 15
        assert len(result.records) == 20 + 15
        assert all(r.arrival_s >= 0.05 for r in surge_records)
        assert result.scenario_metrics.total_injected == 15
        assert result.unfinished_flows == 0

    def test_surge_duration_derives_flow_count(self, tiny_topology, tiny_pathset, quick_sim_config):
        scenario = Scenario(
            name="surge",
            events=(
                TrafficSurge(0.05, pairs=(("A", "B"),), load=0.3, duration_s=0.1),
            ),
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(), scenario
        )
        result = sim.run()
        injected = result.scenario_metrics.total_injected
        assert injected >= 1
        assert len(result.records) == 20 + injected

    def test_two_surges_use_disjoint_id_blocks(self, tiny_topology, tiny_pathset, quick_sim_config):
        scenario = Scenario(
            name="double-surge",
            events=(
                TrafficSurge(0.04, pairs=(("A", "B"),), load=0.3, num_flows=5),
                TrafficSurge(0.08, pairs=(("A", "C"),), load=0.3, num_flows=5),
            ),
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(), scenario
        )
        result = sim.run()
        surge_ids = {r.flow_id for r in result.records if r.flow_id >= SURGE_FLOW_ID_BASE}
        assert len(surge_ids) == 10
        assert result.unfinished_flows == 0

    def test_surge_past_deadline_not_reported_as_fired(self, tiny_topology, tiny_pathset, quick_sim_config):
        """A surge the run never reaches keeps applied_s=None even though
        its demands were scheduled at install time."""
        config = quick_sim_config.with_overrides(max_sim_time_s=0.5, drain_timeout_s=0.2)
        scenario = Scenario(
            name="late-surge",
            events=(TrafficSurge(100.0, pairs=(("A", "B"),), load=0.3, num_flows=5),),
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, config, steady_demands(count=4), scenario
        )
        result = sim.run()
        outcome = result.scenario_metrics.outcomes[0]
        assert outcome.flows_injected == 5
        assert outcome.applied_s is None
        assert all(r.flow_id < SURGE_FLOW_ID_BASE for r in result.records)

    def test_drain_cancels_pending_matching_demands(self, tiny_topology, tiny_pathset, quick_sim_config):
        demands = steady_demands(count=20)
        scenario = Scenario(
            name="drain", events=(TrafficDrain(0.05, src_dc="A", dst_dc="B"),)
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, demands, scenario
        )
        result = sim.run()
        cancelled = result.scenario_metrics.total_cancelled
        assert cancelled > 0
        assert len(result.records) == len(demands) - cancelled
        assert result.unfinished_flows == 0
        # flows that arrived before the drain fired are untouched
        assert any(r.arrival_s < 0.05 for r in result.records)


class TestNoEventPath:
    def test_empty_scenario_is_transparent(self, tiny_topology, tiny_pathset, quick_sim_config):
        demands = steady_demands()
        _, plain = make_sim(tiny_topology, tiny_pathset, quick_sim_config, demands)
        plain_result = plain.run()
        _, scenario_sim = make_sim(
            tiny_topology,
            tiny_pathset,
            quick_sim_config,
            demands,
            Scenario(name="noop"),
        )
        scenario_result = scenario_sim.run()
        assert plain.engine.processed_events == scenario_sim.engine.processed_events
        assert [r.fct_s for r in plain_result.records] == [
            r.fct_s for r in scenario_result.records
        ]
        assert scenario_result.scenario_metrics is not None
        assert scenario_result.scenario_metrics.outcomes == []

    def test_scenario_validated_against_sim_topology(self, tiny_topology, tiny_pathset, quick_sim_config):
        scenario = Scenario(name="bad", events=(LinkDown(0.0, "A", "Z"),))
        with pytest.raises(ValueError, match="no inter-DC link"):
            make_sim(
                tiny_topology, tiny_pathset, quick_sim_config, steady_demands(), scenario
            )


def attributed_triangle():
    """The tiny triangle with facility metadata for correlated events.

    A is a 2N west endpoint, B a bare-feed west relay, C an N+1 east DC —
    so a west power event blacks out B while A rides through degraded.
    """
    topo = Topology("attr-triangle")
    topo.add_dc("A", region="west", tier="tier4", power_redundancy="2N")
    topo.add_dc("B", region="west", tier="tier3", power_redundancy="N")
    topo.add_dc("C", region="east", tier="tier3", power_redundancy="N+1")
    topo.add_inter_dc_link("A", "B", cap_bps=100 * GBPS, delay_s=5 * MS)
    topo.add_inter_dc_link("A", "C", cap_bps=40 * GBPS, delay_s=1 * MS)
    topo.add_inter_dc_link("C", "B", cap_bps=40 * GBPS, delay_s=1 * MS)
    for name in ("A", "B", "C"):
        topo.add_hosts(name, count=4, nic_bps=100 * GBPS)
    topo.validate()
    return topo, PathSet(topo, max_candidates=4, max_extra_hops=1)


class TestCorrelatedEvents:
    def test_srlg_fails_group_atomically_and_repairs_staggered(
        self, tiny_topology, tiny_pathset, quick_sim_config
    ):
        scenario = Scenario(
            name="conduit",
            events=(
                SRLGFailure(
                    0.02,
                    name="conduit",
                    links=(("A", "B"), ("C", "B")),
                    recover_at_s=0.05,
                    stagger_s=0.01,
                ),
            ),
            stranded_timeout_s=0.5,
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(), scenario
        )
        result = sim.run()
        outcome = result.scenario_metrics.outcomes[0]
        assert outcome.applied_s == pytest.approx(0.02)
        assert outcome.links_affected == 4  # both directions of both links
        # last staggered repair closes the outage window
        assert outcome.reverted_s == pytest.approx(0.06)
        for src, dst in (("A", "B"), ("B", "A"), ("C", "B"), ("B", "C")):
            assert network.link(src, dst).up
        assert result.unfinished_flows == 0

    def test_regional_power_blackout_honours_redundancy(self, quick_sim_config):
        topo, paths = attributed_triangle()
        scenario = Scenario(
            name="west-power",
            events=(
                RegionalPowerEvent(
                    0.02,
                    region="west",
                    duration_s=0.04,
                    survives_redundancy="2N",
                    degraded_factor=0.5,
                ),
            ),
            stranded_timeout_s=0.5,
        )
        network, sim = make_sim(topo, paths, quick_sim_config, steady_demands(), scenario)
        result = sim.run()
        outcome = result.scenario_metrics.outcomes[0]
        # B (bare feed) blacks out: its 4 directed ports go dark; A rides
        # through on the spare feed with A<->C dimmed -> 6 affected links
        assert outcome.links_affected == 6
        assert outcome.applied_s == pytest.approx(0.02)
        assert outcome.reverted_s == pytest.approx(0.06)
        for link in network.inter_dc_links:
            assert link.up
            assert link.capacity_factor == pytest.approx(1.0)
        assert result.unfinished_flows == 0

    def test_calendar_expands_to_one_outcome_per_window(
        self, tiny_topology, tiny_pathset, quick_sim_config
    ):
        scenario = Scenario(
            name="calendar",
            events=(
                MaintenanceCalendar(
                    0.01, dc="C", window_s=0.01, period_s=0.03, occurrences=2
                ),
            ),
            stranded_timeout_s=0.5,
        )
        network, sim = make_sim(
            tiny_topology, tiny_pathset, quick_sim_config, steady_demands(), scenario
        )
        result = sim.run()
        outcomes = result.scenario_metrics.outcomes
        assert [o.kind for o in outcomes] == ["dc-maintenance", "dc-maintenance"]
        assert [o.applied_s for o in outcomes] == [
            pytest.approx(0.01),
            pytest.approx(0.04),
        ]
        assert [o.reverted_s for o in outcomes] == [
            pytest.approx(0.02),
            pytest.approx(0.05),
        ]
        assert all(network.link(s, d).up for s, d in (("A", "C"), ("C", "B")))
        assert result.unfinished_flows == 0
