"""Replay the frozen fuzz corpus as plain regression tests.

Every JSON fixture under ``corpus/`` is a full fuzz case (topology,
demands, timeline, congestion control, seed) captured either by hand for
a known-interesting shape or from a past hypothesis falsifying example.
Replaying them through the same cross-core invariant harness — without
hypothesis — keeps historical counterexamples permanently in the tier-1
suite, independent of the example database.

To add a fixture, build a :class:`~repro.scenarios.fuzz.FuzzCase` and
dump it with :func:`~repro.scenarios.serialize.fuzz_case_to_dict`.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.scenarios.serialize import fuzz_case_from_dict

from .harness import check_all_invariants

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS_FILES, f"no corpus fixtures under {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_corpus_case_holds_all_invariants(path):
    case = fuzz_case_from_dict(json.loads(path.read_text()))
    check_all_invariants(case)
