"""Properties of the TrafficDrain golden-ratio selection hash.

``TrafficDrain.matches`` picks a deterministic subset of pending demands
by multiplicative hashing (``flow_id * 2^32/phi mod 2^32``), so the
drained set must (a) track the requested fraction closely for any id
population, (b) be a pure function of the flow id — independent of
demand order, other demands, or any RNG — and (c) agree between the
declarative prediction and what a simulation actually cancels, on every
core.
"""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.scenarios.events import Scenario, TrafficDrain
from repro.scenarios.fuzz import FUZZ_TOPOLOGIES, FuzzCase
from repro.scenarios.invariants import check_demand_conservation
from repro.simulator.flow import FlowDemand

from .harness import run_case

FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9)


def _demand(flow_id: int, src="DCA", dst="DCC", arrival=0.0) -> FlowDemand:
    return FlowDemand(
        flow_id=flow_id,
        src_dc=src,
        dst_dc=dst,
        src_host=0,
        dst_host=0,
        size_bytes=500_000,
        arrival_s=arrival,
    )


class TestGoldenRatioSelection:
    @given(
        start=st.integers(min_value=0, max_value=2**20),
        stride=st.integers(min_value=1, max_value=16),
        count=st.integers(min_value=200, max_value=2000),
        fraction=st.sampled_from(FRACTIONS),
    )
    def test_drained_fraction_tracks_target(self, start, stride, count, fraction):
        """The hash-selected share stays within a low-discrepancy bound of
        the requested fraction for arbitrary strided id populations."""
        drain = TrafficDrain(time_s=0.0, fraction=fraction)
        ids = range(start, start + stride * count, stride)
        hit = sum(1 for flow_id in ids if drain.matches(_demand(flow_id)))
        tolerance = max(0.1, 4.0 / math.sqrt(count))
        assert abs(hit / count - fraction) <= tolerance

    @given(
        ids=st.lists(
            st.integers(min_value=0, max_value=2**31), min_size=1, max_size=200, unique=True
        ),
        fraction=st.sampled_from(FRACTIONS),
        seed=st.randoms(),
    )
    def test_selection_is_order_and_context_free(self, ids, fraction, seed):
        """Membership is decided per flow id: permuting the population or
        evaluating against a different surrounding set changes nothing."""
        drain = TrafficDrain(time_s=0.0, fraction=fraction)
        verdicts = {flow_id: drain.matches(_demand(flow_id)) for flow_id in ids}
        shuffled = list(ids)
        seed.shuffle(shuffled)
        assert {f: drain.matches(_demand(f)) for f in shuffled} == verdicts
        subset = shuffled[: max(1, len(shuffled) // 2)]
        assert all(drain.matches(_demand(f)) == verdicts[f] for f in subset)

    def test_full_drain_matches_everything(self):
        drain = TrafficDrain(time_s=0.0, fraction=1.0)
        assert all(drain.matches(_demand(f)) for f in range(100))


class TestSimLevelDrain:
    @given(
        fraction=st.sampled_from(FRACTIONS + (1.0,)),
        seed=st.integers(min_value=1, max_value=2**16),
    )
    def test_cancelled_set_matches_prediction_on_every_core(self, fraction, seed):
        """What a run cancels is exactly the declaratively predicted set —
        pending (not-yet-arrived) matching demands — on every core."""
        drain_at = 0.02
        drain = TrafficDrain(time_s=drain_at, src_dc="DC1", fraction=fraction)
        demands = tuple(
            _demand(flow_id, src="DC1", dst="DC4", arrival=0.01 * flow_id)
            for flow_id in range(6)
        )
        predicted = sum(
            1 for d in demands if d.arrival_s >= drain_at and drain.matches(d)
        )
        case = FuzzCase(
            topology_name="diamond",
            scenario=Scenario(name="drain-only", events=(drain,)),
            demands=demands,
            cc="dcqcn",
            seed=seed,
        )
        assert "diamond" in FUZZ_TOPOLOGIES
        cancelled = {}
        for core in ("scalar", "vectorized", "soa", "cc_blocks"):
            result, _ = run_case(case, core=core)
            check_demand_conservation(result, len(demands))
            cancelled[core] = result.scenario_metrics.total_cancelled
        assert set(cancelled.values()) == {predicted}, (
            f"predicted {predicted} cancellations, got {cancelled}"
        )
