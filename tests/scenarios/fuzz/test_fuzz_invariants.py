"""Property-based scenario fuzzing: the four invariants on every core.

Each property draws random valid timelines (see
:mod:`repro.scenarios.fuzz`) and asserts the reusable checkers of
:mod:`repro.scenarios.invariants`.  Failing examples print a replayable
blob (``print_blob=True`` in the profiles); promote recurring ones into
``tests/scenarios/fuzz/corpus`` so they run as plain regression tests.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.congestion_control import make_cc_factory
from repro.routing import make_router_factory
from repro.scenarios.events import Scenario, TrafficDrain, TrafficSurge
from repro.scenarios.fuzz import (
    FUZZ_TOPOLOGIES,
    FuzzCase,
    _maintenance_stories,
    _srlg_stories,
    build_fuzz_pathset,
    build_fuzz_topology,
    demand_sets,
    fuzz_cases,
    grid_times,
)
from repro.scenarios.invariants import check_demand_conservation
from repro.simulator import RuntimeNetwork, SimulationConfig

from .harness import check_all_invariants, run_case


class TestFuzzInvariants:
    @given(fuzz_cases())
    def test_all_invariants_on_all_cores(self, case):
        """The headline property: conservation, dead-link safety, bounded
        recovery and cross-core bit-identity for arbitrary timelines."""
        check_all_invariants(case)

    @given(
        st.data(),
        st.sampled_from(sorted(FUZZ_TOPOLOGIES)),
    )
    def test_surge_drain_race_conserves_demand(self, data, topology_name):
        """A drain racing a surge at the same instant never loses or
        double-counts a demand, on any core."""
        spec = FUZZ_TOPOLOGIES[topology_name]
        at = data.draw(grid_times(max_steps=8), label="race_time")
        pair = data.draw(st.sampled_from(spec.pairs), label="pair")
        surge = TrafficSurge(
            time_s=at,
            pairs=(pair,),
            load=1.0,
            num_flows=data.draw(st.integers(min_value=2, max_value=4), label="surge"),
            seed=data.draw(st.integers(min_value=1, max_value=2**16), label="sseed"),
        )
        drain = TrafficDrain(
            time_s=at,
            src_dc=pair[0],
            fraction=data.draw(st.sampled_from((0.25, 0.5, 1.0)), label="fraction"),
        )
        case = FuzzCase(
            topology_name=topology_name,
            scenario=Scenario(name="surge-drain-race", events=(surge, drain)),
            demands=data.draw(demand_sets(topology_name), label="demands"),
            cc="dcqcn",
            seed=data.draw(st.integers(min_value=1, max_value=2**16), label="seed"),
        )
        for core in ("scalar", "cc_blocks"):
            result, _ = run_case(case, core=core)
            check_demand_conservation(result, len(case.demands))

    @given(
        st.data(),
        st.sampled_from(sorted(FUZZ_TOPOLOGIES)),
    )
    def test_overlapping_outages_fully_heal(self, data, topology_name):
        """Overlapping down-causes (an SRLG cut inside a maintenance
        window) compose by refcount: after every cause is reverted, every
        link is up and at full capacity — regardless of revert order."""
        spec = FUZZ_TOPOLOGIES[topology_name]
        (srlg,) = data.draw(_srlg_stories(spec), label="srlg")
        (maintenance,) = data.draw(_maintenance_stories(spec), label="maintenance")

        topology = build_fuzz_topology(topology_name)
        paths = build_fuzz_pathset(topology)
        config = SimulationConfig(seed=1)
        network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)

        srlg.apply(network, srlg.time_s)
        maintenance.apply(network, maintenance.time_s)
        assert any(not link.up for link in network.inter_dc_links)

        if data.draw(st.booleans(), label="maintenance_first"):
            maintenance.revert(network, maintenance.end_s)
            for i in range(len(srlg.links)):
                srlg.revert_link(network, i, srlg.recovery_times()[i])
        else:
            for i in range(len(srlg.links)):
                srlg.revert_link(network, i, srlg.recovery_times()[i])
            maintenance.revert(network, maintenance.end_s)

        for link in network.inter_dc_links:
            assert link.up, f"{link.key} still down after all causes reverted"
            assert link.cap_bps == link.spec.cap_bps, f"{link.key} capacity not restored"


def test_cc_factory_names_cover_fuzz_fleets():
    """Every uniform fleet name the fuzzer draws resolves to a factory."""
    for name in ("dcqcn", "hpcc", "timely"):
        assert make_cc_factory(name) is not None
