"""Run one :class:`~repro.scenarios.fuzz.FuzzCase` on every core.

The harness is the glue between generated cases and the reusable
invariant checkers: ``run_case`` builds and runs one simulation for one
core flavour, ``check_all_invariants`` runs the full cross-core sweep —
scalar (reference, with the live dead-link monitor attached), legacy
vectorized, SoA, cc_blocks, cc_blocks on the fused array backend (and on
the torch backend where torch is installed), and cc_blocks with
instrumentation — and asserts all four invariant families on the results.
"""

from __future__ import annotations

from typing import Dict

from repro.congestion_control import make_cc_factory, make_mixed_cc_factory
from repro.routing import make_router_factory
from repro.scenarios.fuzz import FuzzCase, build_fuzz_pathset, build_fuzz_topology
from repro.scenarios.invariants import (
    CORE_CONFIGS,
    DeadLinkMonitor,
    assert_results_close,
    assert_results_identical,
    check_demand_conservation,
    check_no_dead_link_traffic,
    check_recovery_bound,
)
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig

#: generous drain headroom: fuzz timelines always repair, so a run must
#: always reach the drained steady state well before this deadline
FUZZ_DEADLINE_S = 30.0


def make_config(case: FuzzCase, core: str, instrumentation: bool = False) -> SimulationConfig:
    """The simulation config for one core flavour of a fuzz case."""
    return SimulationConfig(
        seed=case.seed,
        max_sim_time_s=FUZZ_DEADLINE_S,
        drain_timeout_s=FUZZ_DEADLINE_S,
        instrumentation=instrumentation,
        **CORE_CONFIGS[core],
    )


def run_case(
    case: FuzzCase,
    core: str = "cc_blocks",
    instrumentation: bool = False,
    with_monitor: bool = False,
    lazy: bool = True,
):
    """Run one fuzz case on one core.

    Returns:
        ``(result, monitor)`` — the :class:`SimulationResult` and the
        attached :class:`DeadLinkMonitor` (``None`` unless requested).
    """
    topology = build_fuzz_topology(case.topology_name)
    paths = build_fuzz_pathset(topology, lazy=lazy)
    config = make_config(case, core, instrumentation)
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    if isinstance(case.cc, tuple):
        factory = make_mixed_cc_factory(case.cc, seed=case.seed)
    else:
        factory = make_cc_factory(case.cc)
    sim = FluidSimulation(
        network, list(case.demands), factory, config, scenario=case.scenario
    )
    monitor = DeadLinkMonitor().attach(sim) if with_monitor else None
    return sim.run(), monitor


def run_baseline(case: FuzzCase, core: str = "cc_blocks"):
    """Run a case's demands with NO scenario attached (pre-event baseline)."""
    topology = build_fuzz_topology(case.topology_name)
    paths = build_fuzz_pathset(topology)
    config = make_config(case, core)
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    if isinstance(case.cc, tuple):
        factory = make_mixed_cc_factory(case.cc, seed=case.seed)
    else:
        factory = make_cc_factory(case.cc)
    sim = FluidSimulation(network, list(case.demands), factory, config, scenario=None)
    return sim.run()


def check_all_invariants(case: FuzzCase, require_drained: bool = True) -> Dict[str, object]:
    """Run a case on every core and assert the four invariant families.

    Returns:
        per-core results keyed by core name (plus ``"instrumented"``),
        so callers can make additional assertions.
    """
    topology = build_fuzz_topology(case.topology_name)
    config = make_config(case, "scalar")

    reference, monitor = run_case(case, core="scalar", with_monitor=True)
    check_demand_conservation(reference, len(case.demands))
    check_no_dead_link_traffic(reference, case.scenario, topology, monitor)
    check_recovery_bound(
        reference,
        case.scenario,
        update_interval_s=config.update_interval_s,
        require_drained=require_drained,
    )

    results: Dict[str, object] = {"scalar": reference}
    for core in ("vectorized", "soa", "cc_blocks", "numpy_fused"):
        other, other_monitor = run_case(case, core=core, with_monitor=True)
        check_demand_conservation(other, len(case.demands))
        check_no_dead_link_traffic(other, case.scenario, topology, other_monitor)
        assert_results_identical(reference, other, label=f"scalar vs {core}")
        results[core] = other
    if "torch" in CORE_CONFIGS:
        # device backend: duplicate-accumulation order is unspecified on
        # GPUs, so this core is held to the documented tolerance instead
        # of bitwise identity (DESIGN.md, "Array backends & kernels")
        other, other_monitor = run_case(case, core="torch", with_monitor=True)
        check_demand_conservation(other, len(case.demands))
        check_no_dead_link_traffic(other, case.scenario, topology, other_monitor)
        assert_results_close(reference, other, label="scalar vs torch")
        results["torch"] = other
    instrumented, _ = run_case(case, core="cc_blocks", instrumentation=True)
    assert_results_identical(reference, instrumented, label="scalar vs instrumented")
    results["instrumented"] = instrumented
    # lazy vs eager path sets must be indistinguishable at run level
    eager, eager_monitor = run_case(case, core="cc_blocks", with_monitor=True, lazy=False)
    check_demand_conservation(eager, len(case.demands))
    check_no_dead_link_traffic(eager, case.scenario, topology, eager_monitor)
    assert_results_identical(reference, eager, label="lazy vs eager pathset")
    results["eager_paths"] = eager
    return results
