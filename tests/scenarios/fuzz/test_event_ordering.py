"""Coincident-timestamp ordering: the documented deterministic order.

When scenario events, flow arrivals and engine ticks share one float
timestamp, the engine's ``(time, seq)`` FIFO heap plus the injector's
install-before-arrivals setup yields the documented order (see
``repro/scenarios/events.py``, "Coincident timestamps"):

1. scenario events, in compiled-timeline order,
2. workload / surge arrivals,
3. monitor, rate-update and gc ticks.

These tests lock that order in observable terms: a cut+repair pair at
the exact arrival instant must net out *before* any tied arrival routes
(so the run is indistinguishable from an undisturbed one), within-instant
effects follow the compiled listing order, and every coincident case is
bit-identical across cores and across repeated runs.
"""

from __future__ import annotations

from repro.routing import make_router_factory
from repro.scenarios.events import LinkDown, LinkUp, Scenario
from repro.scenarios.fuzz import FuzzCase, build_fuzz_pathset, build_fuzz_topology
from repro.scenarios.invariants import assert_results_identical
from repro.simulator import RuntimeNetwork, SimulationConfig
from repro.simulator.flow import FlowDemand

from .harness import run_baseline, run_case

CORES = ("scalar", "vectorized", "soa", "cc_blocks")
TIE_AT = 0.02


def _demands(pairs, arrivals, size=600_000):
    out = []
    for i, arrival in enumerate(arrivals):
        src, dst = pairs[i % len(pairs)]
        out.append(
            FlowDemand(
                flow_id=i,
                src_dc=src,
                dst_dc=dst,
                src_host=i % 4,
                dst_host=(i + 1) % 4,
                size_bytes=size + 10_000 * i,
                arrival_s=arrival,
            )
        )
    return tuple(out)


def _case(scenario, demands, topology="triangle", seed=13):
    return FuzzCase(
        topology_name=topology, scenario=scenario, demands=demands, cc="dcqcn", seed=seed
    )


class TestCoincidentTimestamps:
    def test_events_fire_before_tied_arrivals(self):
        """A cut + repair at the exact instant a batch of flows arrives
        nets out before any of those flows routes: the run is bit-identical
        to one with no scenario at all, on every core."""
        scenario = Scenario(
            name="tie",
            events=(
                LinkDown(time_s=TIE_AT, src="DCA", dst="DCC"),
                LinkUp(time_s=TIE_AT, src="DCA", dst="DCC"),
            ),
        )
        demands = _demands(
            (("DCA", "DCC"),), arrivals=(TIE_AT, TIE_AT, TIE_AT, TIE_AT)
        )
        case = _case(scenario, demands)
        for core in CORES:
            result, _ = run_case(case, core=core)
            baseline = run_baseline(case, core=core)
            outcomes = result.scenario_metrics.outcomes
            assert [o.applied_s for o in outcomes] == [TIE_AT, TIE_AT]
            assert all(o.flows_disrupted == 0 for o in outcomes), (
                f"{core}: nothing was in flight, yet the tied cut disrupted flows"
            )
            for record, base_record in zip(result.records, baseline.records):
                assert record == base_record, (
                    f"{core}: tied cut+repair changed a flow outcome:\n"
                    f"  with scenario: {record}\n  baseline:      {base_record}"
                )
            assert len(result.records) == len(baseline.records)

    def test_within_instant_effects_follow_timeline_order(self):
        """Two timelines with the same events at the same instant but in
        different listing order end in different states: down-then-up
        leaves the link up, up-then-down leaves it down."""
        topology = build_fuzz_topology("triangle")
        paths = build_fuzz_pathset(topology)
        down = LinkDown(time_s=TIE_AT, src="DCA", dst="DCC")
        up = LinkUp(time_s=TIE_AT, src="DCA", dst="DCC")
        for order, expect_up in ((("down", "up"), True), (("up", "down"), False)):
            network = RuntimeNetwork(
                topology, paths, make_router_factory("ecmp"), SimulationConfig(seed=1)
            )
            events = {"down": down, "up": up}
            for name in order:
                events[name].apply(network, TIE_AT)
            assert network.link("DCA", "DCC").up is expect_up, (
                f"order {order}: expected up={expect_up}"
            )

    def test_coincident_case_is_deterministic_and_core_identical(self):
        """A cut landing on in-flight flows at the exact arrival instant of
        a second wave: every core agrees bit-for-bit, and repeating the run
        reproduces it exactly."""
        scenario = Scenario(
            name="tie-inflight",
            events=(
                LinkDown(time_s=TIE_AT, src="DCA", dst="DCC", bidirectional=True),
                LinkUp(time_s=0.04, src="DCA", dst="DCC", bidirectional=True),
            ),
            stranded_timeout_s=0.05,
        )
        demands = _demands(
            (("DCA", "DCC"), ("DCC", "DCA")),
            arrivals=(0.0, 0.0, 0.01, TIE_AT, TIE_AT, TIE_AT, 0.03),
            size=1_200_000,
        )
        case = _case(scenario, demands)
        reference, _ = run_case(case, core="scalar")
        assert reference.scenario_metrics.outcomes[0].flows_disrupted > 0
        for core in CORES:
            once, _ = run_case(case, core=core)
            again, _ = run_case(case, core=core)
            assert_results_identical(reference, once, label=f"scalar vs {core}")
            assert_results_identical(once, again, label=f"{core} repeat")
