"""Hypothesis profiles for the scenario fuzzer.

Two profiles, selected with the ``HYPOTHESIS_PROFILE`` environment
variable (default ``fast``):

* ``fast`` — ~25 examples per property; runs in the PR test job.
* ``fuzz`` — 500 examples per property; the nightly fuzz job in
  ``bench.yml`` runs it with a fresh ``--hypothesis-seed`` and uploads
  the failing-example database on failure.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "fast",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.register_profile(
    "fuzz",
    max_examples=500,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    print_blob=True,
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "fast"))
