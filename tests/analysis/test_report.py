"""Tests for the plain-text report rendering."""

from repro.analysis import (
    SlowdownProfile,
    format_table,
    reduction_report,
    slowdown_table,
    utilization_report,
)
from repro.analysis.utilization import LinkUtilization
from repro.simulator.fct import FlowRecord


def profile(name, slowdown):
    records = [
        FlowRecord(i, "DC1", "DC8", size, 0.0, 0.01 * slowdown, 0.01, slowdown, ("DC1", "DC8"))
        for i, size in enumerate([5_000, 50_000, 500_000] * 10)
    ]
    return SlowdownProfile.from_records(name, records)


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["a", 1], ["longer-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "longer-name" in lines[3]
        assert set(lines[1]) <= {"-", " "}


class TestSlowdownTable:
    def test_columns_per_profile(self):
        text = slowdown_table([profile("lcmp", 2.0), profile("ecmp", 6.0)], "p50")
        assert "lcmp" in text and "ecmp" in text
        assert "overall" in text
        assert "6.00" in text and "2.00" in text

    def test_empty_profiles(self):
        assert slowdown_table([]) == "(no profiles)"


class TestUtilizationReport:
    def test_one_column_per_algorithm(self):
        rows = {
            "lcmp": [LinkUtilization("DC1", "DC2", 1e9, 0.25, 0)],
            "ecmp": [LinkUtilization("DC1", "DC2", 1e9, 0.5, 0)],
        }
        text = utilization_report(rows)
        assert "25.0%" in text and "50.0%" in text and "1-2" in text

    def test_empty(self):
        assert utilization_report({}) == "(no data)"


class TestReductionReport:
    def test_percent_rendering(self):
        text = reduction_report({"ecmp": {"p50": 0.42, "p99": 0.61}})
        assert "42%" in text and "61%" in text and "ecmp" in text
