"""Tests for per-link utilisation analysis."""

import pytest

from repro.analysis import imbalance, jain_fairness, utilization_table
from repro.analysis.utilization import LinkUtilization
from repro.simulator.fluid import LinkStats, SimulationResult


def make_result(utils):
    stats = [
        LinkStats(
            key=(f"DC1", f"DC{i + 2}"),
            cap_bps=100e9,
            carried_bytes=u * 100e9 / 8,
            dropped_bytes=0.0,
            peak_queue_bytes=0.0,
            utilization=u,
        )
        for i, u in enumerate(utils)
    ]
    # one reverse-direction link that must be filtered out by sources=["DC1"]
    stats.append(
        LinkStats(key=("DC2", "DC1"), cap_bps=100e9, carried_bytes=0, dropped_bytes=0,
                  peak_queue_bytes=0, utilization=0.9)
    )
    return SimulationResult(
        records=[], link_stats=stats, duration_s=1.0, unfinished_flows=0,
        routing_decisions=0, monitor_samples=0,
    )


class TestTable:
    def test_rows_and_labels(self):
        result = make_result([0.1, 0.4, 0.2])
        rows = utilization_table(result, sources=["DC1"])
        assert len(rows) == 3
        assert rows[0].label == "1-2"
        assert rows[1].utilization == 0.4

    def test_without_source_filter_includes_everything(self):
        result = make_result([0.1, 0.4])
        assert len(utilization_table(result)) == 3


class TestMetrics:
    def test_imbalance_zero_for_uniform(self):
        rows = [LinkUtilization("DC1", f"DC{i}", 1e9, 0.5, 0) for i in range(4)]
        assert imbalance(rows) == pytest.approx(0.0)
        assert jain_fairness(rows) == pytest.approx(1.0)

    def test_imbalance_grows_with_skew(self):
        balanced = [LinkUtilization("DC1", f"DC{i}", 1e9, 0.5, 0) for i in range(4)]
        skewed = [
            LinkUtilization("DC1", "DC2", 1e9, 0.9, 0),
            LinkUtilization("DC1", "DC3", 1e9, 0.05, 0),
            LinkUtilization("DC1", "DC4", 1e9, 0.0, 0),
            LinkUtilization("DC1", "DC5", 1e9, 0.05, 0),
        ]
        assert imbalance(skewed) > imbalance(balanced)
        assert jain_fairness(skewed) < jain_fairness(balanced)

    def test_empty_rows(self):
        assert imbalance([]) == 0.0
        assert jain_fairness([]) == 1.0
