"""Tests for the simulator-fidelity analysis (Fig. 6)."""

import pytest

from repro.analysis import SlowdownProfile, fidelity_study, pearson
from repro.simulator.fct import FlowRecord


def records(slowdown_by_size, jitter=0.0):
    out = []
    flow_id = 0
    for size, slowdown in slowdown_by_size.items():
        for i in range(30):
            s = slowdown * (1 + jitter * ((i % 7) - 3) / 10)
            out.append(
                FlowRecord(flow_id, "DC1", "DC8", size, 0.0, 0.01 * s, 0.01, s, ("DC1", "DC8"))
            )
            flow_id += 1
    return out


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            pearson([1], [1])

    def test_constant_series(self):
        assert pearson([2, 2, 2], [2, 2, 2]) == pytest.approx(1.0)


class TestFidelityStudy:
    def test_similar_profiles_correlate_highly(self):
        sizes = {5_000: 3.0, 50_000: 4.0, 500_000: 6.0, 5_000_000: 12.0}
        testbed = SlowdownProfile.from_records("testbed", records(sizes, jitter=0.3))
        simulator = SlowdownProfile.from_records("sim", records(sizes, jitter=0.0))
        study = fidelity_study(testbed, simulator)
        assert study.p50_correlation > 0.9
        assert study.p99_correlation > 0.9
        assert len(study.pairs_p50) >= 3

    def test_uncorrelated_profiles_detected(self):
        increasing = {5_000: 2.0, 50_000: 4.0, 500_000: 8.0, 5_000_000: 16.0}
        decreasing = {5_000: 16.0, 50_000: 8.0, 500_000: 4.0, 5_000_000: 2.0}
        a = SlowdownProfile.from_records("a", records(increasing))
        b = SlowdownProfile.from_records("b", records(decreasing))
        study = fidelity_study(a, b)
        assert study.p50_correlation < 0

    def test_insufficient_shared_bins_rejected(self):
        a = SlowdownProfile.from_records("a", records({5_000: 2.0}))
        b = SlowdownProfile.from_records("b", records({5_000: 2.0}))
        with pytest.raises(ValueError):
            fidelity_study(a, b)
