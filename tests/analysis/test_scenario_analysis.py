"""Unit tests for the scenario impact analysis helpers."""

import pytest

from repro.analysis import event_impacts, recovery_report, slowdown_timeline
from repro.scenarios.injector import EventOutcome, ScenarioMetrics
from repro.simulator import SimulationResult
from repro.simulator.fct import FlowRecord


def record(flow_id, arrival_s, slowdown):
    return FlowRecord(
        flow_id=flow_id,
        src_dc="DC1",
        dst_dc="DC8",
        size_bytes=100_000,
        arrival_s=arrival_s,
        fct_s=slowdown * 0.01,
        ideal_fct_s=0.01,
        slowdown=slowdown,
        path_dcs=("DC1", "DC8"),
    )


def synthetic_result():
    """Slowdown 1.0 before t=1, 3.0 during [1, 2), 1.2 after t=2."""
    records = (
        [record(i, 0.1 * i, 1.0) for i in range(10)]              # 0.0 .. 0.9
        + [record(100 + i, 1.0 + 0.1 * i, 3.0) for i in range(10)]  # 1.0 .. 1.9
        + [record(200 + i, 2.0 + 0.1 * i, 1.2) for i in range(10)]  # 2.0 .. 2.9
    )
    metrics = ScenarioMetrics(
        scenario_name="synthetic",
        outcomes=[
            EventOutcome(
                index=0, kind="link-down", description="cut", scheduled_s=1.0,
                applied_s=1.0, flows_disrupted=4, flows_rerouted=4,
                links_affected=2, reroute_latencies_s=[0.001, 0.003],
            ),
            EventOutcome(
                index=1, kind="link-up", description="repair", scheduled_s=2.0,
                applied_s=2.0,
            ),
            EventOutcome(
                index=2, kind="link-down", description="never fired", scheduled_s=9.0,
            ),
        ],
    )
    return SimulationResult(
        records=records,
        link_stats=[],
        duration_s=3.0,
        unfinished_flows=0,
        routing_decisions=0,
        monitor_samples=0,
        scenario_metrics=metrics,
    )


class TestEventImpacts:
    def test_deltas_have_expected_signs(self):
        impacts = event_impacts(synthetic_result(), window_s=1.0)
        assert [i.kind for i in impacts] == ["link-down", "link-up"]
        cut, repair = impacts
        assert cut.slowdown_delta == pytest.approx(2.0)
        assert repair.slowdown_delta == pytest.approx(-1.8)
        assert cut.pre_p50 == pytest.approx(1.0)
        assert repair.post_p50 == pytest.approx(1.2)

    def test_unfired_events_are_skipped(self):
        impacts = event_impacts(synthetic_result(), window_s=1.0)
        assert all(i.applied_s is not None for i in impacts)
        assert len(impacts) == 2

    def test_recovery_counts_carried_through(self):
        cut = event_impacts(synthetic_result(), window_s=1.0)[0]
        assert cut.flows_disrupted == 4
        assert cut.flows_rerouted == 4
        assert cut.mean_reroute_latency_s == pytest.approx(0.002)
        assert cut.max_reroute_latency_s == pytest.approx(0.003)

    def test_empty_window_yields_none_delta(self):
        impacts = event_impacts(synthetic_result(), window_s=0.01)
        # window [1.0, 1.01) contains the first during-flow, but [0.99, 1.0)
        # holds nothing -> no delta
        assert impacts[0].pre_p50 is None
        assert impacts[0].slowdown_delta is None

    def test_requires_scenario_metrics(self):
        result = synthetic_result()
        result.scenario_metrics = None
        with pytest.raises(ValueError, match="no scenario metrics"):
            event_impacts(result)

    def test_requires_positive_window(self):
        with pytest.raises(ValueError, match="window_s"):
            event_impacts(synthetic_result(), window_s=0.0)


class TestSlowdownTimeline:
    def test_buckets_follow_phases(self):
        points = dict(slowdown_timeline(synthetic_result(), bucket_s=1.0))
        assert points[0.0] == pytest.approx(1.0)
        assert points[1.0] == pytest.approx(3.0)
        assert points[2.0] == pytest.approx(1.2)

    def test_empty_result(self):
        result = synthetic_result()
        result.records = []
        assert slowdown_timeline(result) == []

    def test_requires_positive_bucket(self):
        with pytest.raises(ValueError, match="bucket_s"):
            slowdown_timeline(synthetic_result(), bucket_s=0)


class TestRecoveryReport:
    def test_renders_one_row_per_impact(self):
        impacts = event_impacts(synthetic_result(), window_s=1.0)
        text = recovery_report(impacts)
        lines = text.splitlines()
        assert len(lines) == 2 + len(impacts)  # header + rule + rows
        assert "link-down" in text and "link-up" in text
        assert "+2.00" in text and "-1.80" in text

    def test_empty_impacts(self):
        assert "no events" in recovery_report([])


class TestBlastRadius:
    def test_links_affected_carried_through(self):
        cut, repair = event_impacts(synthetic_result(), window_s=1.0)
        assert cut.links_affected == 2
        assert repair.links_affected == 0

    def test_report_has_links_column(self):
        impacts = event_impacts(synthetic_result(), window_s=1.0)
        header = recovery_report(impacts).splitlines()[0]
        assert "links" in header
