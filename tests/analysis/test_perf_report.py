"""Unit tests for the per-phase performance report helpers."""

import json

from repro.analysis import perf_report, phase_breakdown, phase_breakdown_json, top_counters
from repro.obs import Instrumentation


def make_snapshot():
    instr = Instrumentation()
    instr.counter("slow_path.deliver_repeated").inc(4)
    instr.counter("engine.events_fired").inc(100)
    instr.gauge("engine.peak_pending_events").set(7.0)
    snap = instr.snapshot()
    # deterministic timings, injected directly into the schema
    snap["phases"] = {
        "step.update": {"count": 10, "total_ns": 8_000_000, "max_ns": 1_000_000},
        "update.signals": {"count": 10, "total_ns": 6_000_000, "max_ns": 700_000},
        "step.gc": {"count": 2, "total_ns": 2_000_000, "max_ns": 1_500_000},
        "never.ran": {"count": 0, "total_ns": 0, "max_ns": 0},
    }
    return snap


class TestPhaseBreakdown:
    def test_rows_sorted_by_total_time(self):
        rows = phase_breakdown(make_snapshot())
        assert [r["name"] for r in rows] == [
            "step.update",
            "update.signals",
            "step.gc",
            "never.ran",
        ]

    def test_row_fields(self):
        row = phase_breakdown(make_snapshot())[0]
        assert row["count"] == 10
        assert row["total_ms"] == 8.0
        assert row["mean_us"] == 800.0
        assert row["max_us"] == 1000.0
        assert row["share"] == 8 / 16

    def test_zero_count_phase_has_zero_mean(self):
        rows = {r["name"]: r for r in phase_breakdown(make_snapshot())}
        assert rows["never.ran"]["mean_us"] == 0.0

    def test_top_limits_rows(self):
        assert len(phase_breakdown(make_snapshot(), top=2)) == 2


class TestTopCounters:
    def test_sorted_by_value(self):
        rows = top_counters(make_snapshot())
        assert rows[0] == {"name": "engine.events_fired", "value": 100}
        assert rows[1] == {"name": "slow_path.deliver_repeated", "value": 4}

    def test_top_limits(self):
        assert len(top_counters(make_snapshot(), top=1)) == 1


class TestPerfReport:
    def test_none_snapshot_says_so(self):
        assert "instrumentation=True" in perf_report(None)

    def test_report_mentions_phases_and_counters(self):
        text = perf_report(make_snapshot())
        assert "step.update" in text
        assert "engine.events_fired" in text
        assert "phase breakdown" in text


class TestPhaseBreakdownJson:
    def test_none_yields_empty_dict(self):
        assert phase_breakdown_json(None) == {}

    def test_schema_and_serialisability(self):
        payload = phase_breakdown_json(make_snapshot())
        assert set(payload) == {"phases", "counters", "gauges"}
        assert payload["phases"][0]["name"] == "step.update"
        assert payload["counters"]["engine.events_fired"] == 100
        assert payload["gauges"]["engine.peak_pending_events"]["max"] == 7.0
        json.dumps(payload)
