"""Tests for the FCT-slowdown analysis."""

import pytest

from repro.analysis import DEFAULT_SIZE_BINS, SlowdownProfile, compare, reduction
from repro.simulator.fct import FlowRecord


def record(flow_id, size_bytes, slowdown, src="DC1", dst="DC8"):
    ideal = 0.01
    return FlowRecord(
        flow_id=flow_id,
        src_dc=src,
        dst_dc=dst,
        size_bytes=size_bytes,
        arrival_s=0.0,
        fct_s=ideal * slowdown,
        ideal_fct_s=ideal,
        slowdown=slowdown,
        path_dcs=(src, dst),
    )


@pytest.fixture
def mixed_records():
    records = []
    flow_id = 0
    for size, slowdown in [(5_000, 2.0), (8_000, 4.0), (50_000, 3.0), (500_000, 6.0), (5_000_000, 10.0)]:
        for i in range(20):
            records.append(record(flow_id, size, slowdown + (i % 5) * 0.1))
            flow_id += 1
    return records


class TestProfile:
    def test_bins_and_percentiles(self, mixed_records):
        profile = SlowdownProfile.from_records("lcmp", mixed_records)
        assert profile.total_flows == 100
        assert profile.overall_p50 > 0
        assert profile.overall_p99 >= profile.overall_p50
        assert len(profile.bins) >= 3
        for stats in profile.bins:
            assert stats.p99 >= stats.p50
            assert stats.count > 0

    def test_bin_labels_and_series(self, mixed_records):
        profile = SlowdownProfile.from_records("x", mixed_records)
        labels = profile.bin_labels()
        assert len(labels) == len(profile.bins)
        assert len(profile.series("p50")) == len(profile.bins)
        assert len(profile.series("p99")) == len(profile.bins)
        with pytest.raises(ValueError):
            profile.series("p42")

    def test_small_flows_land_in_first_bin(self, mixed_records):
        profile = SlowdownProfile.from_records("x", mixed_records)
        first = profile.bins[0]
        assert first.hi_bytes == DEFAULT_SIZE_BINS[1]
        assert first.count == 40  # the 5 kB and 8 kB groups

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            SlowdownProfile.from_records("x", [])

    def test_invalid_bins_rejected(self, mixed_records):
        with pytest.raises(ValueError):
            SlowdownProfile.from_records("x", mixed_records, size_bins=[100, 10])


class TestComparisons:
    def test_compare_summary(self, mixed_records):
        a = SlowdownProfile.from_records("lcmp", mixed_records)
        b = SlowdownProfile.from_records("ecmp", mixed_records)
        summary = compare([a, b])
        assert set(summary) == {"lcmp", "ecmp"}
        assert summary["lcmp"]["p50"] == a.overall_p50

    def test_reduction_positive_when_better(self, mixed_records):
        ours = SlowdownProfile.from_records("lcmp", [record(i, 10_000, 2.0) for i in range(50)])
        base = SlowdownProfile.from_records("ecmp", [record(i, 10_000, 8.0) for i in range(50)])
        result = reduction(ours, base)
        assert result["p50"] == pytest.approx(0.75)
        assert result["p99"] == pytest.approx(0.75)

    def test_reduction_negative_when_worse(self, mixed_records):
        ours = SlowdownProfile.from_records("lcmp", [record(i, 10_000, 8.0) for i in range(50)])
        base = SlowdownProfile.from_records("ecmp", [record(i, 10_000, 4.0) for i in range(50)])
        assert reduction(ours, base)["p50"] < 0
