"""Tests for the diversity-preserving two-stage selection (paper §3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LCMPConfig, filter_candidates, select_path
from repro.core.cost_fusion import PathCost
from repro import topology as _topology

#: module-level path set reused by the hypothesis property test (building the
#: topology once keeps the property test fast)
_PATHS = _topology.testbed8_pathset(_topology.build_testbed8())


def make_costs(testbed_paths, fused_values, congestion_values=None):
    cands = testbed_paths.candidates("DC1", "DC8")
    assert len(fused_values) <= len(cands)
    congestion_values = congestion_values or [0] * len(fused_values)
    return [
        PathCost(candidate=cands[i], path_quality=0, congestion=congestion_values[i], fused=fused_values[i])
        for i in range(len(fused_values))
    ]


class TestFilter:
    def test_keeps_low_cost_half(self, testbed_paths):
        costs = make_costs(testbed_paths, [60, 10, 40, 90, 20, 70])
        reduced = filter_candidates(costs, keep_fraction=0.5)
        assert len(reduced) == 3
        assert [c.fused for c in reduced] == [10, 20, 40]

    def test_always_keeps_at_least_one(self, testbed_paths):
        costs = make_costs(testbed_paths, [50])
        assert len(filter_candidates(costs, keep_fraction=0.1)) == 1

    def test_keep_fraction_one_keeps_all(self, testbed_paths):
        costs = make_costs(testbed_paths, [3, 2, 1])
        assert len(filter_candidates(costs, keep_fraction=1.0)) == 3

    def test_invalid_inputs(self, testbed_paths):
        with pytest.raises(ValueError):
            filter_candidates([], 0.5)
        costs = make_costs(testbed_paths, [1, 2])
        with pytest.raises(ValueError):
            filter_candidates(costs, 0)


class TestSelect:
    def test_chosen_is_from_reduced_set(self, testbed_paths):
        cfg = LCMPConfig()
        costs = make_costs(testbed_paths, [60, 10, 40, 90, 20, 70])
        outcome = select_path(costs, flow_id=1234, config=cfg)
        assert outcome.chosen in outcome.reduced_set
        assert not outcome.all_congested
        assert len(outcome.reduced_set) == 3

    def test_diversity_across_flow_ids(self, testbed_paths):
        """The herd-mitigation property: a burst of simultaneous new flows is
        spread over *all* members of the low-cost set, not just the single
        cheapest path."""
        cfg = LCMPConfig()
        costs = make_costs(testbed_paths, [60, 10, 40, 90, 20, 70])
        chosen_hops = {
            select_path(costs, flow_id=i, config=cfg).chosen.candidate.first_hop
            for i in range(200)
        }
        reduced_hops = {
            c.candidate.first_hop for c in filter_candidates(costs, cfg.keep_fraction)
        }
        assert chosen_hops == reduced_hops

    def test_selection_deterministic_per_flow(self, testbed_paths):
        cfg = LCMPConfig()
        costs = make_costs(testbed_paths, [60, 10, 40, 90, 20, 70])
        first = select_path(costs, flow_id=77, config=cfg).chosen
        second = select_path(costs, flow_id=77, config=cfg).chosen
        assert first.candidate.dcs == second.candidate.dcs

    def test_all_congested_falls_back_to_min_cost(self, testbed_paths):
        cfg = LCMPConfig(congested_threshold=200)
        costs = make_costs(
            testbed_paths,
            fused_values=[900, 500, 700],
            congestion_values=[250, 210, 255],
        )
        outcome = select_path(costs, flow_id=5, config=cfg)
        assert outcome.all_congested
        assert outcome.chosen.fused == 500
        assert outcome.reduced_set == [outcome.chosen]

    def test_not_all_congested_keeps_diversity(self, testbed_paths):
        cfg = LCMPConfig(congested_threshold=200)
        costs = make_costs(
            testbed_paths,
            fused_values=[900, 500, 700],
            congestion_values=[250, 10, 255],
        )
        outcome = select_path(costs, flow_id=5, config=cfg)
        assert not outcome.all_congested

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            select_path([], 1, LCMPConfig())


@settings(max_examples=60, deadline=None)
@given(
    fused=st.lists(st.integers(min_value=0, max_value=1020), min_size=1, max_size=6),
    flow_id=st.integers(min_value=0, max_value=2**32 - 1),
    keep=st.floats(min_value=0.1, max_value=1.0),
)
def test_property_selection_invariants(fused, flow_id, keep):
    """Property: the chosen path always belongs to the low-cost prefix."""
    cands = _PATHS.candidates("DC1", "DC8")[: len(fused)]
    costs = [
        PathCost(candidate=cands[i], path_quality=0, congestion=0, fused=fused[i])
        for i in range(len(cands))
    ]
    cfg = LCMPConfig(keep_fraction=keep)
    outcome = select_path(costs, flow_id, cfg)
    max_kept_cost = max(c.fused for c in outcome.reduced_set)
    dropped = [c for c in costs if c not in outcome.reduced_set]
    assert all(c.fused >= max_kept_cost or c in outcome.reduced_set for c in costs)
    assert outcome.chosen in outcome.reduced_set
