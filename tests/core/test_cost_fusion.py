"""Tests for the fused cost C(p) = alpha*C_path + beta*C_cong (Eq. 1)."""

import pytest

from repro.core import LCMPConfig, PathCost, fuse_cost, score_candidates


class TestFuseCost:
    def test_eq1_default_weights(self):
        cfg = LCMPConfig(alpha=3, beta=1)
        assert fuse_cost(100, 40, cfg) == 3 * 100 + 40

    def test_rm_alpha_uses_only_congestion(self):
        cfg = LCMPConfig().ablate_path_quality()
        assert fuse_cost(200, 50, cfg) == cfg.beta * 50

    def test_rm_beta_uses_only_path_quality(self):
        cfg = LCMPConfig().ablate_congestion()
        assert fuse_cost(200, 50, cfg) == cfg.alpha * 200

    def test_range_validation(self):
        cfg = LCMPConfig()
        with pytest.raises(ValueError):
            fuse_cost(-1, 0, cfg)
        with pytest.raises(ValueError):
            fuse_cost(0, 300, cfg)


class TestScoreCandidates:
    def test_builds_path_costs(self, testbed_paths):
        cfg = LCMPConfig()
        cands = testbed_paths.candidates("DC1", "DC8")[:3]
        costs = score_candidates(cands, [10, 20, 30], [0, 5, 200], cfg)
        assert len(costs) == 3
        assert all(isinstance(c, PathCost) for c in costs)
        assert costs[0].fused == cfg.alpha * 10
        assert costs[2].congestion == 200
        assert costs[1].candidate is cands[1]

    def test_length_mismatch_rejected(self, testbed_paths):
        cfg = LCMPConfig()
        cands = testbed_paths.candidates("DC1", "DC8")[:2]
        with pytest.raises(ValueError):
            score_candidates(cands, [1], [1, 2], cfg)

    def test_ordering_follows_fused_cost(self, testbed_paths):
        cfg = LCMPConfig(alpha=1, beta=1)
        cands = testbed_paths.candidates("DC1", "DC8")[:3]
        costs = score_candidates(cands, [100, 10, 50], [0, 0, 0], cfg)
        ordered = sorted(costs, key=lambda c: c.fused)
        assert [c.path_quality for c in ordered] == [10, 50, 100]
