"""Tests for the bounded flow cache (flow2output mapping + GC)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FlowCache


class TestBasicOperations:
    def test_miss_then_hit(self):
        cache = FlowCache(capacity=10, idle_timeout_s=1.0)
        assert cache.lookup(1, now=0.0) is None
        cache.insert(1, "DC3", now=0.0)
        entry = cache.lookup(1, now=0.5)
        assert entry is not None
        assert entry.out_port == "DC3"
        assert cache.hits == 1 and cache.misses == 1

    def test_lookup_refreshes_last_seen(self):
        cache = FlowCache(capacity=10, idle_timeout_s=1.0)
        cache.insert(1, "DC3", now=0.0)
        cache.lookup(1, now=5.0)
        assert cache.lookup(1, now=5.5).last_seen_s == 5.5

    def test_insert_overwrites_existing(self):
        cache = FlowCache(capacity=10, idle_timeout_s=1.0)
        cache.insert(1, "DC3", now=0.0)
        cache.insert(1, "DC5", now=1.0)
        assert len(cache) == 1
        assert cache.lookup(1, now=1.0).out_port == "DC5"

    def test_invalidate(self):
        cache = FlowCache(capacity=10, idle_timeout_s=1.0)
        cache.insert(1, "DC3", now=0.0)
        assert cache.invalidate(1)
        assert not cache.invalidate(1)
        assert cache.lookup(1, now=0.0) is None

    def test_contains_and_occupancy(self):
        cache = FlowCache(capacity=4, idle_timeout_s=1.0)
        cache.insert(1, "a", 0.0)
        cache.insert(2, "b", 0.0)
        assert 1 in cache and 3 not in cache
        assert cache.occupancy == pytest.approx(0.5)


class TestBoundedCapacity:
    def test_lru_eviction_when_full(self):
        cache = FlowCache(capacity=3, idle_timeout_s=100.0)
        for flow_id in range(3):
            cache.insert(flow_id, "p", now=float(flow_id))
        cache.lookup(0, now=10.0)  # flow 0 becomes most recently seen
        cache.insert(99, "p", now=11.0)
        assert len(cache) == 3
        assert 0 in cache
        assert 1 not in cache  # the least recently seen entry was evicted
        assert cache.evictions == 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FlowCache(capacity=0)
        with pytest.raises(ValueError):
            FlowCache(capacity=10, idle_timeout_s=0)


class TestGarbageCollection:
    def test_idle_entries_evicted(self):
        cache = FlowCache(capacity=100, idle_timeout_s=1.0)
        cache.insert(1, "a", now=0.0)
        cache.insert(2, "b", now=0.9)
        evicted = cache.garbage_collect(now=1.5)
        assert evicted == 1
        assert 1 not in cache and 2 in cache
        assert cache.gc_evictions == 1

    def test_gc_noop_when_everything_fresh(self):
        cache = FlowCache(capacity=100, idle_timeout_s=5.0)
        for flow_id in range(10):
            cache.insert(flow_id, "a", now=1.0)
        assert cache.garbage_collect(now=2.0) == 0
        assert len(cache) == 10

    def test_gc_keeps_cache_bounded_over_time(self):
        cache = FlowCache(capacity=1000, idle_timeout_s=0.5)
        for epoch in range(5):
            base = epoch * 100
            for flow_id in range(base, base + 50):
                cache.insert(flow_id, "a", now=epoch * 1.0)
            cache.garbage_collect(now=epoch * 1.0)
            assert len(cache) <= 100


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "lookup", "invalidate", "gc"]),
            st.integers(min_value=0, max_value=30),
        ),
        min_size=1,
        max_size=100,
    )
)
def test_property_cache_never_exceeds_capacity(operations):
    cache = FlowCache(capacity=8, idle_timeout_s=0.5)
    now = 0.0
    for op, flow_id in operations:
        now += 0.05
        if op == "insert":
            cache.insert(flow_id, f"port{flow_id % 3}", now)
        elif op == "lookup":
            cache.lookup(flow_id, now)
        elif op == "invalidate":
            cache.invalidate(flow_id)
        else:
            cache.garbage_collect(now)
        assert len(cache) <= 8
        assert 0.0 <= cache.occupancy <= 1.0
