"""Tests for the path-quality score (Alg. 1, Alg. 2, Eq. 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LCMPConfig,
    SwitchTables,
    calc_delay_cost,
    calc_link_cap_cost,
    candidate_path_quality,
    path_quality_score,
)
from repro.topology import GBPS


class TestCalcDelayCost:
    def test_zero_delay(self):
        assert calc_delay_cost(0, max_delay_ms=32) == 0

    def test_saturation_at_max(self):
        assert calc_delay_cost(32, max_delay_ms=32) == 255
        assert calc_delay_cost(500, max_delay_ms=32) == 255

    def test_linear_shift_mapping(self):
        # (16 * 255) >> 5 == 127 (half the configured maximum)
        assert calc_delay_cost(16, max_delay_ms=32) == 127
        assert calc_delay_cost(8, max_delay_ms=32) == 63

    def test_larger_saturation_point(self):
        # inter-DC deployments use e.g. 512 ms; 256 ms maps to half scale
        assert calc_delay_cost(256, max_delay_ms=512) == 127
        assert calc_delay_cost(512, max_delay_ms=512) == 255

    def test_monotonic_in_delay(self):
        scores = [calc_delay_cost(d, max_delay_ms=64) for d in range(0, 70, 2)]
        assert scores == sorted(scores)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            calc_delay_cost(-1)
        with pytest.raises(ValueError):
            calc_delay_cost(1, max_delay_ms=100)  # not a power of two


class TestCalcLinkCapCost:
    @pytest.fixture
    def tables(self, switch_tables):
        return switch_tables

    def test_higher_capacity_lower_cost(self, tables):
        cost_40 = calc_link_cap_cost(40 * GBPS, tables.link_cap_thresholds, tables.level_scores)
        cost_100 = calc_link_cap_cost(100 * GBPS, tables.link_cap_thresholds, tables.level_scores)
        cost_200 = calc_link_cap_cost(200 * GBPS, tables.link_cap_thresholds, tables.level_scores)
        cost_400 = calc_link_cap_cost(400 * GBPS, tables.link_cap_thresholds, tables.level_scores)
        assert cost_40 > cost_100 > cost_200 > cost_400
        for cost in (cost_40, cost_100, cost_200, cost_400):
            assert 0 <= cost <= 255

    def test_tiny_capacity_worst_cost(self, tables):
        # below every non-zero threshold -> lands in class 0 -> cost 255
        cost = calc_link_cap_cost(1, tables.link_cap_thresholds, tables.level_scores)
        assert cost == 255

    def test_mismatched_tables_rejected(self):
        with pytest.raises(ValueError):
            calc_link_cap_cost(1e9, [0, 1], [0])


class TestPathQualityScore:
    def test_eq2_weighting_and_shift(self):
        cfg = LCMPConfig(w_dl=3, w_lc=1, path_shift=2)
        # (3*100 + 1*60) >> 2 == 90
        assert path_quality_score(100, 60, cfg) == 90

    def test_saturates_at_255(self):
        cfg = LCMPConfig(w_dl=3, w_lc=1, path_shift=0)
        assert path_quality_score(255, 255, cfg) == 255

    def test_component_range_checked(self):
        cfg = LCMPConfig()
        with pytest.raises(ValueError):
            path_quality_score(300, 0, cfg)
        with pytest.raises(ValueError):
            path_quality_score(0, -1, cfg)


class TestCandidatePathQuality:
    def test_testbed_ranking_prefers_low_delay(self, testbed_paths, switch_tables):
        """With the paper's delay-biased weights the three low-delay relays
        (DC3, DC5, DC7) must rank strictly better than their high-delay
        counterparts (DC2, DC4, DC6)."""
        cfg = LCMPConfig()
        cands = {c.first_hop: c for c in testbed_paths.candidates("DC1", "DC8")}
        score = {
            hop: candidate_path_quality(c, switch_tables, cfg) for hop, c in cands.items()
        }
        assert score["DC3"] < score["DC2"]
        assert score["DC5"] < score["DC4"]
        assert score["DC7"] < score["DC6"]
        # and the extreme 500 ms route is the worst of all
        assert score["DC2"] == max(score.values())

    def test_capacity_bias_flips_ranking(self, testbed_paths, switch_tables):
        """With w_dl:w_lc = 1:3 (capacity-biased, Fig. 11c) high-capacity
        routes become more attractive than low-delay ones."""
        cfg = LCMPConfig(w_dl=1, w_lc=3)
        cands = {c.first_hop: c for c in testbed_paths.candidates("DC1", "DC8")}
        score = {
            hop: candidate_path_quality(c, switch_tables, cfg) for hop, c in cands.items()
        }
        # the 200G/25ms route must now beat the 40G/5ms route
        assert score["DC3"] < score["DC7"]


@settings(max_examples=60, deadline=None)
@given(
    delay_ms=st.integers(min_value=0, max_value=1000),
    cap_gbps=st.sampled_from([10, 25, 40, 100, 200, 400]),
)
def test_property_scores_stay_in_byte_range(delay_ms, cap_gbps):
    cfg = LCMPConfig()
    tables = SwitchTables.bootstrap(cfg, max_capacity_bps=400 * GBPS, buffer_bytes=1 << 20)
    delay_score = calc_delay_cost(delay_ms, cfg.max_delay_ms)
    cap_score = calc_link_cap_cost(cap_gbps * GBPS, tables.link_cap_thresholds, tables.level_scores)
    fused = path_quality_score(delay_score, cap_score, cfg)
    assert 0 <= delay_score <= 255
    assert 0 <= cap_score <= 255
    assert 0 <= fused <= 255
