"""Tests for the port-liveness tracker used by data-plane fast-failover."""

from repro.core import PortLivenessTracker


class TestLiveness:
    def test_unknown_ports_are_up(self):
        tracker = PortLivenessTracker()
        assert tracker.is_up("anything")

    def test_mark_down_and_up(self):
        tracker = PortLivenessTracker()
        tracker.mark_down("DC3")
        assert not tracker.is_up("DC3")
        assert tracker.down_ports == {"DC3"}
        tracker.mark_up("DC3")
        assert tracker.is_up("DC3")
        assert tracker.down_ports == set()

    def test_observe_from_monitor_samples(self):
        tracker = PortLivenessTracker()
        tracker.observe("DC2", up=False)
        tracker.observe("DC4", up=True)
        assert not tracker.is_up("DC2")
        assert tracker.is_up("DC4")
        tracker.observe("DC2", up=True)
        assert tracker.is_up("DC2")

    def test_lazy_invalidation_counter(self):
        tracker = PortLivenessTracker()
        tracker.record_lazy_invalidation()
        tracker.record_lazy_invalidation()
        assert tracker.lazy_invalidations == 2
