"""Tests for the on-switch congestion estimator (Q, T, D and Eq. 3-5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CongestionEstimator, LCMPConfig, SwitchTables
from repro.topology import GBPS


@pytest.fixture
def estimator(switch_tables):
    return CongestionEstimator(switch_tables)


RATE = 100 * GBPS


def feed(estimator, port, samples, rate=RATE, interval=1e-3, start=0.0):
    """Feed a sequence of queue-byte samples at a fixed cadence."""
    now = start
    for queue_bytes in samples:
        estimator.observe(port, queue_bytes, rate, now)
        now += interval
    return now


class TestQueueLevel:
    def test_empty_queue_scores_zero(self, estimator):
        feed(estimator, "p0", [0, 0, 0])
        assert estimator.queue_score("p0") == 0
        assert estimator.congestion_score("p0") == 0

    def test_deep_queue_scores_high(self, estimator, switch_tables):
        deep = switch_tables.buffer_bytes * 0.95
        feed(estimator, "p0", [deep, deep])
        assert estimator.queue_score("p0") == switch_tables.level_scores[-1]

    def test_unknown_port_scores_zero(self, estimator):
        assert estimator.queue_score("nope") == 0
        assert estimator.congestion_score("nope") == 0


class TestTrend:
    def test_growing_queue_positive_trend(self, estimator, switch_tables):
        step = switch_tables.buffer_bytes / 20
        feed(estimator, "p0", [i * step for i in range(10)])
        assert estimator.trend_score("p0") > 0
        state = estimator.port_state("p0")
        assert state.trend > 0

    def test_shrinking_queue_zero_trend_score(self, estimator, switch_tables):
        step = switch_tables.buffer_bytes / 20
        feed(estimator, "p0", [10 * step - i * step for i in range(10)])
        assert estimator.trend_score("p0") == 0

    def test_stable_queue_trend_decays_to_zero(self, estimator, switch_tables):
        """Eq. 3 is a decaying EWMA: once the queue stops changing, the trend
        accumulator (and hence the trend score) decays away, leaving only the
        instantaneous queue level to carry the congestion signal."""
        level = switch_tables.buffer_bytes * 0.3
        feed(estimator, "p0", [level] * 120)
        assert estimator.trend_score("p0") == 0
        assert estimator.queue_score("p0") > 0

    def test_trend_ewma_follows_eq3(self, switch_tables):
        cfg = LCMPConfig(trend_ewma_shift=3)
        est = CongestionEstimator(switch_tables, cfg)
        est.observe("p0", 0, RATE, 0.0)
        est.observe("p0", 800, RATE, 1e-3)
        # T = 0 - (0 >> 3) + (800 >> 3) = 100
        assert est.port_state("p0").trend == 100
        est.observe("p0", 800, RATE, 2e-3)
        # T = 100 - (100 >> 3) + (0 >> 3) = 88
        assert est.port_state("p0").trend == 88


class TestDuration:
    def test_persistent_congestion_accumulates(self, estimator, switch_tables):
        high = switch_tables.buffer_bytes * 0.85  # above the high-water level
        feed(estimator, "p0", [high] * 50)
        assert estimator.duration_score("p0") > 0
        assert estimator.port_state("p0").dur_cnt == 50

    def test_duration_decays_when_queue_drops(self, estimator, switch_tables):
        high = switch_tables.buffer_bytes * 0.85
        feed(estimator, "p0", [high] * 20)
        counter_peak = estimator.port_state("p0").dur_cnt
        feed(estimator, "p0", [0] * 20, start=0.02)
        assert estimator.port_state("p0").dur_cnt < counter_peak

    def test_duration_score_capped(self, estimator, switch_tables):
        high = switch_tables.buffer_bytes
        feed(estimator, "p0", [high] * 3000)
        assert estimator.duration_score("p0") == 255


class TestFusion:
    def test_congestion_score_range_and_monotonicity(self, estimator, switch_tables):
        low = switch_tables.buffer_bytes * 0.05
        high = switch_tables.buffer_bytes * 0.9
        feed(estimator, "idle", [low] * 10)
        feed(estimator, "busy", [high] * 10)
        idle_score = estimator.congestion_score("idle")
        busy_score = estimator.congestion_score("busy")
        assert 0 <= idle_score <= 255
        assert 0 <= busy_score <= 255
        assert busy_score > idle_score

    def test_weights_change_emphasis(self, switch_tables):
        """A queue-focused allocation reacts more to standing queues than a
        trend-focused one when the queue is high but flat."""
        high_flat = [switch_tables.buffer_bytes * 0.8] * 20
        queue_focused = CongestionEstimator(switch_tables, LCMPConfig(w_ql=2, w_tl=1, w_dp=1))
        trend_focused = CongestionEstimator(switch_tables, LCMPConfig(w_ql=1, w_tl=2, w_dp=1))
        feed(queue_focused, "p", high_flat)
        feed(trend_focused, "p", high_flat)
        assert queue_focused.congestion_score("p") >= trend_focused.congestion_score("p")

    def test_reset(self, estimator, switch_tables):
        feed(estimator, "p0", [switch_tables.buffer_bytes] * 5)
        estimator.reset("p0")
        assert estimator.congestion_score("p0") == 0
        feed(estimator, "p1", [switch_tables.buffer_bytes] * 5)
        estimator.reset()
        assert estimator.ports() == []


@settings(max_examples=40, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=0, max_value=512 * 1024 * 1024, allow_nan=False),
        min_size=1,
        max_size=60,
    )
)
def test_property_scores_always_in_range(samples):
    """Property: no sample sequence can push any component score outside 0-255."""
    tables = SwitchTables.bootstrap(
        LCMPConfig(), max_capacity_bps=400 * GBPS, buffer_bytes=512 * 1024 * 1024
    )
    est = CongestionEstimator(tables)
    now = 0.0
    for q in samples:
        est.observe("p", q, 100 * GBPS, now)
        now += 1e-3
        assert 0 <= est.queue_score("p") <= 255
        assert 0 <= est.trend_score("p") <= 255
        assert 0 <= est.duration_score("p") <= 255
        assert 0 <= est.congestion_score("p") <= 255
