"""Tests for the §4 resource-cost accounting."""

import pytest

from repro.core import resource_model as rm


class TestPerElementSizes:
    def test_per_port_is_24_bytes(self):
        # 4 x 32-bit registers + one 64-bit timestamp
        assert rm.per_port_bytes() == 24

    def test_per_flow_is_20_bytes(self):
        # 64-bit flowId + 32-bit portIdx + 64-bit lastSeen
        assert rm.per_flow_bytes() == 20


class TestAggregates:
    def test_48_port_cache_matches_paper(self):
        # the paper's demonstration: 24 B/port x 48 ports = 1152 B
        assert rm.port_cache_bytes(48) == 1152

    def test_50k_flow_cache_about_one_megabyte(self):
        """20 B/flow x 50,000 flows = 1.0 MB.

        (The paper's §4 demonstration multiplies 24 B by 50 k and quotes
        1.2 MB; with its own 20 B per-flow layout the figure is 1.0 MB —
        either way the working set is around a megabyte.)
        """
        assert rm.flow_cache_bytes(50_000) == 1_000_000

    def test_control_tables_small(self):
        assert rm.control_table_bytes(num_classes=10, num_paths=10_000) == pytest.approx(
            10_000 + 130, abs=50
        )

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            rm.port_cache_bytes(-1)
        with pytest.raises(ValueError):
            rm.flow_cache_bytes(-1)
        with pytest.raises(ValueError):
            rm.control_table_bytes(-1, 0)


class TestEstimate:
    def test_example_deployment_within_switch_budget(self):
        est = rm.estimate(num_ports=48, flow_cache_entries=50_000, num_paths=10_000)
        assert est.total_megabytes < 2.0
        assert est.total_bytes == est.port_bytes + est.flow_bytes + est.table_bytes
        assert est.port_bytes == 1152

    def test_scaling_with_flow_cache(self):
        small = rm.estimate(flow_cache_entries=10_000)
        large = rm.estimate(flow_cache_entries=100_000)
        assert large.flow_bytes == 10 * small.flow_bytes


class TestPerFlowCompute:
    def test_paper_example_m6_about_100_primitives(self):
        # §4: ~15 primitives per candidate x 6 + ~15 sort comparisons ~= 105
        ops = rm.per_new_flow_ops(6)
        assert 95 <= ops <= 115

    def test_monotonic_in_candidates(self):
        values = [rm.per_new_flow_ops(m) for m in range(1, 9)]
        assert values == sorted(values)

    def test_single_candidate_has_no_sort_cost(self):
        assert rm.per_new_flow_ops(1) == 15

    def test_invalid_candidate_count(self):
        with pytest.raises(ValueError):
            rm.per_new_flow_ops(0)
