"""Tests for the full LCMP data-plane decision pipeline."""

import pytest

from repro.core import ControlPlane, LCMPConfig, LCMPRouter
from repro.simulator import FlowDemand, PortSample
from repro.topology import GBPS


def make_demand(flow_id=1, dst="DC8"):
    return FlowDemand(flow_id, "DC1", dst, 0, 0, 1_000_000, 0.0)


def make_sample(next_dc, queue_bytes, cap_bps=100 * GBPS, buffer_bytes=512 * 1024 * 1024, up=True, t=0.0):
    return PortSample(
        switch="DC1",
        next_dc=next_dc,
        link_key=("DC1", next_dc),
        queue_bytes=queue_bytes,
        carried_bytes=0.0,
        cap_bps=cap_bps,
        buffer_bytes=buffer_bytes,
        up=up,
        time_s=t,
    )


@pytest.fixture
def provisioned_router(testbed_topology, testbed_paths):
    """An LCMP router for DC1, provisioned by the control plane."""
    config = LCMPConfig()
    router = LCMPRouter(config)
    ControlPlane(testbed_topology, testbed_paths, config).install(router, "DC1")
    return router


@pytest.fixture
def dc1_candidates(testbed_paths):
    return testbed_paths.candidates("DC1", "DC8")


class TestProvisioning:
    def test_installed_after_control_plane(self, provisioned_router):
        assert provisioned_router.installed
        assert provisioned_router.tables is not None
        assert provisioned_router.estimator is not None

    def test_uninstalled_router_falls_back_to_ecmp(self, dc1_candidates):
        router = LCMPRouter()
        chosen = router.select("DC8", dc1_candidates, make_demand(1), now=0.0)
        assert chosen in dc1_candidates
        assert router.ecmp_fallbacks == 1

    def test_on_demand_bootstrap_from_samples(self, dc1_candidates):
        """A router that has only seen monitor samples (no control-plane
        install) builds minimal tables on demand and stops falling back."""
        router = LCMPRouter()
        router.on_port_sample(make_sample("DC2", 0), now=0.0)
        assert router.installed
        chosen = router.select("DC8", dc1_candidates, make_demand(2), now=0.0)
        assert chosen in dc1_candidates
        assert router.ecmp_fallbacks == 0


class TestDecision:
    def test_idle_network_prefers_low_delay_paths(self, provisioned_router, dc1_candidates):
        """Without congestion the reduced set is exactly the three low-delay
        relays (DC3, DC5, DC7) and every decision lands on one of them."""
        chosen_hops = set()
        for flow_id in range(100):
            chosen = provisioned_router.select("DC8", dc1_candidates, make_demand(flow_id), now=0.0)
            chosen_hops.add(chosen.first_hop)
        assert chosen_hops == {"DC3", "DC5", "DC7"}

    def test_congestion_steers_away_from_hot_port(self, provisioned_router, dc1_candidates):
        """When the favourite low-delay port develops a standing queue its
        congestion score rises and it drops out of the reduced set."""
        buffer_bytes = provisioned_router.tables.buffer_bytes
        # DC7 (the 40G, 5 ms relay) becomes persistently congested
        for i in range(30):
            provisioned_router.on_port_sample(
                make_sample("DC7", buffer_bytes * 0.9, cap_bps=40 * GBPS, t=i * 1e-3), now=i * 1e-3
            )
            provisioned_router.on_port_sample(
                make_sample("DC3", 0, cap_bps=200 * GBPS, t=i * 1e-3), now=i * 1e-3
            )
            provisioned_router.on_port_sample(
                make_sample("DC5", 0, cap_bps=100 * GBPS, t=i * 1e-3), now=i * 1e-3
            )
        chosen_hops = set()
        for flow_id in range(200):
            chosen = provisioned_router.select(
                "DC8", dc1_candidates, make_demand(flow_id + 1000), now=0.05
            )
            chosen_hops.add(chosen.first_hop)
        assert "DC7" not in chosen_hops
        assert chosen_hops  # still uses the remaining good paths

    def test_herd_fallback_when_everything_congested(self, testbed_topology, testbed_paths, dc1_candidates):
        config = LCMPConfig(congested_threshold=100)
        router = LCMPRouter(config)
        ControlPlane(testbed_topology, testbed_paths, config).install(router, "DC1")
        buffer_bytes = router.tables.buffer_bytes
        for i in range(50):
            for cand in dc1_candidates:
                router.on_port_sample(
                    make_sample(cand.first_hop, buffer_bytes * 0.95, t=i * 1e-3), now=i * 1e-3
                )
        chosen = router.select("DC8", dc1_candidates, make_demand(1), now=0.1)
        assert router.herd_fallbacks == 1
        # the fallback picks the overall minimum-cost candidate
        assert chosen in dc1_candidates

    def test_decisions_counted(self, provisioned_router, dc1_candidates):
        for flow_id in range(5):
            provisioned_router.select("DC8", dc1_candidates, make_demand(flow_id), now=0.0)
        stats = provisioned_router.stats()
        assert stats["decisions"] == 5
        assert stats["flow_cache_entries"] == 5


class TestStickinessAndFailover:
    def test_repeated_packets_follow_cached_egress(self, provisioned_router, dc1_candidates):
        demand = make_demand(flow_id=42)
        first = provisioned_router.select("DC8", dc1_candidates, demand, now=0.0)
        again = provisioned_router.select("DC8", dc1_candidates, demand, now=0.1)
        assert first.first_hop == again.first_hop
        assert provisioned_router.sticky_hits == 1

    def test_failed_port_triggers_lazy_rehash(self, provisioned_router, dc1_candidates):
        demand = make_demand(flow_id=43)
        first = provisioned_router.select("DC8", dc1_candidates, demand, now=0.0)
        # the chosen port dies
        provisioned_router.on_port_sample(
            make_sample(first.first_hop, 0, up=False, t=0.01), now=0.01
        )
        live_candidates = [c for c in dc1_candidates if c.first_hop != first.first_hop]
        rerouted = provisioned_router.select("DC8", live_candidates, demand, now=0.02)
        assert rerouted.first_hop != first.first_hop
        assert provisioned_router.failover_rehashes == 1
        assert provisioned_router.liveness.lazy_invalidations == 1

    def test_gc_tick_evicts_idle_flows(self, testbed_topology, testbed_paths, dc1_candidates):
        config = LCMPConfig(flow_idle_timeout_s=0.5)
        router = LCMPRouter(config)
        ControlPlane(testbed_topology, testbed_paths, config).install(router, "DC1")
        router.select("DC8", dc1_candidates, make_demand(1), now=0.0)
        assert len(router.flow_cache) == 1
        router.on_tick(now=2.0)
        assert len(router.flow_cache) == 0


class TestAblationBehaviour:
    def test_rm_alpha_ignores_path_quality(self, testbed_topology, testbed_paths, dc1_candidates):
        """With alpha = 0 and an idle network every candidate costs the same,
        so the selection spreads over half of *all* candidates regardless of
        delay — including high-delay ones (the Fig. 11a failure mode)."""
        config = LCMPConfig().ablate_path_quality()
        router = LCMPRouter(config)
        ControlPlane(testbed_topology, testbed_paths, config).install(router, "DC1")
        chosen_hops = {
            router.select("DC8", dc1_candidates, make_demand(i), now=0.0).first_hop
            for i in range(300)
        }
        high_delay_relays = {"DC2", "DC4", "DC6"}
        assert chosen_hops & high_delay_relays

    def test_rm_beta_never_reacts_to_congestion(self, testbed_topology, testbed_paths, dc1_candidates):
        config = LCMPConfig().ablate_congestion()
        router = LCMPRouter(config)
        ControlPlane(testbed_topology, testbed_paths, config).install(router, "DC1")
        buffer_bytes = router.tables.buffer_bytes
        for i in range(50):
            router.on_port_sample(
                make_sample("DC7", buffer_bytes * 0.95, cap_bps=40 * GBPS, t=i * 1e-3), now=i * 1e-3
            )
        chosen_hops = {
            router.select("DC8", dc1_candidates, make_demand(i + 500), now=0.1).first_hop
            for i in range(300)
        }
        # DC7 stays in the reduced set despite being saturated
        assert "DC7" in chosen_hops
