"""Failover + flow-cache interaction under injected port failures.

Covers the coupling the scenario engine now exercises end to end: port
liveness flaps feeding :class:`~repro.core.failover.PortLivenessTracker`,
lazy invalidation counts matching the number of re-hashed cached flows, and
the double-failure corner where every candidate port is dead at once.
"""

import pytest

from repro.core import ControlPlane, LCMPConfig, LCMPRouter
from repro.simulator import FlowDemand, PortSample
from repro.topology import GBPS


def make_demand(flow_id, dst="DC8"):
    return FlowDemand(flow_id, "DC1", dst, 0, 0, 1_000_000, 0.0)


def make_sample(next_dc, up, t=0.0, queue_bytes=0.0):
    return PortSample(
        switch="DC1",
        next_dc=next_dc,
        link_key=("DC1", next_dc),
        queue_bytes=queue_bytes,
        carried_bytes=0.0,
        cap_bps=100 * GBPS,
        buffer_bytes=512 * 1024 * 1024,
        up=up,
        time_s=t,
    )


@pytest.fixture
def router(testbed_topology, testbed_paths):
    config = LCMPConfig()
    router = LCMPRouter(config)
    ControlPlane(testbed_topology, testbed_paths, config).install(router, "DC1")
    return router


@pytest.fixture
def candidates(testbed_paths):
    return testbed_paths.candidates("DC1", "DC8")


class TestLivenessFlaps:
    def test_flap_updates_tracker_each_observation(self, router):
        for i in range(5):
            router.on_port_sample(make_sample("DC7", up=False, t=float(i)), float(i))
            assert not router.liveness.is_up("DC7")
            router.on_port_sample(make_sample("DC7", up=True, t=i + 0.5), i + 0.5)
            assert router.liveness.is_up("DC7")
        assert router.liveness.down_ports == set()

    def test_flap_invalidates_once_per_down_epoch(self, router, candidates):
        """A flap only costs one lazy invalidation per flow per down epoch."""
        demand = make_demand(1)
        chosen = router.select("DC8", candidates, demand, now=0.0)
        port = chosen.first_hop

        router.on_port_sample(make_sample(port, up=False, t=0.1), 0.1)
        live = [c for c in candidates if c.first_hop != port]
        router.select("DC8", live, demand, now=0.2)
        assert router.liveness.lazy_invalidations == 1

        # port comes back; the flow re-hashed elsewhere, so further selects
        # hit the (healthy) new cache entry and invalidate nothing
        router.on_port_sample(make_sample(port, up=True, t=0.3), 0.3)
        router.select("DC8", candidates, demand, now=0.4)
        assert router.liveness.lazy_invalidations == 1
        assert router.sticky_hits >= 1


class TestLazyInvalidationCounts:
    def test_one_invalidation_per_cached_flow_on_dead_port(self, router, candidates):
        """N flows cached on a port that dies => exactly N lazy invalidations."""
        # pin a batch of flows, remember who landed on which port
        placements = {}
        for flow_id in range(40):
            chosen = router.select("DC8", candidates, make_demand(flow_id), now=0.0)
            placements[flow_id] = chosen.first_hop
        victim_port = max(set(placements.values()), key=list(placements.values()).count)
        victims = [fid for fid, port in placements.items() if port == victim_port]
        assert victims, "the hash must place at least one flow per popular port"

        router.on_port_sample(make_sample(victim_port, up=False, t=1.0), 1.0)
        live = [c for c in candidates if c.first_hop != victim_port]
        before = router.liveness.lazy_invalidations
        for flow_id in range(40):
            router.select("DC8", live, make_demand(flow_id), now=1.1)
        assert router.liveness.lazy_invalidations - before == len(victims)
        assert router.failover_rehashes == len(victims)

    def test_rehashed_flows_avoid_dead_port_and_stay_sticky(self, router, candidates):
        demand = make_demand(7)
        first = router.select("DC8", candidates, demand, now=0.0)
        router.on_port_sample(make_sample(first.first_hop, up=False, t=0.1), 0.1)
        live = [c for c in candidates if c.first_hop != first.first_hop]
        second = router.select("DC8", live, demand, now=0.2)
        assert second.first_hop != first.first_hop
        # later packets of the re-hashed flow stick to the new egress
        third = router.select("DC8", live, demand, now=0.3)
        assert third.first_hop == second.first_hop
        assert router.sticky_hits >= 1


class TestDoubleFailure:
    def test_all_candidates_dead_still_returns_a_route(self, router, candidates):
        """When every port is down the router must still pick something
        (the switch passes the full candidate list through as fallback)."""
        demand = make_demand(3)
        router.select("DC8", candidates, demand, now=0.0)
        for candidate in candidates:
            router.on_port_sample(make_sample(candidate.first_hop, up=False, t=0.1), 0.1)
        assert router.liveness.down_ports == {c.first_hop for c in candidates}

        chosen = router.select("DC8", candidates, demand, now=0.2)
        assert chosen in candidates
        # the cached entry pointed at a dead port, so it was lazily dropped
        assert router.liveness.lazy_invalidations >= 1

    def test_recovery_after_double_failure_restores_stickiness(self, router, candidates):
        demand = make_demand(9)
        for candidate in candidates:
            router.on_port_sample(make_sample(candidate.first_hop, up=False, t=0.1), 0.1)
        chosen_down = router.select("DC8", candidates, demand, now=0.2)
        for candidate in candidates:
            router.on_port_sample(make_sample(candidate.first_hop, up=True, t=0.3), 0.3)
        chosen_up = router.select("DC8", candidates, demand, now=0.4)
        # the entry cached during the outage points at a now-live port, so
        # per-flow path consistency holds across the recovery
        assert chosen_up.first_hop == chosen_down.first_hop
        assert router.liveness.down_ports == set()
