"""Tests for the LCMP configuration object."""

import pytest

from repro.core import LCMPConfig


class TestDefaults:
    def test_paper_recommended_defaults(self):
        cfg = LCMPConfig()
        assert (cfg.alpha, cfg.beta) == (3, 1)
        assert (cfg.w_dl, cfg.w_lc) == (3, 1)
        assert (cfg.w_ql, cfg.w_tl, cfg.w_dp) == (2, 1, 1)
        assert cfg.keep_fraction == 0.5
        assert cfg.flow_cache_capacity == 50_000

    def test_delay_shift_matches_max_delay(self):
        assert LCMPConfig(max_delay_ms=32).delay_shift == 5
        assert LCMPConfig(max_delay_ms=64).delay_shift == 6
        assert LCMPConfig(max_delay_ms=512).delay_shift == 9

    def test_validate_passes_on_defaults(self):
        LCMPConfig().validate()


class TestValidation:
    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            LCMPConfig(alpha=-1).validate()

    def test_both_fusion_weights_zero_rejected(self):
        with pytest.raises(ValueError):
            LCMPConfig(alpha=0, beta=0).validate()

    def test_max_delay_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            LCMPConfig(max_delay_ms=100).validate()
        LCMPConfig(max_delay_ms=128).validate()

    def test_keep_fraction_bounds(self):
        with pytest.raises(ValueError):
            LCMPConfig(keep_fraction=0).validate()
        with pytest.raises(ValueError):
            LCMPConfig(keep_fraction=1.5).validate()
        LCMPConfig(keep_fraction=1.0).validate()

    def test_level_and_cache_bounds(self):
        with pytest.raises(ValueError):
            LCMPConfig(num_levels=1).validate()
        with pytest.raises(ValueError):
            LCMPConfig(high_water_level=10).validate()
        with pytest.raises(ValueError):
            LCMPConfig(flow_cache_capacity=0).validate()
        with pytest.raises(ValueError):
            LCMPConfig(flow_idle_timeout_s=0).validate()


class TestOverridesAndAblations:
    def test_with_overrides_is_copy(self):
        base = LCMPConfig()
        tweaked = base.with_overrides(alpha=1, beta=3)
        assert (tweaked.alpha, tweaked.beta) == (1, 3)
        assert (base.alpha, base.beta) == (3, 1)

    def test_rm_alpha_ablation(self):
        ablated = LCMPConfig().ablate_path_quality()
        assert ablated.alpha == 0
        assert ablated.beta >= 1
        ablated.validate()

    def test_rm_beta_ablation(self):
        ablated = LCMPConfig().ablate_congestion()
        assert ablated.beta == 0
        assert ablated.alpha >= 1
        ablated.validate()
