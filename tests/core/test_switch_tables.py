"""Tests for the bootstrap switch tables (paper Fig. 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LCMPConfig, SwitchTables, lookup_level
from repro.topology import GBPS


class TestLookupLevel:
    def test_basic_lookup(self):
        thresholds = [0, 10, 20, 30]
        assert lookup_level(0, thresholds) == 0
        assert lookup_level(5, thresholds) == 0
        assert lookup_level(10, thresholds) == 1
        assert lookup_level(29, thresholds) == 2
        assert lookup_level(1000, thresholds) == 3


class TestBootstrap:
    def test_table_shapes(self, switch_tables, lcmp_config):
        n = lcmp_config.num_levels
        assert len(switch_tables.link_cap_thresholds) == n
        assert len(switch_tables.queue_thresholds) == n
        assert len(switch_tables.level_scores) == n
        assert set(switch_tables.trend_thresholds)  # pre-installed buckets

    def test_level_scores_monotonic_within_byte(self, switch_tables):
        scores = switch_tables.level_scores
        assert scores[0] == 0
        assert scores == sorted(scores)
        assert all(0 <= s <= 255 for s in scores)

    def test_capacity_thresholds_proportional_to_max(self, switch_tables):
        thresholds = switch_tables.link_cap_thresholds
        assert thresholds[0] == 0
        assert thresholds[-1] == pytest.approx(0.9 * 400 * GBPS)

    def test_invalid_bootstrap_arguments(self, lcmp_config):
        with pytest.raises(ValueError):
            SwitchTables.bootstrap(lcmp_config, max_capacity_bps=0, buffer_bytes=1)
        with pytest.raises(ValueError):
            SwitchTables.bootstrap(lcmp_config, max_capacity_bps=1, buffer_bytes=0)


class TestQueueMapping:
    def test_queue_level_quantisation(self, switch_tables):
        buffer_bytes = switch_tables.buffer_bytes
        assert switch_tables.queue_level(0) == 0
        assert switch_tables.queue_level(buffer_bytes * 0.55) == 5
        assert switch_tables.queue_level(buffer_bytes * 2) == 9

    def test_level_score_saturates(self, switch_tables):
        assert switch_tables.level_score(-5) == switch_tables.level_scores[0]
        assert switch_tables.level_score(99) == switch_tables.level_scores[-1]


class TestCapacityMapping:
    def test_capacity_level_ordering(self, switch_tables):
        low = switch_tables.capacity_level(40 * GBPS)
        mid = switch_tables.capacity_level(100 * GBPS)
        high = switch_tables.capacity_level(400 * GBPS)
        assert low < mid < high


class TestTrendTables:
    def test_preinstalled_buckets(self, switch_tables):
        assert switch_tables.trend_thresholds_for(100 * GBPS)
        # asking again returns the same vector (no duplicate work)
        first = switch_tables.trend_thresholds_for(100 * GBPS)
        second = switch_tables.trend_thresholds_for(100 * GBPS)
        assert first is second

    def test_on_demand_bucket_creation(self, switch_tables):
        # 25 GbE was not pre-installed; the data plane creates it on demand
        vector = switch_tables.trend_thresholds_for(25 * GBPS)
        assert len(vector) == switch_tables.config.num_levels
        assert vector[0] == 0

    def test_trend_level_zero_for_non_positive(self, switch_tables):
        assert switch_tables.trend_level(0, 100 * GBPS) == 0
        assert switch_tables.trend_level(-1000, 100 * GBPS) == 0

    def test_trend_level_scales_with_rate_bucket(self, switch_tables):
        growth = 100_000  # bytes per sampling interval
        level_small_link = switch_tables.trend_level(growth, 40 * GBPS)
        level_big_link = switch_tables.trend_level(growth, 400 * GBPS)
        assert level_small_link >= level_big_link

    def test_trend_level_interval_rescaling(self, switch_tables):
        growth = 200_000
        # the same growth observed over half the nominal interval is twice as
        # steep, so it must map to an equal-or-higher level
        nominal = switch_tables.trend_level(growth, 100 * GBPS, interval_s=1e-3)
        faster = switch_tables.trend_level(growth, 100 * GBPS, interval_s=0.5e-3)
        assert faster >= nominal

    def test_invalid_rate_rejected(self, switch_tables):
        with pytest.raises(ValueError):
            switch_tables.trend_thresholds_for(0)

    def test_memory_footprint_small(self, switch_tables):
        # a few vectors of a few dozen entries: well under a kilobyte
        assert switch_tables.memory_bytes() < 1024


@settings(max_examples=60, deadline=None)
@given(value=st.floats(min_value=0, max_value=1e12, allow_nan=False))
def test_property_levels_are_valid_indices(value):
    tables = SwitchTables.bootstrap(
        LCMPConfig(), max_capacity_bps=400 * GBPS, buffer_bytes=1_000_000
    )
    level = tables.queue_level(value)
    assert 0 <= level < tables.config.num_levels
    assert 0 <= tables.level_score(level) <= 255
