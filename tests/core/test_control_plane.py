"""Tests for the LCMP control plane (slow-path provisioning)."""

import pytest

from repro.core import ControlPlane, LCMPConfig, LCMPRouter, lcmp_router_factory
from repro.routing import make_router_factory
from repro.simulator import RuntimeNetwork, SimulationConfig
from repro.topology import GBPS


class TestTables:
    def test_tables_derived_from_topology(self, testbed_topology, testbed_paths):
        cp = ControlPlane(testbed_topology, testbed_paths)
        tables = cp.build_tables()
        # the largest provisioned inter-DC capacity on the testbed is 200 Gbps
        assert tables.max_capacity_bps == 200 * GBPS
        assert tables.buffer_bytes > 0
        # one trend bucket per distinct provisioned rate
        assert len(tables.trend_thresholds) >= 3

    def test_tables_cached(self, testbed_topology, testbed_paths):
        cp = ControlPlane(testbed_topology, testbed_paths)
        assert cp.build_tables() is cp.build_tables()

    def test_empty_topology_rejected(self, tiny_topology, tiny_pathset):
        from repro.topology import Topology

        topo = Topology("lonely")
        topo.add_dc("DC1")
        cp = ControlPlane(topo, tiny_pathset)
        with pytest.raises(ValueError):
            cp.build_tables()


class TestPathScores:
    def test_scores_for_every_candidate(self, testbed_topology, testbed_paths):
        cp = ControlPlane(testbed_topology, testbed_paths)
        scores = cp.compute_path_scores("DC1")
        dc8_scores = {key: val for key, val in scores.items() if key[0] == "DC8"}
        assert len(dc8_scores) == 6
        assert all(0 <= val <= 255 for val in scores.values())

    def test_low_delay_paths_score_better(self, testbed_topology, testbed_paths):
        cp = ControlPlane(testbed_topology, testbed_paths)
        scores = cp.compute_path_scores("DC1")
        via = {key[1][1]: val for key, val in scores.items() if key[0] == "DC8"}
        assert via["DC3"] < via["DC2"]
        assert via["DC7"] < via["DC6"]


class TestInstallation:
    def test_install_single_router(self, testbed_topology, testbed_paths):
        router = LCMPRouter()
        ControlPlane(testbed_topology, testbed_paths).install(router, "DC1")
        assert router.installed

    def test_install_all_skips_baselines(self, testbed_topology, testbed_paths):
        cp = ControlPlane(testbed_topology, testbed_paths)
        network = RuntimeNetwork(
            testbed_topology, testbed_paths, make_router_factory("ecmp"), SimulationConfig()
        )
        assert cp.install_all(network) == 0

    def test_install_all_provisions_lcmp(self, testbed_topology, testbed_paths):
        cp = ControlPlane(testbed_topology, testbed_paths)
        network = RuntimeNetwork(
            testbed_topology,
            testbed_paths,
            lambda dc: LCMPRouter(),
            SimulationConfig(),
        )
        installed = cp.install_all(network)
        assert installed == len(testbed_topology.dcs)
        assert all(sw.router.installed for sw in network.switches.values())

    def test_factory_provisions_each_instance(self, testbed_topology, testbed_paths):
        factory = lcmp_router_factory(testbed_topology, testbed_paths, LCMPConfig())
        router_a = factory("DC1")
        router_b = factory("DC2")
        assert router_a is not router_b
        assert router_a.installed and router_b.installed
