"""Tests for the per-figure experiment drivers (quick, shape-level checks)."""

import pytest

from repro.experiments import (
    ALL_FIGURES,
    ExperimentRunner,
    figure1,
    figure5,
    figure6,
    figure9,
    figure11_ablation,
    section4_resources,
)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestRegistry:
    def test_every_paper_figure_has_a_driver(self):
        expected = {"fig1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                    "fig11a", "fig11b", "fig11c", "fig11d", "sec4"}
        assert expected <= set(ALL_FIGURES)


class TestSection4:
    def test_resource_metrics(self):
        result = section4_resources()
        assert result.metrics["per_port_bytes"] == 24
        assert result.metrics["per_flow_bytes"] == 20
        assert result.metrics["total_megabytes"] < 2.0
        assert 90 <= result.metrics["ops_per_new_flow_m6"] <= 120
        assert "resource accounting" in result.tables
        assert "sec4" in result.render()


class TestQuickFigureRuns:
    """Tiny flow counts: these verify plumbing and output structure, not the
    full paper-scale numbers (the benchmarks regenerate those)."""

    def test_figure1_structure(self, runner):
        result = figure1(num_flows=150, runner=runner)
        assert "30% load" in result.groups
        assert {"lcmp", "ecmp", "ucmp"} <= set(result.groups["30% load"])
        assert "per-link utilisation (DC1 egress)" in result.tables
        assert "imbalance_ecmp" in result.metrics
        rendered = result.render()
        assert "P50" in rendered and "P99" in rendered

    def test_figure5_single_load(self, runner):
        result = figure5(num_flows=150, loads=[0.3], runner=runner)
        group = "30% load"
        assert set(result.groups[group]) >= {"lcmp", "ecmp", "ucmp", "redte"}
        assert f"{group}_p50_reduction_vs_ecmp" in result.metrics

    def test_figure6_correlations_present(self, runner):
        result = figure6(num_flows=200, runner=runner)
        assert "pearson_p50" in result.metrics
        assert "pearson_p99" in result.metrics
        assert -1.0 <= result.metrics["pearson_p50"] <= 1.0

    def test_figure9_workload_groups(self, runner):
        result = figure9(num_flows=150, workloads=["websearch", "alistorage"], runner=runner)
        assert set(result.groups) == {"websearch", "alistorage"}

    def test_figure11_ablation_variants(self, runner):
        result = figure11_ablation(num_flows=150, runner=runner)
        series = result.groups["30% load"]
        assert set(series) == {"full", "rm-alpha", "rm-beta"}
        assert "p99_full" in result.metrics
