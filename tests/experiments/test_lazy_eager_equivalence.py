"""Lazy vs eager path sets must be invisible at the experiment level.

Every router on every topology — the two paper topologies plus a small
generated fabric — must produce bit-identical simulation results whether
the candidate path set materializes pairs lazily or enumerated everything
up front.  This is the end-to-end counterpart of the per-pair parity
suite in ``tests/topology/test_lazy_paths.py``.
"""

import pytest

from repro.experiments import ExperimentRunner, ExperimentSpec
from repro.scenarios.invariants import assert_results_identical
from repro.topology import FabricSpec

ROUTERS = ("lcmp", "ecmp", "ucmp", "wcmp", "redte")

TINY_FABRIC = FabricSpec(name="tiny", seed=3, regions=3, cores_per_region=2,
                         aggs_per_core=2, edges_per_agg=1)

TOPOLOGY_SPECS = {
    "testbed8": dict(topology="testbed8"),
    "bso13": dict(topology="bso13", pairs=(("DC1", "DC13"), ("DC13", "DC1"))),
    "fabric": dict(
        topology="fabric",
        fabric=TINY_FABRIC,
        pairs=(("R0E0x0x0", "R2E1x1x0"), ("R1E1x0x0", "R0E0x1x0")),
    ),
}


@pytest.fixture(scope="module")
def runner():
    # one runner for the whole module: lazy/eager topologies cache
    # separately (the cache key includes lazy_paths), routers share them
    return ExperimentRunner()


@pytest.mark.parametrize("topology", sorted(TOPOLOGY_SPECS))
@pytest.mark.parametrize("router", ROUTERS)
def test_lazy_eager_bit_identical(runner, topology, router):
    base = ExperimentSpec(
        name=f"{topology}-{router}",
        router=router,
        num_flows=120,
        seed=11,
        **TOPOLOGY_SPECS[topology],
    )
    lazy_run = runner.run(base.with_overrides(lazy_paths=True))
    eager_run = runner.run(base.with_overrides(lazy_paths=False))
    assert_results_identical(
        lazy_run.result, eager_run.result, label=f"{topology}/{router}"
    )
    assert lazy_run.profile.overall_p99 == eager_run.profile.overall_p99


def test_lazy_and_eager_pathsets_share_candidates(runner):
    spec = ExperimentSpec(name="probe", **TOPOLOGY_SPECS["fabric"])
    _, lazy_paths = runner.topology_for(spec.with_overrides(lazy_paths=True))
    _, eager_paths = runner.topology_for(spec.with_overrides(lazy_paths=False))
    for src, dst in spec.pairs:
        assert lazy_paths.candidate_ids(src, dst) == eager_paths.candidate_ids(src, dst)
        assert [c.dcs for c in lazy_paths.candidates(src, dst)] == [
            c.dcs for c in eager_paths.candidates(src, dst)
        ]
