"""Tests for experiment specifications."""

import pytest

from repro.core import LCMPConfig
from repro.experiments import (
    ALL_ROUTERS,
    CC_NAMES,
    LOADS,
    TESTBED_ENDPOINT_PAIRS,
    WORKLOAD_NAMES,
    ExperimentSpec,
)


class TestConstants:
    def test_paper_loads(self):
        assert LOADS == (0.3, 0.5, 0.8)

    def test_all_routers_includes_lcmp_and_baselines(self):
        assert "lcmp" in ALL_ROUTERS
        assert {"ecmp", "ucmp", "redte"} <= set(ALL_ROUTERS)

    def test_workloads_and_ccs(self):
        assert set(WORKLOAD_NAMES) == {"websearch", "alistorage", "fbhadoop"}
        assert set(CC_NAMES) == {"dcqcn", "hpcc", "timely", "dctcp"}

    def test_testbed_endpoints(self):
        assert TESTBED_ENDPOINT_PAIRS == (("DC1", "DC8"), ("DC8", "DC1"))


class TestSpec:
    def test_defaults_validate(self):
        ExperimentSpec(name="x").validate()

    def test_with_overrides(self):
        spec = ExperimentSpec(name="x")
        changed = spec.with_overrides(router="ecmp", load=0.8)
        assert changed.router == "ecmp" and changed.load == 0.8
        assert spec.router == "lcmp"

    def test_invalid_topology(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", topology="fat-tree").validate()

    def test_invalid_load_and_flows(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", load=0).validate()
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", num_flows=0).validate()
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", capacity_scale=0).validate()

    def test_carries_lcmp_config(self):
        cfg = LCMPConfig(alpha=1, beta=3)
        spec = ExperimentSpec(name="x", lcmp_config=cfg)
        assert spec.lcmp_config.alpha == 1
