"""Parallel sweep execution: determinism, ordering and fallbacks.

``ExperimentRunner.run_many`` fans specs out over a process pool; because
every stochastic component derives its RNG stream from the spec's own seed,
worker placement must not perturb anything — a parallel sweep returns
bit-identical results to a serial one, in spec order.
"""

from __future__ import annotations

import pickle

import pytest

from repro.experiments import ExperimentRunner, ExperimentSpec


def small_specs():
    return [
        ExperimentSpec(
            name=f"sweep-{router}-{load:g}",
            router=router,
            load=load,
            num_flows=60,
            seed=11,
        )
        for router in ("ecmp", "lcmp")
        for load in (0.3, 0.5)
    ]


def fct_lists(runs):
    return [[r.fct_s for r in run.result.records] for run in runs]


class TestRunManyParallel:
    def test_parallel_matches_serial_bitwise(self):
        serial = ExperimentRunner().run_many(small_specs(), parallel=False)
        parallel = ExperimentRunner().run_many(
            small_specs(), parallel=True, max_workers=2
        )
        assert [run.spec.name for run in parallel] == [
            spec.name for spec in small_specs()
        ]
        assert fct_lists(serial) == fct_lists(parallel)
        for s_run, p_run in zip(serial, parallel):
            assert s_run.profile.overall_p50 == p_run.profile.overall_p50
            assert s_run.profile.overall_p99 == p_run.profile.overall_p99

    def test_scenario_specs_round_trip(self):
        specs = [
            ExperimentSpec(
                name="cut", scenario="single-link-cut", num_flows=60, seed=5
            ),
            ExperimentSpec(
                name="surge", scenario="diurnal-surge", num_flows=60, seed=5
            ),
        ]
        assert pickle.loads(pickle.dumps(specs)) == specs
        serial = ExperimentRunner().run_many(specs, parallel=False)
        parallel = ExperimentRunner().run_many(specs, parallel=True, max_workers=2)
        assert fct_lists(serial) == fct_lists(parallel)
        for s_run, p_run in zip(serial, parallel):
            assert s_run.result.scenario_metrics is not None
            assert (
                s_run.result.scenario_metrics.total_disrupted
                == p_run.result.scenario_metrics.total_disrupted
            )

    def test_unpicklable_spec_falls_back_to_serial(self):
        from repro.scenarios.events import Scenario

        class Unpicklable(Scenario):
            def __reduce__(self):
                raise pickle.PicklingError("not today")

        specs = [
            ExperimentSpec(name="plain", num_flows=40, seed=3),
            ExperimentSpec(
                name="odd",
                num_flows=40,
                seed=3,
                scenario=Unpicklable(name="noop"),
            ),
        ]
        runs = ExperimentRunner().run_many(specs, parallel=True, max_workers=2)
        assert [run.spec.name for run in runs] == ["plain", "odd"]
        assert all(run.result.records for run in runs)

    def test_single_spec_runs_inline(self):
        runner = ExperimentRunner()
        runs = runner.run_many([ExperimentSpec(name="solo", num_flows=40)])
        assert len(runs) == 1
        # the inline run populates this runner's own topology cache
        assert runner._topology_cache

    def test_router_comparison_parallel_matches_serial(self):
        base = ExperimentSpec(name="base", num_flows=60, seed=9)
        serial = ExperimentRunner().run_router_comparison(
            base, ["ecmp", "ucmp"], parallel=False
        )
        parallel = ExperimentRunner().run_router_comparison(
            base, ["ecmp", "ucmp"], parallel=True
        )
        assert set(serial) == set(parallel) == {"ecmp", "ucmp"}
        for router in serial:
            assert [r.fct_s for r in serial[router].result.records] == [
                r.fct_s for r in parallel[router].result.records
            ]


@pytest.mark.parametrize("vectorized", [True, False])
def test_spec_vectorized_plumbs_through(vectorized):
    spec = ExperimentSpec(name="plumb", num_flows=40, vectorized=vectorized)
    config = ExperimentRunner().simulation_config_for(spec)
    assert config.vectorized is vectorized


@pytest.mark.parametrize("instrumentation", [True, False])
def test_spec_instrumentation_plumbs_through(instrumentation):
    spec = ExperimentSpec(name="plumb", num_flows=40, instrumentation=instrumentation)
    config = ExperimentRunner().simulation_config_for(spec)
    assert config.instrumentation is instrumentation


class TestSweepStatsAggregation:
    """Cross-worker observability aggregation (``aggregate_stats`` /
    ``last_sweep_stats``): a parallel sweep must merge to the same
    deterministic profile as a serial one — counters and event counts are
    exact; only wall-clock phase durations may differ."""

    @staticmethod
    def instrumented_specs():
        return [
            spec.with_overrides(instrumentation=True) for spec in small_specs()
        ]

    @staticmethod
    def deterministic_view(stats):
        return {
            "counters": stats["counters"],
            "phase_counts": {
                name: p["count"] for name, p in stats["phases"].items()
            },
            "histograms": {
                name: {
                    "count": h["count"],
                    "sum": h["sum"],
                    "max": h["max"],
                    "samples": sorted(h["samples"]),
                }
                for name, h in stats["histograms"].items()
            },
        }

    def test_uninstrumented_sweep_aggregates_to_none(self):
        runner = ExperimentRunner()
        runner.run_many(small_specs()[:2], parallel=False)
        assert runner.last_sweep_stats is None

    def test_parallel_aggregation_matches_serial(self):
        serial_runner = ExperimentRunner()
        serial_runner.run_many(self.instrumented_specs(), parallel=False)
        parallel_runner = ExperimentRunner()
        parallel_runner.run_many(
            self.instrumented_specs(), parallel=True, max_workers=2
        )
        serial = serial_runner.last_sweep_stats
        parallel = parallel_runner.last_sweep_stats
        assert serial is not None and parallel is not None
        assert self.deterministic_view(serial) == self.deterministic_view(parallel)
        assert serial["counters"]["engine.events_fired"] > 0

    def test_aggregate_skips_uninstrumented_runs(self):
        specs = small_specs()[:2]
        specs[0] = specs[0].with_overrides(instrumentation=True)
        runner = ExperimentRunner()
        runs = runner.run_many(specs, parallel=False)
        assert runs[0].result.stats is not None
        assert runs[1].result.stats is None
        merged = runner.last_sweep_stats
        assert merged == ExperimentRunner.aggregate_stats(runs)
        # the merge is exactly the one instrumented run's counters
        assert merged["counters"] == runs[0].result.stats["counters"]
