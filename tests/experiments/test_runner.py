"""Tests for the experiment runner (small, fast runs)."""

import pytest

from repro.core import LCMPConfig
from repro.experiments import ExperimentRunner, ExperimentSpec

QUICK = dict(num_flows=120, capacity_scale=0.05, seed=21)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner()


class TestBuildingBlocks:
    def test_topology_cache_reuse(self, runner):
        spec = ExperimentSpec(name="x", **QUICK)
        topo_a, paths_a = runner.topology_for(spec)
        topo_b, paths_b = runner.topology_for(spec)
        assert topo_a is topo_b and paths_a is paths_b

    def test_unknown_topology_rejected(self, runner):
        spec = ExperimentSpec(name="x", **QUICK)
        object.__setattr__(spec, "topology", "unknown")
        with pytest.raises(ValueError):
            runner.topology_for(spec)

    def test_demands_generated_for_spec(self, runner):
        spec = ExperimentSpec(name="x", **QUICK)
        topo, paths = runner.topology_for(spec)
        demands = runner.demands_for(spec, topo, paths)
        assert len(demands) == QUICK["num_flows"]


class TestRuns:
    @pytest.mark.parametrize("router", ["ecmp", "ucmp", "wcmp", "redte", "lcmp"])
    def test_each_router_runs_end_to_end(self, runner, router):
        spec = ExperimentSpec(name=router, router=router, **QUICK)
        run = runner.run(spec)
        assert len(run.result.records) == QUICK["num_flows"]
        assert run.result.unfinished_flows == 0
        assert run.profile.overall_p50 >= 1.0

    def test_each_cc_runs_end_to_end(self, runner):
        for cc in ("dcqcn", "hpcc", "timely", "dctcp"):
            spec = ExperimentSpec(name=cc, router="ecmp", cc=cc, num_flows=60,
                                  capacity_scale=0.05, seed=22)
            run = runner.run(spec)
            assert run.result.unfinished_flows == 0

    def test_bso13_runs_end_to_end(self, runner):
        spec = ExperimentSpec(
            name="bso", topology="bso13", router="lcmp", pairs="all_to_all",
            num_flows=150, capacity_scale=0.05, seed=23,
        )
        run = runner.run(spec)
        assert run.result.unfinished_flows == 0
        assert len(run.result.records) == 150

    def test_pair_profile_filtering(self, runner):
        spec = ExperimentSpec(
            name="bso", topology="bso13", router="ecmp", pairs="all_to_all",
            num_flows=200, capacity_scale=0.05, seed=24,
        )
        run = runner.run(spec)
        pairs = {(r.src_dc, r.dst_dc) for r in run.result.records}
        some_pair = next(iter(pairs))
        pair_profile = run.pair_profile(*some_pair)
        assert pair_profile.total_flows <= len(run.result.records)

    def test_router_comparison_shares_traffic(self, runner):
        base = ExperimentSpec(name="cmp", **QUICK)
        runs = runner.run_router_comparison(base, ["ecmp", "lcmp"], lcmp_config=LCMPConfig())
        assert set(runs) == {"ecmp", "lcmp"}
        ecmp_sizes = [r.size_bytes for r in runs["ecmp"].result.records]
        lcmp_sizes = [r.size_bytes for r in runs["lcmp"].result.records]
        assert sorted(ecmp_sizes) == sorted(lcmp_sizes)

    def test_determinism_across_runner_instances(self):
        spec = ExperimentSpec(name="det", router="lcmp", **QUICK)
        run_a = ExperimentRunner().run(spec)
        run_b = ExperimentRunner().run(spec)
        assert run_a.profile.overall_p50 == pytest.approx(run_b.profile.overall_p50)
        assert run_a.profile.overall_p99 == pytest.approx(run_b.profile.overall_p99)
