"""End-to-end scenario acceptance: the single-link-cut on testbed8.

This is the PR's acceptance criterion: running the canned
``single-link-cut`` library scenario on the 8-DC testbed under LCMP must

(a) drive nonzero *lazy* flow-cache invalidations on the failed port —
    i.e. the scenario engine exercises the paper's data-plane fast-failover
    (§3.4) through the real router pipeline, not hand-simulated state,
(b) leave every disrupted flow either completed or explicitly recorded as
    failed (no silent blackholing), and
(c) show FCT slowdown recovering after the recovery event.
"""

import pytest

from repro.analysis import event_impacts, slowdown_timeline
from repro.congestion_control import make_cc_factory
from repro.core import lcmp_router_factory
from repro.experiments import ExperimentRunner, ExperimentSpec
from repro.scenarios import single_link_cut
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as make_testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator

NUM_FLOWS = 360


@pytest.fixture(scope="module")
def cut_run():
    """One single-link-cut run on testbed8 under LCMP, shared by the asserts."""
    topology = build_testbed8(capacity_scale=0.1)
    paths = make_testbed8_pathset(topology)
    config = SimulationConfig(seed=11)
    network = RuntimeNetwork(
        topology, paths, lcmp_router_factory(topology, paths), config
    )
    traffic = TrafficConfig(
        workload="websearch", load=0.3, num_flows=NUM_FLOWS,
        pairs=[("DC1", "DC8")], seed=11,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    fail_at = demands[NUM_FLOWS // 3].arrival_s
    recover_at = demands[2 * NUM_FLOWS // 3].arrival_s
    scenario = single_link_cut(
        fail_at_s=fail_at, recover_at_s=recover_at, src="DC1", dst="DC7"
    )
    sim = FluidSimulation(
        network, demands, make_cc_factory("dcqcn"), config, scenario=scenario
    )
    result = sim.run()
    return {
        "network": network,
        "demands": demands,
        "result": result,
        "fail_at": fail_at,
        "recover_at": recover_at,
    }


class TestSingleLinkCutAcceptance:
    def test_lazy_invalidations_on_failed_port(self, cut_run):
        """(a) the cut must invalidate cached entries lazily, per flow."""
        router = cut_run["network"].switch("DC1").router
        assert router.liveness.lazy_invalidations > 0
        assert router.failover_rehashes > 0
        # every lazy invalidation corresponds to a fast-failover re-hash
        assert router.failover_rehashes == router.liveness.lazy_invalidations

    def test_in_flight_flows_disrupted_and_recovered(self, cut_run):
        metrics = cut_run["result"].scenario_metrics
        assert metrics.total_disrupted > 0
        assert (
            metrics.total_rerouted + metrics.total_restored + metrics.total_failed
            == metrics.total_disrupted
        )

    def test_all_flows_complete_or_recorded_failed(self, cut_run):
        """(b) no silent blackholing: every demand is accounted for."""
        result = cut_run["result"]
        assert result.unfinished_flows == 0
        completed = {r.flow_id for r in result.records}
        failed = {f.flow_id for f in result.failed_flows}
        assert completed | failed == {d.flow_id for d in cut_run["demands"]}
        assert not completed & failed

    def test_no_new_flow_placed_on_dead_port(self, cut_run):
        decisions = cut_run["network"].switch("DC1").decisions
        during = [
            d for d in decisions
            if cut_run["fail_at"] <= d.time_s < cut_run["recover_at"]
        ]
        assert during, "flows must keep arriving during the outage"
        assert all(d.chosen.first_hop != "DC7" for d in during)

    def test_slowdown_recovers_after_repair(self, cut_run):
        """(c) FCT slowdown degrades at the cut and recovers after repair."""
        result = cut_run["result"]
        window = (cut_run["recover_at"] - cut_run["fail_at"]) / 2
        impacts = {i.kind: i for i in event_impacts(result, window_s=window)}
        cut, repair = impacts["link-down"], impacts["link-up"]
        assert cut.slowdown_delta is not None and cut.slowdown_delta > 0
        assert repair.slowdown_delta is not None and repair.slowdown_delta < 0
        # after repair the median slowdown returns below the outage level
        assert repair.post_p50 < cut.post_p50

    def test_slowdown_timeline_is_plottable(self, cut_run):
        points = slowdown_timeline(cut_run["result"], bucket_s=0.02)
        assert len(points) >= 3
        times = [t for t, _ in points]
        assert times == sorted(times)
        assert all(p50 >= 1.0 for _, p50 in points)


class TestScenarioThroughExperimentSpec:
    def test_spec_accepts_scenario_by_name(self):
        spec = ExperimentSpec(name="scenario-run", scenario="single-link-cut")
        spec.validate()
        scenario = spec.resolve_scenario()
        assert scenario.name == "single-link-cut"

    def test_spec_rejects_unknown_scenario_name(self):
        spec = ExperimentSpec(name="bad", scenario="no-such-scenario")
        with pytest.raises(ValueError, match="unknown scenario"):
            spec.validate()

    def test_runner_runs_under_scenario(self):
        spec = ExperimentSpec(
            name="faulted",
            router="lcmp",
            num_flows=120,
            scenario=single_link_cut(fail_at_s=0.02, recover_at_s=0.05),
            seed=3,
        )
        run = ExperimentRunner().run(spec)
        metrics = run.result.scenario_metrics
        assert metrics is not None
        assert [o.kind for o in metrics.outcomes] == ["link-down", "link-up"]
        assert run.result.unfinished_flows == 0
        assert len(run.result.records) + len(run.result.failed_flows) == 120

    def test_runner_static_run_unchanged(self):
        spec = ExperimentSpec(name="static", router="ecmp", num_flows=60, seed=3)
        run = ExperimentRunner().run(spec)
        assert run.result.scenario_metrics is None
        assert run.result.failed_flows == []
