"""Unit tests for the exporters: Chrome trace, Prometheus text, merge."""

import json

from repro.obs import (
    Instrumentation,
    NOOP,
    chrome_trace,
    merge_snapshots,
    prometheus_text,
    write_chrome_trace,
)


def make_snapshot(counter=3, gauge=(2.0, 5.0), hist=(1.0, 4.0)):
    instr = Instrumentation()
    instr.counter("slow_path.deliver_repeated").inc(counter)
    g = instr.gauge("engine.peak_pending_events")
    g.set(gauge[1])
    g.set(gauge[0])
    h = instr.histogram("arrivals.batch_size")
    for v in hist:
        h.observe(v)
    with instr.span("step.update"):
        pass
    return instr.snapshot()


class TestChromeTrace:
    def test_document_shape(self):
        instr = Instrumentation()
        with instr.span("step.update"):
            pass
        doc = chrome_trace(instr)
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 1
        assert doc["traceEvents"][0]["name"] == "step.update"

    def test_write_is_perfetto_loadable_json(self, tmp_path):
        instr = Instrumentation()
        with instr.span("a"):
            pass
        path = tmp_path / "run.trace.json"
        write_chrome_trace(instr, path)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"][0]["ph"] == "X"

    def test_disabled_instrumentation_writes_empty_trace(self, tmp_path):
        path = tmp_path / "empty.trace.json"
        write_chrome_trace(NOOP, path)
        assert json.loads(path.read_text())["traceEvents"] == []


class TestPrometheusText:
    def test_renders_every_section(self):
        text = prometheus_text(make_snapshot())
        assert "# TYPE slow_path_deliver_repeated counter" in text
        assert "slow_path_deliver_repeated 3" in text
        assert "engine_peak_pending_events 2.0" in text
        assert "engine_peak_pending_events_max 5.0" in text
        assert "arrivals_batch_size_count 2" in text
        assert "arrivals_batch_size_sum 5.0" in text
        assert "step_update_seconds_count 1" in text

    def test_dots_and_dashes_become_underscores(self):
        instr = Instrumentation()
        instr.counter("a.b-c").inc()
        assert "a_b_c 1" in prometheus_text(instr.snapshot())


class TestMergeSnapshots:
    def test_all_none_merges_to_none(self):
        assert merge_snapshots([]) is None
        assert merge_snapshots([None, None]) is None

    def test_none_entries_skipped(self):
        snap = make_snapshot(counter=2)
        merged = merge_snapshots([None, snap, None])
        assert merged["counters"]["slow_path.deliver_repeated"] == 2

    def test_counters_and_phase_counts_sum(self):
        merged = merge_snapshots([make_snapshot(counter=2), make_snapshot(counter=5)])
        assert merged["counters"]["slow_path.deliver_repeated"] == 7
        assert merged["phases"]["step.update"]["count"] == 2

    def test_gauge_max_and_last_semantics(self):
        a = make_snapshot(gauge=(1.0, 9.0))
        b = make_snapshot(gauge=(4.0, 6.0))
        merged = merge_snapshots([a, b])
        g = merged["gauges"]["engine.peak_pending_events"]
        assert g["max"] == 9.0  # fleet-wide high watermark
        assert g["last"] == 4.0  # last run's final value

    def test_histogram_samples_concatenate(self):
        a = make_snapshot(hist=(1.0, 2.0))
        b = make_snapshot(hist=(3.0,))
        h = merge_snapshots([a, b])["histograms"]["arrivals.batch_size"]
        assert h["count"] == 3
        assert h["sum"] == 6.0
        assert h["max"] == 3.0
        assert sorted(h["samples"]) == [1.0, 2.0, 3.0]

    def test_merged_schema_matches_single_run(self):
        snap = make_snapshot()
        merged = merge_snapshots([snap, snap])
        assert set(merged) == set(snap)
        assert merge_snapshots([merged]) is not None  # re-mergeable
