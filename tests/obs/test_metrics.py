"""Unit tests for the metrics primitives (Counter/Gauge/Histogram/Registry)."""

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestGauge:
    def test_tracks_last_and_high_watermark(self):
        g = Gauge("depth")
        g.set(3.0)
        g.set(9.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.high == 9.0


class TestHistogram:
    def test_lifetime_aggregates(self):
        h = Histogram("sizes", capacity=8)
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.max == 3.0
        assert h.mean == 2.0
        assert sorted(h.samples().tolist()) == [1.0, 2.0, 3.0]

    def test_ring_bounds_memory_but_not_aggregates(self):
        h = Histogram("sizes", capacity=4)
        for v in range(10):
            h.observe(float(v))
        # lifetime stats cover all 10 observations
        assert h.count == 10
        assert h.total == sum(range(10))
        assert h.max == 9.0
        # the ring only retains the last `capacity` of them
        retained = h.samples()
        assert len(retained) == 4
        assert set(retained.tolist()) == {6.0, 7.0, 8.0, 9.0}

    def test_percentile_over_retained_samples(self):
        h = Histogram("lat", capacity=128)
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.percentile(100) == 100.0
        assert Histogram("empty").percentile(99) == 0.0

    def test_empty_mean_and_samples(self):
        h = Histogram("empty")
        assert h.mean == 0.0
        assert h.samples().tolist() == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Histogram("bad", capacity=0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("engine.events_fired")
        b = reg.counter("engine.events_fired")
        assert a is b
        assert len(reg) == 1

    def test_name_pinned_to_kind(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_get_and_names(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a")
        assert reg.names() == ["a", "b"]
        assert isinstance(reg.get("b"), Gauge)
        assert reg.get("missing") is None

    def test_snapshot_schema(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(7.0)
        reg.histogram("h").observe(2.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": {"last": 7.0, "max": 7.0}}
        assert snap["histograms"]["h"] == {
            "count": 1,
            "sum": 2.5,
            "max": 2.5,
            "samples": [2.5],
        }

    def test_snapshot_is_json_serialisable(self):
        import json

        reg = MetricsRegistry()
        reg.histogram("h").observe(np.float64(1.5))
        json.dumps(reg.snapshot())
