"""Unit tests for phase timers and the Instrumentation / NOOP facades."""

from repro.obs import NOOP, Instrumentation, NullInstrumentation


class TestInstrumentationSpans:
    def test_span_handle_is_reused_per_name(self):
        instr = Instrumentation()
        assert instr.span("step.update") is instr.span("step.update")
        assert instr.span("step.update") is not instr.span("step.gc")

    def test_span_accumulates_phase_aggregates(self):
        instr = Instrumentation()
        span = instr.span("work")
        for _ in range(3):
            with span:
                pass
        phases = instr.snapshot()["phases"]
        assert phases["work"]["count"] == 3
        assert phases["work"]["total_ns"] >= 0
        assert phases["work"]["max_ns"] <= phases["work"]["total_ns"]

    def test_nested_spans_by_different_names(self):
        instr = Instrumentation()
        outer, inner = instr.span("outer"), instr.span("inner")
        with outer:
            with inner:
                pass
        phases = instr.snapshot()["phases"]
        assert phases["outer"]["count"] == 1
        assert phases["inner"]["count"] == 1
        assert phases["inner"]["total_ns"] <= phases["outer"]["total_ns"]

    def test_unentered_span_appears_with_zero_count(self):
        instr = Instrumentation()
        instr.span("never")
        assert instr.snapshot()["phases"]["never"] == {
            "count": 0,
            "total_ns": 0,
            "max_ns": 0,
        }

    def test_trace_events_record_each_occurrence(self):
        instr = Instrumentation()
        with instr.span("a"):
            pass
        with instr.span("b"):
            pass
        events = instr.trace_events()
        assert [e["name"] for e in events] == ["a", "b"]
        for e in events:
            assert e["ph"] == "X"
            assert e["ts"] >= 0.0
            assert e["dur"] >= 0.0
            assert e["cat"] == "sim"

    def test_trace_event_cap_bounds_events_not_aggregates(self):
        instr = Instrumentation(max_trace_events=2)
        span = instr.span("hot")
        for _ in range(5):
            with span:
                pass
        assert len(instr.trace_events()) == 2
        assert instr.snapshot()["phases"]["hot"]["count"] == 5

    def test_metric_passthrough_shares_registry(self):
        instr = Instrumentation()
        instr.counter("c").inc()
        instr.gauge("g").set(1.0)
        instr.histogram("h").observe(2.0)
        assert instr.registry.counter("c").value == 1
        snap = instr.snapshot()
        assert snap["counters"] == {"c": 1}
        assert set(snap) == {"counters", "gauges", "histograms", "phases"}


class TestNullInstrumentation:
    def test_noop_is_shared_and_inert(self):
        assert isinstance(NOOP, NullInstrumentation)
        assert NOOP.enabled is False
        assert Instrumentation.enabled is True
        # every accessor returns a shared singleton, allocating nothing
        assert NOOP.span("a") is NOOP.span("b")
        assert NOOP.counter("a") is NOOP.counter("b")
        assert NOOP.gauge("a") is NOOP.gauge("b")
        assert NOOP.histogram("a") is NOOP.histogram("b")

    def test_noop_operations_do_nothing(self):
        with NOOP.span("x"):
            NOOP.counter("c").inc(5)
            NOOP.gauge("g").set(9.0)
            NOOP.histogram("h").observe(1.0)
        assert NOOP.trace_events() == []
        assert NOOP.snapshot() is None
