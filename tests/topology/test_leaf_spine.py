"""Tests for the intra-DC leaf-spine pod builder."""

import pytest

from repro.topology import GBPS, NodeKind, PodSpec, Topology, build_pod
from repro.topology.graph import MS


@pytest.fixture
def dc_topology():
    topo = Topology("pod-test")
    topo.add_dc("DC1")
    topo.add_dc("DC2")
    topo.add_inter_dc_link("DC1", "DC2", 100 * GBPS, 5 * MS)
    return topo


def test_default_pod_dimensions(dc_topology):
    hosts = build_pod(dc_topology, "DC1")
    assert len(hosts) == 16
    nodes = dc_topology.nodes
    spines = [n for n in nodes.values() if n.kind == NodeKind.SPINE and n.dc == "DC1"]
    leaves = [n for n in nodes.values() if n.kind == NodeKind.LEAF and n.dc == "DC1"]
    assert len(spines) == 2
    assert len(leaves) == 4


def test_pod_wiring_is_bidirectional(dc_topology):
    build_pod(dc_topology, "DC1")
    assert dc_topology.has_link("DC1", "DC1/spine0")
    assert dc_topology.has_link("DC1/spine0", "DC1")
    assert dc_topology.has_link("DC1/leaf0", "DC1/spine1")
    assert dc_topology.has_link("DC1/leaf0", "DC1/host0")
    # host links are intra-DC
    assert not dc_topology.link("DC1/leaf0", "DC1/host0").inter_dc


def test_pod_link_rates(dc_topology):
    spec = PodSpec()
    build_pod(dc_topology, "DC1", spec)
    assert dc_topology.link("DC1", "DC1/spine0").cap_bps == spec.spine_dci_bps
    assert dc_topology.link("DC1/leaf0", "DC1/host0").cap_bps == spec.host_link_bps


def test_custom_pod_spec(dc_topology):
    spec = PodSpec(spines=1, leaves=2, hosts_per_leaf=3)
    hosts = build_pod(dc_topology, "DC2", spec)
    assert len(hosts) == 6
    assert "DC2/spine0" in dc_topology.nodes
    assert "DC2/leaf1" in dc_topology.nodes
