"""Tests for the 8-DC evaluation topology (paper Fig. 1a / 4a)."""

import itertools

import pytest

from repro.topology import GBPS, MS, RELAY_PLAN, build_testbed8


class TestStructure:
    def test_eight_dcs(self, testbed_topology):
        assert len(testbed_topology.dcs) == 8
        assert testbed_topology.dcs[0] == "DC1"
        assert testbed_topology.dcs[-1] == "DC8"

    def test_relay_links_match_plan(self, testbed_topology):
        for relay, (cap, delay) in RELAY_PLAN.items():
            for src, dst in (("DC1", relay), (relay, "DC8")):
                spec = testbed_topology.link(src, dst)
                assert spec.cap_bps == cap
                assert spec.delay_s == pytest.approx(delay)

    def test_three_capacity_classes_with_delay_asymmetry(self):
        caps = sorted({cap for cap, _ in RELAY_PLAN.values()})
        assert caps == [40 * GBPS, 100 * GBPS, 200 * GBPS]
        # each capacity class has one low-delay and one high-delay member
        by_cap = {}
        for cap, delay in RELAY_PLAN.values():
            by_cap.setdefault(cap, []).append(delay)
        for delays in by_cap.values():
            assert len(delays) == 2
            assert max(delays) / min(delays) >= 5

    def test_hosts_attached(self, testbed_topology):
        for dc in testbed_topology.dcs:
            assert testbed_topology.hosts_in(dc) == 16

    def test_expand_pods_builds_fabric(self):
        topo = build_testbed8(hosts_per_dc=16, expand_pods=True)
        nodes = topo.nodes
        assert "DC1/spine0" in nodes
        assert "DC1/leaf3" in nodes
        assert "DC1/host15" in nodes

    def test_capacity_scale(self):
        topo = build_testbed8(capacity_scale=0.1)
        assert topo.link("DC1", "DC2").cap_bps == pytest.approx(20 * GBPS)
        assert topo.host_groups["DC1"].nic_bps == pytest.approx(10 * GBPS)

    def test_invalid_capacity_scale(self):
        with pytest.raises(ValueError):
            build_testbed8(capacity_scale=0)


class TestPathStructure:
    def test_six_candidates_between_endpoints(self, testbed_paths):
        cands = testbed_paths.candidates("DC1", "DC8")
        assert len(cands) == 6
        # one candidate through each relay DC
        assert {c.first_hop for c in cands} == set(RELAY_PLAN)
        # capacities and delays span the advertised ranges
        assert {c.bottleneck_bps for c in cands} == {40 * GBPS, 100 * GBPS, 200 * GBPS}
        assert min(c.delay_s for c in cands) == pytest.approx(10 * MS)
        assert max(c.delay_s for c in cands) == pytest.approx(500 * MS)

    def test_multipath_fraction_matches_paper(self, testbed_topology, testbed_paths):
        """The paper reports 16 of 28 unordered pairs (57.1 %) are multipath."""
        multi = sum(
            1
            for a, b in itertools.combinations(testbed_topology.dcs, 2)
            if len(testbed_paths.candidates(a, b)) >= 2
        )
        assert multi == 16

    def test_relay_pairs_have_two_candidates(self, testbed_paths):
        cands = testbed_paths.candidates("DC2", "DC7")
        assert len(cands) == 2
        assert {c.dcs[1] for c in cands} == {"DC1", "DC8"}

    def test_endpoint_to_relay_single_path(self, testbed_paths):
        assert len(testbed_paths.candidates("DC1", "DC4")) == 1
