"""Tests for the 13-DC Europe-spanning topology (paper Fig. 4b)."""

import itertools

import pytest

from repro.topology import BSO_EDGES, GBPS, build_bso13


class TestStructure:
    def test_thirteen_dcs(self, bso_topology):
        assert len(bso_topology.dcs) == 13

    def test_edge_attributes_in_paper_ranges(self):
        for _, _, cap_gbps, delay_ms in BSO_EDGES:
            assert cap_gbps in (40, 100, 200)
            assert delay_ms in (1, 5, 10)

    def test_links_bidirectional(self, bso_topology):
        for a, b, _, _ in BSO_EDGES:
            assert bso_topology.has_link(f"DC{a}", f"DC{b}")
            assert bso_topology.has_link(f"DC{b}", f"DC{a}")

    def test_deep_buffers_for_long_haul(self, bso_topology):
        # the paper provisions multi-GB buffers for PFC headroom
        buffers = {l.buffer_bytes for l in bso_topology.inter_dc_links()}
        assert min(buffers) >= 1024 * 1024 * 1024

    def test_sparser_than_full_mesh(self, bso_topology):
        n = len(bso_topology.dcs)
        directed_links = len(bso_topology.inter_dc_links())
        assert directed_links < n * (n - 1) / 2

    def test_capacity_scale(self):
        topo = build_bso13(capacity_scale=0.5)
        assert topo.link("DC1", "DC2").cap_bps == pytest.approx(100 * GBPS)


class TestPathStructure:
    def test_case_study_pair_is_multipath(self, bso_paths):
        """DC1-DC13 (the §6.2.2 case study) must have several candidates with
        distinct delay trade-offs and diverse first hops."""
        cands = bso_paths.candidates("DC1", "DC13")
        assert len(cands) >= 2
        assert max(c.delay_s for c in cands) > min(c.delay_s for c in cands)
        assert len({c.first_hop for c in cands}) >= 2

    def test_majority_of_pairs_still_single_path_regime(self, bso_topology, bso_paths):
        """The topology is sparse: a large share of pairs has one candidate,
        diluting system-wide gains (the paper's explanation of Fig. 7)."""
        pairs = list(itertools.combinations(bso_topology.dcs, 2))
        multi = sum(1 for a, b in pairs if len(bso_paths.candidates(a, b)) >= 2)
        fraction = multi / len(pairs)
        assert 0.15 <= fraction <= 0.65

    def test_every_pair_connected(self, bso_topology, bso_paths):
        for a, b in bso_topology.dc_pairs(ordered=True):
            assert bso_paths.candidates(a, b), (a, b)

    def test_delay_heterogeneity_moderate(self, bso_paths):
        """Delay gaps are ~10x (1 ms vs 10 ms links), not the testbed's 50x."""
        cands = bso_paths.candidates("DC1", "DC13")
        ratio = max(c.delay_s for c in cands) / min(c.delay_s for c in cands)
        assert ratio < 20
