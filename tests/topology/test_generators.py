"""Properties of the seeded parametric fabric generator."""

import pytest

from repro.topology import CONTINENT_400, FabricSpec, build_fabric, fabric_pathset

#: small-but-real fabric: 3 regions x (2 core + 4 agg + 8 edge) = 42 DCs
SMALL = FabricSpec(name="small", seed=7, regions=3, cores_per_region=2,
                   aggs_per_core=2, edges_per_agg=2)


def _link_signature(topo):
    return tuple(
        (s.src, s.dst, s.cap_bps, s.delay_s, s.buffer_bytes)
        for s in topo.links
    )


def _dc_signature(topo):
    return tuple(
        (dc, topo.dc_attrs(dc).region, topo.dc_attrs(dc).tier,
         topo.dc_attrs(dc).power_redundancy)
        for dc in topo.dcs
    )


class TestDeterminism:
    def test_same_spec_same_topology(self):
        a = build_fabric(SMALL)
        b = build_fabric(SMALL)
        assert _dc_signature(a) == _dc_signature(b)
        assert _link_signature(a) == _link_signature(b)

    def test_different_seed_different_delays(self):
        a = build_fabric(SMALL)
        b = build_fabric(FabricSpec(name="small", seed=8, regions=3,
                                    cores_per_region=2, aggs_per_core=2,
                                    edges_per_agg=2))
        assert _link_signature(a) != _link_signature(b)

    def test_capacity_scale_multiplies_caps(self):
        full = build_fabric(SMALL)
        tenth = build_fabric(SMALL, capacity_scale=0.1)
        full_caps = [s.cap_bps for s in full.links]
        tenth_caps = [s.cap_bps for s in tenth.links]
        assert all(abs(t - f * 0.1) < 1e-6 for f, t in zip(full_caps, tenth_caps))


class TestStructure:
    def test_dc_count_matches_spec(self):
        topo = build_fabric(SMALL)
        assert len(topo.dcs) == SMALL.num_dcs == 42

    def test_continent_400_shape(self):
        assert CONTINENT_400.num_dcs == 400
        assert CONTINENT_400.dcs_per_region == 50

    def test_every_dc_has_valid_attrs(self):
        topo = build_fabric(SMALL)
        regions = {f"region{r}" for r in range(SMALL.regions)}
        for dc in topo.dcs:
            attrs = topo.dc_attrs(dc)
            assert attrs.region in regions
            assert attrs.tier in ("core", "agg", "edge")
            assert attrs.power_redundancy in ("N", "N+1", "2N")

    def test_tier_degrees(self):
        topo = build_fabric(SMALL)
        for dc in topo.dcs:
            tier = topo.dc_attrs(dc).tier
            degree = len(topo.neighbors(dc))
            if tier == "edge":
                # one agg uplink, possibly a dual-home to a sibling agg
                assert 1 <= degree <= 2
            elif tier == "agg":
                # edges below plus one or two core uplinks
                assert degree >= SMALL.edges_per_agg + 1
            else:
                # cores: aggs below + intra-region mesh + backbone ring
                assert degree >= SMALL.aggs_per_core + SMALL.cores_per_region

    def test_hosts_on_every_dc(self):
        topo = build_fabric(SMALL)
        for dc in topo.dcs:
            assert topo.host_groups[dc].count == SMALL.hosts_per_dc


class TestConnectivity:
    def test_all_pairs_reachable(self):
        topo = build_fabric(SMALL)
        paths = fabric_pathset(topo)
        for src, dst in paths.all_pairs():
            assert paths.has_path(src, dst), f"{src} cannot reach {dst}"

    def test_cross_region_pair_routes(self):
        topo = build_fabric(SMALL)
        paths = fabric_pathset(topo)
        candidates = paths.candidates("R0E0x0x0", "R2E1x1x1")
        assert candidates
        assert candidates[0].src == "R0E0x0x0"
        assert candidates[0].dst == "R2E1x1x1"


class TestValidation:
    def test_rejects_zero_regions(self):
        with pytest.raises(ValueError):
            FabricSpec(regions=0).validate()

    def test_rejects_bad_dual_home_fraction(self):
        with pytest.raises(ValueError):
            FabricSpec(dual_home_fraction=1.5).validate()

    def test_rejects_bad_delay_range(self):
        with pytest.raises(ValueError):
            FabricSpec(metro_delay_ms=(2.0, 1.0)).validate()

    def test_rejects_nonpositive_capacity_scale(self):
        with pytest.raises(ValueError):
            build_fabric(SMALL, capacity_scale=0.0)
