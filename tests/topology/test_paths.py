"""Unit and property tests for candidate-path enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology import (
    GBPS,
    MS,
    Topology,
    TopologyError,
    enumerate_paths,
    shortest_delay_path,
)


def ring_topology(n: int, cap_bps=100 * GBPS, delay_s=5 * MS) -> Topology:
    """A ring of n datacenters (every pair has exactly two simple routes)."""
    topo = Topology(f"ring{n}")
    for i in range(n):
        topo.add_dc(f"R{i}")
    for i in range(n):
        topo.add_inter_dc_link(f"R{i}", f"R{(i + 1) % n}", cap_bps, delay_s)
    topo.validate()
    return topo


class TestEnumeration:
    def test_tiny_triangle_candidates(self, tiny_topology):
        cands = enumerate_paths(tiny_topology, "A", "B", max_extra_hops=1)
        routes = {c.dcs for c in cands}
        assert ("A", "B") in routes
        assert ("A", "C", "B") in routes
        direct = next(c for c in cands if c.dcs == ("A", "B"))
        detour = next(c for c in cands if c.dcs == ("A", "C", "B"))
        assert direct.bottleneck_bps == 100 * GBPS
        assert detour.bottleneck_bps == 40 * GBPS
        assert detour.delay_s == pytest.approx(2 * MS)
        assert direct.first_hop == "B" and detour.first_hop == "C"

    def test_same_src_dst_rejected(self, tiny_topology):
        with pytest.raises(TopologyError):
            enumerate_paths(tiny_topology, "A", "A")

    def test_unreachable_returns_empty(self):
        topo = Topology("island")
        topo.add_dc("X")
        topo.add_dc("Y")
        assert enumerate_paths(topo, "X", "Y") == []

    def test_max_candidates_truncation(self):
        topo = ring_topology(6)
        cands = enumerate_paths(topo, "R0", "R3", max_candidates=1, max_extra_hops=2)
        assert len(cands) == 1

    def test_detour_bound_respected(self):
        topo = ring_topology(6)
        # min hops R0->R1 is 1; the other way around the ring is 5 hops and
        # must be excluded with a 1-extra-hop bound
        cands = enumerate_paths(topo, "R0", "R1", max_extra_hops=1)
        assert all(c.hop_count <= 2 for c in cands)

    def test_paths_are_loop_free_and_consistent(self):
        topo = ring_topology(5)
        for dst in ("R1", "R2", "R3", "R4"):
            for cand in enumerate_paths(topo, "R0", dst, max_extra_hops=3):
                assert len(set(cand.dcs)) == len(cand.dcs)
                assert cand.delay_s == pytest.approx(sum(l.delay_s for l in cand.links))
                assert cand.bottleneck_bps == min(l.cap_bps for l in cand.links)
                assert cand.dcs[0] == "R0" and cand.dcs[-1] == dst


class TestShortestDelay:
    def test_prefers_lower_total_delay(self, tiny_topology):
        best = shortest_delay_path(tiny_topology, "A", "B")
        # the two-hop route via C has 2 ms total vs 5 ms direct
        assert best.dcs == ("A", "C", "B")
        assert best.delay_s == pytest.approx(2 * MS)

    def test_unreachable_returns_none(self):
        topo = Topology("island")
        topo.add_dc("X")
        topo.add_dc("Y")
        assert shortest_delay_path(topo, "X", "Y") is None


class TestPathSet:
    def test_all_pairs_covered(self, tiny_topology, tiny_pathset):
        assert len(tiny_pathset) == 6  # 3 DCs -> 6 ordered pairs
        for src, dst in tiny_topology.dc_pairs(ordered=True):
            assert tiny_pathset.candidates(src, dst), (src, dst)

    def test_multipath_fraction(self, tiny_pathset):
        assert 0.0 <= tiny_pathset.multipath_fraction() <= 1.0

    def test_ideal_delay_and_bottleneck(self, tiny_pathset):
        assert tiny_pathset.ideal_delay("A", "B") == pytest.approx(2 * MS)
        assert tiny_pathset.best_bottleneck("A", "B") == 100 * GBPS

    def test_missing_pair_raises(self, tiny_pathset):
        with pytest.raises(TopologyError):
            tiny_pathset.ideal_delay("A", "Z")


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=3, max_value=8),
    extra=st.integers(min_value=0, max_value=3),
)
def test_ring_enumeration_properties(n, extra):
    """Property: every enumerated path is simple, connects src to dst, and
    respects the detour bound relative to the hop-minimal path."""
    topo = ring_topology(n)
    cands = enumerate_paths(topo, "R0", f"R{n // 2}", max_extra_hops=extra)
    assert cands, "a ring is always connected"
    min_hops = min(c.hop_count for c in cands)
    for cand in cands:
        assert cand.dcs[0] == "R0"
        assert cand.dcs[-1] == f"R{n // 2}"
        assert len(set(cand.dcs)) == len(cand.dcs)
        assert cand.hop_count <= min_hops + extra
