"""Unit tests for the topology data model."""

import pytest

from repro.topology import (
    DC_ATTR_PLAN,
    GBPS,
    MS,
    POWER_REDUNDANCY_LEVELS,
    DCAttrs,
    NodeKind,
    Topology,
    TopologyError,
    build_testbed8,
    power_redundancy_rank,
)


def make_two_dc():
    topo = Topology("two")
    topo.add_dc("DC1")
    topo.add_dc("DC2")
    return topo


class TestNodes:
    def test_add_dc_creates_dci_node(self):
        topo = make_two_dc()
        assert topo.nodes["DC1"].kind == NodeKind.DCI
        assert topo.nodes["DC1"].dc == "DC1"
        assert topo.dcs == ("DC1", "DC2")

    def test_duplicate_node_rejected(self):
        topo = make_two_dc()
        with pytest.raises(TopologyError):
            topo.add_dc("DC1")

    def test_unknown_node_kind_rejected(self):
        topo = Topology("x")
        with pytest.raises(TopologyError):
            topo.add_node("weird", "router")

    def test_add_node_with_explicit_dc(self):
        topo = make_two_dc()
        node = topo.add_node("DC1/leaf0", NodeKind.LEAF, dc="DC1")
        assert node.dc == "DC1"
        assert node.kind == NodeKind.LEAF


class TestLinks:
    def test_add_inter_dc_link_is_bidirectional(self):
        topo = make_two_dc()
        fwd, rev = topo.add_inter_dc_link("DC1", "DC2", cap_bps=100 * GBPS, delay_s=5 * MS)
        assert fwd.key == ("DC1", "DC2")
        assert rev.key == ("DC2", "DC1")
        assert topo.has_link("DC1", "DC2") and topo.has_link("DC2", "DC1")
        assert fwd.inter_dc and rev.inter_dc

    def test_link_lookup_and_missing(self):
        topo = make_two_dc()
        topo.add_inter_dc_link("DC1", "DC2", cap_bps=GBPS, delay_s=MS)
        assert topo.link("DC1", "DC2").cap_bps == GBPS
        with pytest.raises(TopologyError):
            topo.link("DC2", "DC3")

    def test_duplicate_link_rejected(self):
        topo = make_two_dc()
        topo.add_link("DC1", "DC2", GBPS, MS)
        with pytest.raises(TopologyError):
            topo.add_link("DC1", "DC2", GBPS, MS)

    def test_invalid_capacity_and_delay(self):
        topo = make_two_dc()
        with pytest.raises(TopologyError):
            topo.add_link("DC1", "DC2", 0, MS)
        with pytest.raises(TopologyError):
            topo.add_link("DC1", "DC2", GBPS, -1)

    def test_link_to_unknown_node_rejected(self):
        topo = make_two_dc()
        with pytest.raises(TopologyError):
            topo.add_link("DC1", "DC9", GBPS, MS)

    def test_default_buffers_differ_by_scope(self):
        topo = make_two_dc()
        inter, _ = topo.add_inter_dc_link("DC1", "DC2", cap_bps=GBPS, delay_s=MS)
        topo.add_node("DC1/leaf0", NodeKind.LEAF, dc="DC1")
        intra = topo.add_link("DC1", "DC1/leaf0", GBPS, 1e-6)
        assert inter.buffer_bytes == Topology.DEFAULT_INTER_BUFFER
        assert intra.buffer_bytes == Topology.DEFAULT_INTRA_BUFFER
        assert not intra.inter_dc

    def test_neighbors(self):
        topo = make_two_dc()
        topo.add_dc("DC3")
        topo.add_inter_dc_link("DC1", "DC2", GBPS, MS)
        topo.add_inter_dc_link("DC1", "DC3", GBPS, MS)
        assert sorted(topo.neighbors("DC1")) == ["DC2", "DC3"]
        assert topo.neighbors("DC2") == ("DC1",)


class TestHosts:
    def test_add_hosts(self):
        topo = make_two_dc()
        group = topo.add_hosts("DC1", count=16, nic_bps=100 * GBPS)
        assert group.count == 16
        assert topo.hosts_in("DC1") == 16
        assert topo.hosts_in("DC2") == 0

    def test_invalid_hosts(self):
        topo = make_two_dc()
        with pytest.raises(TopologyError):
            topo.add_hosts("DC1", count=0, nic_bps=GBPS)
        with pytest.raises(TopologyError):
            topo.add_hosts("DC1", count=4, nic_bps=0)
        with pytest.raises(TopologyError):
            topo.add_hosts("DC9", count=4, nic_bps=GBPS)


class TestValidationAndQueries:
    def test_validate_disconnected_topology(self):
        topo = make_two_dc()
        topo.add_dc("DC3")
        topo.add_inter_dc_link("DC1", "DC2", GBPS, MS)
        with pytest.raises(TopologyError, match="unreachable"):
            topo.validate()

    def test_validate_empty_topology(self):
        with pytest.raises(TopologyError):
            Topology("empty").validate()

    def test_dc_pairs_ordered_and_unordered(self):
        topo = make_two_dc()
        topo.add_dc("DC3")
        ordered = list(topo.dc_pairs(ordered=True))
        unordered = list(topo.dc_pairs(ordered=False))
        assert len(ordered) == 6
        assert len(unordered) == 3
        assert ("DC1", "DC2") in ordered and ("DC2", "DC1") in ordered

    def test_inter_dc_links_filter(self):
        topo = make_two_dc()
        topo.add_inter_dc_link("DC1", "DC2", GBPS, MS)
        topo.add_node("DC1/leaf0", NodeKind.LEAF, dc="DC1")
        topo.add_link("DC1", "DC1/leaf0", GBPS, 1e-6)
        assert len(topo.inter_dc_links()) == 2
        assert all(l.inter_dc for l in topo.inter_dc_links())


class TestDCAttributes:
    def test_attrs_stored_and_queried(self):
        topo = Topology("attrs")
        topo.add_dc("DC1", region="west", tier="tier4", power_redundancy="2N")
        attrs = topo.dc_attrs("DC1")
        assert attrs == DCAttrs(region="west", tier="tier4", power_redundancy="2N")

    def test_default_redundancy_is_no_spare(self):
        topo = Topology("attrs")
        topo.add_dc("DC1")
        assert topo.dc_attrs("DC1").power_redundancy == "N"

    def test_unknown_dc_rejected(self):
        topo = Topology("attrs")
        with pytest.raises(TopologyError, match="unknown datacenter"):
            topo.dc_attrs("DC9")

    def test_invalid_redundancy_level_rejected(self):
        with pytest.raises(TopologyError):
            DCAttrs(power_redundancy="5N")

    def test_redundancy_rank_is_ordered(self):
        ranks = [power_redundancy_rank(level) for level in POWER_REDUNDANCY_LEVELS]
        assert ranks == sorted(ranks)
        assert power_redundancy_rank("N") < power_redundancy_rank("2N")

    def test_matching_filters_by_region_and_tier(self):
        topo = Topology("attrs")
        topo.add_dc("DC1", region="west", tier="tier4")
        topo.add_dc("DC2", region="west", tier="tier3")
        topo.add_dc("DC3", region="east", tier="tier3")
        assert topo.dcs_matching(region="west") == ["DC1", "DC2"]
        assert topo.dcs_matching(tier="tier3") == ["DC2", "DC3"]
        assert topo.dcs_matching(region="west", tier="tier3") == ["DC2"]
        assert topo.dcs_matching() == ["DC1", "DC2", "DC3"]

    def test_testbed_plan_covers_every_dc(self):
        topo = build_testbed8()
        for dc, (region, tier, redundancy) in DC_ATTR_PLAN.items():
            attrs = topo.dc_attrs(dc)
            assert (attrs.region, attrs.tier, attrs.power_redundancy) == (
                region,
                tier,
                redundancy,
            )
