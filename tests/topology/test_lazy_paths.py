"""Lazy path sets: parity with eager enumeration and the search contract.

The bounded best-first search must return *exactly* what the historical
exhaustive DFS-then-sort enumeration returned — same candidate set, same
order, bit-identical delays — and the lazy :class:`PathSet` must be
indistinguishable from the eager one (same candidates, same global ids)
regardless of materialization order or LRU evictions.
"""

import random
from collections import deque

import pytest

from repro.topology import (
    GBPS,
    MS,
    FabricSpec,
    PathSet,
    Topology,
    TopologyError,
    build_bso13,
    build_fabric,
    build_testbed8,
    enumerate_paths,
)

TINY_FABRIC = FabricSpec(name="tiny", seed=3, regions=3, cores_per_region=2,
                         aggs_per_core=2, edges_per_agg=1)


def _topologies():
    return [
        ("testbed8", build_testbed8(), 8, 1),
        ("bso13", build_bso13(), 8, 1),
        ("fabric", build_fabric(TINY_FABRIC), 4, 1),
    ]


def _as_tuple(candidate):
    return (candidate.dcs, candidate.links, candidate.delay_s, candidate.bottleneck_bps)


# ------------------------------------------------------------------ #
# reference implementation: the historical exhaustive enumeration
# ------------------------------------------------------------------ #
def _reference_enumerate(topology, src, dst, max_candidates, max_extra_hops):
    """Exhaustive DFS over simple paths + full sort, as the old code did."""
    adjacency = {}
    for spec in topology.inter_dc_links():
        adjacency.setdefault(spec.src, {})[spec.dst] = spec

    # BFS for the minimum hop count
    seen = {src: 0}
    queue = deque([src])
    while queue:
        node = queue.popleft()
        for nxt in adjacency.get(node, {}):
            if nxt not in seen:
                seen[nxt] = seen[node] + 1
                queue.append(nxt)
    if dst not in seen:
        return []
    hop_limit = seen[dst] + max_extra_hops

    paths = []

    def dfs(node, route):
        if node == dst:
            delay = 0.0
            bneck = float("inf")
            links = []
            for a, b in zip(route[:-1], route[1:]):
                spec = adjacency[a][b]
                links.append(spec)
                delay += spec.delay_s
                bneck = min(bneck, spec.cap_bps)
            paths.append((tuple(route), tuple(links), delay, bneck))
            return
        if len(route) - 1 >= hop_limit:
            return
        for nxt in sorted(adjacency.get(node, {})):
            if nxt not in route:
                dfs(nxt, route + [nxt])

    dfs(src, [src])
    paths.sort(key=lambda p: (len(p[1]), p[2], -p[3], p[0]))
    return paths[:max_candidates]


def _random_topology(seed):
    rng = random.Random(seed)
    topo = Topology(f"rand{seed}")
    n = rng.randint(5, 9)
    names = [f"DC{i}" for i in range(n)]
    for name in names:
        topo.add_dc(name)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.4:
                topo.add_inter_dc_link(
                    names[i], names[j],
                    cap_bps=rng.choice((10, 25, 100)) * GBPS,
                    delay_s=rng.uniform(0.5, 30.0) * MS,
                )
    return topo, names


class TestSearchParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_exhaustive_reference(self, seed):
        topo, names = _random_topology(seed)
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                got = enumerate_paths(topo, src, dst, max_candidates=8, max_extra_hops=2)
                want = _reference_enumerate(topo, src, dst, 8, 2)
                assert [_as_tuple(c) for c in got] == want, f"{src}->{dst} seed {seed}"

    def test_paper_topologies_match_reference(self):
        for label, topo, k, extra in _topologies():
            for src, dst in [p for p in PathSet(topo).all_pairs()][:60]:
                got = enumerate_paths(topo, src, dst, max_candidates=k, max_extra_hops=extra)
                want = _reference_enumerate(topo, src, dst, k, extra)
                assert [_as_tuple(c) for c in got] == want, f"{label} {src}->{dst}"


class TestLazyEagerEquivalence:
    @pytest.mark.parametrize("label,topo,k,extra", _topologies(),
                             ids=lambda v: v if isinstance(v, str) else "")
    def test_same_candidates_and_ids(self, label, topo, k, extra):
        lazy = PathSet(topo, max_candidates=k, max_extra_hops=extra, lazy=True)
        eager = PathSet(topo, max_candidates=k, max_extra_hops=extra, lazy=False)
        assert lazy.lazy and not eager.lazy
        for src, dst in lazy.all_pairs():
            lc, ec = lazy.candidates(src, dst), eager.candidates(src, dst)
            assert [_as_tuple(c) for c in lc] == [_as_tuple(c) for c in ec]
            assert lazy.candidate_ids(src, dst) == eager.candidate_ids(src, dst)
        assert lazy.num_paths == eager.num_paths
        assert lazy.multipath_fraction() == eager.multipath_fraction()

    def test_ids_independent_of_materialization_order(self):
        topo = build_testbed8()
        forward = PathSet(topo)
        backward = PathSet(topo)
        pairs = forward.all_pairs()
        for src, dst in pairs:
            forward.candidate_ids(src, dst)
        for src, dst in reversed(pairs):
            backward.candidate_ids(src, dst)
        for src, dst in pairs:
            assert forward.candidate_ids(src, dst) == backward.candidate_ids(src, dst)


class TestLaziness:
    def test_no_search_until_queried(self):
        paths = PathSet(build_bso13())
        assert paths.searches_run == 0
        assert paths.num_paths == 0
        paths.candidates("DC1", "DC13")
        assert paths.searches_run == 1
        assert paths.num_paths >= 1

    def test_repeat_queries_hit_cache(self):
        paths = PathSet(build_testbed8())
        paths.candidates("DC1", "DC8")
        paths.candidates("DC1", "DC8")
        paths.candidate_ids("DC1", "DC8")
        assert paths.searches_run == 1

    def test_eager_materializes_everything(self):
        paths = PathSet(build_testbed8(), lazy=False)
        assert paths.searches_run == len(paths.all_pairs())

    def test_prewarm_selected_pairs(self):
        paths = PathSet(build_testbed8())
        assert paths.prewarm([("DC1", "DC8"), ("DC8", "DC1")]) == 2
        assert paths.searches_run == 2

    def test_prewarm_all(self):
        paths = PathSet(build_testbed8())
        count = paths.prewarm()
        assert count == len(paths.all_pairs()) == paths.searches_run


class TestLRUCache:
    def test_eviction_and_rematerialization_stability(self):
        topo = build_bso13()
        unbounded = PathSet(topo)
        bounded = PathSet(topo, cache_pairs=2)
        pairs = [("DC1", "DC13"), ("DC2", "DC9"), ("DC5", "DC11"), ("DC13", "DC1")]
        first_ids = {p: bounded.candidate_ids(*p) for p in pairs}
        assert bounded.cache_evictions >= 2
        # evicted pairs re-enumerate to the same ids and geometry
        for pair in pairs:
            assert bounded.candidate_ids(*pair) == first_ids[pair]
            assert bounded.candidate_ids(*pair) == unbounded.candidate_ids(*pair)
            got = [_as_tuple(c) for c in bounded.candidates(*pair)]
            want = [_as_tuple(c) for c in unbounded.candidates(*pair)]
            assert got == want
        # geometry rows are shared, not duplicated, across re-materializations
        assert bounded.num_paths == unbounded.num_paths or bounded.num_paths <= unbounded.num_paths

    def test_rerun_counts_as_new_search(self):
        paths = PathSet(build_testbed8(), cache_pairs=1)
        paths.candidates("DC1", "DC8")
        paths.candidates("DC2", "DC7")
        paths.candidates("DC1", "DC8")
        assert paths.searches_run == 3
        assert paths.cache_evictions == 2


class TestIntegerIndex:
    def test_path_by_id_round_trip(self):
        paths = PathSet(build_testbed8())
        for src, dst in paths.all_pairs():
            for view in paths.candidates(src, dst):
                again = paths.path_by_id(view.path_id)
                assert again.dcs == view.dcs
                assert paths.path_id(view) == view.path_id

    def test_path_id_accepts_foreign_candidates(self):
        topo = build_testbed8()
        paths = PathSet(topo)
        for candidate in enumerate_paths(topo, "DC1", "DC8"):
            pid = paths.path_id(candidate)
            assert pid >= 0
            assert paths.path_by_id(pid).dcs == candidate.dcs

    def test_path_by_id_rejects_bad_ids(self):
        paths = PathSet(build_testbed8())
        with pytest.raises(IndexError):
            paths.path_by_id(-1)
        with pytest.raises(IndexError):
            paths.path_by_id(10**9)

    def test_unknown_path_is_minus_one(self):
        topo = build_testbed8()
        paths = PathSet(topo, max_candidates=1)
        rejected = enumerate_paths(topo, "DC1", "DC8", max_candidates=8)[-1]
        assert paths.path_id(rejected) == -1


class TestQueries:
    def test_has_path_matches_candidates(self):
        topo, names = _random_topology(4)
        paths = PathSet(topo)
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                assert paths.has_path(src, dst) == bool(paths.candidates(src, dst))
        assert paths.has_path("DC0", "DC0") is False
        assert paths.has_path("nope", "DC0") is False

    def test_pair_metrics_align_with_candidates(self):
        paths = PathSet(build_bso13())
        delays, bnecks = paths.pair_metrics("DC1", "DC13")
        views = paths.candidates("DC1", "DC13")
        assert list(delays) == [v.delay_s for v in views]
        assert list(bnecks) == [v.bottleneck_bps for v in views]
        assert paths.ideal_delay("DC1", "DC13") == min(v.delay_s for v in views)
        assert paths.best_bottleneck("DC1", "DC13") == max(
            v.bottleneck_bps for v in views
        )

    def test_memory_bytes_grows_with_materialization(self):
        paths = PathSet(build_bso13())
        before = paths.memory_bytes()
        paths.prewarm()
        assert paths.memory_bytes() > before

    def test_rejects_nonpositive_max_candidates(self):
        with pytest.raises(TopologyError):
            PathSet(build_testbed8(), max_candidates=0)
