"""Shared fixtures for the LCMP reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LCMPConfig, SwitchTables
from repro.simulator import SimulationConfig
from repro.topology import (
    GBPS,
    MS,
    PathSet,
    Topology,
    build_bso13,
    build_testbed8,
    bso13_pathset,
    testbed8_pathset,
)


@pytest.fixture
def rng():
    """Deterministic RNG for tests."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_topology() -> Topology:
    """A 3-DC triangle with asymmetric capacities/delays.

    DC-A -- DC-B: 100 Gbps, 5 ms
    DC-A -- DC-C: 40 Gbps, 1 ms
    DC-C -- DC-B: 40 Gbps, 1 ms

    so A->B has two candidates: fast direct (5 ms, 100 G) and a 2 ms,
    40 G two-hop detour.
    """
    topo = Topology("tiny")
    for name in ("A", "B", "C"):
        topo.add_dc(name)
    topo.add_inter_dc_link("A", "B", cap_bps=100 * GBPS, delay_s=5 * MS)
    topo.add_inter_dc_link("A", "C", cap_bps=40 * GBPS, delay_s=1 * MS)
    topo.add_inter_dc_link("C", "B", cap_bps=40 * GBPS, delay_s=1 * MS)
    for name in ("A", "B", "C"):
        topo.add_hosts(name, count=4, nic_bps=100 * GBPS)
    topo.validate()
    return topo


@pytest.fixture
def tiny_pathset(tiny_topology) -> PathSet:
    """Candidate paths of the tiny triangle (max one extra hop)."""
    return PathSet(tiny_topology, max_candidates=4, max_extra_hops=1)


@pytest.fixture(scope="session")
def testbed_topology() -> Topology:
    """The full-rate 8-DC testbed topology (session-scoped, read-only)."""
    return build_testbed8()


@pytest.fixture(scope="session")
def testbed_paths(testbed_topology) -> PathSet:
    """Candidate paths of the 8-DC testbed."""
    return testbed8_pathset(testbed_topology)


@pytest.fixture(scope="session")
def scaled_testbed() -> Topology:
    """Time-scaled 8-DC testbed used by simulation tests (1/10 rates)."""
    return build_testbed8(capacity_scale=0.1)


@pytest.fixture(scope="session")
def scaled_testbed_paths(scaled_testbed) -> PathSet:
    return testbed8_pathset(scaled_testbed)


@pytest.fixture(scope="session")
def bso_topology() -> Topology:
    """The full-rate 13-DC BSONetwork topology."""
    return build_bso13()


@pytest.fixture(scope="session")
def bso_paths(bso_topology) -> PathSet:
    return bso13_pathset(bso_topology)


@pytest.fixture
def lcmp_config() -> LCMPConfig:
    """Default LCMP weights."""
    return LCMPConfig()


@pytest.fixture
def switch_tables(lcmp_config) -> SwitchTables:
    """Bootstrap tables for a 400 Gbps / 512 MB-buffer switch."""
    return SwitchTables.bootstrap(
        config=lcmp_config,
        max_capacity_bps=400 * GBPS,
        buffer_bytes=512 * 1024 * 1024,
        link_rates_bps=[40 * GBPS, 100 * GBPS, 200 * GBPS],
        trend_interval_s=1e-3,
    )


@pytest.fixture
def quick_sim_config() -> SimulationConfig:
    """Fast simulation config for unit/integration tests."""
    return SimulationConfig(
        update_interval_s=1e-3,
        monitor_interval_s=1e-3,
        gc_interval_s=0.1,
        max_sim_time_s=30.0,
        drain_timeout_s=20.0,
        seed=99,
    )
