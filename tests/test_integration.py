"""End-to-end integration tests: the paper's headline behaviours.

These run moderately sized simulations (a few hundred to ~1000 flows on the
time-scaled testbed) and assert the *shape* of the paper's results: LCMP
beats the oblivious and capacity-only baselines, avoids high-delay paths for
small flows, reacts to failures, and both cost terms matter.
"""

import pytest

from repro.core import LCMPConfig
from repro.experiments import ExperimentRunner, ExperimentSpec, TESTBED_ENDPOINT_PAIRS

MODERATE = dict(
    topology="testbed8",
    workload="websearch",
    load=0.3,
    num_flows=900,
    pairs=TESTBED_ENDPOINT_PAIRS,
    capacity_scale=0.1,
    seed=77,
)


@pytest.fixture(scope="module")
def comparison_runs():
    runner = ExperimentRunner()
    base = ExperimentSpec(name="integration", **MODERATE)
    return runner.run_router_comparison(base, ["lcmp", "ecmp", "ucmp"])


class TestHeadlineClaims:
    def test_lcmp_beats_baselines_on_median(self, comparison_runs):
        lcmp = comparison_runs["lcmp"].profile
        assert lcmp.overall_p50 < comparison_runs["ecmp"].profile.overall_p50
        assert lcmp.overall_p50 < comparison_runs["ucmp"].profile.overall_p50

    def test_lcmp_beats_baselines_on_tail(self, comparison_runs):
        lcmp = comparison_runs["lcmp"].profile
        assert lcmp.overall_p99 < comparison_runs["ecmp"].profile.overall_p99
        assert lcmp.overall_p99 < comparison_runs["ucmp"].profile.overall_p99

    def test_small_flows_avoid_high_delay_paths(self, comparison_runs):
        """LCMP's delay-aware path quality keeps small flows off the 250 ms
        relays, so their P99 slowdown is far below ECMP's."""
        def small_p99(run):
            profile = run.profile
            return profile.bins[0].p99

        assert small_p99(comparison_runs["lcmp"]) < 0.5 * small_p99(comparison_runs["ecmp"])

    def test_all_flows_complete_under_every_scheme(self, comparison_runs):
        for run in comparison_runs.values():
            assert run.result.unfinished_flows == 0
            assert len(run.result.records) == MODERATE["num_flows"]

    def test_ucmp_concentrates_on_high_capacity_links(self, comparison_runs):
        """The motivation claim: UCMP leaves the low-capacity relays unused."""
        utilisation = comparison_runs["ucmp"].result.utilization_by_link()
        assert utilisation[("DC1", "DC6")] == pytest.approx(0.0, abs=1e-6)
        assert utilisation[("DC1", "DC7")] == pytest.approx(0.0, abs=1e-6)
        assert utilisation[("DC1", "DC2")] > 0.0

    def test_lcmp_avoids_the_slowest_relay(self, comparison_runs):
        """LCMP should place (almost) nothing on the 250 ms DC2 relay while
        ECMP sends a sixth of the traffic there."""
        lcmp_util = comparison_runs["lcmp"].result.utilization_by_link()
        ecmp_util = comparison_runs["ecmp"].result.utilization_by_link()
        assert lcmp_util[("DC1", "DC2")] < 0.5 * max(ecmp_util[("DC1", "DC2")], 1e-9)


class TestAblation:
    def test_removing_either_term_hurts(self):
        runner = ExperimentRunner()
        spec = ExperimentSpec(name="ablation", router="lcmp", **MODERATE)
        full = runner.run(spec.with_overrides(name="full", lcmp_config=LCMPConfig()))
        rm_alpha = runner.run(
            spec.with_overrides(name="rm-alpha", lcmp_config=LCMPConfig().ablate_path_quality())
        )
        assert full.profile.overall_p50 < rm_alpha.profile.overall_p50
        assert full.profile.overall_p99 <= rm_alpha.profile.overall_p99 * 1.1


class TestFailover:
    def test_flows_avoid_failed_link_and_still_complete(self):
        """Fail the best low-delay relay's link mid-run: new flows must avoid
        it and every flow still completes (no blackholing)."""
        from repro.congestion_control import make_cc_factory
        from repro.core import lcmp_router_factory
        from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
        from repro.topology import build_testbed8, testbed8_pathset
        from repro.workloads import TrafficConfig, TrafficGenerator

        topo = build_testbed8(capacity_scale=0.1)
        paths = testbed8_pathset(topo)
        config = SimulationConfig(seed=5)
        network = RuntimeNetwork(topo, paths, lcmp_router_factory(topo, paths), config)
        traffic = TrafficConfig(
            workload="websearch", load=0.3, num_flows=400,
            pairs=[("DC1", "DC8"), ("DC8", "DC1")], seed=5,
        )
        demands = TrafficGenerator(topo, paths, traffic).generate()
        sim = FluidSimulation(network, demands, make_cc_factory("dcqcn"), config)

        fail_at = demands[len(demands) // 3].arrival_s
        sim.engine.schedule(fail_at, lambda: network.fail_link("DC1", "DC7"))
        result = sim.run()

        assert result.unfinished_flows == 0
        # decisions made after the failure never pick the dead port
        post_failure = [
            d for d in network.switch("DC1").decisions if d.time_s > fail_at
        ]
        assert post_failure, "some flows must arrive after the failure"
        assert all(d.chosen.first_hop != "DC7" for d in post_failure)
