"""Benchmark E1b — paper Fig. 6 (simulator fidelity).

Correlates per-size-bin P50/P99 slowdowns between the clean "simulator"
profile and the noisier, smaller "testbed" profile.

Expected shape (paper): near-linear correlation — Pearson >= 0.95 (P50) and
>= 0.97 (P99) in the paper; we require a strong positive correlation.
"""

import pytest

from repro.experiments import figure6


@pytest.mark.benchmark(group="fig6")
def test_fig6_fidelity(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure6,
        kwargs=dict(num_flows=int(1500 * flow_scale), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    assert result.metrics["pearson_p50"] >= 0.8
    assert result.metrics["pearson_p99"] >= 0.8
