"""Benchmark E2 — paper Fig. 7 (13-DC system-wide validation).

All-to-all WebSearch traffic over the Europe-spanning 13-DC topology at
30/50/80 % load.

Expected shape (paper): system-wide gains are moderate — the sparse topology
means most DC pairs have a single candidate route, so LCMP's median is
essentially unchanged versus ECMP while the tail improves somewhat (and
clearly beats RedTE's tail).
"""

import pytest

from repro.experiments import figure7


@pytest.mark.benchmark(group="fig7")
def test_fig7_system_wide(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure7,
        kwargs=dict(num_flows=int(2000 * flow_scale), loads=(0.3, 0.5, 0.8), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    for load in ("30% load", "50% load", "80% load"):
        series = result.groups[load]
        lcmp = series["lcmp"]
        ecmp = series["ecmp"]
        # medians are comparable (within 15 %): gains are diluted by the
        # majority of single-path flows
        assert lcmp.overall_p50 <= ecmp.overall_p50 * 1.15, load
        # the tail does not regress (and typically improves)
        assert lcmp.overall_p99 <= ecmp.overall_p99 * 1.10, load
