"""Per-kernel micro-benchmarks across the registered array backends.

Each ``@pytest.mark.benchmark`` lane times one backend kernel on the
geometry the 20k-flow fluid step actually presents (20k segments of
uniform length 4 — the testbed8 path shape — over ~40 links), so the
recorded trajectory (``BENCH_backend_throughput.json``, group
``kernel-micro``) shows *which* kernel a backend regression comes from,
in ns/op, next to the end-to-end lanes.

The shapes are fixed and the inputs deterministic, so numbers are
comparable across commits on one machine; cross-backend output equality
is asserted by ``tests/backend/test_kernel_parity.py``, not here.
"""

import numpy as np
import pytest

from repro.backend import available_backends, get_backend

#: the hot-lane geometry: 20k flows × 4 hops on ~40 registered links
NUM_SEGMENTS = 20_000
SEG_LEN = 4
NUM_LANES = NUM_SEGMENTS * SEG_LEN
NUM_LINKS = 40


def _inputs():
    rng = np.random.default_rng(17)
    lengths = np.full(NUM_SEGMENTS, SEG_LEN, dtype=np.int64)
    starts = np.arange(NUM_SEGMENTS, dtype=np.int64) * SEG_LEN
    idx = rng.integers(0, NUM_LINKS, size=NUM_LANES).astype(np.intp)
    lane_values = rng.uniform(0.5, 2.0, size=NUM_LANES)
    link_values = rng.uniform(0.0, 1.0, size=NUM_LINKS)
    rows = rng.permutation(NUM_SEGMENTS).astype(np.intp)
    column = rng.uniform(size=NUM_SEGMENTS)
    return {
        "lengths": lengths,
        "starts": starts,
        "idx": idx,
        "lane_values": lane_values,
        "link_values": link_values,
        "rows": rows,
        "column": column,
    }


INPUTS = _inputs()


@pytest.fixture(params=available_backends())
def backend(request):
    return get_backend(request.param)


@pytest.mark.benchmark(group="kernel-micro")
def test_bench_scatter_add(benchmark, backend):
    benchmark(
        backend.scatter_add, NUM_LINKS, INPUTS["idx"], INPUTS["lane_values"]
    )


@pytest.mark.benchmark(group="kernel-micro")
@pytest.mark.parametrize("op", ["sum", "prod", "min", "max"])
def test_bench_segment_reduce(benchmark, backend, op):
    benchmark(
        backend.segment_reduce,
        INPUTS["lane_values"],
        INPUTS["starts"],
        INPUTS["lengths"],
        op,
    )


@pytest.mark.benchmark(group="kernel-micro")
def test_bench_segment_cumidx(benchmark, backend):
    benchmark(backend.segment_cumidx, INPUTS["lengths"])


@pytest.mark.benchmark(group="kernel-micro")
def test_bench_expand_segments(benchmark, backend):
    benchmark(backend.expand_segments, INPUTS["column"], INPUTS["lengths"])


@pytest.mark.benchmark(group="kernel-micro")
def test_bench_path_signals(benchmark, backend):
    not_marked = 1.0 - INPUTS["link_values"] * 0.1
    delays = INPUTS["link_values"] * 1e-4
    benchmark(
        backend.path_signals,
        INPUTS["idx"],
        INPUTS["starts"],
        INPUTS["lengths"],
        not_marked,
        delays,
    )


@pytest.mark.benchmark(group="kernel-micro")
def test_bench_weighted_choice(benchmark, backend):
    cumulative = np.cumsum(np.full(8, 12.5))
    points = INPUTS["column"] * cumulative[-1]
    benchmark(backend.weighted_choice_searchsorted, cumulative, points)


@pytest.mark.benchmark(group="kernel-micro")
def test_bench_gather_rows(benchmark, backend):
    benchmark(backend.gather_rows, INPUTS["column"], INPUTS["rows"])


@pytest.mark.benchmark(group="kernel-micro")
def test_bench_scatter_rows(benchmark, backend):
    column = INPUTS["column"].copy()
    values = INPUTS["column"][: len(INPUTS["rows"])]
    benchmark(backend.scatter_rows, column, INPUTS["rows"], values)


@pytest.mark.benchmark(group="kernel-micro")
def test_bench_masked_divide(benchmark, backend):
    num = INPUTS["column"]
    den = INPUTS["column"][::-1].copy()
    den[::7] = 0.0
    mask = den > 0
    benchmark(backend.masked_divide, num, den, mask)
