"""Benchmark E1 — paper Fig. 5 (8-DC testbed comparison).

Median and tail FCT slowdown for WebSearch under DCQCN at 30/50/80 % load,
LCMP vs ECMP, UCMP and RedTE.

Expected shape (paper): LCMP reduces the median slowdown by tens of percent
against every baseline at every load, and the P99 slowdown even more; RedTE's
100 ms control loop leaves it close to ECMP.
"""

import pytest

from repro.experiments import figure5


@pytest.mark.benchmark(group="fig5")
def test_fig5_testbed_loads(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure5,
        kwargs=dict(num_flows=int(1500 * flow_scale), loads=(0.3, 0.5, 0.8), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    for load in ("30% load", "50% load", "80% load"):
        series = result.groups[load]
        lcmp = series["lcmp"]
        for baseline in ("ecmp", "ucmp", "redte"):
            # LCMP's median never loses to a baseline, and its tail is no
            # worse than the baseline's (it usually wins by a large margin)
            assert lcmp.overall_p50 < series[baseline].overall_p50, (load, baseline)
            assert lcmp.overall_p99 <= series[baseline].overall_p99 * 1.05, (load, baseline)
        # at least one baseline suffers a large median penalty (>= 25 %)
        assert max(
            result.metrics[f"{load}_p50_reduction_vs_{b}"] for b in ("ecmp", "ucmp", "redte")
        ) >= 0.25
