"""Array-backend step-throughput gate and recorded per-backend lanes.

The pluggable backend layer (DESIGN.md, "Array backends & kernels") must
pay for itself: the fused numpy backend (``bincount`` scatter-adds,
uniform-path-length reshape reductions) is gated **at least 1.3×** the
numpy reference backend end to end on a 20k-flow uniform-HPCC lane —
the regime where the per-step kernel cost dominates — with bit-identical
FCTs and bit-identical residual per-flow state between the two runs.

The lane reuses the sustained-concurrency workload of the core
throughput gates (``build_concurrent_demands``: every flow arrives
within the first ten update steps, testbed8 at ``capacity_scale=0.1``)
plus a slice of short flows that complete inside the window, so the FCT
comparison is non-vacuous.  The simulated window is long enough that the
one-off Python arrival cost (identical on both backends, untouched by
the kernel layer) amortises against the measured steps.

The recorded ``@pytest.mark.benchmark`` lanes time every *available*
backend on the same workload for the nightly trajectory
(``BENCH_backend_throughput.json``); the torch lane additionally runs a
50k-flow fleet and asserts the step loop performed zero host↔device
transfers (CPU torch aliases the FlowTable columns; see
``repro.backend.torch_backend``).
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.backend import available_backends, get_backend, torch_available
from repro.congestion_control import make_cc_factory
from repro.routing import make_router_factory
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig

from test_scenario_overhead import (
    _scaled,
    _testbed8_pathset,
    _write_results,
    build_concurrent_demands,
)

#: concurrency level of the fused-backend gate (the PR acceptance
#: criterion calls for a 20k-flow lane)
BACKEND_GATE_FLOWS = 20_000
#: required fused-vs-reference end-to-end ratio
MIN_FUSED_SPEEDUP = 1.3
#: simulated window of the gate lane — long enough that the per-step
#: kernel cost (what the fused backend accelerates) dominates the one-off
#: Python arrival cost, which is identical on both backends
BACKEND_GATE_WINDOW_S = 0.5
#: leading slice of the fleet shrunk to complete inside the window, so
#: the gate's FCT bit-identity assertion compares real completions
SHORT_FLOWS = 500
SHORT_FLOW_BYTES = 250_000
#: concurrency level of the torch residency lane
TORCH_FLEET_FLOWS = 50_000


def build_backend_lane(num_flows: int):
    """The gate workload: sustained concurrency plus a completing slice."""
    topology, demands = build_concurrent_demands(num_flows)
    demands = [
        dataclasses.replace(d, size_bytes=float(SHORT_FLOW_BYTES))
        if i < SHORT_FLOWS
        else d
        for i, d in enumerate(demands)
    ]
    return topology, demands


def run_backend_lane(
    backend: str,
    num_flows: int = BACKEND_GATE_FLOWS,
    sim_window_s: float = BACKEND_GATE_WINDOW_S,
):
    """One uniform-HPCC run of the lane on one backend.

    Returns:
        ``(steps_per_s, fcts, residual)`` — wall-clock update steps per
        second, the completed ``(flow_id, fct_s)`` pairs, and the
        remaining-bytes column at the stop time (the mid-flight state the
        bit-identity assertion compares for the long-lived flows).
    """
    topology, demands = build_backend_lane(num_flows)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(
        seed=5,
        max_sim_time_s=sim_window_s,
        drain_timeout_s=sim_window_s,
        backend=backend,
    )
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(network, demands, make_cc_factory("hpcc"), config)
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    steps = result.duration_s / config.update_interval_s
    fcts = [(r.flow_id, r.fct_s) for r in result.records]
    residual = sim._table.remaining_bytes.copy()
    return steps / elapsed, fcts, residual


def test_backend_fused_speedup():
    """Acceptance (this PR): fused numpy backend >= 1.3x at 20k flows.

    Same re-measurement policy as the earlier throughput gates: a
    wall-clock ratio on a shared CI runner can catch an unlucky
    scheduling window, so a failing first measurement gets one
    re-measurement before the assertion fires.  The equivalence
    assertions (bit-identical FCTs and residual state) are exact and
    never retried.
    """
    reference, ref_fcts, ref_residual = run_backend_lane("numpy")
    fused, fused_fcts, fused_residual = run_backend_lane("numpy_fused")
    assert ref_fcts, "gate lane completed no flows; FCT assertion is vacuous"
    assert ref_fcts == fused_fcts
    assert np.array_equal(ref_residual, fused_residual)
    if fused / reference < MIN_FUSED_SPEEDUP:
        reference, _, _ = run_backend_lane("numpy")
        fused, _, _ = run_backend_lane("numpy_fused")
    speedup = fused / reference
    _write_results(
        "backend_throughput.txt",
        "array-backend step throughput "
        f"({BACKEND_GATE_FLOWS} concurrent flows, HPCC, testbed8)\n"
        f"numpy reference  : {reference:8.1f} steps/s\n"
        f"numpy_fused      : {fused:8.1f} steps/s\n"
        f"speedup          : {speedup:8.2f}x (required >= {MIN_FUSED_SPEEDUP:g}x)\n"
        f"completed FCTs   : {len(ref_fcts)} (bit-identical)\n",
    )
    assert speedup >= MIN_FUSED_SPEEDUP, (
        f"fused backend is only {speedup:.2f}x faster "
        f"({fused:.0f} vs {reference:.0f} steps/s)"
    )


@pytest.mark.benchmark(group="backend-throughput")
@pytest.mark.parametrize("backend", available_backends())
def test_bench_backend_throughput(benchmark, backend):
    """Recorded lane: the 20k-flow fleet per available backend."""
    flows = _scaled(BACKEND_GATE_FLOWS)
    steps_per_s = benchmark.pedantic(
        lambda: run_backend_lane(backend, num_flows=flows, sim_window_s=0.1)[0],
        rounds=2,
        iterations=1,
    )
    assert steps_per_s > 0


@pytest.mark.skipif(not torch_available(), reason="torch not installed")
def test_torch_device_resident_fleet():
    """Acceptance (this PR): torch sustains a 50k-flow fleet per step
    with zero in-step host↔device transfers.

    On CPU torch the transfer counter stays 0 by construction (the
    kernels alias the numpy columns); on a CUDA device this assertion
    is what pins the columns device-resident.
    """
    backend = get_backend("torch")
    before = backend.transfers
    steps_per_s, _, residual = run_backend_lane(
        "torch", num_flows=TORCH_FLEET_FLOWS, sim_window_s=0.05
    )
    assert steps_per_s > 0
    assert (residual > 0).sum() >= TORCH_FLEET_FLOWS - SHORT_FLOWS
    assert backend.transfers == before, (
        f"{backend.transfers - before} host<->device transfers inside the "
        "step loop; columns must stay device-resident"
    )
