"""Benchmark E5 — paper Fig. 10 (congestion-control orthogonality).

The WebSearch / 30 % scenario under HPCC, TIMELY and DCTCP (DCQCN is covered
by the Fig. 5 benchmark), LCMP vs ECMP vs UCMP.

Expected shape (paper): LCMP's improvements are consistent across congestion
controls — it is a routing-layer gain, orthogonal to the end-host CC.
"""

import pytest

from repro.experiments import figure10


@pytest.mark.benchmark(group="fig10")
def test_fig10_cc_orthogonality(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure10,
        kwargs=dict(num_flows=int(1500 * flow_scale), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    reductions_vs_ecmp = []
    for cc in ("hpcc", "timely", "dctcp"):
        series = result.groups[cc]
        lcmp = series["lcmp"]
        assert lcmp.overall_p50 < series["ecmp"].overall_p50, cc
        assert lcmp.overall_p50 < series["ucmp"].overall_p50, cc
        reductions_vs_ecmp.append(result.metrics[f"{cc}_p50_reduction_vs_ecmp"])
    # orthogonality: the gain exists under every CC (all reductions positive)
    assert min(reductions_vs_ecmp) > 0.0
