"""Benchmark E5 — paper Fig. 10 (congestion-control orthogonality).

The WebSearch / 30 % scenario under HPCC, TIMELY and DCTCP (DCQCN is covered
by the Fig. 5 benchmark), LCMP vs ECMP vs UCMP — plus the canned
heterogeneous fleet (80 % DCQCN + 20 % HPCC, per-flow assignment) that only
the grouped CC dispatch can run on the fast path.

Every run executes on the vectorized SoA core (the default) with the
per-class column-block CC kernels; ``test_fig10_scalar_equivalence`` pins
that choice down with one small run per congestion control comparing the
SoA core against the pure-Python scalar reference — the figure data is
produced by the fast path *because* the fast path is bit-identical.

Expected shape (paper): LCMP's improvements are consistent across congestion
controls — it is a routing-layer gain, orthogonal to the end-host CC.
"""

import pytest

from repro.experiments import DEFAULT_CC_MIX, ExperimentSpec, figure10

#: the CC groups the figure runs (the paper's three + the mixed fleet)
FIG10_GROUPS = ("hpcc", "timely", "dctcp", "mixed")


@pytest.mark.benchmark(group="fig10")
def test_fig10_cc_orthogonality(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure10,
        kwargs=dict(num_flows=int(1500 * flow_scale), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    reductions_vs_ecmp = []
    for cc in FIG10_GROUPS:
        series = result.groups[cc]
        lcmp = series["lcmp"]
        assert lcmp.overall_p50 < series["ecmp"].overall_p50, cc
        assert lcmp.overall_p50 < series["ucmp"].overall_p50, cc
        reductions_vs_ecmp.append(result.metrics[f"{cc}_p50_reduction_vs_ecmp"])
    # orthogonality: the gain exists under every CC (all reductions
    # positive), including the heterogeneous fleet
    assert min(reductions_vs_ecmp) > 0.0


@pytest.mark.parametrize("cc", ["hpcc", "timely", "dctcp", "dcqcn"])
def test_fig10_scalar_equivalence(runner, cc):
    """One small run per CC: the SoA core the figure uses matches the
    scalar reference bit for bit on the figure's own spec shape."""
    base = ExperimentSpec(
        name=f"fig10-equiv-{cc}",
        topology="testbed8",
        workload="websearch",
        load=0.3,
        cc=cc,
        num_flows=150,
        seed=10,
    )
    fast = runner.run(base)
    scalar = runner.run(base.with_overrides(vectorized=False))
    assert fast.result.slowdowns() == scalar.result.slowdowns()
    assert fast.result.duration_s == scalar.result.duration_s


def test_fig10_mixed_fleet_scalar_equivalence(runner):
    """The mixed-fleet group too: grouped column kernels == scalar spec."""
    base = ExperimentSpec(
        name="fig10-equiv-mixed",
        topology="testbed8",
        workload="websearch",
        load=0.3,
        cc_mix=DEFAULT_CC_MIX,
        num_flows=150,
        seed=10,
    )
    fast = runner.run(base)
    scalar = runner.run(base.with_overrides(vectorized=False))
    assert fast.result.slowdowns() == scalar.result.slowdowns()
    assert fast.result.duration_s == scalar.result.duration_s
