"""Benchmarks — scenario-engine overhead and vectorized-core throughput.

Attaching a scenario must cost essentially nothing when no event fires: the
injector schedules events up front, the per-step fast-failover sweep existed
before the scenario engine, and an empty timeline schedules nothing at all.
Two properties are asserted exactly (identical engine event counts and
bit-identical FCTs with and without an empty scenario) and the wall-clock
cost of both paths is measured for the record.

The second half measures the vectorized update core
(``SimulationConfig(vectorized=True)``, the default) against the scalar
reference path on a sustained-concurrency workload and asserts the
headline speedup: **at least 3x step throughput with >= 500 concurrent
flows**.  The absolute numbers land in
``benchmarks/results/vectorized_step_throughput.txt`` (see
benchmarks/README.md).
"""

import pathlib
import time

import pytest

from repro.congestion_control import make_cc_factory
from repro.routing import make_router_factory
from repro.scenarios import Scenario
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.simulator.flow import FlowDemand
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator

NUM_FLOWS = 300
#: concurrency level of the step-throughput benchmark (the acceptance
#: criterion calls for at least 500 concurrent flows)
CONCURRENT_FLOWS = 550
#: required vectorized-vs-scalar step-throughput ratio
MIN_SPEEDUP = 3.0


def build_inputs():
    topology = build_testbed8(capacity_scale=0.1)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(seed=5)
    traffic = TrafficConfig(
        workload="websearch", load=0.3, num_flows=NUM_FLOWS,
        pairs=[("DC1", "DC8")], seed=5,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    return topology, paths, config, demands


def run_once(topology, paths, config, demands, scenario=None):
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(
        network, demands, make_cc_factory("dcqcn"), config, scenario=scenario
    )
    return sim, sim.run()


def test_empty_scenario_adds_zero_events():
    """The no-event path must not add a single engine event nor perturb FCTs."""
    topology, paths, config, demands = build_inputs()
    plain_sim, plain = run_once(topology, paths, config, demands)
    scen_sim, scen = run_once(
        topology, paths, config, demands, scenario=Scenario(name="noop")
    )
    assert plain_sim.engine.processed_events == scen_sim.engine.processed_events
    assert len(plain.records) == len(scen.records) == NUM_FLOWS
    assert [r.fct_s for r in plain.records] == [r.fct_s for r in scen.records]
    assert scen.scenario_metrics is not None and scen.scenario_metrics.outcomes == []


@pytest.mark.benchmark(group="scenario-overhead")
def test_bench_run_without_scenario(benchmark):
    topology, paths, config, demands = build_inputs()
    result = benchmark.pedantic(
        lambda: run_once(topology, paths, config, demands)[1],
        rounds=3,
        iterations=1,
    )
    assert result.unfinished_flows == 0


@pytest.mark.benchmark(group="scenario-overhead")
def test_bench_run_with_empty_scenario(benchmark):
    topology, paths, config, demands = build_inputs()
    result = benchmark.pedantic(
        lambda: run_once(
            topology, paths, config, demands, scenario=Scenario(name="noop")
        )[1],
        rounds=3,
        iterations=1,
    )
    assert result.unfinished_flows == 0
    assert result.scenario_metrics is not None


# --------------------------------------------------------------------- #
# vectorized-core step throughput
# --------------------------------------------------------------------- #
def build_concurrent_demands(num_flows: int = CONCURRENT_FLOWS):
    """A sustained-concurrency workload: every flow arrives within the
    first ten update steps and is large enough to stay active for the
    whole measured window, so each step advances ~``num_flows`` flows."""
    topology = build_testbed8(capacity_scale=0.1)
    hosts = topology.host_groups["DC1"].count
    demands = [
        FlowDemand(
            flow_id=i,
            src_dc="DC1" if i % 2 == 0 else "DC8",
            dst_dc="DC8" if i % 2 == 0 else "DC1",
            src_host=i % hosts,
            dst_host=(i * 7 + 1) % hosts,
            size_bytes=40_000_000,
            arrival_s=0.001 * (i % 10) + 1e-4,
        )
        for i in range(num_flows)
    ]
    return topology, demands


def measure_step_throughput(vectorized: bool, sim_window_s: float = 0.5) -> float:
    """Wall-clock update steps per second over a fixed simulated window."""
    topology, demands = build_concurrent_demands()
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(
        seed=5,
        vectorized=vectorized,
        max_sim_time_s=sim_window_s,
        drain_timeout_s=sim_window_s,
    )
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(network, demands, make_cc_factory("dcqcn"), config)
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    steps = result.duration_s / config.update_interval_s
    return steps / elapsed


def test_vectorized_step_throughput_speedup():
    """Acceptance: >= 3x step throughput at >= 500 concurrent flows.

    The measured headroom is large (~4.8x on a single developer core), but
    wall-clock ratios on shared CI runners can catch an unlucky scheduling
    window, so a failing first measurement gets one re-measurement before
    the assertion fires.
    """
    scalar = measure_step_throughput(vectorized=False)
    vectorized = measure_step_throughput(vectorized=True)
    if vectorized / scalar < MIN_SPEEDUP:
        scalar = measure_step_throughput(vectorized=False)
        vectorized = measure_step_throughput(vectorized=True)
    speedup = vectorized / scalar
    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(parents=True, exist_ok=True)
    (out / "vectorized_step_throughput.txt").write_text(
        "vectorized-core step throughput "
        f"({CONCURRENT_FLOWS} concurrent flows, DCQCN, testbed8)\n"
        f"scalar reference : {scalar:8.1f} steps/s\n"
        f"vectorized core  : {vectorized:8.1f} steps/s\n"
        f"speedup          : {speedup:8.2f}x (required >= {MIN_SPEEDUP:g}x)\n"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized core is only {speedup:.2f}x faster "
        f"({vectorized:.0f} vs {scalar:.0f} steps/s)"
    )
