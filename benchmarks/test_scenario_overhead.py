"""Benchmarks — scenario-engine overhead and vectorized-core throughput.

Attaching a scenario must cost essentially nothing when no event fires: the
injector schedules events up front, the per-step fast-failover sweep existed
before the scenario engine, and an empty timeline schedules nothing at all.
Two properties are asserted exactly (identical engine event counts and
bit-identical FCTs with and without an empty scenario) and the wall-clock
cost of both paths is measured for the record.

The second half holds the step-throughput benchmarks over the three
bit-for-bit equivalent update cores:

* **scalar** — the pure-Python reference loop
  (``SimulationConfig(vectorized=False)``);
* **legacy** — the PR-2 object-resident vectorized core
  (``vectorized=True, soa=False``): array math, but per-flow state in
  Python objects, crossing the Python↔numpy boundary O(flows) per step;
* **soa** — the structure-of-arrays FlowTable core (the default): per-flow
  and congestion-control state resident in table columns, O(1) boundary
  crossings per step.

Two gates are asserted: the default core is **at least 3x** the scalar
reference at >= 500 concurrent flows, and **at least 2x** the legacy
vectorized core at >= 2000 concurrent flows (the SoA acceptance
criterion).  The absolute numbers land in
``benchmarks/results/vectorized_step_throughput.txt`` and
``benchmarks/results/soa_step_throughput.txt`` (see benchmarks/README.md);
the ``@pytest.mark.benchmark`` lanes feed ``--benchmark-json`` so the CI
benchmark job can record the perf trajectory (``BENCH_step_throughput.json``).
"""

import pathlib
import time

import pytest

from repro.congestion_control import make_cc_factory
from repro.routing import make_router_factory
from repro.scenarios import Scenario
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.simulator.flow import FlowDemand
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator

NUM_FLOWS = 300
#: concurrency level of the vectorized-vs-scalar benchmark (the PR-2
#: acceptance criterion calls for at least 500 concurrent flows)
CONCURRENT_FLOWS = 550
#: required vectorized-vs-scalar step-throughput ratio
MIN_SPEEDUP = 3.0
#: concurrency level of the SoA-vs-legacy benchmark (the FlowTable
#: acceptance criterion calls for at least 2000 concurrent flows)
HIGH_CONCURRENCY_FLOWS = 2000
#: required SoA-vs-legacy step-throughput ratio at high concurrency
MIN_SOA_SPEEDUP = 2.0
#: simulated window of the high-concurrency lane (shorter than the 550-flow
#: lane: the legacy and scalar baselines pay O(flows) Python work per step)
HIGH_CONCURRENCY_WINDOW_S = 0.25

#: per-core SimulationConfig overrides
_MODES = {
    "scalar": dict(vectorized=False),
    "legacy": dict(vectorized=True, soa=False),
    "soa": dict(vectorized=True, soa=True),
}


def build_inputs():
    topology = build_testbed8(capacity_scale=0.1)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(seed=5)
    traffic = TrafficConfig(
        workload="websearch", load=0.3, num_flows=NUM_FLOWS,
        pairs=[("DC1", "DC8")], seed=5,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    return topology, paths, config, demands


def run_once(topology, paths, config, demands, scenario=None):
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(
        network, demands, make_cc_factory("dcqcn"), config, scenario=scenario
    )
    return sim, sim.run()


def test_empty_scenario_adds_zero_events():
    """The no-event path must not add a single engine event nor perturb FCTs."""
    topology, paths, config, demands = build_inputs()
    plain_sim, plain = run_once(topology, paths, config, demands)
    scen_sim, scen = run_once(
        topology, paths, config, demands, scenario=Scenario(name="noop")
    )
    assert plain_sim.engine.processed_events == scen_sim.engine.processed_events
    assert len(plain.records) == len(scen.records) == NUM_FLOWS
    assert [r.fct_s for r in plain.records] == [r.fct_s for r in scen.records]
    assert scen.scenario_metrics is not None and scen.scenario_metrics.outcomes == []


@pytest.mark.benchmark(group="scenario-overhead")
def test_bench_run_without_scenario(benchmark):
    topology, paths, config, demands = build_inputs()
    result = benchmark.pedantic(
        lambda: run_once(topology, paths, config, demands)[1],
        rounds=3,
        iterations=1,
    )
    assert result.unfinished_flows == 0


@pytest.mark.benchmark(group="scenario-overhead")
def test_bench_run_with_empty_scenario(benchmark):
    topology, paths, config, demands = build_inputs()
    result = benchmark.pedantic(
        lambda: run_once(
            topology, paths, config, demands, scenario=Scenario(name="noop")
        )[1],
        rounds=3,
        iterations=1,
    )
    assert result.unfinished_flows == 0
    assert result.scenario_metrics is not None


# --------------------------------------------------------------------- #
# vectorized-core step throughput
# --------------------------------------------------------------------- #
def build_concurrent_demands(num_flows: int = CONCURRENT_FLOWS):
    """A sustained-concurrency workload: every flow arrives within the
    first ten update steps and is large enough to stay active for the
    whole measured window, so each step advances ~``num_flows`` flows."""
    topology = build_testbed8(capacity_scale=0.1)
    hosts = topology.host_groups["DC1"].count
    demands = [
        FlowDemand(
            flow_id=i,
            src_dc="DC1" if i % 2 == 0 else "DC8",
            dst_dc="DC8" if i % 2 == 0 else "DC1",
            src_host=i % hosts,
            dst_host=(i * 7 + 1) % hosts,
            size_bytes=40_000_000,
            arrival_s=0.001 * (i % 10) + 1e-4,
        )
        for i in range(num_flows)
    ]
    return topology, demands


def measure_step_throughput(
    mode: str, num_flows: int = CONCURRENT_FLOWS, sim_window_s: float = 0.5
) -> float:
    """Wall-clock update steps per second over a fixed simulated window.

    Args:
        mode: ``"scalar"``, ``"legacy"`` (PR-2 object-resident vectorized
            core) or ``"soa"`` (FlowTable core, the default).
        num_flows: sustained concurrency level.
        sim_window_s: simulated window to run.
    """
    topology, demands = build_concurrent_demands(num_flows)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(
        seed=5,
        max_sim_time_s=sim_window_s,
        drain_timeout_s=sim_window_s,
        **_MODES[mode],
    )
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(network, demands, make_cc_factory("dcqcn"), config)
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    steps = result.duration_s / config.update_interval_s
    return steps / elapsed


def _write_results(name: str, text: str) -> None:
    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(parents=True, exist_ok=True)
    (out / name).write_text(text)


def test_vectorized_step_throughput_speedup():
    """Acceptance (PR 2): >= 3x step throughput at >= 500 concurrent flows.

    The measured headroom is large (~9x with the SoA core on a single
    developer core), but wall-clock ratios on shared CI runners can catch
    an unlucky scheduling window, so a failing first measurement gets one
    re-measurement before the assertion fires.
    """
    scalar = measure_step_throughput("scalar")
    vectorized = measure_step_throughput("soa")
    if vectorized / scalar < MIN_SPEEDUP:
        scalar = measure_step_throughput("scalar")
        vectorized = measure_step_throughput("soa")
    speedup = vectorized / scalar
    _write_results(
        "vectorized_step_throughput.txt",
        "vectorized-core step throughput "
        f"({CONCURRENT_FLOWS} concurrent flows, DCQCN, testbed8)\n"
        f"scalar reference : {scalar:8.1f} steps/s\n"
        f"vectorized core  : {vectorized:8.1f} steps/s\n"
        f"speedup          : {speedup:8.2f}x (required >= {MIN_SPEEDUP:g}x)\n",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized core is only {speedup:.2f}x faster "
        f"({vectorized:.0f} vs {scalar:.0f} steps/s)"
    )


def test_soa_step_throughput_speedup():
    """Acceptance (this PR): the SoA FlowTable core is >= 2x the PR-2
    object-resident vectorized core at >= 2000 concurrent flows.

    Same re-measurement policy as the scalar gate above (one retry covers
    unlucky scheduling windows on shared CI runners).
    """
    legacy = measure_step_throughput(
        "legacy", HIGH_CONCURRENCY_FLOWS, HIGH_CONCURRENCY_WINDOW_S
    )
    soa = measure_step_throughput(
        "soa", HIGH_CONCURRENCY_FLOWS, HIGH_CONCURRENCY_WINDOW_S
    )
    if soa / legacy < MIN_SOA_SPEEDUP:
        legacy = measure_step_throughput(
            "legacy", HIGH_CONCURRENCY_FLOWS, HIGH_CONCURRENCY_WINDOW_S
        )
        soa = measure_step_throughput(
            "soa", HIGH_CONCURRENCY_FLOWS, HIGH_CONCURRENCY_WINDOW_S
        )
    speedup = soa / legacy
    _write_results(
        "soa_step_throughput.txt",
        "SoA FlowTable core vs PR-2 object-resident vectorized core "
        f"({HIGH_CONCURRENCY_FLOWS} concurrent flows, DCQCN, testbed8)\n"
        f"legacy vectorized : {legacy:8.1f} steps/s\n"
        f"SoA FlowTable     : {soa:8.1f} steps/s\n"
        f"speedup           : {speedup:8.2f}x (required >= {MIN_SOA_SPEEDUP:g}x)\n",
    )
    assert speedup >= MIN_SOA_SPEEDUP, (
        f"SoA core is only {speedup:.2f}x faster than the legacy "
        f"vectorized core ({soa:.0f} vs {legacy:.0f} steps/s)"
    )


@pytest.mark.benchmark(group="step-throughput")
@pytest.mark.parametrize("mode", ["legacy", "soa"])
def test_bench_step_throughput_high_concurrency(benchmark, mode):
    """Recorded lanes for the perf trajectory (``--benchmark-json``).

    One round runs the full high-concurrency window through the named
    core; the CI benchmark job stores the timings as
    ``BENCH_step_throughput.json`` at the repo root.
    """
    benchmark.pedantic(
        lambda: measure_step_throughput(
            mode, HIGH_CONCURRENCY_FLOWS, HIGH_CONCURRENCY_WINDOW_S
        ),
        rounds=2,
        iterations=1,
    )
