"""Benchmarks — scenario overhead, core throughput, control-plane batching.

Attaching a scenario must cost essentially nothing when no event fires: the
injector schedules events up front, the per-step fast-failover sweep existed
before the scenario engine, and an empty timeline schedules nothing at all.
Two properties are asserted exactly (identical engine event counts and
bit-identical FCTs with and without an empty scenario) and the wall-clock
cost of both paths is measured for the record.

The second part holds the step-throughput benchmarks over the three
bit-for-bit equivalent update cores:

* **scalar** — the pure-Python reference loop
  (``SimulationConfig(vectorized=False)``);
* **legacy** — the PR-2 object-resident vectorized core
  (``vectorized=True, soa=False``): array math, but per-flow state in
  Python objects, crossing the Python↔numpy boundary O(flows) per step;
* **soa** — the structure-of-arrays FlowTable core (the default): per-flow
  and congestion-control state resident in table columns, O(1) boundary
  crossings per step.

Two gates are asserted there: the default core is **at least 3x** the
scalar reference at >= 500 concurrent flows, and **at least 2x** the
legacy vectorized core at >= 2000 concurrent flows (the SoA acceptance
criterion).

The third part holds the **array-resident congestion control** gate: a
uniform non-DCQCN fleet (HPCC, 2000 flows, the regime the CC-comparison
figure runs) compared between the per-class column-block kernels
(``cc_blocks=True``, the default: in-place ``feedback_batch_slots`` /
``advance_batch_slots`` on the FlowTable block) and the retained
object-gather dispatch (``cc_blocks=False``: gather the controller objects
off the table, loop ``on_feedback``/``on_interval``).  Gate: **at least
2x** end-to-end, with FCTs asserted bit-identical between the two paths.

The fourth part measures the **array-resident control plane** (PR 4): a
monitored, arrival-heavy LCMP run — burst arrivals, queue monitor plus
estimator feed at the default 1 ms cadence, link tracing on — compared
between the batched control plane (telemetry columns + batched arrivals +
``select_batch``, the default) and the PR-3 configuration
(``batched_control=False``: one heap event and one sequential ``select``
chain per flow, per-port sample objects every tick).  Gate: **at least
1.5x** end-to-end at >= 2000 flows, with FCTs asserted bit-identical
between the two paths.

The fifth part gates the **observability plane** (see DESIGN.md,
"Observability plane"): running the 2000-flow HPCC lane with
``SimulationConfig(instrumentation=True)`` — phase timers around every step
sub-phase plus the slow-path counters — must cost **at most 3 %** wall
clock against the uninstrumented run, with bit-identical FCTs.  The
recorded ``test_bench_phase_profile`` lane additionally writes the per-phase
breakdown (``BENCH_phase_breakdown.json``) and a perfetto-loadable Chrome
trace (``BENCH_step_trace.trace.json``) next to the wall-clock trajectory.

Absolute numbers land in ``benchmarks/results/*.txt`` (see
benchmarks/README.md); the ``@pytest.mark.benchmark`` lanes feed
``--benchmark-json`` so the CI benchmark jobs can record the perf
trajectory (``BENCH_step_throughput.json``).
"""

import json
import os
import pathlib
import time

import pytest

from repro.analysis import perf_report, phase_breakdown_json
from repro.congestion_control import make_cc_factory
from repro.obs import write_chrome_trace
from repro.core import lcmp_router_factory
from repro.routing import make_router_factory
from repro.scenarios import Scenario
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.simulator.flow import FlowDemand
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator

NUM_FLOWS = 300
#: concurrency level of the vectorized-vs-scalar benchmark (the PR-2
#: acceptance criterion calls for at least 500 concurrent flows)
CONCURRENT_FLOWS = 550
#: required vectorized-vs-scalar step-throughput ratio
MIN_SPEEDUP = 3.0
#: concurrency level of the SoA-vs-legacy benchmark (the FlowTable
#: acceptance criterion calls for at least 2000 concurrent flows)
HIGH_CONCURRENCY_FLOWS = 2000
#: required SoA-vs-legacy step-throughput ratio at high concurrency
MIN_SOA_SPEEDUP = 2.0
#: simulated window of the high-concurrency lane (shorter than the 550-flow
#: lane: the legacy and scalar baselines pay O(flows) Python work per step)
HIGH_CONCURRENCY_WINDOW_S = 0.25

#: per-core SimulationConfig overrides
_MODES = {
    "scalar": dict(vectorized=False),
    "legacy": dict(vectorized=True, soa=False),
    "soa": dict(vectorized=True, soa=True),
}

#: flow-count scale for the recorded ``test_bench_*`` lanes only — the CI
#: quick-bench smoke job sets REPRO_BENCH_SCALE=0.25 so a PR run finishes
#: in seconds; the speedup *gates* always run at full size
_BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _scaled(num_flows: int) -> int:
    return max(50, int(num_flows * _BENCH_SCALE))


def build_inputs():
    topology = build_testbed8(capacity_scale=0.1)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(seed=5)
    traffic = TrafficConfig(
        workload="websearch", load=0.3, num_flows=NUM_FLOWS,
        pairs=[("DC1", "DC8")], seed=5,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    return topology, paths, config, demands


def run_once(topology, paths, config, demands, scenario=None):
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(
        network, demands, make_cc_factory("dcqcn"), config, scenario=scenario
    )
    return sim, sim.run()


def test_empty_scenario_adds_zero_events():
    """The no-event path must not add a single engine event nor perturb FCTs."""
    topology, paths, config, demands = build_inputs()
    plain_sim, plain = run_once(topology, paths, config, demands)
    scen_sim, scen = run_once(
        topology, paths, config, demands, scenario=Scenario(name="noop")
    )
    assert plain_sim.engine.processed_events == scen_sim.engine.processed_events
    assert len(plain.records) == len(scen.records) == NUM_FLOWS
    assert [r.fct_s for r in plain.records] == [r.fct_s for r in scen.records]
    assert scen.scenario_metrics is not None and scen.scenario_metrics.outcomes == []


@pytest.mark.benchmark(group="scenario-overhead")
def test_bench_run_without_scenario(benchmark):
    topology, paths, config, demands = build_inputs()
    result = benchmark.pedantic(
        lambda: run_once(topology, paths, config, demands)[1],
        rounds=3,
        iterations=1,
    )
    assert result.unfinished_flows == 0


@pytest.mark.benchmark(group="scenario-overhead")
def test_bench_run_with_empty_scenario(benchmark):
    topology, paths, config, demands = build_inputs()
    result = benchmark.pedantic(
        lambda: run_once(
            topology, paths, config, demands, scenario=Scenario(name="noop")
        )[1],
        rounds=3,
        iterations=1,
    )
    assert result.unfinished_flows == 0
    assert result.scenario_metrics is not None


# --------------------------------------------------------------------- #
# vectorized-core step throughput
# --------------------------------------------------------------------- #
def build_concurrent_demands(num_flows: int = CONCURRENT_FLOWS):
    """A sustained-concurrency workload: every flow arrives within the
    first ten update steps and is large enough to stay active for the
    whole measured window, so each step advances ~``num_flows`` flows."""
    topology = build_testbed8(capacity_scale=0.1)
    hosts = topology.host_groups["DC1"].count
    demands = [
        FlowDemand(
            flow_id=i,
            src_dc="DC1" if i % 2 == 0 else "DC8",
            dst_dc="DC8" if i % 2 == 0 else "DC1",
            src_host=i % hosts,
            dst_host=(i * 7 + 1) % hosts,
            size_bytes=40_000_000,
            arrival_s=0.001 * (i % 10) + 1e-4,
        )
        for i in range(num_flows)
    ]
    return topology, demands


def measure_step_throughput(
    mode: str, num_flows: int = CONCURRENT_FLOWS, sim_window_s: float = 0.5
) -> float:
    """Wall-clock update steps per second over a fixed simulated window.

    Args:
        mode: ``"scalar"``, ``"legacy"`` (PR-2 object-resident vectorized
            core) or ``"soa"`` (FlowTable core, the default).
        num_flows: sustained concurrency level.
        sim_window_s: simulated window to run.
    """
    topology, demands = build_concurrent_demands(num_flows)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(
        seed=5,
        max_sim_time_s=sim_window_s,
        drain_timeout_s=sim_window_s,
        **_MODES[mode],
    )
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(network, demands, make_cc_factory("dcqcn"), config)
    start = time.perf_counter()
    result = sim.run()
    elapsed = time.perf_counter() - start
    steps = result.duration_s / config.update_interval_s
    return steps / elapsed


def _write_results(name: str, text: str) -> None:
    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(parents=True, exist_ok=True)
    (out / name).write_text(text)


def test_vectorized_step_throughput_speedup():
    """Acceptance (PR 2): >= 3x step throughput at >= 500 concurrent flows.

    The measured headroom is large (~9x with the SoA core on a single
    developer core), but wall-clock ratios on shared CI runners can catch
    an unlucky scheduling window, so a failing first measurement gets one
    re-measurement before the assertion fires.
    """
    scalar = measure_step_throughput("scalar")
    vectorized = measure_step_throughput("soa")
    if vectorized / scalar < MIN_SPEEDUP:
        scalar = measure_step_throughput("scalar")
        vectorized = measure_step_throughput("soa")
    speedup = vectorized / scalar
    _write_results(
        "vectorized_step_throughput.txt",
        "vectorized-core step throughput "
        f"({CONCURRENT_FLOWS} concurrent flows, DCQCN, testbed8)\n"
        f"scalar reference : {scalar:8.1f} steps/s\n"
        f"vectorized core  : {vectorized:8.1f} steps/s\n"
        f"speedup          : {speedup:8.2f}x (required >= {MIN_SPEEDUP:g}x)\n",
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized core is only {speedup:.2f}x faster "
        f"({vectorized:.0f} vs {scalar:.0f} steps/s)"
    )


def test_soa_step_throughput_speedup():
    """Acceptance (this PR): the SoA FlowTable core is >= 2x the PR-2
    object-resident vectorized core at >= 2000 concurrent flows.

    Same re-measurement policy as the scalar gate above (one retry covers
    unlucky scheduling windows on shared CI runners).
    """
    legacy = measure_step_throughput(
        "legacy", HIGH_CONCURRENCY_FLOWS, HIGH_CONCURRENCY_WINDOW_S
    )
    soa = measure_step_throughput(
        "soa", HIGH_CONCURRENCY_FLOWS, HIGH_CONCURRENCY_WINDOW_S
    )
    if soa / legacy < MIN_SOA_SPEEDUP:
        legacy = measure_step_throughput(
            "legacy", HIGH_CONCURRENCY_FLOWS, HIGH_CONCURRENCY_WINDOW_S
        )
        soa = measure_step_throughput(
            "soa", HIGH_CONCURRENCY_FLOWS, HIGH_CONCURRENCY_WINDOW_S
        )
    speedup = soa / legacy
    _write_results(
        "soa_step_throughput.txt",
        "SoA FlowTable core vs PR-2 object-resident vectorized core "
        f"({HIGH_CONCURRENCY_FLOWS} concurrent flows, DCQCN, testbed8)\n"
        f"legacy vectorized : {legacy:8.1f} steps/s\n"
        f"SoA FlowTable     : {soa:8.1f} steps/s\n"
        f"speedup           : {speedup:8.2f}x (required >= {MIN_SOA_SPEEDUP:g}x)\n",
    )
    assert speedup >= MIN_SOA_SPEEDUP, (
        f"SoA core is only {speedup:.2f}x faster than the legacy "
        f"vectorized core ({soa:.0f} vs {legacy:.0f} steps/s)"
    )


@pytest.mark.benchmark(group="step-throughput")
@pytest.mark.parametrize("mode", ["legacy", "soa"])
def test_bench_step_throughput_high_concurrency(benchmark, mode):
    """Recorded lanes for the perf trajectory (``--benchmark-json``).

    One round runs the full high-concurrency window through the named
    core; the CI benchmark job stores the timings as
    ``BENCH_step_throughput.json`` at the repo root.
    """
    benchmark.pedantic(
        lambda: measure_step_throughput(
            mode, _scaled(HIGH_CONCURRENCY_FLOWS), HIGH_CONCURRENCY_WINDOW_S
        ),
        rounds=2,
        iterations=1,
    )


# --------------------------------------------------------------------- #
# array-resident congestion control (per-class column-block kernels)
# --------------------------------------------------------------------- #
#: fleet size of the CC dispatch lane (the acceptance criterion calls for
#: a uniform 2000-flow non-DCQCN fleet)
CC_FLEET_FLOWS = 2000
#: required block-kernel vs object-gather end-to-end speedup
MIN_CC_BLOCK_SPEEDUP = 2.0
#: simulated window of the CC dispatch lane
CC_FLEET_WINDOW_S = 0.25


def build_cc_fleet_demands(num_flows: int = CC_FLEET_FLOWS):
    """A sustained-concurrency fleet with enough small flows mixed in that
    a few hundred complete inside the window — the FCT comparison between
    the two dispatch paths needs completed records, while the big flows
    keep ~``num_flows`` controllers active every step."""
    topology = build_testbed8(capacity_scale=0.1)
    hosts = topology.host_groups["DC1"].count
    demands = [
        FlowDemand(
            flow_id=i,
            src_dc="DC1" if i % 2 == 0 else "DC8",
            dst_dc="DC8" if i % 2 == 0 else "DC1",
            src_host=i % hosts,
            dst_host=(i * 7 + 1) % hosts,
            size_bytes=80_000 if i % 4 == 0 else 30_000_000,
            arrival_s=0.001 * (i % 10) + 1e-4,
        )
        for i in range(num_flows)
    ]
    return topology, demands


def run_cc_fleet(
    cc_blocks: bool,
    cc: str = "hpcc",
    num_flows: int = CC_FLEET_FLOWS,
    instrumentation: bool = False,
):
    """One uniform-CC SoA run; returns (wall seconds, result)."""
    topology, demands = build_cc_fleet_demands(num_flows)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(
        seed=5,
        cc_blocks=cc_blocks,
        max_sim_time_s=CC_FLEET_WINDOW_S,
        drain_timeout_s=CC_FLEET_WINDOW_S,
        instrumentation=instrumentation,
    )
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(network, demands, make_cc_factory(cc), config)
    start = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - start, result


def test_cc_block_dispatch_speedup():
    """Acceptance (this PR): the per-class column-block CC kernels are
    >= 2x the retained object-gather dispatch on a uniform 2000-flow HPCC
    fleet, with bit-identical FCTs.

    Same re-measurement policy as the core gates above (one retry covers
    unlucky scheduling windows on shared CI runners).
    """
    blocks_s, blocks_result = run_cc_fleet(cc_blocks=True)
    object_s, object_result = run_cc_fleet(cc_blocks=False)
    # the perf gate is only meaningful because the answer is unchanged
    assert blocks_result.unfinished_flows == object_result.unfinished_flows
    assert blocks_result.slowdowns() == object_result.slowdowns()
    assert len(blocks_result.slowdowns()) > 100
    if object_s / blocks_s < MIN_CC_BLOCK_SPEEDUP:
        blocks_s, _ = run_cc_fleet(cc_blocks=True)
        object_s, _ = run_cc_fleet(cc_blocks=False)
    speedup = object_s / blocks_s
    _write_results(
        "cc_block_throughput.txt",
        "per-class CC column-block kernels vs object-gather dispatch "
        f"({CC_FLEET_FLOWS} concurrent flows, uniform HPCC, testbed8)\n"
        f"object-gather dispatch : {object_s:8.3f} s\n"
        f"column-block kernels   : {blocks_s:8.3f} s\n"
        f"speedup                : {speedup:8.2f}x (required >= "
        f"{MIN_CC_BLOCK_SPEEDUP:g}x)\n",
    )
    assert speedup >= MIN_CC_BLOCK_SPEEDUP, (
        f"CC block kernels are only {speedup:.2f}x faster "
        f"({blocks_s:.3f}s vs {object_s:.3f}s)"
    )


@pytest.mark.benchmark(group="cc-dispatch")
@pytest.mark.parametrize("mode", ["object", "blocks"])
def test_bench_cc_dispatch(benchmark, mode):
    """Recorded CC dispatch lanes for the perf trajectory."""
    benchmark.pedantic(
        lambda: run_cc_fleet(
            cc_blocks=(mode == "blocks"), num_flows=_scaled(CC_FLEET_FLOWS)
        )[0],
        rounds=2,
        iterations=1,
    )


# --------------------------------------------------------------------- #
# array-resident control plane (batched arrivals + telemetry columns)
# --------------------------------------------------------------------- #
#: flow count of the monitored control-plane lane (the acceptance
#: criterion calls for at least 2000 flows)
CONTROL_PLANE_FLOWS = 3000
#: flow size: small enough that the run is arrival/decision-dominated
CONTROL_PLANE_FLOW_BYTES = 150_000
#: required batched-vs-PR-3 end-to-end speedup
MIN_CONTROL_PLANE_SPEEDUP = 1.5


def build_burst_demands(num_flows: int = CONTROL_PLANE_FLOWS):
    """An arrival-heavy workload: five back-to-back waves of simultaneous
    flows between DC1 and DC8, sized so most decisions happen while the
    network is busy and the whole run stays short — the regime where the
    per-flow control plane (heap event + sequential select chain per flow)
    dominates the PR-3 wall clock."""
    topology = build_testbed8(capacity_scale=0.1)
    hosts = topology.host_groups["DC1"].count
    demands = [
        FlowDemand(
            flow_id=i,
            src_dc="DC1" if i % 2 == 0 else "DC8",
            dst_dc="DC8" if i % 2 == 0 else "DC1",
            src_host=i % hosts,
            dst_host=(i * 7 + 1) % hosts,
            size_bytes=CONTROL_PLANE_FLOW_BYTES,
            arrival_s=0.001 * (i % 5) + 1e-4,
        )
        for i in range(num_flows)
    ]
    return topology, demands


def run_control_plane(batched: bool, num_flows: int = CONTROL_PLANE_FLOWS):
    """One monitored LCMP run; returns (wall seconds, result)."""
    topology, demands = build_burst_demands(num_flows)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(
        seed=5, batched_control=batched, max_sim_time_s=5.0, drain_timeout_s=5.0
    )
    network = RuntimeNetwork(
        topology, paths, lcmp_router_factory(topology, paths), config
    )
    sim = FluidSimulation(
        network, demands, make_cc_factory("dcqcn"), config, trace_links=True
    )
    start = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - start, result


def test_control_plane_batching_speedup():
    """Acceptance (this PR): the array-resident control plane is >= 1.5x
    the PR-3 per-flow configuration on a monitored >= 2000-flow run, with
    bit-identical results.

    Same re-measurement policy as the core gates above (one retry covers
    unlucky scheduling windows on shared CI runners).
    """
    batched_s, batched_result = run_control_plane(batched=True)
    legacy_s, legacy_result = run_control_plane(batched=False)
    assert batched_result.unfinished_flows == 0
    assert legacy_result.unfinished_flows == 0
    # the perf gate is only meaningful because the answer is unchanged
    assert batched_result.slowdowns() == legacy_result.slowdowns()
    if legacy_s / batched_s < MIN_CONTROL_PLANE_SPEEDUP:
        batched_s, _ = run_control_plane(batched=True)
        legacy_s, _ = run_control_plane(batched=False)
    speedup = legacy_s / batched_s
    _write_results(
        "control_plane_throughput.txt",
        "array-resident control plane vs PR-3 per-flow control plane "
        f"({CONTROL_PLANE_FLOWS} flows, LCMP, monitor+trace on, testbed8)\n"
        f"PR-3 control plane    : {legacy_s:8.3f} s\n"
        f"batched control plane : {batched_s:8.3f} s\n"
        f"speedup               : {speedup:8.2f}x (required >= "
        f"{MIN_CONTROL_PLANE_SPEEDUP:g}x)\n",
    )
    assert speedup >= MIN_CONTROL_PLANE_SPEEDUP, (
        f"batched control plane is only {speedup:.2f}x faster "
        f"({batched_s:.3f}s vs {legacy_s:.3f}s)"
    )


@pytest.mark.benchmark(group="control-plane")
@pytest.mark.parametrize("mode", ["pr3", "batched"])
def test_bench_control_plane(benchmark, mode):
    """Recorded control-plane lanes for the perf trajectory."""
    benchmark.pedantic(
        lambda: run_control_plane(
            batched=(mode == "batched"), num_flows=_scaled(CONTROL_PLANE_FLOWS)
        )[0],
        rounds=2,
        iterations=1,
    )


# --------------------------------------------------------------------- #
# observability plane (phase timers + counters)
# --------------------------------------------------------------------- #
#: maximum tolerated instrumentation wall-clock ratio on the 2000-flow
#: HPCC lane (instrumented / uninstrumented)
MAX_INSTRUMENTATION_OVERHEAD = 1.03


def _min_fleet_times(rounds: int = 3):
    """Best-of-``rounds`` wall time of the HPCC lane, off and on.

    Interleaved (off, on, off, on, ...) so a drifting machine load hits
    both configurations equally, and min-reduced so one unlucky scheduling
    window cannot dominate either side.
    """
    base = []
    instrumented = []
    for _ in range(rounds):
        base.append(run_cc_fleet(cc_blocks=True)[0])
        instrumented.append(run_cc_fleet(cc_blocks=True, instrumentation=True)[0])
    return min(base), min(instrumented)


def test_instrumentation_overhead():
    """Acceptance (this PR): instrumentation costs <= 3 % on the 2000-flow
    HPCC lane, with bit-identical FCTs and a populated stats snapshot.

    Same re-measurement policy as the other gates (one retry covers
    unlucky scheduling windows on shared CI runners) — with the tighter
    3 % bound the timing rounds are additionally interleaved and
    min-reduced.
    """
    _, base_result = run_cc_fleet(cc_blocks=True)
    _, inst_result = run_cc_fleet(cc_blocks=True, instrumentation=True)
    # instrumentation must not change the answer, only describe the run
    assert inst_result.slowdowns() == base_result.slowdowns()
    assert base_result.stats is None
    assert inst_result.stats is not None
    assert inst_result.stats["phases"]["step.update"]["count"] > 0

    base_s, inst_s = _min_fleet_times()
    if inst_s / base_s > MAX_INSTRUMENTATION_OVERHEAD:
        base_s, inst_s = _min_fleet_times()
    ratio = inst_s / base_s
    _write_results(
        "instrumentation_overhead.txt",
        "observability-plane overhead "
        f"({CC_FLEET_FLOWS} concurrent flows, uniform HPCC, testbed8)\n"
        f"uninstrumented : {base_s:8.3f} s\n"
        f"instrumented   : {inst_s:8.3f} s\n"
        f"overhead       : {(ratio - 1.0):8.2%} (allowed <= "
        f"{MAX_INSTRUMENTATION_OVERHEAD - 1.0:.0%})\n",
    )
    assert ratio <= MAX_INSTRUMENTATION_OVERHEAD, (
        f"instrumentation costs {(ratio - 1.0):.2%} wall clock "
        f"({inst_s:.3f}s vs {base_s:.3f}s)"
    )


@pytest.mark.benchmark(group="phase-profile")
def test_bench_phase_profile(benchmark):
    """Recorded per-phase profile lane.

    Runs the HPCC lane instrumented and writes, next to the wall-clock
    trajectory at the repo root:

    * ``BENCH_phase_breakdown.json`` — the structured per-phase/counter
      breakdown (:func:`repro.analysis.phase_breakdown_json`, schema in
      benchmarks/README.md);
    * ``BENCH_step_trace.trace.json`` — a perfetto-loadable Chrome trace
      of the run's spans;
    * ``results/phase_profile.txt`` — the human-readable top-N report.
    """
    holder = {}

    def go():
        topology, demands = build_cc_fleet_demands(_scaled(CC_FLEET_FLOWS))
        paths = _testbed8_pathset(topology)
        config = SimulationConfig(
            seed=5,
            instrumentation=True,
            max_sim_time_s=CC_FLEET_WINDOW_S,
            drain_timeout_s=CC_FLEET_WINDOW_S,
        )
        network = RuntimeNetwork(
            topology, paths, make_router_factory("ecmp"), config
        )
        sim = FluidSimulation(network, demands, make_cc_factory("hpcc"), config)
        holder["sim"] = sim
        holder["result"] = sim.run()

    benchmark.pedantic(go, rounds=1, iterations=1)
    sim, result = holder["sim"], holder["result"]
    root = pathlib.Path(__file__).resolve().parent.parent
    breakdown = phase_breakdown_json(result.stats)
    assert breakdown["phases"], "instrumented run recorded no phases"
    (root / "BENCH_phase_breakdown.json").write_text(
        json.dumps(breakdown, indent=2)
    )
    write_chrome_trace(sim.obs, root / "BENCH_step_trace.trace.json")
    _write_results("phase_profile.txt", perf_report(result.stats))
