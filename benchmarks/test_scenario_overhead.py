"""Benchmark — scenario-engine overhead on the no-event path.

Attaching a scenario must cost essentially nothing when no event fires: the
injector schedules events up front, the per-step fast-failover sweep existed
before the scenario engine, and an empty timeline schedules nothing at all.
Two properties are asserted exactly (identical engine event counts and
bit-identical FCTs with and without an empty scenario) and the wall-clock
cost of both paths is measured for the record.
"""

import pytest

from repro.congestion_control import make_cc_factory
from repro.routing import make_router_factory
from repro.scenarios import Scenario
from repro.simulator import FluidSimulation, RuntimeNetwork, SimulationConfig
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset
from repro.workloads import TrafficConfig, TrafficGenerator

NUM_FLOWS = 300


def build_inputs():
    topology = build_testbed8(capacity_scale=0.1)
    paths = _testbed8_pathset(topology)
    config = SimulationConfig(seed=5)
    traffic = TrafficConfig(
        workload="websearch", load=0.3, num_flows=NUM_FLOWS,
        pairs=[("DC1", "DC8")], seed=5,
    )
    demands = TrafficGenerator(topology, paths, traffic).generate()
    return topology, paths, config, demands


def run_once(topology, paths, config, demands, scenario=None):
    network = RuntimeNetwork(topology, paths, make_router_factory("ecmp"), config)
    sim = FluidSimulation(
        network, demands, make_cc_factory("dcqcn"), config, scenario=scenario
    )
    return sim, sim.run()


def test_empty_scenario_adds_zero_events():
    """The no-event path must not add a single engine event nor perturb FCTs."""
    topology, paths, config, demands = build_inputs()
    plain_sim, plain = run_once(topology, paths, config, demands)
    scen_sim, scen = run_once(
        topology, paths, config, demands, scenario=Scenario(name="noop")
    )
    assert plain_sim.engine.processed_events == scen_sim.engine.processed_events
    assert len(plain.records) == len(scen.records) == NUM_FLOWS
    assert [r.fct_s for r in plain.records] == [r.fct_s for r in scen.records]
    assert scen.scenario_metrics is not None and scen.scenario_metrics.outcomes == []


@pytest.mark.benchmark(group="scenario-overhead")
def test_bench_run_without_scenario(benchmark):
    topology, paths, config, demands = build_inputs()
    result = benchmark.pedantic(
        lambda: run_once(topology, paths, config, demands)[1],
        rounds=3,
        iterations=1,
    )
    assert result.unfinished_flows == 0


@pytest.mark.benchmark(group="scenario-overhead")
def test_bench_run_with_empty_scenario(benchmark):
    topology, paths, config, demands = build_inputs()
    result = benchmark.pedantic(
        lambda: run_once(
            topology, paths, config, demands, scenario=Scenario(name="noop")
        )[1],
        rounds=3,
        iterations=1,
    )
    assert result.unfinished_flows == 0
    assert result.scenario_metrics is not None
