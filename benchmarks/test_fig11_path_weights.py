"""Benchmark E6c — paper Fig. 11c (path-quality weight sensitivity).

Sweeps (w_dl, w_lc) over {(3,1), (1,1), (1,3)} inside C_path.

Expected shape (paper): the delay-biased (3,1) setting gives the best medians
and tails; the capacity-biased (1,3) setting performs worst because it sends
latency-sensitive flows onto high-capacity but slow links.
"""

import pytest

from repro.experiments import figure11_path_weights


@pytest.mark.benchmark(group="fig11")
def test_fig11c_path_weights(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure11_path_weights,
        kwargs=dict(num_flows=int(1500 * flow_scale), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    m = result.metrics
    # capacity-biased weighting is the worst configuration on the median
    assert m["p50_dl:lc=1:3"] >= m["p50_dl:lc=3:1"]
    # delay-biased weighting has the best (or tied-best) tail
    assert m["p99_dl:lc=3:1"] <= m["p99_dl:lc=1:3"] * 1.05
