"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table/figure of the paper's evaluation with
the experiment drivers in :mod:`repro.experiments.figures`, asserts the
qualitative shape the paper reports (who wins, roughly by how much, where the
crossovers are) and writes the rendered rows/series to
``benchmarks/results/<figure>.txt`` so EXPERIMENTS.md can quote them.

The flow counts used here are sized so the full suite finishes in a few
minutes on a laptop while keeping the publication-shaped behaviour; pass
``--quick-bench`` to cut them further during development.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--quick-bench",
        action="store_true",
        default=False,
        help="run the figure benchmarks with reduced flow counts",
    )


@pytest.fixture(scope="session")
def flow_scale(request) -> float:
    """Multiplier applied to every benchmark's flow count."""
    return 0.25 if request.config.getoption("--quick-bench") else 1.0


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One ExperimentRunner shared by the whole benchmark session (topology
    construction is cached inside it)."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Callable that persists a FigureResult's rendering next to the bench."""

    def _save(figure_result):
        path = results_dir / f"{figure_result.figure}.txt"
        path.write_text(figure_result.render() + "\n")
        return path

    return _save
