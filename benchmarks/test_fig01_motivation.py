"""Benchmark E0 — paper Fig. 1b/1c (motivation).

Regenerates the per-link utilisation table and the FCT-slowdown comparison
for WebSearch at 30 % load on the 8-DC topology (ECMP vs UCMP vs LCMP).

Expected shape (paper): ECMP spreads traffic obliviously (some lands on the
250 ms relay), UCMP concentrates on the high-capacity/high-delay relays and
leaves the low-capacity ones at 0 %, and LCMP achieves the lowest median and
tail FCT slowdown.
"""

import pytest

from repro.experiments import figure1


@pytest.mark.benchmark(group="fig1")
def test_fig1_motivation(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure1,
        kwargs=dict(num_flows=int(1200 * flow_scale), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    metrics = result.metrics
    # LCMP wins on both percentiles (Fig. 1c)
    assert metrics["p50_lcmp"] < metrics["p50_ecmp"]
    assert metrics["p50_lcmp"] < metrics["p50_ucmp"]
    assert metrics["p99_lcmp"] < metrics["p99_ecmp"]
    assert metrics["p99_lcmp"] < metrics["p99_ucmp"]
    # UCMP's capacity-only bias is the most imbalanced placement (Fig. 1b)
    assert metrics["imbalance_ucmp"] > metrics["imbalance_ecmp"]
