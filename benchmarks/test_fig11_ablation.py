"""Benchmark E6a — paper Fig. 11a (ablation).

Full LCMP vs rm-alpha (path-quality term removed) vs rm-beta (congestion term
removed), WebSearch at 30 % load on the 8-DC topology.

Expected shape (paper): removing the path-quality term sharply degrades both
median and tail (flows land on high-delay routes); removing the congestion
term hurts mainly the large-flow tail; full LCMP is the best or ties the best
on both percentiles.
"""

import pytest

from repro.experiments import figure11_ablation


@pytest.mark.benchmark(group="fig11")
def test_fig11a_ablation(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure11_ablation,
        kwargs=dict(num_flows=int(1500 * flow_scale), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    m = result.metrics
    # removing the path-quality term is catastrophic for the median
    assert m["p50_rm-alpha"] > m["p50_full"] * 1.5
    # and clearly worse in the tail too
    assert m["p99_rm-alpha"] > m["p99_full"]
    # the full configuration is never beaten on the median
    assert m["p50_full"] <= m["p50_rm-beta"] * 1.05
