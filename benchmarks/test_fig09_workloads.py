"""Benchmark E4 — paper Fig. 9 (workload sensitivity).

WebSearch, AliStorage and Facebook-Hadoop flow-size distributions at 30 %
load on the 8-DC topology, LCMP vs ECMP vs UCMP.

Expected shape (paper): LCMP's median and tail improvements persist across
all three workloads (median reductions of roughly 26-36 % vs ECMP and 76-80 %
vs UCMP in the paper).
"""

import pytest

from repro.experiments import figure9


@pytest.mark.benchmark(group="fig9")
def test_fig9_workload_sensitivity(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure9,
        kwargs=dict(num_flows=int(1500 * flow_scale), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    for workload in ("websearch", "alistorage", "fbhadoop"):
        series = result.groups[workload]
        lcmp = series["lcmp"]
        assert lcmp.overall_p50 < series["ecmp"].overall_p50, workload
        assert lcmp.overall_p50 < series["ucmp"].overall_p50, workload
        assert lcmp.overall_p99 <= series["ecmp"].overall_p99 * 1.05, workload
