"""Topology-at-scale memory and build-time lanes (DESIGN.md, "Topologies at scale").

The lazy int-indexed path set has to pay for itself on a continent-scale
generated fabric (:data:`~repro.topology.generators.CONTINENT_400`:
400 DCs, ~1.2k directed inter-DC links, ~160k ordered pairs):

* **build-time gate** — constructing the lazy :class:`PathSet` must be
  at least **5×** faster than the eager all-pairs enumeration (measured
  headroom is orders of magnitude; the gate re-measures once before
  failing to absorb shared-runner noise), with the lazy set answering a
  sampled pair set bit-identically to the eager one;
* **memory gate** — a lazy set serving a bounded working-set of pairs
  (LRU-capped) must stay under **25 %** of the eager set's structure
  bytes, with the tracemalloc peak of the whole lazy construction
  recorded alongside the structure-size accounting
  (``PathSet.memory_bytes()``, surfaced as the ``topology.pathset_bytes``
  obs gauge on instrumented runs);
* **routable-simulation smoke** — a generated fabric must run a real
  flow workload end to end through the experiment stack, completing
  flows and exposing the path-set gauges in ``result.stats``.

Everything is ``REPRO_BENCH_SCALE``-aware (the quick-bench CI smoke sets
0.25, shrinking the fabric); the recorded ``@pytest.mark.benchmark``
lanes feed the nightly trajectory, and the run writes
``BENCH_topology_memory.json`` at the repo root (schema in
benchmarks/README.md) plus ``results/topology_memory.txt``.
"""

import gc
import json
import os
import pathlib
import time
import tracemalloc

import pytest

from repro.experiments import ExperimentRunner, ExperimentSpec
from repro.topology import CONTINENT_400, FabricSpec, build_fabric, fabric_pathset

#: required lazy-vs-eager PathSet construction speedup
MIN_LAZY_SPEEDUP = 5.0
#: resident-structure cap for the working-set lane, as a fraction of the
#: eager set's structure bytes
MAX_LAZY_RESIDENT_FRACTION = 0.25
#: LRU cap used by the working-set lane
WORKING_SET_CACHE_PAIRS = 256
#: sampled pairs checked bit-identical between the lazy and eager sets
PARITY_SAMPLE_PAIRS = 40

_BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled_spec() -> FabricSpec:
    """The benchmark fabric, shrunk under ``REPRO_BENCH_SCALE`` < 1."""
    if _BENCH_SCALE >= 1.0:
        return CONTINENT_400
    return FabricSpec(
        name="continent-scaled",
        regions=max(2, round(CONTINENT_400.regions * _BENCH_SCALE)),
        edges_per_agg=max(1, round(CONTINENT_400.edges_per_agg * _BENCH_SCALE)),
    )


def _sample_pairs(pathset, count):
    pairs = pathset.all_pairs()
    stride = max(1, len(pairs) // count)
    return pairs[::stride][:count]


def measure_build(spec: FabricSpec):
    """Time topology + lazy + eager path-set construction on one fabric.

    The eager set (hundreds of thousands of live view objects on the
    full fabric) is measured, sampled for the parity lane, and dropped —
    keeping it alive would tax every later GC pass and pollute the
    recorded lanes' timings.
    """
    t0 = time.perf_counter()
    topology = build_fabric(spec)
    topo_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    lazy = fabric_pathset(topology)
    lazy_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    eager = fabric_pathset(topology, lazy=False)
    eager_s = time.perf_counter() - t0

    eager_sample = {
        pair: (
            eager.candidate_ids(*pair),
            [
                (c.dcs, c.delay_s, c.bottleneck_bps)
                for c in eager.candidates(*pair)
            ],
        )
        for pair in _sample_pairs(eager, PARITY_SAMPLE_PAIRS)
    }
    out = {
        "topology": topology,
        "lazy": lazy,
        "topology_build_s": topo_s,
        "lazy_build_s": lazy_s,
        "eager_build_s": eager_s,
        "num_dcs": len(topology.dcs),
        "num_links": len(topology.inter_dc_links()),
        "num_pairs": len(lazy),
        "eager_paths": eager.num_paths,
        "eager_bytes": eager.memory_bytes(),
        "eager_sample": eager_sample,
    }
    del eager
    gc.collect()
    return out


@pytest.fixture(scope="module")
def measured():
    return measure_build(scaled_spec())


@pytest.fixture(scope="module")
def report(measured):
    """Collects lane results; written to disk after the module finishes."""
    data = {
        "schema": "topology_memory/v1",
        "bench_scale": _BENCH_SCALE,
        "fabric": {
            "name": scaled_spec().name,
            "num_dcs": measured["num_dcs"],
            "num_links": measured["num_links"],
            "num_pairs": measured["num_pairs"],
        },
        "build": {
            "topology_s": measured["topology_build_s"],
            "lazy_pathset_s": measured["lazy_build_s"],
            "eager_pathset_s": measured["eager_build_s"],
            "speedup": measured["eager_build_s"] / max(measured["lazy_build_s"], 1e-9),
            "min_required_speedup": MIN_LAZY_SPEEDUP,
        },
        "memory": {
            "eager_structure_bytes": measured["eager_bytes"],
            "eager_paths": measured["eager_paths"],
        },
    }
    yield data
    root = pathlib.Path(__file__).resolve().parent.parent
    (root / "BENCH_topology_memory.json").write_text(json.dumps(data, indent=2))
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(parents=True, exist_ok=True)
    build, mem = data["build"], data["memory"]
    lines = [
        f"topology memory lanes (fabric {data['fabric']['name']}, "
        f"{data['fabric']['num_dcs']} DCs, {data['fabric']['num_links']} links, "
        f"scale {_BENCH_SCALE:g})",
        f"topology build    : {build['topology_s'] * 1e3:10.1f} ms",
        f"lazy pathset      : {build['lazy_pathset_s'] * 1e3:10.1f} ms",
        f"eager pathset     : {build['eager_pathset_s'] * 1e3:10.1f} ms "
        f"({mem['eager_paths']} paths)",
        f"build speedup     : {build['speedup']:10.1f}x (required >= "
        f"{MIN_LAZY_SPEEDUP:g}x)",
        f"eager bytes       : {mem['eager_structure_bytes'] / 1e6:10.2f} MB",
    ]
    if "lazy_working_set_bytes" in mem:
        lines += [
            f"lazy working set  : {mem['lazy_working_set_bytes'] / 1e6:10.2f} MB "
            f"({mem['working_set_pairs']} pairs, LRU cap "
            f"{WORKING_SET_CACHE_PAIRS})",
            f"lazy tracemalloc  : {mem['lazy_tracemalloc_peak_bytes'] / 1e6:10.2f} "
            "MB peak",
            f"resident fraction : {mem['lazy_resident_fraction']:10.2%} (allowed <= "
            f"{MAX_LAZY_RESIDENT_FRACTION:.0%})",
        ]
    (results / "topology_memory.txt").write_text("\n".join(lines) + "\n")


def test_lazy_build_speedup_gate(measured, report):
    """Acceptance: lazy PathSet construction >= 5x faster than eager.

    Wall-clock ratios on shared runners can catch an unlucky scheduling
    window, so a failing first measurement gets one full re-measurement
    before the assertion fires.
    """
    lazy_s, eager_s = measured["lazy_build_s"], measured["eager_build_s"]
    if eager_s / max(lazy_s, 1e-9) < MIN_LAZY_SPEEDUP:
        remeasured = measure_build(scaled_spec())
        lazy_s = remeasured["lazy_build_s"]
        eager_s = remeasured["eager_build_s"]
        report["build"]["lazy_pathset_s"] = lazy_s
        report["build"]["eager_pathset_s"] = eager_s
        report["build"]["speedup"] = eager_s / max(lazy_s, 1e-9)
    speedup = eager_s / max(lazy_s, 1e-9)
    assert speedup >= MIN_LAZY_SPEEDUP, (
        f"lazy pathset construction is only {speedup:.1f}x faster than eager "
        f"({lazy_s * 1e3:.2f} ms vs {eager_s * 1e3:.1f} ms)"
    )


def test_lazy_answers_match_eager(measured):
    """The lazy set serves sampled pairs bit-identically to the eager one."""
    lazy = measured["lazy"]
    for (src, dst), (ids, paths) in measured["eager_sample"].items():
        assert lazy.candidate_ids(src, dst) == ids
        got = [
            (c.dcs, c.delay_s, c.bottleneck_bps)
            for c in lazy.candidates(src, dst)
        ]
        assert got == paths


def test_lazy_working_set_memory_gate(measured, report):
    """Acceptance: a bounded lazy working set stays a small fraction of eager.

    Builds a fresh lazy set with an LRU cap, serves a spread of pairs
    (~2 % of all ordered pairs), and gates the resident structure bytes
    against the eager set's; the tracemalloc peak of the whole procedure
    is recorded for the nightly trajectory.
    """
    topology = measured["topology"]
    eager_bytes = measured["eager_bytes"]
    working_pairs = _sample_pairs(measured["lazy"], max(16, measured["num_pairs"] // 50))

    tracemalloc.start()
    lazy = fabric_pathset(topology, cache_pairs=WORKING_SET_CACHE_PAIRS)
    lazy.prewarm(working_pairs)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    resident = lazy.memory_bytes()
    fraction = resident / eager_bytes
    report["memory"].update(
        working_set_pairs=len(working_pairs),
        lazy_working_set_bytes=resident,
        lazy_tracemalloc_peak_bytes=peak,
        lazy_resident_fraction=fraction,
        max_allowed_fraction=MAX_LAZY_RESIDENT_FRACTION,
    )
    assert fraction <= MAX_LAZY_RESIDENT_FRACTION, (
        f"lazy working set holds {resident / 1e6:.1f} MB = {fraction:.1%} of the "
        f"eager set's {eager_bytes / 1e6:.1f} MB (allowed <= "
        f"{MAX_LAZY_RESIDENT_FRACTION:.0%})"
    )
    assert lazy.cache_evictions > 0 or len(working_pairs) <= WORKING_SET_CACHE_PAIRS


def test_generated_fabric_routable_simulation(measured, report):
    """A generated fabric runs a real workload end to end (instrumented).

    The run uses the experiment stack exactly as a user would — a
    ``topology="fabric"`` spec — and must complete flows and surface the
    path-set gauges in ``result.stats``.
    """
    spec_fabric = scaled_spec()
    topology = measured["topology"]
    # cross-region edge pairs exist for any generated spec
    edges = [dc for dc in topology.dcs if topology.dc_attrs(dc).tier == "edge"]
    pairs = ((edges[0], edges[-1]), (edges[-1], edges[0]))
    spec = ExperimentSpec(
        name="fabric-smoke",
        topology="fabric",
        fabric=spec_fabric,
        pairs=pairs,
        num_flows=max(50, int(200 * _BENCH_SCALE)),
        seed=9,
        instrumentation=True,
    )
    run = ExperimentRunner().run(spec)
    completed = len(run.result.records)
    assert completed > 0, "no flow completed on the generated fabric"
    gauges = run.result.stats["gauges"]
    assert gauges["topology.pathset_bytes"]["last"] > 0
    assert run.result.stats["counters"]["topology.pathset_searches"] >= 2
    report["simulation"] = {
        "num_flows": spec.num_flows,
        "completed": completed,
        "pathset_bytes": gauges["topology.pathset_bytes"]["last"],
        "pathset_paths": gauges["topology.pathset_paths"]["last"],
        "searches_run": run.result.stats["counters"]["topology.pathset_searches"],
    }


@pytest.mark.benchmark(group="topology-memory")
def test_bench_lazy_pathset_build(benchmark):
    """Recorded lane: lazy path-set construction on the scaled fabric.

    Each round gets a fresh topology so the measurement includes the
    shared index build instead of hitting the topology's index cache.
    """
    benchmark.pedantic(
        fabric_pathset,
        setup=lambda: ((build_fabric(scaled_spec()),), {}),
        rounds=3,
        iterations=1,
    )


@pytest.mark.benchmark(group="topology-memory")
def test_bench_fabric_topology_build(benchmark):
    """Recorded lane: generating the scaled fabric topology itself."""
    benchmark.pedantic(lambda: build_fabric(scaled_spec()), rounds=3, iterations=1)
