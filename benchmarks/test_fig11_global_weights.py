"""Benchmark E6b — paper Fig. 11b (global fusion-weight sensitivity).

Sweeps (alpha, beta) over {(3,1), (1,1), (1,3)}.

Expected shape (paper): all three settings give similar medians; the
delay-biased (3,1) setting yields the smallest tails, so it is the
recommended production default.
"""

import pytest

from repro.experiments import figure11_global_weights


@pytest.mark.benchmark(group="fig11")
def test_fig11b_global_weights(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure11_global_weights,
        kwargs=dict(num_flows=int(1500 * flow_scale), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    m = result.metrics
    # medians are in the same ballpark across settings (within ~2x)
    medians = [m["p50_alpha:beta=3:1"], m["p50_alpha:beta=1:1"], m["p50_alpha:beta=1:3"]]
    assert max(medians) <= min(medians) * 2.5
    # the recommended delay-biased default has the best (or tied-best) tail
    assert m["p99_alpha:beta=3:1"] <= min(
        m["p99_alpha:beta=1:1"], m["p99_alpha:beta=1:3"]
    ) * 1.05
