"""Benchmark §4 — resource-cost accounting and decision micro-benchmarks.

Reproduces the paper's §4 numbers (per-port/per-flow memory, total working
set, integer primitives per new-flow decision) and additionally measures the
wall-clock cost of one LCMP decision in this Python implementation — the
software analogue of the "trivial for modern ASIC pipelines" claim.
"""

import pytest

from repro.core import ControlPlane, LCMPConfig, LCMPRouter
from repro.core.resource_model import estimate, per_new_flow_ops
from repro.experiments import section4_resources
from repro.simulator import FlowDemand
from repro.topology import build_testbed8
from repro.topology import testbed8_pathset as _testbed8_pathset


@pytest.mark.benchmark(group="sec4")
def test_sec4_resource_accounting(benchmark, save_result):
    result = benchmark.pedantic(section4_resources, rounds=1, iterations=1)
    save_result(result)

    est = estimate(num_ports=48, flow_cache_entries=50_000, num_paths=10_000)
    # paper §4: 24 B/port, 20 B/flow, ~1 MB working set, ~105 ops per decision
    assert est.port_bytes == 1152
    assert est.flow_bytes == 1_000_000
    assert est.total_megabytes < 1.5
    assert 90 <= per_new_flow_ops(6) <= 120


@pytest.mark.benchmark(group="sec4")
def test_sec4_decision_latency(benchmark):
    """Micro-benchmark: one full LCMP new-flow decision (m = 6 candidates)."""
    topology = build_testbed8()
    paths = _testbed8_pathset(topology)
    router = LCMPRouter(LCMPConfig())
    ControlPlane(topology, paths).install(router, "DC1")
    candidates = paths.candidates("DC1", "DC8")
    counter = iter(range(100_000_000))

    def one_decision():
        flow_id = next(counter)
        demand = FlowDemand(flow_id, "DC1", "DC8", 0, 0, 1_000_000, 0.0)
        return router.select("DC8", candidates, demand, now=0.0)

    benchmark(one_decision)
    # sanity: decisions were real and diverse
    assert router.decisions > 0
