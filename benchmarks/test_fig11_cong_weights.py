"""Benchmark E6d — paper Fig. 11d (congestion-cost weight sensitivity).

Sweeps (w_ql, w_tl, w_dp) over {(2,1,1), (1,2,1), (1,1,2)} inside C_cong.

Expected shape (paper): the three allocations have similar medians for small
and mid-size flows; the queue-focused (2,1,1) default keeps both medians and
tails at least as low as the trend- or duration-heavy allocations.
"""

import pytest

from repro.experiments import figure11_congestion_weights


@pytest.mark.benchmark(group="fig11")
def test_fig11d_congestion_weights(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure11_congestion_weights,
        kwargs=dict(num_flows=int(1500 * flow_scale), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    m = result.metrics
    medians = [m["p50_ql:tl:dp=2:1:1"], m["p50_ql:tl:dp=1:2:1"], m["p50_ql:tl:dp=1:1:2"]]
    assert max(medians) <= min(medians) * 2.5
    # the queue-focused default is not beaten by a meaningful margin
    assert m["p99_ql:tl:dp=2:1:1"] <= min(
        m["p99_ql:tl:dp=1:2:1"], m["p99_ql:tl:dp=1:1:2"]
    ) * 1.15
