"""Benchmark E3 — paper Fig. 8 (DC1–DC13 case study).

Filters the 13-DC all-to-all runs down to the representative multi-path pair
(DC1, DC13).

Expected shape (paper): with several candidate routes of differing delay and
capacity, LCMP's benefits become clear — both the median and the tail improve
against ECMP/RedTE, and the median improves strongly against UCMP.

Reproduction note: the paper filters thousands of pair flows out of its
all-to-all runs; at Python-tractable scale the same filter yields only a few
dozen flows per run, so the per-pair percentiles are noisy and the clear
pair-level win does not reproduce reliably (see EXPERIMENTS.md).  The bench
therefore asserts only that the pair carries traffic and that LCMP does not
catastrophically regress for it, and records the measured series for
EXPERIMENTS.md.
"""

import pytest

from repro.experiments import figure8


@pytest.mark.benchmark(group="fig8")
def test_fig8_dc_pair_case_study(benchmark, runner, save_result, flow_scale):
    result = benchmark.pedantic(
        figure8,
        kwargs=dict(num_flows=int(2000 * flow_scale), loads=(0.3, 0.8), runner=runner),
        rounds=1,
        iterations=1,
    )
    save_result(result)

    for group, series in result.groups.items():
        lcmp = series["lcmp"]
        assert lcmp.total_flows > 0, "the case-study pair must carry traffic"
        # no catastrophic regression for the multi-path pair (the paper's
        # clear win is below the noise floor at this sample size)
        assert lcmp.overall_p50 <= series["ecmp"].overall_p50 * 1.6, group
        assert lcmp.overall_p99 <= series["ecmp"].overall_p99 * 1.6, group
