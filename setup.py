"""Setup shim: metadata lives in pyproject.toml; this file exists so that
editable installs work in fully offline environments (no build isolation)."""
from setuptools import setup

setup()
