"""Runtime network: topology + routers instantiated for simulation.

The :class:`RuntimeNetwork` owns every mutable piece of network state: one
:class:`~repro.simulator.link.RuntimeLink` per directed inter-DC link, one
:class:`~repro.simulator.switch.DCISwitch` (with its router instance) per
datacenter, and lazily created host NIC uplinks/downlinks.  It resolves the
path of a new flow by walking DCI switches hop by hop, asking each switch's
router for the next hop — the distributed decision process the paper
describes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..topology.graph import Topology, TopologyError
from ..topology.paths import PathSet, shortest_delay_path
from .config import SimulationConfig
from .flow import FlowDemand
from .link import RuntimeLink
from .switch import DCISwitch

__all__ = ["RuntimeNetwork", "RoutingLoopError"]

#: maximum DCI hops a resolved path may take before we declare a loop
_MAX_RESOLVE_HOPS = 32


class RoutingLoopError(RuntimeError):
    """Raised when hop-by-hop resolution fails to reach the destination."""


class RuntimeNetwork:
    """Mutable simulation-time view of a topology plus its routers."""

    def __init__(
        self,
        topology: Topology,
        pathset: PathSet,
        router_factory: Callable[[str], object],
        config: Optional[SimulationConfig] = None,
    ) -> None:
        """Instantiate runtime state.

        Args:
            topology: static topology.
            pathset: precomputed candidate paths (control-plane view).
            router_factory: callable mapping a DC name to a fresh router
                instance (each DCI switch gets its own router — the scheme is
                distributed, there is no shared state between switches unless
                a router implementation chooses to share it).
            config: simulation config (ECN profile for the links).
        """
        self.topology = topology
        self.pathset = pathset
        self.config = config or SimulationConfig()

        self._links: Dict[Tuple[str, str], RuntimeLink] = {}
        for spec in topology.inter_dc_links():
            self._links[spec.key] = RuntimeLink(
                spec,
                ecn_kmin_fraction=self.config.ecn_kmin_fraction,
                ecn_kmax_fraction=self.config.ecn_kmax_fraction,
                ecn_pmax=self.config.ecn_pmax,
            )

        # every router runs its batched selection kernels on the run's
        # configured array backend (see repro.backend)
        from ..backend import get_backend

        router_backend = get_backend(self.config.backend)
        self._switches: Dict[str, DCISwitch] = {}
        for dc in topology.dcs:
            router = router_factory(dc)
            if hasattr(router, "backend"):
                router.backend = router_backend
            switch = DCISwitch(dc, router)
            for neighbor in topology.neighbors(dc):
                if topology.nodes[neighbor].kind == "dci":
                    link = self._links.get((dc, neighbor))
                    if link is not None:
                        switch.add_port(neighbor, link)
            self._switches[dc] = switch

        self._host_links: Dict[Tuple[str, int, str], RuntimeLink] = {}
        #: cache of shortest-delay fallback remainders keyed by
        #: ``(current, dst)``.  ``resolve_path`` hits the fallback once per
        #: stranded flow per update step during an outage; recomputing
        #: Dijkstra each time made re-route sweeps O(flows x topology).
        #: Invalidated whenever :attr:`RuntimeLink.state_version` moves
        #: (fault injection / capacity events), mirroring the vectorized
        #: core's liveness-array cache.
        self._fallback_cache: Dict[Tuple[str, str], object] = {}
        self._fallback_seen_version = RuntimeLink.state_version

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def switches(self) -> Dict[str, DCISwitch]:
        """DCI switches keyed by DC name."""
        return dict(self._switches)

    @property
    def inter_dc_links(self) -> List[RuntimeLink]:
        """All runtime inter-DC links."""
        return list(self._links.values())

    def link(self, src: str, dst: str) -> RuntimeLink:
        """The runtime inter-DC link from ``src`` to ``dst``."""
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise TopologyError(f"no runtime link {src!r}->{dst!r}") from None

    def switch(self, dc: str) -> DCISwitch:
        """The DCI switch of datacenter ``dc``."""
        return self._switches[dc]

    def all_active_links(self) -> List[RuntimeLink]:
        """Every runtime link that may carry traffic (inter-DC + host NICs)."""
        return list(self._links.values()) + list(self._host_links.values())

    # ------------------------------------------------------------------ #
    # host NIC links (lazily created)
    # ------------------------------------------------------------------ #
    def host_link(self, dc: str, host_idx: int, direction: str) -> RuntimeLink:
        """The NIC uplink (``"up"``) or downlink (``"down"``) of a host.

        Host links model the access path between a server and its DCI
        switch: the NIC line rate bounds the flow and contention between
        co-located flows shows up as queueing at this link.
        """
        if direction not in ("up", "down"):
            raise ValueError("direction must be 'up' or 'down'")
        key = (dc, host_idx, direction)
        if key in self._host_links:
            return self._host_links[key]

        group = self.topology.host_groups.get(dc)
        if group is None:
            raise TopologyError(f"datacenter {dc!r} has no hosts")
        if not 0 <= host_idx < group.count:
            raise TopologyError(f"host index {host_idx} out of range for {dc!r}")

        host_name = f"{dc}/h{host_idx}"
        if direction == "up":
            src, dst = host_name, dc
        else:
            src, dst = dc, host_name
        from ..topology.graph import LinkSpec  # local import to avoid cycle at module load

        spec = LinkSpec(
            src=src,
            dst=dst,
            cap_bps=group.nic_bps,
            delay_s=group.access_delay_s,
            buffer_bytes=Topology.DEFAULT_INTRA_BUFFER,
            inter_dc=False,
        )
        link = RuntimeLink(
            spec,
            ecn_kmin_fraction=self.config.ecn_kmin_fraction,
            ecn_kmax_fraction=self.config.ecn_kmax_fraction,
            ecn_pmax=self.config.ecn_pmax,
        )
        self._host_links[key] = link
        return link

    # ------------------------------------------------------------------ #
    # path resolution (the distributed routing walk)
    # ------------------------------------------------------------------ #
    def resolve_path(self, demand: FlowDemand, now: float) -> List[RuntimeLink]:
        """Resolve the full path of a new flow.

        The walk starts at the source DC's DCI switch.  At every DCI switch
        the locally attached router picks one candidate route toward the
        destination (only the *first hop* of that candidate is committed —
        the next switch re-decides with its own local view), reproducing the
        paper's distributed per-switch decision model.  Visited DCs are
        excluded from candidate first hops to guarantee loop freedom; if that
        leaves no candidate the walk falls back to the shortest-delay path
        from the current DC.

        Returns:
            Ordered runtime links: source NIC uplink, inter-DC links,
            destination NIC downlink.
        """
        links: List[RuntimeLink] = [
            self.host_link(demand.src_dc, demand.src_host, "up")
        ]

        if demand.src_dc != demand.dst_dc:
            links.extend(self._resolve_inter_dc(demand, now))

        links.append(self.host_link(demand.dst_dc, demand.dst_host, "down"))
        return links

    def _resolve_inter_dc(self, demand: FlowDemand, now: float) -> List[RuntimeLink]:
        current = demand.src_dc
        dst = demand.dst_dc
        visited = {current}
        hops: List[RuntimeLink] = []

        for _ in range(_MAX_RESOLVE_HOPS):
            if current == dst:
                return hops
            candidates = [
                c
                for c in self.pathset.candidates(current, dst)
                if c.first_hop not in visited
            ]
            if candidates:
                switch = self._switches[current]
                chosen = switch.route_flow(dst, candidates, demand, now)
                next_dc = chosen.first_hop
            else:
                # no loop-free candidate left: commit to the shortest-delay
                # remainder computed over the static topology
                remainder = self._fallback_remainder(current, dst)
                if remainder is None:
                    raise RoutingLoopError(
                        f"flow {demand.flow_id}: no route from {current} to {dst}"
                    )
                for spec in remainder.links:
                    hops.append(self._links[spec.key])
                return hops
            hops.append(self._links[(current, next_dc)])
            visited.add(next_dc)
            current = next_dc

        raise RoutingLoopError(
            f"flow {demand.flow_id}: exceeded {_MAX_RESOLVE_HOPS} DCI hops "
            f"resolving {demand.src_dc}->{demand.dst_dc}"
        )

    def resolve_paths_batch(
        self, demands: Sequence[FlowDemand], times: np.ndarray
    ) -> List[List[RuntimeLink]]:
        """Resolve the paths of a batch of simultaneous arrivals.

        Semantically identical to calling :meth:`resolve_path` once per
        demand at its own arrival instant (``times[i]``), but the hop-by-hop
        walk runs *per group*: demands sharing (source, destination) are
        routed together — one liveness filter, one
        :meth:`~repro.routing.base.Router.select_batch` call and one
        columnar decision append per switch hop — then split by chosen next
        hop and recursed.  The per-switch decision work becomes O(distinct
        groups × hops) instead of O(flows × hops).

        Args:
            demands: the arriving flows, in arrival order.
            times: per-demand decision timestamps (each flow is routed with
                its own arrival time even when the batch drains early).

        Returns:
            One ordered runtime-link path per demand (source NIC uplink,
            inter-DC links, destination NIC downlink), aligned with
            ``demands``.
        """
        n = len(demands)
        inter: List[List[RuntimeLink]] = [[] for _ in range(n)]
        groups: Dict[Tuple[str, str], List[int]] = {}
        for i, demand in enumerate(demands):
            if demand.src_dc != demand.dst_dc:
                groups.setdefault((demand.src_dc, demand.dst_dc), []).append(i)
        for (src, dst), members in groups.items():
            self._resolve_group_batch(
                src, dst, members, demands, times, inter, {src}, 0
            )

        paths: List[List[RuntimeLink]] = []
        for i, demand in enumerate(demands):
            links = [self.host_link(demand.src_dc, demand.src_host, "up")]
            links.extend(inter[i])
            links.append(self.host_link(demand.dst_dc, demand.dst_host, "down"))
            paths.append(links)
        return paths

    def _resolve_group_batch(
        self,
        current: str,
        dst: str,
        members: List[int],
        demands: Sequence[FlowDemand],
        times: np.ndarray,
        inter: List[List[RuntimeLink]],
        visited: set,
        depth: int,
    ) -> None:
        """One hop of the grouped walk (recurses per chosen next hop)."""
        if current == dst:
            return
        if depth >= _MAX_RESOLVE_HOPS:
            raise RoutingLoopError(
                f"flow {demands[members[0]].flow_id}: exceeded {_MAX_RESOLVE_HOPS} "
                f"DCI hops resolving toward {dst}"
            )
        all_candidates = self.pathset.candidates(current, dst)
        all_ids = self.pathset.candidate_ids(current, dst)
        candidates = []
        candidate_ids = []
        for c, pid in zip(all_candidates, all_ids):
            if c.first_hop not in visited:
                candidates.append(c)
                candidate_ids.append(pid)
        if not candidates:
            # no loop-free candidate left: commit every member to the
            # shortest-delay remainder computed over the static topology
            remainder = self._fallback_remainder(current, dst)
            if remainder is None:
                raise RoutingLoopError(
                    f"flow {demands[members[0]].flow_id}: no route from {current} to {dst}"
                )
            links = [self._links[spec.key] for spec in remainder.links]
            for i in members:
                inter[i].extend(links)
            return

        switch = self._switches[current]
        sub_demands = [demands[i] for i in members]
        sub_times = times[members] if isinstance(times, np.ndarray) else np.asarray(
            [times[i] for i in members]
        )
        chosen_idx, usable = switch.route_flows_batch(
            dst, candidates, sub_demands, sub_times, path_ids=candidate_ids
        )
        by_hop: Dict[str, List[int]] = {}
        chosen_l = chosen_idx.tolist()
        for k, i in enumerate(members):
            chosen = usable[chosen_l[k]]
            next_dc = chosen.first_hop
            inter[i].append(self._links[(current, next_dc)])
            by_hop.setdefault(next_dc, []).append(i)
        for next_dc, sub_members in by_hop.items():
            self._resolve_group_batch(
                next_dc,
                dst,
                sub_members,
                demands,
                times,
                inter,
                visited | {next_dc},
                depth + 1,
            )

    def _fallback_remainder(self, current: str, dst: str):
        """Cached shortest-delay remainder for the candidate-less fallback."""
        if self._fallback_seen_version != RuntimeLink.state_version:
            self._fallback_cache.clear()
            self._fallback_seen_version = RuntimeLink.state_version
        key = (current, dst)
        try:
            return self._fallback_cache[key]
        except KeyError:
            remainder = shortest_delay_path(self.topology, current, dst)
            self._fallback_cache[key] = remainder
            return remainder

    # ------------------------------------------------------------------ #
    # telemetry helpers
    # ------------------------------------------------------------------ #
    def sample_all_ports(self, now: float) -> None:
        """Run the queue monitor on every DCI switch."""
        for switch in self._switches.values():
            switch.sample_ports(now)

    def tick_all(self, now: float) -> None:
        """Run the periodic tick (GC, control loops) on every switch."""
        for switch in self._switches.values():
            switch.tick(now)

    def fail_link(self, src: str, dst: str) -> None:
        """Fail the directed inter-DC link ``src -> dst`` (fault injection)."""
        self.link(src, dst).fail()

    def recover_link(self, src: str, dst: str) -> None:
        """Recover a previously failed link."""
        self.link(src, dst).recover()
