"""Simulation configuration.

A single dataclass gathers every tunable of the fluid network simulation so
experiment configs (:mod:`repro.experiments.configs`) and tests can express
their setup declaratively and reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SimulationConfig"]


@dataclass
class SimulationConfig:
    """Tunables of the fluid flow-level simulation.

    Attributes:
        update_interval_s: length of a fluid rate/queue update step.  Queue
            integration, congestion-signal generation and CC rate updates all
            happen on this cadence.  Smaller values increase fidelity and
            cost; 0.5–1 ms is adequate for inter-DC RTTs of 10–500 ms.
        monitor_interval_s: cadence of the DCI-switch queue monitor that
            feeds the LCMP congestion estimator (and RedTE's telemetry).
        gc_interval_s: cadence of the flow-cache garbage-collection tick.
        flow_idle_timeout_s: idle timeout after which a flow-cache entry is
            evicted.
        ecn_kmin_fraction / ecn_kmax_fraction / ecn_pmax: RED/ECN marking
            profile of egress queues, expressed as fractions of the port
            buffer (DCQCN-style marking).
        max_sim_time_s: hard stop for the simulation clock.
        drain_timeout_s: extra simulated time allowed after the last flow
            arrival for in-flight flows to finish.
        fidelity_noise: multiplicative log-normal noise applied to recorded
            FCTs — zero for the "simulator" profile, a small value for the
            "testbed" profile used by the Fig. 6 fidelity study (SoftRoCE +
            Mininet emulation is noisier than NS-3).
        seed: base RNG seed; every stochastic component derives its stream
            from this value, making runs reproducible.
        vectorized: run the numpy flow×link update core (default) instead
            of the pure-Python scalar loop.  Both paths produce bit-for-bit
            identical results (see DESIGN.md, "Vectorized core"); the
            scalar path is kept as the executable specification and for the
            equivalence tests.
        soa: with ``vectorized``, keep per-flow and congestion-control
            state resident in the structure-of-arrays
            :class:`~repro.simulator.flow_table.FlowTable` (default) so an
            update step crosses the Python↔numpy boundary O(1) times
            instead of O(flows).  ``soa=False`` selects the object-resident
            vectorized core (the PR-2 layout: per-step ``np.fromiter``
            gathers and ``.tolist()`` writebacks), kept as the baseline the
            high-concurrency step-throughput benchmark measures against.
            All three cores are bit-for-bit identical (see DESIGN.md,
            "Flow table (SoA)").
        batched_control: with ``vectorized``, run the array-resident
            control plane (default): monitor sweeps write
            :class:`~repro.simulator.telemetry.TelemetryPlane` columns
            instead of per-port sample objects, and flow arrivals drain in
            batches routed through one
            :meth:`~repro.routing.base.Router.select_batch` call per
            switch hop instead of one heap event + Python ``select`` chain
            per flow.  ``batched_control=False`` selects the PR-3 control
            plane (per-event arrivals, per-object sampling), kept as the
            baseline the monitored control-plane benchmark measures
            against.  The scalar core always uses the per-event control
            plane (it is the executable specification); results are
            bit-for-bit identical either way (see DESIGN.md, "Control
            plane (arrays)").
        cc_blocks: with ``soa``, dispatch congestion control through each
            class's in-place column-block kernels
            (:meth:`~repro.congestion_control.base.CongestionControl
            .advance_batch_slots` / ``feedback_batch_slots``, the default),
            grouped per class so mixed-CC fleets stay on the fast path.
            ``cc_blocks=False`` retains the object-gather dispatch (gather
            the controller objects off the table and run the object-level
            batch methods), kept as the baseline the uniform-fleet CC
            benchmark measures against.  Results are bit-for-bit identical
            either way (see DESIGN.md, "Congestion control (arrays)").
        backend: array-backend selection for the vectorized cores' hot
            kernels (see :mod:`repro.backend` and DESIGN.md, "Array
            backends & kernels").  ``"numpy"`` (default) is the reference
            backend — the exact pre-backend idioms, bit-for-bit the PR-5
            SoA core.  ``"numpy_fused"`` swaps in the fused kernels
            (``bincount`` scatter-add, uniform-path-length reshape
            reductions), still bit-identical (guarded by
            ``tests/backend/`` and the scenario-fuzz harness) and ≥1.3×
            step throughput at 20k concurrent flows.  ``"torch"`` (only
            when torch is installed) runs the kernels on torch tensors —
            equivalent within the documented float tolerance, not
            bit-identical (``scatter_add`` duplicate order is
            unspecified).  The scalar core (``vectorized=False``) is the
            executable specification and always runs plain numpy.
        instrumentation: enable the runtime observability plane
            (:mod:`repro.obs`): phase timers around every step sub-phase,
            slow-path counters, and an engine/routing/cache metrics harvest
            attached to ``SimulationResult.stats`` (see DESIGN.md,
            "Observability plane").  Off by default; when off, every
            instrumentation site is a shared no-op object and ``stats`` is
            ``None``.  Instrumentation never touches simulation numerics or
            RNG streams, so results are bit-for-bit identical either way.
    """

    update_interval_s: float = 1e-3
    monitor_interval_s: float = 1e-3
    gc_interval_s: float = 0.25
    flow_idle_timeout_s: float = 1.0
    ecn_kmin_fraction: float = 0.05
    ecn_kmax_fraction: float = 0.5
    ecn_pmax: float = 0.2
    max_sim_time_s: float = 120.0
    drain_timeout_s: float = 60.0
    fidelity_noise: float = 0.0
    seed: int = 1
    vectorized: bool = True
    soa: bool = True
    batched_control: bool = True
    cc_blocks: bool = True
    backend: str = "numpy"
    instrumentation: bool = False

    def with_overrides(self, **kwargs) -> "SimulationConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def validate(self) -> None:
        """Check that the configuration is internally consistent.

        Raises:
            ValueError: on non-positive intervals or inverted ECN thresholds.
        """
        if self.update_interval_s <= 0:
            raise ValueError("update_interval_s must be positive")
        if self.monitor_interval_s <= 0:
            raise ValueError("monitor_interval_s must be positive")
        if self.gc_interval_s <= 0:
            raise ValueError("gc_interval_s must be positive")
        if not 0 <= self.ecn_kmin_fraction <= self.ecn_kmax_fraction <= 1:
            raise ValueError("require 0 <= ecn_kmin_fraction <= ecn_kmax_fraction <= 1")
        if not 0 <= self.ecn_pmax <= 1:
            raise ValueError("ecn_pmax must be in [0, 1]")
        if self.max_sim_time_s <= 0:
            raise ValueError("max_sim_time_s must be positive")
        if self.fidelity_noise < 0:
            raise ValueError("fidelity_noise must be non-negative")
        # local import: repro.backend is dependency-free, but keeping the
        # config module import-light preserves its standalone usability
        # (importing the package registers every backend factory)
        import repro.backend as _backend  # noqa: F401
        from ..backend.core import _FACTORIES

        if self.backend not in _FACTORIES:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(registered: {', '.join(sorted(_FACTORIES))})"
            )
        if self.backend != "numpy" and not self.vectorized:
            raise ValueError(
                "the scalar core is the executable specification and only "
                "runs the numpy reference backend"
            )
