"""Flow×link incidence arrays — the vectorized core's data layout.

The scalar update step walks Python dicts over every flow×link pair at every
1 ms tick.  :class:`FlowLinkIncidence` replaces those walks with a CSR-style
index structure over numpy arrays:

* a **link registry**: every :class:`~repro.simulator.link.RuntimeLink` that
  has ever appeared on an active flow's path gets a stable integer slot;
  static per-link attributes (buffer size, ECN thresholds) live in parallel
  arrays indexed by slot;
* a **per-flow index array**: each flow caches the registry slots of its
  path links, computed once at arrival (or re-route) time and keyed by the
  flow's :class:`~repro.simulator.flow_table.FlowTable` row slot;
* a **concatenated view**: the per-flow arrays concatenated in active-flow
  order (``idx``), plus segment ``starts``/``lengths`` — exactly the layout
  ``np.add.at`` / ``np.minimum.reduceat`` / ``np.multiply.reduceat`` want.

The concatenated view is rebuilt **only when flow membership or a path
changes** (arrival, completion, failure, re-route) — event-driven and rare
relative to update ticks.  Link capacity / liveness arrays are cached and
re-gathered only when :attr:`RuntimeLink.state_version` says some link
mutated (scenario fault injection, capacity events) or the registry grew.

Mutable per-link state (queue, carried/dropped bytes, peak queue, offered
load) is held *in the arrays* while a vectorized run is in flight; the
owning :class:`~repro.simulator.fluid.FluidSimulation` syncs inter-DC slots
back to their ``RuntimeLink`` objects every step (the queue monitor and the
scenario injector read them) and syncs everything back via :meth:`sync_all`
before results are built.  See DESIGN.md ("Vectorized core") for the layout
contract and the scalar-vs-vector equivalence guarantee.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..backend import get_backend
from .link import RuntimeLink

__all__ = ["FlowLinkIncidence"]


class FlowLinkIncidence:
    """CSR-style flow×link incidence over a stable link registry."""

    def __init__(self, backend=None) -> None:
        """Create an empty incidence structure.

        Args:
            backend: the :class:`~repro.backend.core.ArrayBackend`
                executing the segment kernels (liveness reductions); the
                numpy reference backend when omitted.
        """
        #: the array backend for the structure's segment kernels
        self.backend = backend if backend is not None else get_backend("numpy")
        # --- link registry (append-only) ---
        self._links: List[RuntimeLink] = []
        self._slot_of: Dict[RuntimeLink, int] = {}
        # static per-link attributes, as python lists until frozen to arrays
        self._buffer_l: List[float] = []
        self._kmin_l: List[float] = []
        self._kmax_l: List[float] = []
        self._pmax_l: List[float] = []
        self._interdc_l: List[bool] = []
        # frozen static arrays (rebuilt when the registry grows)
        self.buffer_bytes = np.empty(0)
        self.ecn_kmin = np.empty(0)
        self.ecn_kmax = np.empty(0)
        self.ecn_pmax = np.empty(0)
        self._interdc_slots = np.empty(0, dtype=np.intp)
        # mutable per-link state (authoritative between syncs)
        self.queue_bytes = np.empty(0)
        self.peak_queue_bytes = np.empty(0)
        self.carried_bytes = np.empty(0)
        self.dropped_bytes = np.empty(0)
        self.offered_bps = np.empty(0)
        # cached dynamic per-link attributes (capacity, liveness)
        self.cap_bps = np.empty(0)
        self.up = np.empty(0, dtype=bool)
        self._seen_state_version = -1
        # --- per-flow structure, indexed by FlowTable row slot ---
        self._paths: List[Optional[np.ndarray]] = []
        # concatenated CSR view over the active flows
        self.idx = np.empty(0, dtype=np.intp)
        self.starts = np.empty(0, dtype=np.intp)
        self.lengths = np.empty(0, dtype=np.intp)
        self.active_slots = np.empty(0, dtype=np.intp)
        self._membership_dirty = True
        self._registry_dirty = True
        # lifetime rebuild counters (plain ints; harvested into the
        # observability registry at result-build time when enabled)
        self.registry_rebuilds = 0
        self.membership_rebuilds = 0
        self.dynamic_regathers = 0

    # ------------------------------------------------------------------ #
    # registry
    # ------------------------------------------------------------------ #
    @property
    def num_links(self) -> int:
        """Number of links ever registered."""
        return len(self._links)

    @property
    def links(self) -> List[RuntimeLink]:
        """The registered links, in slot order."""
        return list(self._links)

    def _slot(self, link: RuntimeLink) -> int:
        slot = self._slot_of.get(link)
        if slot is None:
            slot = len(self._links)
            self._slot_of[link] = slot
            self._links.append(link)
            self._buffer_l.append(float(link.buffer_bytes))
            self._kmin_l.append(link.ecn_kmin_bytes)
            self._kmax_l.append(link.ecn_kmax_bytes)
            self._pmax_l.append(link.ecn_pmax)
            self._interdc_l.append(link.spec.inter_dc)
            self._registry_dirty = True
        return slot

    def _refresh_registry(self) -> None:
        """Regrow the static and state arrays after new links registered."""
        self.registry_rebuilds += 1
        old = len(self.queue_bytes)
        new = len(self._links)
        self.buffer_bytes = np.array(self._buffer_l)
        self.ecn_kmin = np.array(self._kmin_l)
        self.ecn_kmax = np.array(self._kmax_l)
        self.ecn_pmax = np.array(self._pmax_l)
        self._interdc_slots = np.flatnonzero(np.asarray(self._interdc_l, dtype=bool))
        for name in (
            "queue_bytes",
            "peak_queue_bytes",
            "carried_bytes",
            "dropped_bytes",
            "offered_bps",
        ):
            grown = np.empty(new)
            grown[:old] = getattr(self, name)
            grown[old:] = [getattr(link, name) for link in self._links[old:]]
            setattr(self, name, grown)
        self._registry_dirty = False
        self._seen_state_version = -1  # force a cap/up re-gather

    def _refresh_dynamic(self) -> None:
        """Re-gather capacity / liveness when some link mutated."""
        self.dynamic_regathers += 1
        n = len(self._links)
        self.cap_bps = np.fromiter(
            (link.cap_bps for link in self._links), dtype=np.float64, count=n
        )
        self.up = np.fromiter(
            (link.up for link in self._links), dtype=bool, count=n
        )
        self._seen_state_version = RuntimeLink.state_version

    def register_links(self, links: Sequence[RuntimeLink]) -> List[int]:
        """Register links up front and return their registry slots.

        Used by the telemetry plane: registering every monitored port at
        simulation start makes the incidence arrays the authoritative home
        of their mutable state for the whole run, so a monitor sweep can
        gather straight from the arrays.  Registration is idempotent and
        slot-stable (the registry is append-only).
        """
        return [self._slot(link) for link in links]

    def ensure_fresh_links(self) -> None:
        """Bring the registry-wide link arrays up to date.

        The cheap subset of :meth:`refresh` that does not touch flow
        membership — regrows the state arrays after new registrations and
        re-gathers capacity/liveness when some link mutated.  Telemetry
        sweeps call this between update steps.
        """
        if self._registry_dirty:
            self._refresh_registry()
        if self._seen_state_version != RuntimeLink.state_version:
            self._refresh_dynamic()

    # ------------------------------------------------------------------ #
    # flow membership (keyed by FlowTable row slot)
    # ------------------------------------------------------------------ #
    def set_path(self, row: int, path: Sequence[RuntimeLink]) -> None:
        """(Re-)index the path of the flow occupying FlowTable row ``row``.

        Called at arrival time and after every re-route.
        """
        if row >= len(self._paths):
            self._paths.extend([None] * (row + 1 - len(self._paths)))
        self._paths[row] = np.array(
            [self._slot(link) for link in path], dtype=np.intp
        )
        self._membership_dirty = True

    def update_flow_path(self, flow) -> None:
        """Re-index a flow after a re-route changed its path."""
        self.set_path(flow._slot, flow.path)

    def remove_row(self, row: int) -> None:
        """Drop the path of a finished or failed flow's row."""
        if row < len(self._paths):
            self._paths[row] = None
        self._membership_dirty = True

    # ------------------------------------------------------------------ #
    # refresh
    # ------------------------------------------------------------------ #
    def refresh(self, active_rows: np.ndarray) -> None:
        """Bring every cached array up to date for the given active rows.

        Args:
            active_rows: FlowTable row slots of the active flows, in
                active-list order (the CSR segment order).

        Cheap when nothing changed: two flag checks and one integer
        comparison against :attr:`RuntimeLink.state_version`.
        """
        if self._registry_dirty:
            self._refresh_registry()
        if self._membership_dirty:
            self.membership_rebuilds += 1
            if len(active_rows):
                paths = self._paths
                per_flow = [paths[row] for row in active_rows.tolist()]
                self.lengths = np.fromiter(
                    (len(a) for a in per_flow), dtype=np.intp, count=len(per_flow)
                )
                self.idx = np.concatenate(per_flow)
                starts = np.zeros(len(per_flow), dtype=np.intp)
                np.cumsum(self.lengths[:-1], out=starts[1:])
                self.starts = starts
                mask = np.zeros(len(self._links), dtype=bool)
                mask[self.idx] = True
                self.active_slots = np.flatnonzero(mask)
            else:
                self.idx = np.empty(0, dtype=np.intp)
                self.starts = np.empty(0, dtype=np.intp)
                self.lengths = np.empty(0, dtype=np.intp)
                self.active_slots = np.empty(0, dtype=np.intp)
            self._membership_dirty = False
        if self._seen_state_version != RuntimeLink.state_version:
            self._refresh_dynamic()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def broken_flows(self) -> np.ndarray:
        """Boolean per active flow: does its path cross a dead link?

        Requires :meth:`refresh` to have run for the current active list.
        """
        if len(self.starts) == 0:
            return np.empty(0, dtype=bool)
        bk = self.backend
        path_up = bk.segment_reduce(
            bk.gather_rows(self.up, self.idx).astype(np.float64),
            self.starts,
            self.lengths,
            "min",
        )
        return path_up < 0.5

    # ------------------------------------------------------------------ #
    # write-back
    # ------------------------------------------------------------------ #
    _STATE_FIELDS = (
        "queue_bytes",
        "peak_queue_bytes",
        "carried_bytes",
        "dropped_bytes",
        "offered_bps",
    )

    def _sync_slots(self, slots: np.ndarray) -> None:
        links = self._links
        queues = self.queue_bytes[slots].tolist()
        peaks = self.peak_queue_bytes[slots].tolist()
        carried = self.carried_bytes[slots].tolist()
        dropped = self.dropped_bytes[slots].tolist()
        offered = self.offered_bps[slots].tolist()
        for i, slot in enumerate(slots.tolist()):
            link = links[slot]
            link.queue_bytes = queues[i]
            link.peak_queue_bytes = peaks[i]
            link.carried_bytes = carried[i]
            link.dropped_bytes = dropped[i]
            link.offered_bps = offered[i]

    def sync_inter_dc(self) -> None:
        """Write inter-DC slots back to their RuntimeLink objects.

        Called every update step: the queue monitor, link traces and the
        scenario injector read inter-DC link state between steps.
        """
        if len(self._interdc_slots):
            self._sync_slots(self._interdc_slots)

    def sync_all(self) -> None:
        """Write every registered slot back (end of run / result build)."""
        if len(self._links):
            self._sync_slots(np.arange(len(self._links), dtype=np.intp))
