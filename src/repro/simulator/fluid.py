"""Fluid flow-level network simulation.

This is the substrate that replaces the paper's NS-3 setup (see DESIGN.md).
Flows are modelled as fluid: every ``update_interval`` the simulation

1. sums the sending rate of active flows on every link they traverse,
2. integrates (offered − capacity) into each egress queue,
3. computes each flow's achieved rate (its sending rate scaled down by the
   most-congested link it crosses),
4. generates congestion feedback (ECN fraction, max utilisation, RTT sample)
   and puts it "in flight" so the sender's congestion controller only sees it
   one base-RTT later — the outdated-feedback property of long-haul paths,
5. advances congestion-controller state and flow progress, and
6. finishes flows whose bytes are exhausted.

Routing decisions happen exactly once per flow, at arrival time, by walking
DCI switches hop by hop (see :class:`~repro.simulator.network.RuntimeNetwork`).

Three implementations of the update step exist and are bit-for-bit
equivalent: the structure-of-arrays core (default) that keeps per-flow and
congestion-control state resident in a :class:`~repro.simulator.flow_table
.FlowTable`, runs every per-step operation as numpy array math over a
CSR-style flow×link incidence structure (:mod:`repro.simulator.incidence`),
and advances/feeds congestion control through per-class in-place column
kernels — grouped by CC class, so heterogeneous fleets (per-flow CC mixes)
stay on the fast path;
the object-resident vectorized core (``SimulationConfig(soa=False)``, the
PR-2 layout with per-step ``np.fromiter`` gathers and ``.tolist()``
writebacks, kept as the baseline the high-concurrency benchmark measures
against); and the original pure-Python scalar loop, kept as the executable
specification and selected with ``SimulationConfig(vectorized=False)``.
The equivalence is guarded by
``tests/simulator/test_vectorized_equivalence.py``.

A run may additionally carry a :class:`~repro.scenarios.events.Scenario`:
its injector schedules fault/traffic events on the same engine heap and
calls :meth:`FluidSimulation.revalidate_flows` after each topology mutation,
so in-flight flows are re-routed (or explicitly failed) through the lazy
fast-failover path mid-run.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backend import get_backend
from ..obs import Instrumentation, NOOP
from .config import SimulationConfig
from .engine import SimulationEngine, SimulationError
from .fct import FCTCollector, FlowRecord, IdealFctModel, MetricsStore
from .flow import FeedbackSignal, Flow, FlowDemand
from .flow_table import FlowTable
from .incidence import FlowLinkIncidence
from .link import RuntimeLink
from .monitor import LinkTrace, QueueMonitor
from .network import RuntimeNetwork
from .telemetry import TelemetryPlane

__all__ = ["LinkStats", "FlowFailure", "SimulationResult", "FluidSimulation"]


class _FeedbackGeneration:
    """One update step's worth of in-flight congestion feedback (arrays).

    The vectorized cores never materialise per-flow
    :class:`~repro.simulator.flow.FeedbackSignal` objects for the common
    path; each step appends one generation holding the step's signal
    arrays, and lanes are delivered (batched, per congestion-control
    class) once their ``deliver_s`` passes.  ``next_due_s`` caches the
    earliest undelivered lane so idle generations cost one comparison per
    step.

    The SoA core addresses lanes by FlowTable row (``rows``) guarded by
    the row ``epochs`` captured at enqueue time, so a lane whose row was
    released (and possibly re-acquired by a newer flow) is dropped; the
    object-resident legacy core addresses lanes by flow object (``flows``,
    the PR-2 layout) instead.
    """

    __slots__ = (
        "rows",
        "epochs",
        "flows",
        "generated_s",
        "deliver_s",
        "ecn",
        "util",
        "rtt",
        "qd",
        "undelivered",
        "next_due_s",
    )

    def __init__(self, generated_s, deliver_s, ecn, util, rtt, qd, rows=None, epochs=None, flows=None):
        self.rows = rows
        self.epochs = epochs
        self.flows = flows
        self.generated_s = generated_s
        self.deliver_s = deliver_s
        self.ecn = ecn
        self.util = util
        self.rtt = rtt
        self.qd = qd
        self.undelivered = np.ones(len(deliver_s), dtype=bool)
        self.next_due_s = float(deliver_s.min())


@dataclass(frozen=True)
class LinkStats:
    """Summary statistics of one inter-DC link after a run."""

    key: Tuple[str, str]
    cap_bps: float
    carried_bytes: float
    dropped_bytes: float
    peak_queue_bytes: float
    utilization: float


@dataclass(frozen=True)
class FlowFailure:
    """A flow explicitly failed by the scenario engine.

    Recorded when a disrupted flow could not be moved onto a healthy path
    within the scenario's stranded timeout — the simulation's equivalent of
    the application giving up on a blackholed connection.
    """

    flow_id: int
    src_dc: str
    dst_dc: str
    size_bytes: int
    arrival_s: float
    disrupted_s: float
    failed_s: float
    remaining_bytes: float


class SimulationResult:
    """Everything a simulation run produces.

    Completed-flow metrics live in a columnar
    :class:`~repro.simulator.fct.MetricsStore` (:attr:`store`); the legacy
    :attr:`records` list is a *view* materialised freshly on every access,
    so callers cannot mutate the run's metrics through it.  Analysis code
    should prefer the store's column accessors.

    Attributes:
        records: one :class:`FlowRecord` per completed flow (lazy view over
            :attr:`store`; assignable for synthetic results in tests).
        store: the columnar metrics (``None`` only when a records list was
            supplied explicitly).
        link_stats: per inter-DC link summary.
        duration_s: simulated time elapsed (from time 0 to the stop time).
        unfinished_flows: flows still active when the simulation stopped
            (should be 0 in a healthy run; benchmarks assert on it).
        routing_decisions: total number of per-switch routing decisions.
        monitor_samples: number of queue-monitor sweeps taken.
        trace: optional per-link time series.
        failed_flows: flows explicitly failed by the scenario engine
            (stranded on a dead path past the scenario's timeout).
        scenario_metrics: per-event recovery metrics
            (:class:`~repro.scenarios.injector.ScenarioMetrics`) when the
            run carried a scenario, else ``None``.
        stats: observability snapshot (counters / gauges / histograms /
            phase timers, see DESIGN.md "Observability plane") when the run
            had ``SimulationConfig.instrumentation`` on, else ``None``.
    """

    def __init__(
        self,
        records: Optional[List[FlowRecord]] = None,
        link_stats: Optional[List[LinkStats]] = None,
        duration_s: float = 0.0,
        unfinished_flows: int = 0,
        routing_decisions: int = 0,
        monitor_samples: int = 0,
        trace: Optional[LinkTrace] = None,
        failed_flows: Optional[List[FlowFailure]] = None,
        scenario_metrics: Optional[object] = None,
        store: Optional[MetricsStore] = None,
        stats: Optional[dict] = None,
    ) -> None:
        self._records_override: Optional[List[FlowRecord]] = (
            list(records) if records is not None else None
        )
        self.store = store
        self.link_stats = list(link_stats) if link_stats is not None else []
        self.duration_s = duration_s
        self.unfinished_flows = unfinished_flows
        self.routing_decisions = routing_decisions
        self.monitor_samples = monitor_samples
        self.trace = trace
        self.failed_flows = list(failed_flows) if failed_flows is not None else []
        self.scenario_metrics = scenario_metrics
        self.stats = stats

    @property
    def records(self) -> List[FlowRecord]:
        """Completed-flow records (a fresh list of views per access)."""
        if self._records_override is not None:
            return list(self._records_override)
        if self.store is None:
            return []
        return self.store.records()

    @records.setter
    def records(self, value: Optional[List[FlowRecord]]) -> None:
        self._records_override = list(value) if value is not None else None

    @property
    def records_overridden(self) -> bool:
        """True when a records list was assigned, shadowing :attr:`store`."""
        return self._records_override is not None

    def arrival_slowdown_columns(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(arrival_s, slowdown)`` columns of the completed flows.

        Served straight from the metrics store when available, so analysis
        helpers can window/bucket without materialising record objects.
        """
        if self._records_override is None and self.store is not None:
            return self.store.arrivals(), self.store.slowdowns()
        recs = self.records
        arrivals = np.fromiter((r.arrival_s for r in recs), dtype=np.float64, count=len(recs))
        slowdowns = np.fromiter((r.slowdown for r in recs), dtype=np.float64, count=len(recs))
        return arrivals, slowdowns

    def slowdowns(self) -> List[float]:
        """All flow slowdowns."""
        if self._records_override is None and self.store is not None:
            return self.store.slowdowns().tolist()
        return [r.slowdown for r in self.records]

    def utilization_by_link(self) -> Dict[Tuple[str, str], float]:
        """Mapping of directed link key to average utilisation."""
        return {stats.key: stats.utilization for stats in self.link_stats}


class FluidSimulation:
    """Drives one simulation run end to end."""

    def __init__(
        self,
        network: RuntimeNetwork,
        demands: Sequence[FlowDemand],
        cc_factory: Callable[[float, float], object],
        config: Optional[SimulationConfig] = None,
        trace_links: bool = False,
        scenario=None,
    ) -> None:
        """Prepare a run.

        Args:
            network: runtime network (topology + routers).
            demands: flow demands, in any order (they are sorted by arrival).
            cc_factory: ``cc_factory(line_rate_bps, base_rtt_s)`` returning a
                fresh congestion-control instance per flow.
            config: simulation tunables.
            trace_links: record per-link time series (costs memory; used by
                the motivation figure).
            scenario: optional :class:`~repro.scenarios.events.Scenario`;
                its events (fault injection, traffic surges, capacity
                changes) are scheduled on the engine heap and applied to the
                runtime network mid-run.
        """
        self.network = network
        self.config = config or network.config
        self.config.validate()
        self.cc_factory = cc_factory
        self.demands = sorted(demands, key=lambda d: (d.arrival_s, d.flow_id))

        #: observability plane — the NOOP singleton when instrumentation is
        #: off, so every site below is an inert attribute access.  Span
        #: handles and counters are bound once here (reusable,
        #: non-re-entrant) so the hot loops pay only the enter/exit cost.
        #: Instrumentation never touches simulation numerics or RNG
        #: streams: results stay bit-for-bit identical either way.
        self.obs = Instrumentation() if self.config.instrumentation else NOOP
        obs = self.obs
        self._sp_update = obs.span("step.update")
        self._sp_revalidate = obs.span("update.revalidate")
        self._sp_load_queue = obs.span("update.load_queue")
        self._sp_signals = obs.span("update.signals")
        self._sp_feedback = obs.span("update.feedback")
        self._sp_cc = obs.span("update.cc_advance")
        self._sp_completions = obs.span("update.completions")
        self._sp_monitor = obs.span("step.monitor")
        self._sp_gc = obs.span("step.gc")
        self._sp_arrivals = obs.span("step.arrivals")
        self._sp_arrival_route = obs.span("arrivals.route")
        self._ctr_repeated = obs.counter("slow_path.deliver_repeated")
        self._ctr_object_gather = obs.counter("slow_path.object_gather_dispatch")
        self._ctr_seq_routing = obs.counter("slow_path.sequential_routing")
        self._ctr_reroutes = obs.counter("slow_path.reroutes")
        self._ctr_cc_kernels = obs.counter("cc.kernel_dispatches")
        self._ctr_batches = obs.counter("arrivals.batches")
        self._ctr_admitted = obs.counter("arrivals.flows_admitted")
        self._hist_batch_size = obs.histogram("arrivals.batch_size")

        self.engine = SimulationEngine()
        self._rng = np.random.default_rng(self.config.seed)
        ideal = IdealFctModel(network.topology, network.pathset)
        self.collector = FCTCollector(
            ideal, fidelity_noise=self.config.fidelity_noise, rng=self._rng
        )
        self._trace = LinkTrace() if trace_links else None

        self._active: List[Flow] = []
        #: the array backend executing this run's hot kernels (scatter
        #: adds, segment reductions, the path-signal walk — see
        #: :mod:`repro.backend`); the scalar core ignores it
        self._backend = get_backend(self.config.backend)
        #: flow×link incidence arrays (None = scalar update path)
        self._incidence: Optional[FlowLinkIncidence] = (
            FlowLinkIncidence(backend=self._backend)
            if self.config.vectorized
            else None
        )
        #: structure-of-arrays per-flow state (vectorized cores only; the
        #: scalar reference path keeps state on the objects, untouched)
        self._table: Optional[FlowTable] = (
            FlowTable(backend=self._backend) if self.config.vectorized else None
        )
        #: SoA core: flows and controllers are *bound* to their table rows
        #: (columns authoritative); False = object-resident legacy core
        self._soa = bool(self.config.vectorized and self.config.soa)
        #: array-resident control plane: telemetry columns + batched
        #: arrivals (vectorized cores only; the scalar reference path and
        #: the PR-3 baseline keep per-event arrivals and object sampling)
        self._batched = bool(self.config.vectorized and self.config.batched_control)
        #: SoA core: dispatch congestion control through per-class in-place
        #: column kernels, grouped by class for mixed fleets; False retains
        #: the object-gather dispatch as the CC benchmark baseline
        self._cc_blocks = bool(self._soa and self.config.cc_blocks)
        #: the factory wants each demand's flow id (per-flow CC mixes)
        self._cc_per_flow = bool(getattr(cc_factory, "per_flow", False))

        self.telemetry: Optional[TelemetryPlane] = None
        if self._batched:
            self.telemetry = TelemetryPlane(network, backend=self._backend)
            self.telemetry.attach_incidence(self._incidence)
        self.monitor = QueueMonitor(network, trace=self._trace, plane=self.telemetry)
        #: FlowTable rows of the active flows, aligned with ``_active``
        #: (grown by doubling; ``_n_active`` is the live prefix length)
        self._rows_arr = np.empty(256, dtype=np.intp)
        self._n_active = 0
        #: conservative flag: may any active flow still be disrupted?
        #: (scalar and legacy cores; the SoA core reads the table's
        #: ``disrupted_s`` column instead)
        self._maybe_disrupted = False
        #: in-flight congestion feedback, one generation per update step
        self._feedback_line: "deque[_FeedbackGeneration]" = deque()
        self._update_tick = 0
        self._pending_arrivals = len(self.demands)
        self._stopped = False
        #: flow id -> (arrival Event, demand) for not-yet-arrived flows
        #: (per-event arrival path only)
        self._arrival_events: Dict[int, Tuple[object, FlowDemand]] = {}
        #: batched-arrival state: a (arrival_s, flow_id, strict, demand)
        #: heap of not-yet-admitted demands, drained by one batch event
        #: per event-free window instead of one heap event per flow
        #: (``strict`` marks mid-run injections, see :meth:`_arrival_batch`)
        self._arrival_heap: List[Tuple[float, int, bool, FlowDemand]] = []
        self._run_started = False
        self._cancelled_ids: set = set()
        self._batch_event = None
        #: scenario event times guarding exact-tie admission (see
        #: :meth:`_arrival_batch`)
        self._tie_guard: frozenset = frozenset()
        self._injected_last_arrival_s = 0.0
        self._failed: List[FlowFailure] = []
        #: read-only callbacks invoked after every completed update step
        #: (see :meth:`add_step_observer`); empty in normal runs
        self._step_observers: List[Callable[["FluidSimulation", float], None]] = []

        self.injector = None
        if scenario is not None:
            # local import: repro.scenarios depends on the simulator types
            from ..scenarios.injector import ScenarioInjector

            self.injector = ScenarioInjector(scenario, self)
            self._tie_guard = self.injector.scheduled_event_times()
            self.injector.install()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        for demand in self.demands:
            self._schedule_arrival(demand)
        self._run_started = True

        # the monitor is scheduled before the rate/queue update so that when
        # both fire at the same instant the switch samples its queues first
        # (and the run cannot end before at least one monitor sweep happened)
        self.engine.schedule_periodic(
            self.config.monitor_interval_s, self._monitor_step
        )
        self.engine.schedule_periodic(
            self.config.update_interval_s, self._update_step
        )
        self.engine.schedule_periodic(self.config.gc_interval_s, self._gc_step)

        last_arrival = self.demands[-1].arrival_s if self.demands else 0.0
        last_arrival = max(last_arrival, self._injected_last_arrival_s)
        deadline = min(
            self.config.max_sim_time_s, last_arrival + self.config.drain_timeout_s
        )
        self.engine.run(until=deadline)
        return self._build_result()

    # ------------------------------------------------------------------ #
    # scenario-facing API (used by repro.scenarios.injector)
    # ------------------------------------------------------------------ #
    def inject_demands(self, demands: Sequence[FlowDemand]) -> None:
        """Add demands mid-run (or pre-run): traffic-surge events.

        Raises:
            SimulationError: if a demand's arrival lies in the past.
        """
        for demand in demands:
            self._pending_arrivals += 1
            self._schedule_arrival(demand)
            self._injected_last_arrival_s = max(
                self._injected_last_arrival_s, demand.arrival_s
            )

    def cancel_pending(self, predicate: Callable[[FlowDemand], bool]) -> int:
        """Cancel not-yet-arrived demands matching ``predicate``.

        Returns:
            Number of demands cancelled (traffic-drain events).
        """
        if self._batched:
            cancelled = 0
            for _, flow_id, _, demand in self._arrival_heap:
                if flow_id not in self._cancelled_ids and predicate(demand):
                    self._cancelled_ids.add(flow_id)
                    self._pending_arrivals -= 1
                    cancelled += 1
            return cancelled
        cancelled = 0
        for flow_id, (event, demand) in list(self._arrival_events.items()):
            if predicate(demand):
                event.cancel()
                del self._arrival_events[flow_id]
                self._pending_arrivals -= 1
                cancelled += 1
        return cancelled

    def revalidate_flows(self, now: float) -> None:
        """Re-evaluate every in-flight flow against current link liveness.

        Runs on every update step and immediately after each scenario state
        event.  A flow whose path crosses a dead port is treated as if its
        next packet re-arrived at the switch — the stale flow-cache entry is
        lazily invalidated and the flow re-hashed onto a healthy candidate
        (paper §3.4).  A flow with no healthy alternative stays pinned until
        its path recovers, or — when the scenario sets a stranded timeout —
        is explicitly failed and recorded.
        """
        stranded_timeout = None
        if self.injector is not None:
            stranded_timeout = self.injector.scenario.stranded_timeout_s

        if self._incidence is not None and self._active:
            # vectorized fast path: one reduceat over cached liveness
            # instead of an O(flows x path) Python sweep per call
            rows = self._active_rows()
            self._incidence.refresh(rows)
            broken_arr = self._incidence.broken_flows()
            if self._soa:
                # SoA core: only flows that are broken now or were
                # disrupted before need any Python-level attention —
                # everything else is covered by two array reductions
                need = broken_arr | ~np.isnan(self._table.disrupted_s[rows])
                if not need.any():
                    return
                targets = np.flatnonzero(need)
                flows = [self._active[i] for i in targets.tolist()]
                broken_l = broken_arr[targets].tolist()
                for flow, broken in zip(flows, broken_l):
                    self._revalidate_one(flow, broken, now, stranded_timeout)
                return
            # legacy vectorized core (PR-2): full walk gated by the
            # conservative any-disrupted flag
            if not broken_arr.any() and not self._maybe_disrupted:
                return
            broken_mask = broken_arr.tolist()
            still_disrupted = False
            for i, flow in enumerate(list(self._active)):
                if self._revalidate_one(flow, broken_mask[i], now, stranded_timeout):
                    still_disrupted = True
            self._maybe_disrupted = still_disrupted
            return

        still_disrupted = False
        for flow in list(self._active):
            broken = any(not link.up for link in flow.path)
            if self._revalidate_one(flow, broken, now, stranded_timeout):
                still_disrupted = True
        self._maybe_disrupted = still_disrupted

    def _revalidate_one(
        self, flow: Flow, broken: bool, now: float, stranded_timeout: Optional[float]
    ) -> bool:
        """Re-evaluate one flow; returns True while it stays disrupted."""
        if not broken:
            if flow.disrupted_s is not None:
                # the original path healed in place (link recovery)
                if self.injector is not None:
                    self.injector.on_flow_restored(flow, now)
                flow.disrupted_s = None
            return False
        if flow.disrupted_s is None:
            flow.disrupted_s = now
            if self.injector is not None:
                self.injector.on_flow_disrupted(flow, now)
        if self._reroute_flow(flow, now):
            if self.injector is not None:
                self.injector.on_flow_rerouted(flow, now)
            flow.disrupted_s = None
            return False
        if (
            stranded_timeout is not None
            and now - flow.disrupted_s >= stranded_timeout
        ):
            self._fail_flow(flow, now)
            return False
        return True

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #
    def _schedule_arrival(self, demand: FlowDemand) -> None:
        if self._batched:
            if demand.arrival_s < self.engine.now:
                raise SimulationError(
                    f"cannot schedule event at {demand.arrival_s} "
                    f"(now is {self.engine.now})"
                )
            heapq.heappush(
                self._arrival_heap,
                (demand.arrival_s, demand.flow_id, self._run_started, demand),
            )
            self._ensure_batch_event()
            return
        event = self.engine.schedule(demand.arrival_s, self._make_arrival(demand))
        self._arrival_events[demand.flow_id] = (event, demand)

    def _make_cc(self, demand: FlowDemand, line_rate_bps: float, base_rtt_s: float):
        """Build the demand's congestion controller.

        Per-flow factories (``factory.per_flow``, e.g. a
        :class:`~repro.congestion_control.mix.MixedCCFactory`) receive the
        demand's flow id so mixed-CC assignment is deterministic across
        cores and arrival batching; plain factories keep the two-argument
        calling convention.
        """
        if self._cc_per_flow:
            return self.cc_factory(line_rate_bps, base_rtt_s, flow_id=demand.flow_id)
        return self.cc_factory(line_rate_bps, base_rtt_s)

    def _make_arrival(self, demand: FlowDemand) -> Callable[[], None]:
        def arrive() -> None:
            self._arrival_events.pop(demand.flow_id, None)
            self._pending_arrivals -= 1
            self._ctr_seq_routing.inc()
            now = self.engine.now
            path = self.network.resolve_path(demand, now)
            base_rtt = 2.0 * sum(link.delay_s for link in path)
            line_rate = path[0].cap_bps
            cc = self._make_cc(demand, line_rate, base_rtt)
            flow = Flow(demand, path, cc, base_rtt)
            flow.route_id = self.collector.route_index_for(demand.src_dc, flow.path)
            if self._table is not None:
                row = self._table.acquire(flow, bind=self._soa)
                self._incidence.set_path(row, flow.path)
                self._table.path_id[row] = flow.route_id
            self._append_active(flow)

        return arrive

    # ------------------------------------------------------------------ #
    # batched arrivals (array-resident control plane)
    # ------------------------------------------------------------------ #
    def _ensure_batch_event(self) -> None:
        """Keep exactly one batch event scheduled at the earliest arrival."""
        heap = self._arrival_heap
        while heap and heap[0][1] in self._cancelled_ids:
            self._cancelled_ids.discard(heap[0][1])
            heapq.heappop(heap)
        if not heap:
            return
        head_time = heap[0][0]
        event = self._batch_event
        if event is not None and not event.cancelled and event.time <= head_time:
            return
        if event is not None:
            event.cancel()
        self._batch_event = self.engine.schedule(head_time, self._arrival_batch)

    def _arrival_batch(self) -> None:
        """Admit every arrival due before the next possible state change.

        Fires at the earliest pending arrival time.  Nothing observable can
        happen between engine events, so every demand whose arrival lies
        strictly before the next pending event is admitted now — each flow
        still routed with its own arrival timestamp — which is exactly
        equivalent to one heap event per flow.  Ties: a pre-run demand
        stamped at the next event's exact time is admitted too (the
        per-event path scheduled those arrivals before the periodic ticks,
        so the arrival fired first), *unless* that instant belongs to a
        not-yet-fired scenario event, which the per-event path ordered
        before arrivals.  Demands injected *mid-run* (``strict``) never
        tie-break early — their per-event ordering against an exactly-tied
        periodic tick depends on when that tick last rescheduled, so the
        batch conservatively defers them past every event pending at that
        instant.
        """
        self._batch_event = None
        with self._sp_arrivals:
            now = self.engine.now
            horizon = self.engine.next_event_time()
            heap = self._arrival_heap
            guard = self._tie_guard
            batch: List[FlowDemand] = []
            while heap:
                t, flow_id, strict, demand = heap[0]
                if flow_id in self._cancelled_ids:
                    heapq.heappop(heap)
                    self._cancelled_ids.discard(flow_id)
                    continue
                if t > now and horizon is not None:
                    if t > horizon:
                        break
                    if t == horizon and (strict or t in guard):
                        break
                heapq.heappop(heap)
                batch.append(demand)
            if batch:
                self._admit_arrivals(batch)
            self._ensure_batch_event()

    def _admit_arrivals(self, batch: List[FlowDemand]) -> None:
        """Route and activate one drained arrival batch (arrival order)."""
        self._ctr_batches.inc()
        self._ctr_admitted.inc(len(batch))
        self._hist_batch_size.observe(len(batch))
        times = np.fromiter(
            (d.arrival_s for d in batch), dtype=np.float64, count=len(batch)
        )
        with self._sp_arrival_route:
            paths = self.network.resolve_paths_batch(batch, times)
        table = self._table
        collector = self.collector
        for demand, path in zip(batch, paths):
            self._pending_arrivals -= 1
            base_rtt = 2.0 * sum(link.delay_s for link in path)
            cc = self._make_cc(demand, path[0].cap_bps, base_rtt)
            flow = Flow(demand, path, cc, base_rtt)
            flow.route_id = collector.route_index_for(demand.src_dc, flow.path)
            row = table.acquire(flow, bind=self._soa)
            self._incidence.set_path(row, flow.path)
            table.path_id[row] = flow.route_id
            self._append_active(flow)

    # ------------------------------------------------------------------ #
    # active-set bookkeeping (O(1) append / swap-remove)
    # ------------------------------------------------------------------ #
    def _append_active(self, flow: Flow) -> None:
        flow._active_pos = len(self._active)
        self._active.append(flow)
        if self._table is not None:
            n = self._n_active
            arr = self._rows_arr
            if n == len(arr):
                grown = np.empty(2 * len(arr), dtype=np.intp)
                grown[:n] = arr
                self._rows_arr = arr = grown
            arr[n] = flow._slot
            self._n_active = n + 1

    def _remove_active(self, flow: Flow) -> None:
        """O(1) swap-remove from the active list (and the row array)."""
        pos = flow._active_pos
        active = self._active
        last = active[-1]
        active[pos] = last
        last._active_pos = pos
        active.pop()
        flow._active_pos = -1
        if self._table is not None:
            n = self._n_active - 1
            self._rows_arr[pos] = self._rows_arr[n]
            self._n_active = n

    def _active_rows(self) -> np.ndarray:
        """FlowTable rows of the active flows, in active-list order."""
        return self._rows_arr[: self._n_active]

    def _monitor_step(self) -> None:
        with self._sp_monitor:
            self.monitor.sample(self.engine.now)

    def _gc_step(self) -> None:
        with self._sp_gc:
            self.network.tick_all(self.engine.now)

    def add_step_observer(
        self, observer: Callable[["FluidSimulation", float], None]
    ) -> None:
        """Register a read-only callback run after every update step.

        Observers receive ``(sim, now)`` once the step's rate/queue update
        has fully completed, with link liveness and per-flow state settled
        for the instant — the hook invariant checkers (e.g. the dead-link
        monitor of :mod:`repro.scenarios.invariants`) attach to.  Observers
        must not mutate simulation state; with none registered the hook is
        a single empty-list check, so normal runs are unaffected.
        """
        self._step_observers.append(observer)

    def _update_step(self) -> None:
        with self._sp_update:
            if self._incidence is None:
                self._update_step_scalar()
            elif self._soa:
                self._update_step_vectorized()
            else:
                self._update_step_vectorized_legacy()
        if self._step_observers:
            now = self.engine.now
            for observer in self._step_observers:
                observer(self, now)

    def _maybe_stop(self) -> None:
        if not self._active and self._pending_arrivals == 0 and not self._stopped:
            self._stopped = True
            self.engine.stop()

    def _finish_flows(self, finished: List[Flow]) -> None:
        for flow in finished:
            flow._feedback_live = False
            self._remove_active(flow)
            if self._table is not None:
                self._incidence.remove_row(flow._slot)
                # release unbinds the flow/controller views (final column
                # values are copied back), so the metrics appended below
                # and any later reader see the flow's true final state
                self._table.release(flow)
            self.collector.collect(flow)

    def _deliver_feedback_line(self, now: float) -> None:
        """Deliver every due lane of the feedback delay line (vectorized).

        Lanes are scanned generation by generation (enqueue order) and
        handed to the congestion-control class's batched delivery.  The
        SoA core addresses lanes by FlowTable row: liveness, the slot-reuse
        epoch guard and the repeated-delivery tick check are all column
        reductions, and every fleet — uniform or mixed — is delivered
        through the classes' in-place ``feedback_batch_slots`` kernels,
        grouped per class via the table's class-id column.  The legacy
        core walks lane flows object by object (the PR-2 layout).  A flow
        normally
        receives at most one signal per step — one is enqueued per step
        with a fixed RTT offset — and the rare exception (an
        RTT-shortening re-route makes several due at once) falls back to
        sequential per-flow delivery sorted by deliver time, which is
        exactly the scalar path's order.
        """
        tick = self._update_tick
        line = self._feedback_line
        soa = self._soa
        table = self._table
        bk = self._backend
        batches: List[Tuple[_FeedbackGeneration, object, object]] = []
        repeated = False
        for gen in line:
            if gen.next_due_s > now:
                continue
            due = gen.undelivered & (gen.deliver_s <= now)
            lanes = np.flatnonzero(due)
            if lanes.size:
                gen.undelivered[lanes] = False
                if soa:
                    rows = bk.gather_rows(gen.rows, lanes)
                    valid = bk.gather_rows(table.feedback_live, rows) & (
                        bk.gather_rows(table.epoch, rows) == gen.epochs[lanes]
                    )
                    if not valid.all():
                        rows = rows[valid]
                        lanes = lanes[valid]
                    if rows.size:
                        if (table.feedback_tick[rows] == tick).any():
                            repeated = True
                        table.feedback_tick[rows] = tick
                        batches.append((gen, rows, lanes))
                else:
                    flows = gen.flows
                    ccs: list = []
                    kept: list = []
                    for j in lanes.tolist():
                        flow = flows[j]
                        if not flow._feedback_live:
                            continue
                        if flow._feedback_tick == tick:
                            repeated = True
                        else:
                            flow._feedback_tick = tick
                        ccs.append(flow.cc)
                        kept.append(j)
                    if ccs:
                        batches.append((gen, ccs, kept))
            remaining_lanes = gen.undelivered
            if remaining_lanes.any():
                gen.next_due_s = float(gen.deliver_s[remaining_lanes].min())
            else:
                gen.next_due_s = float("inf")
        while line and not line[0].undelivered.any():
            line.popleft()

        if not batches:
            return
        if repeated:
            self._deliver_repeated(batches, now)
            return
        if soa:
            if not self._cc_blocks:
                # object-gather baseline (the CC benchmark's comparison
                # point): gather the controllers off the table and run the
                # object-level batch delivery
                self._ctr_object_gather.inc()
                for gen, rows, lanes in batches:
                    ccs = [table.flow_at(r).cc for r in rows.tolist()]
                    self._deliver_object_batch(gen, ccs, lanes, now)
                return
            counts = table.class_counts
            single_cls = next(iter(counts)) if len(counts) == 1 else None
            for gen, rows, lanes in batches:
                if single_cls is not None:
                    self._ctr_cc_kernels.inc()
                    single_cls.feedback_batch_slots(
                        table,
                        rows,
                        gen.generated_s,
                        gen.ecn[lanes],
                        gen.util[lanes],
                        gen.rtt[lanes],
                        gen.qd[lanes],
                        now,
                    )
                    continue
                # mixed fleet: split the batch per CC class (one boolean
                # mask per class present — controllers are per-flow and
                # independent, so grouped delivery matches the scalar
                # per-flow order bit for bit) and stay on the in-place
                # column kernels
                cids = table.cc_class_id[rows]
                for cid in np.unique(cids).tolist():
                    sel = np.flatnonzero(cids == cid)
                    self._ctr_cc_kernels.inc()
                    table.cc_class_at(cid).feedback_batch_slots(
                        table,
                        rows[sel],
                        gen.generated_s,
                        gen.ecn[lanes[sel]],
                        gen.util[lanes[sel]],
                        gen.rtt[lanes[sel]],
                        gen.qd[lanes[sel]],
                        now,
                    )
            return
        for gen, ccs, kept in batches:
            self._deliver_object_batch(gen, ccs, np.array(kept, dtype=np.intp), now)

    def _deliver_object_batch(self, gen, ccs, kidx, now: float) -> None:
        """Per-object batched delivery (legacy core / mixed fleets)."""
        cc_cls = type(ccs[0])
        if all(type(cc) is cc_cls for cc in ccs):
            cc_cls.feedback_batch(
                ccs,
                gen.generated_s,
                gen.ecn[kidx],
                gen.util[kidx],
                gen.rtt[kidx],
                gen.qd[kidx],
                now,
            )
        else:
            ecn_l = gen.ecn[kidx].tolist()
            util_l = gen.util[kidx].tolist()
            rtt_l = gen.rtt[kidx].tolist()
            qd_l = gen.qd[kidx].tolist()
            for k, cc in enumerate(ccs):
                cc.on_feedback(
                    FeedbackSignal(
                        gen.generated_s, ecn_l[k], util_l[k], rtt_l[k], qd_l[k]
                    ),
                    now,
                )

    def _deliver_repeated(self, batches, now: float) -> None:
        """Slow path: some flow has several signals due in one step."""
        self._ctr_repeated.inc()
        by_flow: Dict[int, list] = {}
        for gen, payload, lanes in batches:
            if self._soa:
                idxs = lanes.tolist()
                flows = [self._table.flow_at(r) for r in payload.tolist()]
            else:
                idxs = list(lanes)
                flows = [gen.flows[j] for j in idxs]
            deliver_l = gen.deliver_s[idxs].tolist()
            ecn_l = gen.ecn[idxs].tolist()
            util_l = gen.util[idxs].tolist()
            rtt_l = gen.rtt[idxs].tolist()
            qd_l = gen.qd[idxs].tolist()
            for k, flow in enumerate(flows):
                by_flow.setdefault(id(flow), []).append(
                    (
                        deliver_l[k],
                        flow,
                        FeedbackSignal(
                            gen.generated_s, ecn_l[k], util_l[k], rtt_l[k], qd_l[k]
                        ),
                    )
                )
        for items in by_flow.values():
            items.sort(key=lambda item: item[0])
            for _, flow, signal in items:
                flow.cc.on_feedback(signal, now)

    def _accumulate_path_signals(self, inc, not_marked_links, delay_links):
        """Per-flow path products/sums in exact scalar accumulation order.

        Dispatches to the run's array backend's ``path_signals`` kernel
        (see :mod:`repro.backend`): every backend walks the paths position
        by position, so each flow's ECN survival product and
        queueing-delay sum associate strictly left to right — exactly like
        the scalar loop in :meth:`_feedback_for`.
        ``np.multiply.reduceat`` / ``np.add.reduceat`` are *not* usable
        here: their intra-segment association is unspecified (numpy may
        block the reduction), which lands one ulp away from the scalar
        result on some queue patterns and breaks the bit-identity contract.
        The fused backend collapses the masked per-hop gathers into
        contiguous column strides when every path has the same hop count
        — the common testbed geometry — preserving the association order.

        Args:
            inc: the flow×link incidence structure (CSR layout).
            not_marked_links: per-link ECN survival probability (1 - mark).
            delay_links: per-link queueing delay in seconds.

        Returns:
            ``(not_marked, queue_delay)`` per-flow arrays.
        """
        return self._backend.path_signals(
            inc.idx, inc.starts, inc.lengths, not_marked_links, delay_links
        )

    def _update_step_scalar(self) -> None:
        """The original pure-Python update step (the executable spec)."""
        now = self.engine.now
        dt = self.config.update_interval_s
        if not self._active:
            self._maybe_stop()
            return

        # 0. lazy fast-failover sweep (see revalidate_flows)
        self.revalidate_flows(now)

        # 1. offered load per link
        offered: Dict[RuntimeLink, float] = {}
        for flow in self._active:
            rate = flow.sending_rate_bps
            for link in flow.path:
                offered[link] = offered.get(link, 0.0) + rate

        # 2. queue integration + per-link scaling factor
        scale: Dict[RuntimeLink, float] = {}
        for link, load in offered.items():
            link.integrate(load, dt)
            if load > 0 and link.up:
                scale[link] = min(1.0, link.cap_bps / load)
            elif not link.up:
                scale[link] = 0.0
            else:
                scale[link] = 1.0

        # 3.-6. per-flow progress, feedback and completion
        finished: List[Flow] = []
        for flow in self._active:
            factor = min(scale[link] for link in flow.path)
            achieved = flow.sending_rate_bps * factor
            before = flow.remaining_bytes
            sent = flow.transfer(achieved, dt)

            signal = self._feedback_for(flow, offered, now)
            flow.enqueue_feedback(signal, now + flow.base_rtt_s)
            flow.deliver_due_feedback(now)
            flow.cc.on_interval(dt, now)

            if flow.completed:
                # locate the completion instant inside the step
                would_send = achieved * dt / 8.0
                fraction = before / would_send if would_send > 0 else 1.0
                fraction = min(1.0, max(0.0, fraction))
                flow.mark_finished(now + fraction * dt)
                finished.append(flow)

        self._finish_flows(finished)
        self._maybe_stop()

    def _update_step_vectorized(self) -> None:
        """The SoA core: every per-step operation is array math.

        Mirrors :meth:`_update_step_scalar` operation for operation — the
        accumulation / reduction orders match the scalar loops, so queue
        state, feedback signals and FCTs come out bit-identical (guarded
        by ``tests/simulator/test_vectorized_equivalence.py``).  Unlike
        the legacy core below, per-flow state is read and written directly
        in :class:`~repro.simulator.flow_table.FlowTable` columns — the
        step performs no per-flow Python work at all outside the rare
        completion / repeated-feedback paths.
        """
        now = self.engine.now
        dt = self.config.update_interval_s
        self._update_tick += 1
        if not self._active:
            self._maybe_stop()
            return

        # 0. lazy fast-failover sweep (may reroute / fail flows)
        with self._sp_revalidate:
            self.revalidate_flows(now)
        active = self._active
        if not active:
            self._maybe_stop()
            return

        with self._sp_load_queue:
            bk = self._backend
            inc = self._incidence
            table = self._table
            rows = self._active_rows()
            inc.refresh(rows)
            idx, starts = inc.idx, inc.starts
            cap, up = inc.cap_bps, inc.up

            # 1. offered load per link: flow-major scatter-add, which keeps
            # the per-link accumulation order identical to the scalar dict
            # loop
            rates = bk.gather_rows(table.cc_rate_bps, rows)
            offered = bk.scatter_add(
                inc.num_links, idx, bk.expand_segments(rates, inc.lengths)
            )

            # 2. queue integration (active slots only — the scalar path
            # only integrates links that appear on some active flow's path)
            # and the per-link scaling factor
            act = inc.active_slots
            queue, peak, carried, dropped, _ = RuntimeLink.integrate_batch(
                offered[act],
                dt,
                cap[act],
                up[act],
                inc.buffer_bytes[act],
                inc.queue_bytes[act],
                inc.peak_queue_bytes[act],
                inc.carried_bytes[act],
                inc.dropped_bytes[act],
            )
            inc.queue_bytes[act] = queue
            inc.peak_queue_bytes[act] = peak
            inc.carried_bytes[act] = carried
            inc.dropped_bytes[act] = dropped
            inc.offered_bps[act] = offered[act]

            loaded = offered > 0
            ratio = bk.masked_divide(cap, offered, loaded)
            scale = bk.masked_where(
                ~up, 0.0, bk.masked_where(loaded, np.minimum(1.0, ratio), 1.0)
            )

        with self._sp_signals:
            # 3. per-flow achieved rate: min scale across the path
            factor = bk.segment_reduce(
                bk.gather_rows(scale, idx), starts, inc.lengths, "min"
            )
            achieved = rates * factor
            want = achieved * dt / 8.0
            before = bk.gather_rows(table.remaining_bytes, rows)
            remaining = before - np.minimum(want, before)

            # 4. congestion feedback from the same arrays
            # (post-integration queues, step-1 offered loads), exactly as
            # _feedback_for computes per link
            q = inc.queue_bytes
            span = inc.ecn_kmax - inc.ecn_kmin
            mark = bk.masked_divide(
                inc.ecn_pmax * (q - inc.ecn_kmin), span, span > 0
            )
            mark = bk.masked_where(
                q <= inc.ecn_kmin, 0.0, bk.masked_where(q >= inc.ecn_kmax, 1.0, mark)
            )

            util = bk.masked_divide(offered, cap, cap > 0)
            max_util = bk.segment_reduce(
                bk.gather_rows(util, idx), starts, inc.lengths, "max"
            )

            not_marked, queue_delay = self._accumulate_path_signals(
                inc, 1.0 - mark, q * 8.0 / cap
            )
            ecn_fraction = 1.0 - not_marked
            base_rtt = bk.gather_rows(table.base_rtt_s, rows)
            rtt = base_rtt + queue_delay

        with self._sp_feedback:
            # 5. this step's feedback goes into the array delay line (lanes
            # addressed by table row + epoch), per-flow progress is
            # scattered straight into the table columns, then everything
            # due anywhere in the line is delivered; controllers are
            # per-flow and mutually independent, so delivering all due
            # feedback and then advancing all controllers preserves the
            # scalar loop's per-flow (enqueue -> deliver -> interval) order
            self._feedback_line.append(
                _FeedbackGeneration(
                    now,
                    now + base_rtt,
                    ecn_fraction,
                    max_util,
                    rtt,
                    queue_delay,
                    rows=rows.copy(),
                    epochs=table.epoch[rows],
                )
            )
            bk.scatter_rows(table.achieved_bps, rows, achieved)
            bk.scatter_rows(table.remaining_bytes, rows, remaining)
            self._deliver_feedback_line(now)

        with self._sp_cc:
            if not self._cc_blocks:
                # object-gather baseline (the CC benchmark's comparison
                # point)
                self._ctr_object_gather.inc()
                controllers = [table.flow_at(s).cc for s in rows.tolist()]
                cc_cls = type(controllers[0])
                if all(type(cc) is cc_cls for cc in controllers):
                    cc_cls.advance_batch(controllers, dt, now)
                else:
                    for cc in controllers:
                        cc.on_interval(dt, now)
            else:
                counts = table.class_counts
                if len(counts) == 1:
                    (cc_cls,) = counts
                    self._ctr_cc_kernels.inc()
                    cc_cls.advance_batch_slots(table, rows, dt, now)
                else:
                    # mixed fleet: each class advances its cached row
                    # registry in place — controllers are per-flow and
                    # independent, so grouped advancement matches the
                    # scalar per-flow order
                    for cc_cls, cls_rows in table.rows_by_class():
                        self._ctr_cc_kernels.inc()
                        cc_cls.advance_batch_slots(table, cls_rows, dt, now)

        with self._sp_completions:
            # 6. completions (mark_finished touches no controller state, so
            # running it after the CC advance matches the scalar outcome)
            finished: List[Flow] = []
            completed_idx = np.flatnonzero(remaining <= 0.0)
            if completed_idx.size:
                want_l = want[completed_idx].tolist()
                before_l = before[completed_idx].tolist()
                for k, i in enumerate(completed_idx.tolist()):
                    flow = active[i]
                    would_send = want_l[k]
                    fraction = before_l[k] / would_send if would_send > 0 else 1.0
                    fraction = min(1.0, max(0.0, fraction))
                    flow.mark_finished(now + fraction * dt)
                    finished.append(flow)

            self._finish_flows(finished)
            # the queue monitor, link traces and scenario events read
            # inter-DC link objects between steps
            inc.sync_inter_dc()
            self._maybe_stop()

    def _update_step_vectorized_legacy(self) -> None:
        """The PR-2 object-resident vectorized core (``soa=False``).

        Kept verbatim as the measured baseline of the high-concurrency
        step-throughput benchmark: the array math is the same as the SoA
        core's, but per-flow state lives in Python objects, so every step
        crosses the Python↔numpy boundary O(flows) times (``np.fromiter``
        gathers, ``.tolist()`` writeback loops, per-object controller
        batches).  Bit-for-bit identical to both other cores.
        """
        now = self.engine.now
        dt = self.config.update_interval_s
        self._update_tick += 1
        if not self._active:
            self._maybe_stop()
            return

        # 0. lazy fast-failover sweep (may reroute / fail flows)
        self.revalidate_flows(now)
        active = self._active
        if not active:
            self._maybe_stop()
            return

        bk = self._backend
        inc = self._incidence
        inc.refresh(self._active_rows())
        num_flows = len(active)
        idx, starts = inc.idx, inc.starts
        cap, up = inc.cap_bps, inc.up

        # 1. offered load per link (object gather, PR-2 layout)
        rates = np.fromiter(
            (flow.cc.rate_bps for flow in active), dtype=np.float64, count=num_flows
        )
        offered = bk.scatter_add(
            inc.num_links, idx, bk.expand_segments(rates, inc.lengths)
        )

        # 2. queue integration + per-link scaling factor
        act = inc.active_slots
        queue, peak, carried, dropped, _ = RuntimeLink.integrate_batch(
            offered[act],
            dt,
            cap[act],
            up[act],
            inc.buffer_bytes[act],
            inc.queue_bytes[act],
            inc.peak_queue_bytes[act],
            inc.carried_bytes[act],
            inc.dropped_bytes[act],
        )
        inc.queue_bytes[act] = queue
        inc.peak_queue_bytes[act] = peak
        inc.carried_bytes[act] = carried
        inc.dropped_bytes[act] = dropped
        inc.offered_bps[act] = offered[act]

        loaded = offered > 0
        ratio = bk.masked_divide(cap, offered, loaded)
        scale = bk.masked_where(
            ~up, 0.0, bk.masked_where(loaded, np.minimum(1.0, ratio), 1.0)
        )

        # 3. per-flow achieved rate: min scale across the path
        factor = bk.segment_reduce(
            bk.gather_rows(scale, idx), starts, inc.lengths, "min"
        )
        achieved = rates * factor
        want = achieved * dt / 8.0
        before = np.fromiter(
            (flow.remaining_bytes for flow in active), dtype=np.float64, count=num_flows
        )
        remaining = before - np.minimum(want, before)

        # 4. congestion feedback from the same arrays
        q = inc.queue_bytes
        span = inc.ecn_kmax - inc.ecn_kmin
        mark = bk.masked_divide(inc.ecn_pmax * (q - inc.ecn_kmin), span, span > 0)
        mark = bk.masked_where(
            q <= inc.ecn_kmin, 0.0, bk.masked_where(q >= inc.ecn_kmax, 1.0, mark)
        )

        util = bk.masked_divide(offered, cap, cap > 0)
        max_util = bk.segment_reduce(
            bk.gather_rows(util, idx), starts, inc.lengths, "max"
        )

        not_marked, queue_delay = self._accumulate_path_signals(
            inc, 1.0 - mark, q * 8.0 / cap
        )
        ecn_fraction = 1.0 - not_marked
        base_rtt = np.fromiter(
            (flow.base_rtt_s for flow in active), dtype=np.float64, count=num_flows
        )
        rtt = base_rtt + queue_delay

        # 5. feedback into the delay line (lanes keyed by flow object),
        # per-flow writeback loops, delivery, controller advance
        self._feedback_line.append(
            _FeedbackGeneration(
                now,
                now + base_rtt,
                ecn_fraction,
                max_util,
                rtt,
                queue_delay,
                flows=list(active),
            )
        )
        achieved_l = achieved.tolist()
        remaining_l = remaining.tolist()
        for i, flow in enumerate(active):
            flow.achieved_bps = achieved_l[i]
            flow.remaining_bytes = remaining_l[i]
        self._deliver_feedback_line(now)

        controllers = [flow.cc for flow in active]
        cc_cls = type(controllers[0])
        if all(type(cc) is cc_cls for cc in controllers):
            cc_cls.advance_batch(controllers, dt, now)
        else:
            for cc in controllers:
                cc.on_interval(dt, now)

        # 6. completions
        finished: List[Flow] = []
        completed_idx = np.flatnonzero(remaining <= 0.0)
        if completed_idx.size:
            want_l = want[completed_idx].tolist()
            before_l = before[completed_idx].tolist()
            for k, i in enumerate(completed_idx.tolist()):
                flow = active[i]
                would_send = want_l[k]
                fraction = before_l[k] / would_send if would_send > 0 else 1.0
                fraction = min(1.0, max(0.0, fraction))
                flow.mark_finished(now + fraction * dt)
                finished.append(flow)

        self._finish_flows(finished)
        # the queue monitor, link traces and scenario events read inter-DC
        # link objects between steps
        inc.sync_inter_dc()
        self._maybe_stop()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _reroute_flow(self, flow: Flow, now: float) -> bool:
        """Re-resolve the path of a flow that lost a link (fast-failover).

        Returns:
            True when the flow was moved onto a fully healthy path.
        """
        try:
            new_path = self.network.resolve_path(flow.demand, now)
        except Exception:
            # no alternative route at all: leave the flow pinned; it will
            # resume if the link recovers
            return False
        if any(not link.up for link in new_path):
            return False
        self._ctr_reroutes.inc()
        flow.path = tuple(new_path)
        flow.base_rtt_s = 2.0 * sum(link.delay_s for link in new_path)
        flow.route_id = self.collector.route_index_for(flow.demand.src_dc, flow.path)
        if self._incidence is not None:
            self._incidence.update_flow_path(flow)
            self._table.path_id[flow._slot] = flow.route_id
        return True

    def _fail_flow(self, flow: Flow, now: float) -> None:
        """Explicitly fail a flow stranded on a dead path past the timeout."""
        flow._feedback_live = False
        self._remove_active(flow)
        if self._table is not None:
            self._incidence.remove_row(flow._slot)
            self._table.release(flow)
        self._failed.append(
            FlowFailure(
                flow_id=flow.flow_id,
                src_dc=flow.demand.src_dc,
                dst_dc=flow.demand.dst_dc,
                size_bytes=flow.size_bytes,
                arrival_s=flow.demand.arrival_s,
                disrupted_s=flow.disrupted_s if flow.disrupted_s is not None else now,
                failed_s=now,
                remaining_bytes=flow.remaining_bytes,
            )
        )
        if self.injector is not None:
            self.injector.on_flow_failed(flow, now)

    def _feedback_for(
        self, flow: Flow, offered: Dict[RuntimeLink, float], now: float
    ) -> FeedbackSignal:
        not_marked = 1.0
        max_util = 0.0
        queue_delay = 0.0
        for link in flow.path:
            not_marked *= 1.0 - link.ecn_mark_probability()
            load = offered.get(link, 0.0)
            if link.cap_bps > 0:
                max_util = max(max_util, load / link.cap_bps)
            queue_delay += link.queueing_delay_s()
        return FeedbackSignal(
            generated_s=now,
            ecn_fraction=1.0 - not_marked,
            max_utilization=max_util,
            rtt_s=flow.base_rtt_s + queue_delay,
            queue_delay_s=queue_delay,
        )

    def _build_result(self) -> SimulationResult:
        if self._incidence is not None:
            # flush every array-held link state (incl. host NIC links) back
            # to the RuntimeLink objects before reading stats off them
            self._incidence.sync_all()
        duration = self.engine.now
        stats = []
        for link in self.network.inter_dc_links:
            stats.append(
                LinkStats(
                    key=link.key,
                    cap_bps=link.cap_bps,
                    carried_bytes=link.carried_bytes,
                    dropped_bytes=link.dropped_bytes,
                    peak_queue_bytes=link.peak_queue_bytes,
                    utilization=link.utilization(duration),
                )
            )
        decisions = sum(
            switch.decision_count for switch in self.network.switches.values()
        )
        if self.obs.enabled:
            self._harvest_metrics(decisions)
        return SimulationResult(
            store=self.collector.store,
            link_stats=stats,
            duration_s=duration,
            unfinished_flows=len(self._active),
            routing_decisions=decisions,
            monitor_samples=self.monitor.samples_taken,
            trace=self._trace,
            failed_flows=list(self._failed),
            scenario_metrics=self.injector.metrics if self.injector else None,
            stats=self.obs.snapshot(),
        )

    def _harvest_metrics(self, decisions: int) -> None:
        """Pull component-held plain-int counters into the obs registry.

        Hot components (engine queue, incidence, switches, routers, flow
        caches) maintain cheap always-on integer counters; rather than
        routing every increment through the registry, the run harvests
        their final values here, once, at result-build time.
        """
        obs = self.obs
        engine = self.engine
        obs.counter("engine.events_scheduled").inc(engine.events_scheduled)
        obs.counter("engine.events_fired").inc(engine.events_fired)
        obs.counter("engine.events_cancelled").inc(engine.events_cancelled)
        obs.gauge("engine.peak_pending_events").set(engine.peak_pending_events)
        inc = self._incidence
        if inc is not None:
            obs.counter("incidence.registry_rebuilds").inc(inc.registry_rebuilds)
            obs.counter("incidence.membership_rebuilds").inc(inc.membership_rebuilds)
            obs.counter("incidence.dynamic_regathers").inc(inc.dynamic_regathers)
        if self.telemetry is not None:
            obs.counter("telemetry.sweeps").inc(self.telemetry.sweeps)
        obs.counter("monitor.samples").inc(self.monitor.samples_taken)
        obs.counter("routing.decisions").inc(decisions)
        batch_calls = fallbacks = sequential = 0
        hits = misses = evictions = gc_evictions = 0
        for switch in self.network.switches.values():
            batch_calls += switch.batch_calls
            log = switch.decision_log
            fallbacks += int(log.fallback[: len(log)].sum())
            router = switch.router
            sequential += getattr(router, "sequential_batch_decisions", 0)
            cache = getattr(router, "flow_cache", None)
            if cache is not None:
                hits += cache.hits
                misses += cache.misses
                evictions += cache.evictions
                gc_evictions += cache.gc_evictions
        obs.counter("routing.batch_calls").inc(batch_calls)
        obs.counter("routing.fallback_decisions").inc(fallbacks)
        obs.counter("slow_path.sequential_batch_decisions").inc(sequential)
        obs.counter("flow_cache.hits").inc(hits)
        obs.counter("flow_cache.misses").inc(misses)
        obs.counter("flow_cache.evictions").inc(evictions)
        obs.counter("flow_cache.gc_evictions").inc(gc_evictions)
        pathset = getattr(self.network, "pathset", None)
        if pathset is not None and hasattr(pathset, "memory_bytes"):
            obs.gauge("topology.pathset_bytes").set(float(pathset.memory_bytes()))
            obs.gauge("topology.pathset_paths").set(float(pathset.num_paths))
            obs.counter("topology.pathset_searches").inc(pathset.searches_run)
            obs.counter("topology.pathset_evictions").inc(pathset.cache_evictions)
        if self.injector is not None:
            applied = sum(
                1
                for outcome in self.injector.metrics.outcomes
                if outcome.applied_s is not None
            )
            obs.counter("scenario.events_applied").inc(applied)
            obs.counter("scenario.flows_failed").inc(len(self._failed))
