"""Fluid flow-level network simulation.

This is the substrate that replaces the paper's NS-3 setup (see DESIGN.md).
Flows are modelled as fluid: every ``update_interval`` the simulation

1. sums the sending rate of active flows on every link they traverse,
2. integrates (offered − capacity) into each egress queue,
3. computes each flow's achieved rate (its sending rate scaled down by the
   most-congested link it crosses),
4. generates congestion feedback (ECN fraction, max utilisation, RTT sample)
   and puts it "in flight" so the sender's congestion controller only sees it
   one base-RTT later — the outdated-feedback property of long-haul paths,
5. advances congestion-controller state and flow progress, and
6. finishes flows whose bytes are exhausted.

Routing decisions happen exactly once per flow, at arrival time, by walking
DCI switches hop by hop (see :class:`~repro.simulator.network.RuntimeNetwork`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import SimulationConfig
from .engine import SimulationEngine
from .fct import FCTCollector, FlowRecord, IdealFctModel
from .flow import FeedbackSignal, Flow, FlowDemand
from .link import RuntimeLink
from .monitor import LinkTrace, QueueMonitor
from .network import RuntimeNetwork

__all__ = ["LinkStats", "SimulationResult", "FluidSimulation"]


@dataclass(frozen=True)
class LinkStats:
    """Summary statistics of one inter-DC link after a run."""

    key: Tuple[str, str]
    cap_bps: float
    carried_bytes: float
    dropped_bytes: float
    peak_queue_bytes: float
    utilization: float


@dataclass
class SimulationResult:
    """Everything a simulation run produces.

    Attributes:
        records: one :class:`FlowRecord` per completed flow.
        link_stats: per inter-DC link summary.
        duration_s: simulated time elapsed (from time 0 to the stop time).
        unfinished_flows: flows still active when the simulation stopped
            (should be 0 in a healthy run; benchmarks assert on it).
        routing_decisions: total number of per-switch routing decisions.
        monitor_samples: number of queue-monitor sweeps taken.
        trace: optional per-link time series.
    """

    records: List[FlowRecord]
    link_stats: List[LinkStats]
    duration_s: float
    unfinished_flows: int
    routing_decisions: int
    monitor_samples: int
    trace: Optional[LinkTrace] = None

    def slowdowns(self) -> List[float]:
        """All flow slowdowns."""
        return [r.slowdown for r in self.records]

    def utilization_by_link(self) -> Dict[Tuple[str, str], float]:
        """Mapping of directed link key to average utilisation."""
        return {stats.key: stats.utilization for stats in self.link_stats}


class FluidSimulation:
    """Drives one simulation run end to end."""

    def __init__(
        self,
        network: RuntimeNetwork,
        demands: Sequence[FlowDemand],
        cc_factory: Callable[[float, float], object],
        config: Optional[SimulationConfig] = None,
        trace_links: bool = False,
    ) -> None:
        """Prepare a run.

        Args:
            network: runtime network (topology + routers).
            demands: flow demands, in any order (they are sorted by arrival).
            cc_factory: ``cc_factory(line_rate_bps, base_rtt_s)`` returning a
                fresh congestion-control instance per flow.
            config: simulation tunables.
            trace_links: record per-link time series (costs memory; used by
                the motivation figure).
        """
        self.network = network
        self.config = config or network.config
        self.config.validate()
        self.cc_factory = cc_factory
        self.demands = sorted(demands, key=lambda d: (d.arrival_s, d.flow_id))

        self.engine = SimulationEngine()
        self._rng = np.random.default_rng(self.config.seed)
        ideal = IdealFctModel(network.topology, network.pathset)
        self.collector = FCTCollector(
            ideal, fidelity_noise=self.config.fidelity_noise, rng=self._rng
        )
        self._trace = LinkTrace() if trace_links else None
        self.monitor = QueueMonitor(network, trace=self._trace)

        self._active: List[Flow] = []
        self._pending_arrivals = len(self.demands)
        self._stopped = False

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        for demand in self.demands:
            self.engine.schedule(demand.arrival_s, self._make_arrival(demand))

        # the monitor is scheduled before the rate/queue update so that when
        # both fire at the same instant the switch samples its queues first
        # (and the run cannot end before at least one monitor sweep happened)
        self.engine.schedule_periodic(
            self.config.monitor_interval_s, self._monitor_step
        )
        self.engine.schedule_periodic(
            self.config.update_interval_s, self._update_step
        )
        self.engine.schedule_periodic(self.config.gc_interval_s, self._gc_step)

        last_arrival = self.demands[-1].arrival_s if self.demands else 0.0
        deadline = min(
            self.config.max_sim_time_s, last_arrival + self.config.drain_timeout_s
        )
        self.engine.run(until=deadline)
        return self._build_result()

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #
    def _make_arrival(self, demand: FlowDemand) -> Callable[[], None]:
        def arrive() -> None:
            self._pending_arrivals -= 1
            now = self.engine.now
            path = self.network.resolve_path(demand, now)
            base_rtt = 2.0 * sum(link.delay_s for link in path)
            line_rate = path[0].cap_bps
            cc = self.cc_factory(line_rate, base_rtt)
            flow = Flow(demand, path, cc, base_rtt)
            self._active.append(flow)

        return arrive

    def _monitor_step(self) -> None:
        self.monitor.sample(self.engine.now)

    def _gc_step(self) -> None:
        self.network.tick_all(self.engine.now)

    def _update_step(self) -> None:
        now = self.engine.now
        dt = self.config.update_interval_s
        if not self._active:
            if self._pending_arrivals == 0 and not self._stopped:
                self._stopped = True
                self.engine.stop()
            return

        # 0. lazy fast-failover: a flow whose path crosses a dead port is
        # treated as if its next packet re-arrived at the switch — the stale
        # flow-cache entry is invalidated and the flow is re-hashed onto a
        # healthy candidate (paper §3.4)
        for flow in self._active:
            if any(not link.up for link in flow.path):
                self._reroute_flow(flow, now)

        # 1. offered load per link
        offered: Dict[RuntimeLink, float] = {}
        for flow in self._active:
            rate = flow.sending_rate_bps
            for link in flow.path:
                offered[link] = offered.get(link, 0.0) + rate

        # 2. queue integration + per-link scaling factor
        scale: Dict[RuntimeLink, float] = {}
        for link, load in offered.items():
            link.integrate(load, dt)
            if load > 0 and link.up:
                scale[link] = min(1.0, link.cap_bps / load)
            elif not link.up:
                scale[link] = 0.0
            else:
                scale[link] = 1.0

        # 3.-6. per-flow progress, feedback and completion
        finished: List[Flow] = []
        for flow in self._active:
            factor = min(scale[link] for link in flow.path)
            achieved = flow.sending_rate_bps * factor
            before = flow.remaining_bytes
            sent = flow.transfer(achieved, dt)

            signal = self._feedback_for(flow, offered, now)
            flow.enqueue_feedback(signal, now + flow.base_rtt_s)
            flow.deliver_due_feedback(now)
            flow.cc.on_interval(dt, now)

            if flow.completed:
                # locate the completion instant inside the step
                would_send = achieved * dt / 8.0
                fraction = before / would_send if would_send > 0 else 1.0
                fraction = min(1.0, max(0.0, fraction))
                flow.mark_finished(now + fraction * dt)
                finished.append(flow)

        for flow in finished:
            self._active.remove(flow)
            self.collector.record(flow)

        if not self._active and self._pending_arrivals == 0 and not self._stopped:
            self._stopped = True
            self.engine.stop()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _reroute_flow(self, flow: Flow, now: float) -> None:
        """Re-resolve the path of a flow that lost a link (fast-failover)."""
        try:
            new_path = self.network.resolve_path(flow.demand, now)
        except Exception:
            # no alternative route at all: leave the flow pinned; it will
            # resume if the link recovers
            return
        if any(not link.up for link in new_path):
            return
        flow.path = tuple(new_path)
        flow.base_rtt_s = 2.0 * sum(link.delay_s for link in new_path)

    def _feedback_for(
        self, flow: Flow, offered: Dict[RuntimeLink, float], now: float
    ) -> FeedbackSignal:
        not_marked = 1.0
        max_util = 0.0
        queue_delay = 0.0
        for link in flow.path:
            not_marked *= 1.0 - link.ecn_mark_probability()
            load = offered.get(link, 0.0)
            if link.cap_bps > 0:
                max_util = max(max_util, load / link.cap_bps)
            queue_delay += link.queueing_delay_s()
        return FeedbackSignal(
            generated_s=now,
            ecn_fraction=1.0 - not_marked,
            max_utilization=max_util,
            rtt_s=flow.base_rtt_s + queue_delay,
            queue_delay_s=queue_delay,
        )

    def _build_result(self) -> SimulationResult:
        duration = self.engine.now
        stats = []
        for link in self.network.inter_dc_links:
            stats.append(
                LinkStats(
                    key=link.key,
                    cap_bps=link.cap_bps,
                    carried_bytes=link.carried_bytes,
                    dropped_bytes=link.dropped_bytes,
                    peak_queue_bytes=link.peak_queue_bytes,
                    utilization=link.utilization(duration),
                )
            )
        decisions = sum(
            len(switch.decisions) for switch in self.network.switches.values()
        )
        return SimulationResult(
            records=self.collector.records,
            link_stats=stats,
            duration_s=duration,
            unfinished_flows=len(self._active),
            routing_decisions=decisions,
            monitor_samples=self.monitor.samples_taken,
            trace=self._trace,
        )
