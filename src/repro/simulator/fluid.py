"""Fluid flow-level network simulation.

This is the substrate that replaces the paper's NS-3 setup (see DESIGN.md).
Flows are modelled as fluid: every ``update_interval`` the simulation

1. sums the sending rate of active flows on every link they traverse,
2. integrates (offered − capacity) into each egress queue,
3. computes each flow's achieved rate (its sending rate scaled down by the
   most-congested link it crosses),
4. generates congestion feedback (ECN fraction, max utilisation, RTT sample)
   and puts it "in flight" so the sender's congestion controller only sees it
   one base-RTT later — the outdated-feedback property of long-haul paths,
5. advances congestion-controller state and flow progress, and
6. finishes flows whose bytes are exhausted.

Routing decisions happen exactly once per flow, at arrival time, by walking
DCI switches hop by hop (see :class:`~repro.simulator.network.RuntimeNetwork`).

A run may additionally carry a :class:`~repro.scenarios.events.Scenario`:
its injector schedules fault/traffic events on the same engine heap and
calls :meth:`FluidSimulation.revalidate_flows` after each topology mutation,
so in-flight flows are re-routed (or explicitly failed) through the lazy
fast-failover path mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import SimulationConfig
from .engine import SimulationEngine
from .fct import FCTCollector, FlowRecord, IdealFctModel
from .flow import FeedbackSignal, Flow, FlowDemand
from .link import RuntimeLink
from .monitor import LinkTrace, QueueMonitor
from .network import RuntimeNetwork

__all__ = ["LinkStats", "FlowFailure", "SimulationResult", "FluidSimulation"]


@dataclass(frozen=True)
class LinkStats:
    """Summary statistics of one inter-DC link after a run."""

    key: Tuple[str, str]
    cap_bps: float
    carried_bytes: float
    dropped_bytes: float
    peak_queue_bytes: float
    utilization: float


@dataclass(frozen=True)
class FlowFailure:
    """A flow explicitly failed by the scenario engine.

    Recorded when a disrupted flow could not be moved onto a healthy path
    within the scenario's stranded timeout — the simulation's equivalent of
    the application giving up on a blackholed connection.
    """

    flow_id: int
    src_dc: str
    dst_dc: str
    size_bytes: int
    arrival_s: float
    disrupted_s: float
    failed_s: float
    remaining_bytes: float


@dataclass
class SimulationResult:
    """Everything a simulation run produces.

    Attributes:
        records: one :class:`FlowRecord` per completed flow.
        link_stats: per inter-DC link summary.
        duration_s: simulated time elapsed (from time 0 to the stop time).
        unfinished_flows: flows still active when the simulation stopped
            (should be 0 in a healthy run; benchmarks assert on it).
        routing_decisions: total number of per-switch routing decisions.
        monitor_samples: number of queue-monitor sweeps taken.
        trace: optional per-link time series.
        failed_flows: flows explicitly failed by the scenario engine
            (stranded on a dead path past the scenario's timeout).
        scenario_metrics: per-event recovery metrics
            (:class:`~repro.scenarios.injector.ScenarioMetrics`) when the
            run carried a scenario, else ``None``.
    """

    records: List[FlowRecord]
    link_stats: List[LinkStats]
    duration_s: float
    unfinished_flows: int
    routing_decisions: int
    monitor_samples: int
    trace: Optional[LinkTrace] = None
    failed_flows: List[FlowFailure] = field(default_factory=list)
    scenario_metrics: Optional[object] = None

    def slowdowns(self) -> List[float]:
        """All flow slowdowns."""
        return [r.slowdown for r in self.records]

    def utilization_by_link(self) -> Dict[Tuple[str, str], float]:
        """Mapping of directed link key to average utilisation."""
        return {stats.key: stats.utilization for stats in self.link_stats}


class FluidSimulation:
    """Drives one simulation run end to end."""

    def __init__(
        self,
        network: RuntimeNetwork,
        demands: Sequence[FlowDemand],
        cc_factory: Callable[[float, float], object],
        config: Optional[SimulationConfig] = None,
        trace_links: bool = False,
        scenario=None,
    ) -> None:
        """Prepare a run.

        Args:
            network: runtime network (topology + routers).
            demands: flow demands, in any order (they are sorted by arrival).
            cc_factory: ``cc_factory(line_rate_bps, base_rtt_s)`` returning a
                fresh congestion-control instance per flow.
            config: simulation tunables.
            trace_links: record per-link time series (costs memory; used by
                the motivation figure).
            scenario: optional :class:`~repro.scenarios.events.Scenario`;
                its events (fault injection, traffic surges, capacity
                changes) are scheduled on the engine heap and applied to the
                runtime network mid-run.
        """
        self.network = network
        self.config = config or network.config
        self.config.validate()
        self.cc_factory = cc_factory
        self.demands = sorted(demands, key=lambda d: (d.arrival_s, d.flow_id))

        self.engine = SimulationEngine()
        self._rng = np.random.default_rng(self.config.seed)
        ideal = IdealFctModel(network.topology, network.pathset)
        self.collector = FCTCollector(
            ideal, fidelity_noise=self.config.fidelity_noise, rng=self._rng
        )
        self._trace = LinkTrace() if trace_links else None
        self.monitor = QueueMonitor(network, trace=self._trace)

        self._active: List[Flow] = []
        self._pending_arrivals = len(self.demands)
        self._stopped = False
        #: flow id -> (arrival Event, demand) for not-yet-arrived flows
        self._arrival_events: Dict[int, Tuple[object, FlowDemand]] = {}
        self._injected_last_arrival_s = 0.0
        self._failed: List[FlowFailure] = []

        self.injector = None
        if scenario is not None:
            # local import: repro.scenarios depends on the simulator types
            from ..scenarios.injector import ScenarioInjector

            self.injector = ScenarioInjector(scenario, self)
            self.injector.install()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the simulation and return its result."""
        for demand in self.demands:
            self._schedule_arrival(demand)

        # the monitor is scheduled before the rate/queue update so that when
        # both fire at the same instant the switch samples its queues first
        # (and the run cannot end before at least one monitor sweep happened)
        self.engine.schedule_periodic(
            self.config.monitor_interval_s, self._monitor_step
        )
        self.engine.schedule_periodic(
            self.config.update_interval_s, self._update_step
        )
        self.engine.schedule_periodic(self.config.gc_interval_s, self._gc_step)

        last_arrival = self.demands[-1].arrival_s if self.demands else 0.0
        last_arrival = max(last_arrival, self._injected_last_arrival_s)
        deadline = min(
            self.config.max_sim_time_s, last_arrival + self.config.drain_timeout_s
        )
        self.engine.run(until=deadline)
        return self._build_result()

    # ------------------------------------------------------------------ #
    # scenario-facing API (used by repro.scenarios.injector)
    # ------------------------------------------------------------------ #
    def inject_demands(self, demands: Sequence[FlowDemand]) -> None:
        """Add demands mid-run (or pre-run): traffic-surge events.

        Raises:
            SimulationError: if a demand's arrival lies in the past.
        """
        for demand in demands:
            self._pending_arrivals += 1
            self._schedule_arrival(demand)
            self._injected_last_arrival_s = max(
                self._injected_last_arrival_s, demand.arrival_s
            )

    def cancel_pending(self, predicate: Callable[[FlowDemand], bool]) -> int:
        """Cancel not-yet-arrived demands matching ``predicate``.

        Returns:
            Number of demands cancelled (traffic-drain events).
        """
        cancelled = 0
        for flow_id, (event, demand) in list(self._arrival_events.items()):
            if predicate(demand):
                event.cancel()
                del self._arrival_events[flow_id]
                self._pending_arrivals -= 1
                cancelled += 1
        return cancelled

    def revalidate_flows(self, now: float) -> None:
        """Re-evaluate every in-flight flow against current link liveness.

        Runs on every update step and immediately after each scenario state
        event.  A flow whose path crosses a dead port is treated as if its
        next packet re-arrived at the switch — the stale flow-cache entry is
        lazily invalidated and the flow re-hashed onto a healthy candidate
        (paper §3.4).  A flow with no healthy alternative stays pinned until
        its path recovers, or — when the scenario sets a stranded timeout —
        is explicitly failed and recorded.
        """
        stranded_timeout = None
        if self.injector is not None:
            stranded_timeout = self.injector.scenario.stranded_timeout_s
        for flow in list(self._active):
            broken = any(not link.up for link in flow.path)
            if not broken:
                if flow.disrupted_s is not None:
                    # the original path healed in place (link recovery)
                    if self.injector is not None:
                        self.injector.on_flow_restored(flow, now)
                    flow.disrupted_s = None
                continue
            if flow.disrupted_s is None:
                flow.disrupted_s = now
                if self.injector is not None:
                    self.injector.on_flow_disrupted(flow, now)
            if self._reroute_flow(flow, now):
                if self.injector is not None:
                    self.injector.on_flow_rerouted(flow, now)
                flow.disrupted_s = None
            elif (
                stranded_timeout is not None
                and now - flow.disrupted_s >= stranded_timeout
            ):
                self._fail_flow(flow, now)

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #
    def _schedule_arrival(self, demand: FlowDemand) -> None:
        event = self.engine.schedule(demand.arrival_s, self._make_arrival(demand))
        self._arrival_events[demand.flow_id] = (event, demand)

    def _make_arrival(self, demand: FlowDemand) -> Callable[[], None]:
        def arrive() -> None:
            self._arrival_events.pop(demand.flow_id, None)
            self._pending_arrivals -= 1
            now = self.engine.now
            path = self.network.resolve_path(demand, now)
            base_rtt = 2.0 * sum(link.delay_s for link in path)
            line_rate = path[0].cap_bps
            cc = self.cc_factory(line_rate, base_rtt)
            flow = Flow(demand, path, cc, base_rtt)
            self._active.append(flow)

        return arrive

    def _monitor_step(self) -> None:
        self.monitor.sample(self.engine.now)

    def _gc_step(self) -> None:
        self.network.tick_all(self.engine.now)

    def _update_step(self) -> None:
        now = self.engine.now
        dt = self.config.update_interval_s
        if not self._active:
            if self._pending_arrivals == 0 and not self._stopped:
                self._stopped = True
                self.engine.stop()
            return

        # 0. lazy fast-failover sweep (see revalidate_flows)
        self.revalidate_flows(now)

        # 1. offered load per link
        offered: Dict[RuntimeLink, float] = {}
        for flow in self._active:
            rate = flow.sending_rate_bps
            for link in flow.path:
                offered[link] = offered.get(link, 0.0) + rate

        # 2. queue integration + per-link scaling factor
        scale: Dict[RuntimeLink, float] = {}
        for link, load in offered.items():
            link.integrate(load, dt)
            if load > 0 and link.up:
                scale[link] = min(1.0, link.cap_bps / load)
            elif not link.up:
                scale[link] = 0.0
            else:
                scale[link] = 1.0

        # 3.-6. per-flow progress, feedback and completion
        finished: List[Flow] = []
        for flow in self._active:
            factor = min(scale[link] for link in flow.path)
            achieved = flow.sending_rate_bps * factor
            before = flow.remaining_bytes
            sent = flow.transfer(achieved, dt)

            signal = self._feedback_for(flow, offered, now)
            flow.enqueue_feedback(signal, now + flow.base_rtt_s)
            flow.deliver_due_feedback(now)
            flow.cc.on_interval(dt, now)

            if flow.completed:
                # locate the completion instant inside the step
                would_send = achieved * dt / 8.0
                fraction = before / would_send if would_send > 0 else 1.0
                fraction = min(1.0, max(0.0, fraction))
                flow.mark_finished(now + fraction * dt)
                finished.append(flow)

        for flow in finished:
            self._active.remove(flow)
            self.collector.record(flow)

        if not self._active and self._pending_arrivals == 0 and not self._stopped:
            self._stopped = True
            self.engine.stop()

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _reroute_flow(self, flow: Flow, now: float) -> bool:
        """Re-resolve the path of a flow that lost a link (fast-failover).

        Returns:
            True when the flow was moved onto a fully healthy path.
        """
        try:
            new_path = self.network.resolve_path(flow.demand, now)
        except Exception:
            # no alternative route at all: leave the flow pinned; it will
            # resume if the link recovers
            return False
        if any(not link.up for link in new_path):
            return False
        flow.path = tuple(new_path)
        flow.base_rtt_s = 2.0 * sum(link.delay_s for link in new_path)
        return True

    def _fail_flow(self, flow: Flow, now: float) -> None:
        """Explicitly fail a flow stranded on a dead path past the timeout."""
        self._active.remove(flow)
        self._failed.append(
            FlowFailure(
                flow_id=flow.flow_id,
                src_dc=flow.demand.src_dc,
                dst_dc=flow.demand.dst_dc,
                size_bytes=flow.size_bytes,
                arrival_s=flow.demand.arrival_s,
                disrupted_s=flow.disrupted_s if flow.disrupted_s is not None else now,
                failed_s=now,
                remaining_bytes=flow.remaining_bytes,
            )
        )
        if self.injector is not None:
            self.injector.on_flow_failed(flow, now)

    def _feedback_for(
        self, flow: Flow, offered: Dict[RuntimeLink, float], now: float
    ) -> FeedbackSignal:
        not_marked = 1.0
        max_util = 0.0
        queue_delay = 0.0
        for link in flow.path:
            not_marked *= 1.0 - link.ecn_mark_probability()
            load = offered.get(link, 0.0)
            if link.cap_bps > 0:
                max_util = max(max_util, load / link.cap_bps)
            queue_delay += link.queueing_delay_s()
        return FeedbackSignal(
            generated_s=now,
            ecn_fraction=1.0 - not_marked,
            max_utilization=max_util,
            rtt_s=flow.base_rtt_s + queue_delay,
            queue_delay_s=queue_delay,
        )

    def _build_result(self) -> SimulationResult:
        duration = self.engine.now
        stats = []
        for link in self.network.inter_dc_links:
            stats.append(
                LinkStats(
                    key=link.key,
                    cap_bps=link.cap_bps,
                    carried_bytes=link.carried_bytes,
                    dropped_bytes=link.dropped_bytes,
                    peak_queue_bytes=link.peak_queue_bytes,
                    utilization=link.utilization(duration),
                )
            )
        decisions = sum(
            len(switch.decisions) for switch in self.network.switches.values()
        )
        return SimulationResult(
            records=self.collector.records,
            link_stats=stats,
            duration_s=duration,
            unfinished_flows=len(self._active),
            routing_decisions=decisions,
            monitor_samples=self.monitor.samples_taken,
            trace=self._trace,
            failed_flows=list(self._failed),
            scenario_metrics=self.injector.metrics if self.injector else None,
        )
