"""DCI (datacenter-interconnect) switch runtime model.

Each datacenter has one DCI switch.  The switch owns the egress ports toward
neighbouring datacenters (one :class:`~repro.simulator.link.RuntimeLink` per
neighbour), hosts a routing algorithm instance (ECMP, UCMP, RedTE or LCMP)
and exposes the queue-monitor sampling hook that feeds the router's
congestion estimator.

Only the *first packet* of a flow consults the router (per-flow stickiness);
in the fluid model that corresponds to the single routing decision taken at
flow-arrival time.  Port liveness is tracked here so that data-plane
fast-failover (paper §3.4) can exclude dead ports before the router sees the
candidate list.

Decision bookkeeping is columnar: every decision lands in the switch's
:class:`DecisionLog` (parallel numpy columns plus a small path-intern
table), and the legacy :class:`RoutingDecision` objects are materialised
lazily — and freshly on every access — by the :attr:`DCISwitch.decisions`
property, so callers can no longer mutate the switch's internal state
through the returned list.  Batched arrivals route through
:meth:`DCISwitch.route_flows_batch`, which makes one
:meth:`~repro.routing.base.Router.select_batch` call for the whole batch
and appends the decisions as one columnar write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..topology.paths import CandidatePath
from .flow import FlowDemand
from .interning import Interner
from .link import RuntimeLink

__all__ = ["PortSample", "DCISwitch", "RoutingDecision", "DecisionLog", "build_port_sample"]


@dataclass(frozen=True)
class PortSample:
    """One queue-monitor observation of a DCI egress port.

    Attributes:
        switch: name of the sampling DCI switch.
        next_dc: neighbouring datacenter the port leads to.
        link_key: (src, dst) of the underlying directed link.
        queue_bytes: instantaneous egress-queue occupancy.
        carried_bytes: cumulative bytes carried by the port.
        cap_bps: provisioned capacity of the port.
        buffer_bytes: egress buffer size.
        up: port liveness.
        time_s: sampling time.
    """

    switch: str
    next_dc: str
    link_key: tuple
    queue_bytes: float
    carried_bytes: float
    cap_bps: float
    buffer_bytes: int
    up: bool
    time_s: float


def build_port_sample(switch: str, next_dc: str, link: RuntimeLink, now: float) -> PortSample:
    """Construct the compatibility :class:`PortSample` for one egress port.

    Shared by the object-path sampler (:meth:`DCISwitch.sample_ports`) and
    the telemetry plane's lazy shim so both produce identical samples.
    """
    return PortSample(
        switch=switch,
        next_dc=next_dc,
        link_key=link.key,
        queue_bytes=link.queue_bytes,
        carried_bytes=link.carried_bytes,
        cap_bps=link.cap_bps,
        buffer_bytes=link.buffer_bytes,
        up=link.up,
        time_s=now,
    )


@dataclass(frozen=True)
class RoutingDecision:
    """Outcome of one routing decision at one DCI switch."""

    switch: str
    flow_id: int
    dst_dc: str
    chosen: CandidatePath
    num_candidates: int
    fallback: bool
    time_s: float


class DecisionLog:
    """Columnar per-switch decision record (array-resident control plane).

    One row per routing decision: flow id, decision time, an interned path
    reference, an interned destination reference, the live candidate count
    and the all-ports-dead fallback flag.  Columns grow by doubling;
    :meth:`materialize` rebuilds the legacy :class:`RoutingDecision`
    objects on demand (a fresh list every call — callers cannot mutate the
    log through it).
    """

    def __init__(self, capacity: int = 64) -> None:
        self._n = 0
        self.flow_id = np.empty(capacity, dtype=np.int64)
        self.time_s = np.empty(capacity)
        self.path_ref = np.empty(capacity, dtype=np.int64)
        self.dst_ref = np.empty(capacity, dtype=np.int64)
        self.num_candidates = np.empty(capacity, dtype=np.int64)
        self.fallback = np.empty(capacity, dtype=bool)
        #: interned chosen paths (reference -> CandidatePath); keyed by the
        #: pathset's precomputed global path id when the caller provides
        #: one (integer lookup, the batched hot path) and by the DC tuple
        #: otherwise (the scalar route_flow path, ad-hoc candidates)
        self._paths = Interner()
        self._global_refs: Dict[int, int] = {}
        #: interned destination DC names
        self._dsts = Interner()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    def _grow_to(self, need: int) -> None:
        capacity = len(self.flow_id)
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        for name in ("flow_id", "time_s", "path_ref", "dst_ref", "num_candidates", "fallback"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def _intern_path(self, candidate: CandidatePath, global_id: int = -1) -> int:
        if global_id >= 0:
            ref = self._global_refs.get(global_id)
            if ref is None:
                ref = self._paths.intern(candidate.dcs, candidate)
                self._global_refs[global_id] = ref
            return ref
        return self._paths.intern(candidate.dcs, candidate)

    # ------------------------------------------------------------------ #
    def append(
        self,
        flow_id: int,
        time_s: float,
        chosen: CandidatePath,
        dst_dc: str,
        num_candidates: int,
        fallback: bool,
    ) -> None:
        """Record one decision."""
        n = self._n
        self._grow_to(n + 1)
        self.flow_id[n] = flow_id
        self.time_s[n] = time_s
        self.path_ref[n] = self._intern_path(chosen)
        self.dst_ref[n] = self._dsts.intern(dst_dc)
        self.num_candidates[n] = num_candidates
        self.fallback[n] = fallback
        self._n = n + 1

    def append_batch(
        self,
        demands: Sequence[FlowDemand],
        times: np.ndarray,
        candidates: Sequence[CandidatePath],
        chosen_idx: np.ndarray,
        dst_dc: str,
        fallback: bool,
        path_ids: Optional[Sequence[int]] = None,
    ) -> None:
        """Record one batched decision (one row per demand).

        Args:
            path_ids: precomputed global path ids aligned with
                ``candidates`` (see :meth:`PathSet.candidate_ids`); interns
                by integer lookup when given.
        """
        count = len(demands)
        n = self._n
        self._grow_to(n + count)
        self.flow_id[n : n + count] = [d.flow_id for d in demands]
        self.time_s[n : n + count] = times
        if path_ids is None:
            path_ids = (-1,) * len(candidates)
        refs = np.array(
            [self._intern_path(c, g) for c, g in zip(candidates, path_ids)],
            dtype=np.int64,
        )
        self.path_ref[n : n + count] = refs[chosen_idx]
        self.dst_ref[n : n + count] = self._dsts.intern(dst_dc)
        self.num_candidates[n : n + count] = len(candidates)
        self.fallback[n : n + count] = fallback
        self._n = n + count

    # ------------------------------------------------------------------ #
    def chosen_path(self, row: int) -> CandidatePath:
        """The candidate chosen by the ``row``-th decision."""
        return self._paths[int(self.path_ref[row])]

    def first_hops(self) -> List[str]:
        """Chosen first hop per decision (placement analysis helper)."""
        hops = [p.first_hop for p in self._paths.values]
        return [hops[ref] for ref in self.path_ref[: self._n].tolist()]

    def times(self) -> np.ndarray:
        """Decision times (a copy)."""
        return self.time_s[: self._n].copy()

    def materialize(self, switch: str) -> List[RoutingDecision]:
        """Rebuild the legacy per-decision objects (a fresh list)."""
        n = self._n
        flow_ids = self.flow_id[:n].tolist()
        times = self.time_s[:n].tolist()
        path_refs = self.path_ref[:n].tolist()
        dst_refs = self.dst_ref[:n].tolist()
        counts = self.num_candidates[:n].tolist()
        fallbacks = self.fallback[:n].tolist()
        return [
            RoutingDecision(
                switch=switch,
                flow_id=flow_ids[i],
                dst_dc=self._dsts[dst_refs[i]],
                chosen=self._paths[path_refs[i]],
                num_candidates=counts[i],
                fallback=fallbacks[i],
                time_s=times[i],
            )
            for i in range(n)
        ]


class DCISwitch:
    """Runtime DCI switch: ports + router + columnar decision bookkeeping."""

    def __init__(self, dc: str, router) -> None:
        """Create the switch for datacenter ``dc`` running ``router``.

        The router must implement the :class:`repro.routing.base.Router`
        interface; it is attached (``router.attach(self)``) so it can learn
        the switch name and port set.
        """
        self.dc = dc
        self.router = router
        self._ports: Dict[str, RuntimeLink] = {}
        self.decision_log = DecisionLog()
        #: lifetime count of route_flows_batch calls (batched control plane)
        self.batch_calls = 0
        router.attach(self)

    # ------------------------------------------------------------------ #
    # ports
    # ------------------------------------------------------------------ #
    def add_port(self, next_dc: str, link: RuntimeLink) -> None:
        """Register the egress port toward ``next_dc``."""
        self._ports[next_dc] = link

    @property
    def ports(self) -> Dict[str, RuntimeLink]:
        """Mapping of neighbouring DC name to the egress link."""
        return dict(self._ports)

    def port_to(self, next_dc: str) -> Optional[RuntimeLink]:
        """The egress link toward ``next_dc``, or ``None``."""
        return self._ports.get(next_dc)

    def port_up(self, next_dc: str) -> bool:
        """Liveness of the port toward ``next_dc`` (False if unknown)."""
        link = self._ports.get(next_dc)
        return bool(link and link.up)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    @property
    def decisions(self) -> List[RoutingDecision]:
        """All routing decisions taken so far.

        Materialised freshly from the columnar :attr:`decision_log` on
        every access, so mutating the returned list cannot corrupt switch
        state.  Prefer :attr:`decision_count` when only the count matters.
        """
        return self.decision_log.materialize(self.dc)

    @property
    def decision_count(self) -> int:
        """Number of decisions taken (O(1), no materialisation)."""
        return len(self.decision_log)

    def _usable_candidates(
        self, dst_dc: str, candidates: Sequence[CandidatePath]
    ) -> Tuple[List[int], bool]:
        """Exclude dead egress ports (data-plane fast-failover).

        When every port is dead the full candidate list is passed through so
        the caller can at least make progress and record the loss downstream.

        Returns:
            ``(indices, fallback)`` — positions of the usable candidates.
        """
        if not candidates:
            raise ValueError(f"{self.dc}: no candidate routes toward {dst_dc}")
        live = [j for j, c in enumerate(candidates) if self.port_up(c.first_hop)]
        fallback = not live
        usable = live if live else list(range(len(candidates)))
        return usable, fallback

    def route_flow(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demand: FlowDemand,
        now: float,
    ) -> CandidatePath:
        """Pick the candidate route for a new flow toward ``dst_dc``.

        Raises:
            ValueError: when ``candidates`` is empty.
        """
        positions, fallback = self._usable_candidates(dst_dc, candidates)
        usable = [candidates[j] for j in positions]
        chosen = self.router.select(dst_dc, usable, demand, now)
        self.decision_log.append(
            flow_id=demand.flow_id,
            time_s=now,
            chosen=chosen,
            dst_dc=dst_dc,
            num_candidates=len(usable),
            fallback=fallback,
        )
        return chosen

    def route_flows_batch(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demands: Sequence[FlowDemand],
        times: np.ndarray,
        path_ids: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, List[CandidatePath]]:
        """Route a batch of simultaneous arrivals toward ``dst_dc``.

        One liveness filter and one :meth:`Router.select_batch` call cover
        the whole batch; each flow is still stamped with its own decision
        time (``times[i]``).

        Args:
            path_ids: precomputed global path ids aligned with
                ``candidates``; forwarded to the decision log so interning
                happens by integer lookup.

        Returns:
            ``(chosen_idx, usable)`` — per-demand indices into the
            liveness-filtered ``usable`` candidate list.

        Raises:
            ValueError: when ``candidates`` is empty.
        """
        self.batch_calls += 1
        positions, fallback = self._usable_candidates(dst_dc, candidates)
        usable = [candidates[j] for j in positions]
        usable_ids = (
            [path_ids[j] for j in positions] if path_ids is not None else None
        )
        chosen_idx = self.router.select_batch(
            dst_dc, usable, demands, times, path_ids=usable_ids
        )
        self.decision_log.append_batch(
            demands, times, usable, chosen_idx, dst_dc, fallback, path_ids=usable_ids
        )
        return chosen_idx, usable

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def sample_ports(self, now: float) -> List[PortSample]:
        """Sample every egress port and feed the router's estimator.

        This is the object-path sampler (the scalar reference core and the
        scenario injector's immediate liveness refresh); the array-resident
        control plane sweeps the same values into
        :class:`~repro.simulator.telemetry.TelemetryPlane` columns instead
        and only builds :class:`PortSample` shims for routers that consume
        them.
        """
        samples = []
        for next_dc, link in self._ports.items():
            sample = build_port_sample(self.dc, next_dc, link, now)
            samples.append(sample)
            self.router.on_port_sample(sample, now)
        return samples

    def tick(self, now: float) -> None:
        """Periodic housekeeping (router GC, control loops)."""
        self.router.on_tick(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DCISwitch({self.dc}, ports={sorted(self._ports)}, router={self.router.name})"
