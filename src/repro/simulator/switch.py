"""DCI (datacenter-interconnect) switch runtime model.

Each datacenter has one DCI switch.  The switch owns the egress ports toward
neighbouring datacenters (one :class:`~repro.simulator.link.RuntimeLink` per
neighbour), hosts a routing algorithm instance (ECMP, UCMP, RedTE or LCMP)
and exposes the queue-monitor sampling hook that feeds the router's
congestion estimator.

Only the *first packet* of a flow consults the router (per-flow stickiness);
in the fluid model that corresponds to the single routing decision taken at
flow-arrival time.  Port liveness is tracked here so that data-plane
fast-failover (paper §3.4) can exclude dead ports before the router sees the
candidate list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..topology.paths import CandidatePath
from .flow import FlowDemand
from .link import RuntimeLink

__all__ = ["PortSample", "DCISwitch", "RoutingDecision"]


@dataclass(frozen=True)
class PortSample:
    """One queue-monitor observation of a DCI egress port.

    Attributes:
        switch: name of the sampling DCI switch.
        next_dc: neighbouring datacenter the port leads to.
        link_key: (src, dst) of the underlying directed link.
        queue_bytes: instantaneous egress-queue occupancy.
        carried_bytes: cumulative bytes carried by the port.
        cap_bps: provisioned capacity of the port.
        buffer_bytes: egress buffer size.
        up: port liveness.
        time_s: sampling time.
    """

    switch: str
    next_dc: str
    link_key: tuple
    queue_bytes: float
    carried_bytes: float
    cap_bps: float
    buffer_bytes: int
    up: bool
    time_s: float


@dataclass(frozen=True)
class RoutingDecision:
    """Outcome of one routing decision at one DCI switch."""

    switch: str
    flow_id: int
    dst_dc: str
    chosen: CandidatePath
    num_candidates: int
    fallback: bool
    time_s: float


class DCISwitch:
    """Runtime DCI switch: ports + router + decision bookkeeping."""

    def __init__(self, dc: str, router) -> None:
        """Create the switch for datacenter ``dc`` running ``router``.

        The router must implement the :class:`repro.routing.base.Router`
        interface; it is attached (``router.attach(self)``) so it can learn
        the switch name and port set.
        """
        self.dc = dc
        self.router = router
        self._ports: Dict[str, RuntimeLink] = {}
        self.decisions: List[RoutingDecision] = []
        router.attach(self)

    # ------------------------------------------------------------------ #
    # ports
    # ------------------------------------------------------------------ #
    def add_port(self, next_dc: str, link: RuntimeLink) -> None:
        """Register the egress port toward ``next_dc``."""
        self._ports[next_dc] = link

    @property
    def ports(self) -> Dict[str, RuntimeLink]:
        """Mapping of neighbouring DC name to the egress link."""
        return dict(self._ports)

    def port_to(self, next_dc: str) -> Optional[RuntimeLink]:
        """The egress link toward ``next_dc``, or ``None``."""
        return self._ports.get(next_dc)

    def port_up(self, next_dc: str) -> bool:
        """Liveness of the port toward ``next_dc`` (False if unknown)."""
        link = self._ports.get(next_dc)
        return bool(link and link.up)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route_flow(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demand: FlowDemand,
        now: float,
    ) -> CandidatePath:
        """Pick the candidate route for a new flow toward ``dst_dc``.

        Dead egress ports are excluded before the router runs (data-plane
        fast-failover); when every port is dead the full candidate list is
        passed through so the caller can at least make progress and record
        the loss downstream.

        Raises:
            ValueError: when ``candidates`` is empty.
        """
        if not candidates:
            raise ValueError(f"{self.dc}: no candidate routes toward {dst_dc}")
        live = [c for c in candidates if self.port_up(c.first_hop)]
        fallback = not live
        usable = live if live else list(candidates)
        chosen = self.router.select(dst_dc, usable, demand, now)
        self.decisions.append(
            RoutingDecision(
                switch=self.dc,
                flow_id=demand.flow_id,
                dst_dc=dst_dc,
                chosen=chosen,
                num_candidates=len(usable),
                fallback=fallback,
                time_s=now,
            )
        )
        return chosen

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def sample_ports(self, now: float) -> List[PortSample]:
        """Sample every egress port and feed the router's estimator."""
        samples = []
        for next_dc, link in self._ports.items():
            sample = PortSample(
                switch=self.dc,
                next_dc=next_dc,
                link_key=link.key,
                queue_bytes=link.queue_bytes,
                carried_bytes=link.carried_bytes,
                cap_bps=link.cap_bps,
                buffer_bytes=link.buffer_bytes,
                up=link.up,
                time_s=now,
            )
            samples.append(sample)
            self.router.on_port_sample(sample, now)
        return samples

    def tick(self, now: float) -> None:
        """Periodic housekeeping (router GC, control loops)."""
        self.router.on_tick(now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DCISwitch({self.dc}, ports={sorted(self._ports)}, router={self.router.name})"
