"""Discrete-event simulation engine.

A small, dependency-free event loop: events are (time, sequence, callback)
tuples on a binary heap; callbacks may schedule further events.  The fluid
network simulation (:mod:`repro.simulator.fluid`) uses it for flow arrivals,
periodic rate/queue updates, queue-monitor sampling and garbage-collection
ticks.

The engine is deliberately minimal — it knows nothing about networks — so it
can be reused and tested in isolation.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Event", "EventQueue", "SimulationEngine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events order by ``(time, seq)``; the sequence number makes ordering of
    same-time events deterministic (FIFO in scheduling order).
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: owning queue while the event is pending (cleared on pop), so
    #: cancellation can keep the queue's live-event counter exact
    queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.queue is not None:
            self.queue._live -= 1
            self.queue.cancelled += 1
            self.queue = None


class EventQueue:
    """A priority queue of :class:`Event` ordered by time.

    ``len()`` / truthiness report the number of *live* (non-cancelled)
    events from a counter maintained on push/pop/cancel, so they are O(1)
    instead of an O(heap) sweep per call.

    Lifetime traffic counters (monotonic, never reset):

    * ``pushed`` — events ever scheduled;
    * ``popped`` — live events ever handed to the caller (skipped
      cancelled entries do not count);
    * ``cancelled`` — events cancelled while still pending (cancelling an
      already-popped or already-cancelled event does not count);
    * ``peak_live`` — high watermark of the live-event count (heap depth).
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self.pushed = 0
        self.popped = 0
        self.cancelled = 0
        self.peak_live = 0

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at ``time`` and return the event handle."""
        event = Event(time=time, seq=next(self._counter), callback=callback, queue=self)
        heapq.heappush(self._heap, event)
        self._live += 1
        self.pushed += 1
        if self._live > self.peak_live:
            self.peak_live = self._live
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                self._live -= 1
                self.popped += 1
                event.queue = None
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class SimulationEngine:
    """Event loop with a monotonically advancing simulated clock.

    Example:
        >>> engine = SimulationEngine()
        >>> seen = []
        >>> _ = engine.schedule(1.0, lambda: seen.append(engine.now))
        >>> _ = engine.schedule(0.5, lambda: seen.append(engine.now))
        >>> engine.run()
        >>> seen
        [0.5, 1.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    @property
    def events_scheduled(self) -> int:
        """Lifetime count of events ever pushed onto the queue."""
        return self._queue.pushed

    @property
    def events_fired(self) -> int:
        """Lifetime count of live events popped for execution."""
        return self._queue.popped

    @property
    def events_cancelled(self) -> int:
        """Lifetime count of events cancelled while pending."""
        return self._queue.cancelled

    @property
    def peak_pending_events(self) -> int:
        """High watermark of the pending (live) event count."""
        return self._queue.peak_live

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` when idle.

        Used by the batched-arrival path: from inside an event callback this
        is the earliest instant at which *any* simulation state can change
        next, so every arrival strictly before it can be admitted in one
        batch without observable difference from per-event admission.
        """
        return self._queue.peek_time()

    # ------------------------------------------------------------------ #
    def schedule(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute simulated time ``time``.

        Raises:
            SimulationError: if ``time`` is before the current clock.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} (now is {self._now})"
            )
        return self._queue.push(time, callback)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self._queue.push(self._now + delay, callback)

    def schedule_periodic(
        self,
        interval: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
        until: Optional[float] = None,
    ) -> None:
        """Schedule ``callback`` every ``interval`` seconds.

        The recurrence re-schedules itself from inside the event, so it stops
        naturally when :meth:`run` reaches its ``until`` bound or when the
        optional ``until`` argument is passed.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        first = self._now + interval if start is None else start

        def tick() -> None:
            callback()
            next_time = self._now + interval
            if until is None or next_time <= until:
                self._queue.push(next_time, tick)

        self.schedule(first, tick)

    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise SimulationError("event queue produced an event in the past")
        self._now = event.time
        event.callback()
        self._processed += 1
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue is exhausted, ``until`` is reached, or
        ``max_events`` have been processed.

        When ``until`` is given and the event queue runs dry (or only holds
        later events) the clock is advanced to exactly ``until``; if the run
        was interrupted by :meth:`stop` the clock stays at the last executed
        event so callers see how far the simulation actually progressed.
        """
        self._running = True
        stopped_early = False
        executed = 0
        try:
            while True:
                if not self._running:
                    stopped_early = True
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if not self.step():
                    break
                executed += 1
                if max_events is not None and executed >= max_events:
                    stopped_early = True
                    break
        finally:
            self._running = False
        if until is not None and self._now < until and not stopped_early:
            self._now = until

    def stop(self) -> None:
        """Stop :meth:`run` after the current event finishes."""
        self._running = False
