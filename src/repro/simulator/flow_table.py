"""Structure-of-arrays FlowTable — array-resident per-flow state.

PR 2's vectorized core made the per-step *math* array-based, but the
per-flow *state* it read and wrote still lived in Python objects, so every
update step crossed the Python↔numpy boundary O(flows) times (``np.fromiter``
gathers, ``.tolist()`` writeback loops).  The :class:`FlowTable` removes
those crossings by making contiguous numpy columns the authoritative home
of all mutable per-flow state while a vectorized run is in flight:

* **rows are stable slots** — a flow keeps its row for its whole lifetime;
  finished/failed flows return their slot to a free list for reuse and the
  column arrays double in capacity when the free list runs dry;
* **core columns** hold the state every flow has (``remaining_bytes``,
  ``base_rtt_s``, ``achieved_bps``, the disruption stamp, feedback-line
  bookkeeping, the congestion controller's sending rate);
* **per-CC-class column blocks** hold algorithm state: a congestion-control
  class that declares :attr:`~repro.congestion_control.base.CongestionControl
  .cc_columns` gets its own block of columns (state plus replicated static
  parameters), letting its batched feedback/advance run as in-place masked
  array operations with no per-object gather/scatter;
* **per-class row registries** track which rows each congestion-control
  class occupies (append on acquire, O(1) swap-remove on release) alongside
  a per-row class-id column, so mixed-CC fleets dispatch grouped column
  kernels with no per-step groupby or sort;
* **epochs guard slot reuse** — the feedback delay line stores slot indices,
  so each acquire bumps the row's epoch and delivery drops lanes whose
  epoch no longer matches (a signal headed to a finished flow must never
  reach the slot's next tenant).

Ownership contract (see DESIGN.md, "Flow table (SoA)"): while a
:class:`~repro.simulator.flow.Flow` and its controller are *bound* to a row,
the columns are authoritative and the objects are thin views — their
properties read and write the row.  :meth:`release` copies the final column
values back into the objects (unbinding them), so records, failure entries
and tests keep reading correct values after the flow leaves the table.  The
scalar reference path never binds anything and keeps its original plain-
attribute behaviour, bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

import numpy as np

from ..backend import get_backend

__all__ = ["ColumnBlock", "FlowTable"]

#: canonical dtype of every core column — enforced once at construction
#: and growth time, so kernels (CC column blocks, the backend layer) can
#: rely on the dtypes without per-call ``np.asarray`` casts
_CORE_DTYPES: Dict[str, str] = {
    "remaining_bytes": "f8",
    "base_rtt_s": "f8",
    "achieved_bps": "f8",
    "disrupted_s": "f8",
    "feedback_live": "?",
    "feedback_tick": "i8",
    "cc_rate_bps": "f8",
    "feedback_count": "i8",
    "epoch": "i8",
    "path_id": "i8",
    "cc_class_id": "i8",
}


class ColumnBlock:
    """A named set of parallel columns owned by one congestion-control class.

    Column arrays are exposed as attributes (``block.alpha`` …) and always
    share the owning table's capacity; :class:`FlowTable` grows them in
    lockstep with the core columns.
    """

    def __init__(self, spec: Dict[str, str], capacity: int) -> None:
        self._spec = {
            name: np.dtype(dtype).str for name, dtype in spec.items()
        }
        for name, dtype in self._spec.items():
            if np.dtype(dtype) not in (
                np.dtype(np.float64),
                np.dtype(np.int64),
                np.dtype(bool),
            ):
                raise TypeError(
                    f"CC column {name!r} must be float64/int64/bool, "
                    f"got {dtype!r} — kernels rely on canonical dtypes "
                    "(no per-call casts)"
                )
            setattr(self, name, np.zeros(capacity, dtype=dtype))

    def _grow(self, capacity: int) -> None:
        for name, dtype in self._spec.items():
            grown = np.zeros(capacity, dtype=dtype)
            old = getattr(self, name)
            grown[: len(old)] = old
            setattr(self, name, grown)


class FlowTable:
    """Structure-of-arrays table of per-flow simulation state.

    Args:
        capacity: initial number of row slots (grows by doubling).
        backend: the :class:`~repro.backend.core.ArrayBackend` the table's
            consumers (fluid step, CC column kernels) dispatch through;
            the numpy reference backend when omitted.
    """

    def __init__(self, capacity: int = 256, backend=None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        #: the array backend bound to this table's kernels
        self.backend = backend if backend is not None else get_backend("numpy")
        self._capacity = int(capacity)
        #: flow object occupying each slot (None = free)
        self._flows: List[Optional[object]] = [None] * self._capacity
        #: free slots, reused LIFO
        self._free: List[int] = []
        #: next never-used slot
        self._high_water = 0
        #: live rows, per congestion-control class (uniform-fleet dispatch)
        self.class_counts: Dict[Type, int] = {}

        # --- core columns ---
        self.remaining_bytes = np.zeros(self._capacity)
        self.base_rtt_s = np.zeros(self._capacity)
        self.achieved_bps = np.zeros(self._capacity)
        #: NaN while the path is healthy, else the disruption timestamp —
        #: lets the re-validation sweep find previously disrupted flows
        #: with one ``isnan`` instead of a Python walk
        self.disrupted_s = np.full(self._capacity, np.nan)
        #: False once the flow left the active set; in-flight feedback
        #: addressed to the slot is dropped (mirrors the scalar path
        #: abandoning the flow's pending deque)
        self.feedback_live = np.zeros(self._capacity, dtype=bool)
        #: stamp of the last update tick that delivered feedback to the
        #: row (detects several signals due in one step)
        self.feedback_tick = np.full(self._capacity, -1, dtype=np.int64)
        #: congestion-controller sending rate (every CC class exposes
        #: ``rate_bps``; keeping it core makes the step-1 gather one take)
        self.cc_rate_bps = np.zeros(self._capacity)
        #: feedback signals delivered to the row's controller
        self.feedback_count = np.zeros(self._capacity, dtype=np.int64)
        #: bumped on every acquire; feedback lanes whose recorded epoch
        #: no longer matches are dropped (slot-reuse guard)
        self.epoch = np.zeros(self._capacity, dtype=np.int64)
        #: interned id of the flow's current DC-level route (the batched
        #: control plane writes routing decisions straight into this
        #: column at arrival / re-route time; -1 = unset)
        self.path_id = np.full(self._capacity, -1, dtype=np.int64)
        #: id of the occupying flow's CC class (-1 = free); grouped CC
        #: dispatch splits row batches by this column
        self.cc_class_id = np.full(self._capacity, -1, dtype=np.int64)

        #: per-CC-class column blocks, keyed by the CC class
        self._blocks: Dict[Type, ColumnBlock] = {}

        #: CC classes in first-acquire order; the index is the class id
        self._classes: List[Type] = []
        self._class_ids: Dict[Type, int] = {}
        #: per-class live-row registries: a grown-by-doubling slot array
        #: and its live prefix length, indexed by class id
        self._class_rows: List[np.ndarray] = []
        self._class_n: List[int] = []
        #: position of each slot inside its class registry (-1 = none)
        self._class_pos = np.full(self._capacity, -1, dtype=np.intp)
        self._check_dtypes()

    def _check_dtypes(self) -> None:
        """Assert every core column holds its canonical dtype.

        Runs at construction and after every growth, so dtype drift is
        caught once at the allocation site instead of being papered over
        by per-call ``np.asarray`` casts in the step and CC kernels (which
        this check makes safely removable).
        """
        for name, dtype in _CORE_DTYPES.items():
            col = getattr(self, name)
            if col.dtype != np.dtype(dtype):
                raise TypeError(
                    f"FlowTable column {name!r} drifted to dtype "
                    f"{col.dtype}, expected {np.dtype(dtype)}"
                )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Current number of allocated row slots."""
        return self._capacity

    def __len__(self) -> int:
        """Number of occupied rows."""
        return self._high_water - len(self._free)

    def flow_at(self, slot: int):
        """The flow occupying ``slot`` (None when the slot is free)."""
        return self._flows[slot]

    # ------------------------------------------------------------------ #
    # CC column blocks
    # ------------------------------------------------------------------ #
    def cc_block(self, cc_cls: Type) -> ColumnBlock:
        """The column block of ``cc_cls``, created on first request.

        The block's columns come from the class's ``table_block_spec``
        (mapping column name to numpy dtype string, derived from the
        declarative ``cc_columns`` spec).
        """
        block = self._blocks.get(cc_cls)
        if block is None:
            block = ColumnBlock(cc_cls.table_block_spec, self._capacity)
            self._blocks[cc_cls] = block
        return block

    # ------------------------------------------------------------------ #
    # per-class row registries (grouped CC dispatch)
    # ------------------------------------------------------------------ #
    def cc_class_at(self, class_id: int) -> Type:
        """The CC class registered under ``class_id``."""
        return self._classes[class_id]

    def class_rows(self, cc_cls: Type) -> np.ndarray:
        """Live rows occupied by flows of ``cc_cls`` (registry order).

        A view of the cached registry — maintained on acquire/release, so
        reading it costs nothing per step.
        """
        cid = self._class_ids.get(cc_cls)
        if cid is None:
            return np.empty(0, dtype=np.intp)
        return self._class_rows[cid][: self._class_n[cid]]

    def rows_by_class(self):
        """Yield ``(cc_cls, live rows)`` per class with occupants.

        Classes come out in first-acquire order (the class-id order), which
        is deterministic for a given demand sequence.
        """
        for cid, cc_cls in enumerate(self._classes):
            n = self._class_n[cid]
            if n:
                yield cc_cls, self._class_rows[cid][:n]

    # ------------------------------------------------------------------ #
    # slot lifecycle
    # ------------------------------------------------------------------ #
    def acquire(self, flow, bind: bool = True) -> int:
        """Give ``flow`` a row slot and initialise its columns.

        Args:
            flow: the runtime flow (its congestion controller is reached
                through ``flow.cc``).
            bind: when True (the SoA core) the flow and its controller
                become views onto the row — the columns are authoritative
                until :meth:`release`.  When False (the PR-2 compatibility
                core) the slot only keys the incidence structure and the
                feedback delay line; object attributes stay authoritative.

        Returns:
            The row slot (stable for the flow's lifetime).
        """
        if self._free:
            slot = self._free.pop()
        else:
            if self._high_water == self._capacity:
                self._grow()
            slot = self._high_water
            self._high_water += 1

        self._flows[slot] = flow
        cc_cls = type(flow.cc)
        self.class_counts[cc_cls] = self.class_counts.get(cc_cls, 0) + 1
        self._class_add(cc_cls, slot)
        self.epoch[slot] += 1
        self.feedback_live[slot] = True
        self.feedback_tick[slot] = -1
        flow._slot = slot
        if bind:
            flow.bind_table(self, slot)
            flow.cc.bind_table(self, slot)
        return slot

    def release(self, flow) -> None:
        """Return the flow's slot to the free list.

        Bound views are unbound first (final column values are copied back
        into the objects), and the row's ``feedback_live`` flag is cleared
        so in-flight feedback lanes addressed to it are dropped.
        """
        slot = flow._slot
        if slot < 0 or self._flows[slot] is not flow:
            raise ValueError(f"flow {flow!r} does not occupy a table slot")
        flow.cc.unbind_table()
        flow.unbind_table()
        self.feedback_live[slot] = False
        self._flows[slot] = None
        cc_cls = type(flow.cc)
        count = self.class_counts[cc_cls] - 1
        if count:
            self.class_counts[cc_cls] = count
        else:
            del self.class_counts[cc_cls]
        self._class_remove(slot)
        self._free.append(slot)
        flow._slot = -1

    # ------------------------------------------------------------------ #
    def _class_add(self, cc_cls: Type, slot: int) -> None:
        """Register ``slot`` in its class's row registry (O(1) append)."""
        cid = self._class_ids.get(cc_cls)
        if cid is None:
            cid = len(self._classes)
            self._class_ids[cc_cls] = cid
            self._classes.append(cc_cls)
            self._class_rows.append(np.empty(64, dtype=np.intp))
            self._class_n.append(0)
        rows = self._class_rows[cid]
        n = self._class_n[cid]
        if n == len(rows):
            grown = np.empty(2 * len(rows), dtype=np.intp)
            grown[:n] = rows
            self._class_rows[cid] = rows = grown
        rows[n] = slot
        self._class_pos[slot] = n
        self._class_n[cid] = n + 1
        self.cc_class_id[slot] = cid

    def _class_remove(self, slot: int) -> None:
        """Drop ``slot`` from its class registry (O(1) swap-remove)."""
        cid = int(self.cc_class_id[slot])
        rows = self._class_rows[cid]
        n = self._class_n[cid] - 1
        pos = self._class_pos[slot]
        last = rows[n]
        rows[pos] = last
        self._class_pos[last] = pos
        self._class_n[cid] = n
        self._class_pos[slot] = -1
        self.cc_class_id[slot] = -1

    # ------------------------------------------------------------------ #
    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        for name in (
            "remaining_bytes",
            "base_rtt_s",
            "achieved_bps",
            "disrupted_s",
            "feedback_live",
            "feedback_tick",
            "cc_rate_bps",
            "feedback_count",
            "epoch",
            "path_id",
            "cc_class_id",
            "_class_pos",
        ):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[: self._capacity] = old
            if name == "disrupted_s":
                grown[self._capacity:] = np.nan
            elif name in ("feedback_tick", "path_id", "cc_class_id", "_class_pos"):
                grown[self._capacity:] = -1
            setattr(self, name, grown)
        for block in self._blocks.values():
            block._grow(new_capacity)
        self._flows.extend([None] * (new_capacity - self._capacity))
        self._capacity = new_capacity
        self._check_dtypes()
