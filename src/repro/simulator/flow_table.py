"""Structure-of-arrays FlowTable — array-resident per-flow state.

PR 2's vectorized core made the per-step *math* array-based, but the
per-flow *state* it read and wrote still lived in Python objects, so every
update step crossed the Python↔numpy boundary O(flows) times (``np.fromiter``
gathers, ``.tolist()`` writeback loops).  The :class:`FlowTable` removes
those crossings by making contiguous numpy columns the authoritative home
of all mutable per-flow state while a vectorized run is in flight:

* **rows are stable slots** — a flow keeps its row for its whole lifetime;
  finished/failed flows return their slot to a free list for reuse and the
  column arrays double in capacity when the free list runs dry;
* **core columns** hold the state every flow has (``remaining_bytes``,
  ``base_rtt_s``, ``achieved_bps``, the disruption stamp, feedback-line
  bookkeeping, the congestion controller's sending rate);
* **per-CC-class column blocks** hold algorithm state: a congestion-control
  class that declares :attr:`~repro.congestion_control.base.CongestionControl
  .table_block_spec` gets its own block of columns (DCQCN keeps ``alpha``,
  target rate, both timers, the increase stage and its static parameters
  there), letting its batched feedback/advance run as in-place masked array
  operations with no per-object gather/scatter;
* **epochs guard slot reuse** — the feedback delay line stores slot indices,
  so each acquire bumps the row's epoch and delivery drops lanes whose
  epoch no longer matches (a signal headed to a finished flow must never
  reach the slot's next tenant).

Ownership contract (see DESIGN.md, "Flow table (SoA)"): while a
:class:`~repro.simulator.flow.Flow` and its controller are *bound* to a row,
the columns are authoritative and the objects are thin views — their
properties read and write the row.  :meth:`release` copies the final column
values back into the objects (unbinding them), so records, failure entries
and tests keep reading correct values after the flow leaves the table.  The
scalar reference path never binds anything and keeps its original plain-
attribute behaviour, bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

import numpy as np

__all__ = ["ColumnBlock", "FlowTable"]


class ColumnBlock:
    """A named set of parallel columns owned by one congestion-control class.

    Column arrays are exposed as attributes (``block.alpha`` …) and always
    share the owning table's capacity; :class:`FlowTable` grows them in
    lockstep with the core columns.
    """

    def __init__(self, spec: Dict[str, str], capacity: int) -> None:
        self._spec = dict(spec)
        for name, dtype in self._spec.items():
            setattr(self, name, np.zeros(capacity, dtype=dtype))

    def _grow(self, capacity: int) -> None:
        for name, dtype in self._spec.items():
            grown = np.zeros(capacity, dtype=dtype)
            old = getattr(self, name)
            grown[: len(old)] = old
            setattr(self, name, grown)


class FlowTable:
    """Structure-of-arrays table of per-flow simulation state.

    Args:
        capacity: initial number of row slots (grows by doubling).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = int(capacity)
        #: flow object occupying each slot (None = free)
        self._flows: List[Optional[object]] = [None] * self._capacity
        #: free slots, reused LIFO
        self._free: List[int] = []
        #: next never-used slot
        self._high_water = 0
        #: live rows, per congestion-control class (uniform-fleet dispatch)
        self.class_counts: Dict[Type, int] = {}

        # --- core columns ---
        self.remaining_bytes = np.zeros(self._capacity)
        self.base_rtt_s = np.zeros(self._capacity)
        self.achieved_bps = np.zeros(self._capacity)
        #: NaN while the path is healthy, else the disruption timestamp —
        #: lets the re-validation sweep find previously disrupted flows
        #: with one ``isnan`` instead of a Python walk
        self.disrupted_s = np.full(self._capacity, np.nan)
        #: False once the flow left the active set; in-flight feedback
        #: addressed to the slot is dropped (mirrors the scalar path
        #: abandoning the flow's pending deque)
        self.feedback_live = np.zeros(self._capacity, dtype=bool)
        #: stamp of the last update tick that delivered feedback to the
        #: row (detects several signals due in one step)
        self.feedback_tick = np.full(self._capacity, -1, dtype=np.int64)
        #: congestion-controller sending rate (every CC class exposes
        #: ``rate_bps``; keeping it core makes the step-1 gather one take)
        self.cc_rate_bps = np.zeros(self._capacity)
        #: feedback signals delivered to the row's controller
        self.feedback_count = np.zeros(self._capacity, dtype=np.int64)
        #: bumped on every acquire; feedback lanes whose recorded epoch
        #: no longer matches are dropped (slot-reuse guard)
        self.epoch = np.zeros(self._capacity, dtype=np.int64)
        #: interned id of the flow's current DC-level route (the batched
        #: control plane writes routing decisions straight into this
        #: column at arrival / re-route time; -1 = unset)
        self.path_id = np.full(self._capacity, -1, dtype=np.int64)

        #: per-CC-class column blocks, keyed by the CC class
        self._blocks: Dict[Type, ColumnBlock] = {}

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        """Current number of allocated row slots."""
        return self._capacity

    def __len__(self) -> int:
        """Number of occupied rows."""
        return self._high_water - len(self._free)

    def flow_at(self, slot: int):
        """The flow occupying ``slot`` (None when the slot is free)."""
        return self._flows[slot]

    # ------------------------------------------------------------------ #
    # CC column blocks
    # ------------------------------------------------------------------ #
    def cc_block(self, cc_cls: Type) -> ColumnBlock:
        """The column block of ``cc_cls``, created on first request.

        The block's columns come from the class's ``table_block_spec``
        (mapping column name to numpy dtype string).
        """
        block = self._blocks.get(cc_cls)
        if block is None:
            block = ColumnBlock(cc_cls.table_block_spec, self._capacity)
            self._blocks[cc_cls] = block
        return block

    # ------------------------------------------------------------------ #
    # slot lifecycle
    # ------------------------------------------------------------------ #
    def acquire(self, flow, bind: bool = True) -> int:
        """Give ``flow`` a row slot and initialise its columns.

        Args:
            flow: the runtime flow (its congestion controller is reached
                through ``flow.cc``).
            bind: when True (the SoA core) the flow and its controller
                become views onto the row — the columns are authoritative
                until :meth:`release`.  When False (the PR-2 compatibility
                core) the slot only keys the incidence structure and the
                feedback delay line; object attributes stay authoritative.

        Returns:
            The row slot (stable for the flow's lifetime).
        """
        if self._free:
            slot = self._free.pop()
        else:
            if self._high_water == self._capacity:
                self._grow()
            slot = self._high_water
            self._high_water += 1

        self._flows[slot] = flow
        cc_cls = type(flow.cc)
        self.class_counts[cc_cls] = self.class_counts.get(cc_cls, 0) + 1
        self.epoch[slot] += 1
        self.feedback_live[slot] = True
        self.feedback_tick[slot] = -1
        flow._slot = slot
        if bind:
            flow.bind_table(self, slot)
            flow.cc.bind_table(self, slot)
        return slot

    def release(self, flow) -> None:
        """Return the flow's slot to the free list.

        Bound views are unbound first (final column values are copied back
        into the objects), and the row's ``feedback_live`` flag is cleared
        so in-flight feedback lanes addressed to it are dropped.
        """
        slot = flow._slot
        if slot < 0 or self._flows[slot] is not flow:
            raise ValueError(f"flow {flow!r} does not occupy a table slot")
        flow.cc.unbind_table()
        flow.unbind_table()
        self.feedback_live[slot] = False
        self._flows[slot] = None
        cc_cls = type(flow.cc)
        count = self.class_counts[cc_cls] - 1
        if count:
            self.class_counts[cc_cls] = count
        else:
            del self.class_counts[cc_cls]
        self._free.append(slot)
        flow._slot = -1

    # ------------------------------------------------------------------ #
    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        for name in (
            "remaining_bytes",
            "base_rtt_s",
            "achieved_bps",
            "disrupted_s",
            "feedback_live",
            "feedback_tick",
            "cc_rate_bps",
            "feedback_count",
            "epoch",
            "path_id",
        ):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[: self._capacity] = old
            if name == "disrupted_s":
                grown[self._capacity:] = np.nan
            elif name in ("feedback_tick", "path_id"):
                grown[self._capacity:] = -1
            setattr(self, name, grown)
        for block in self._blocks.values():
            block._grow(new_capacity)
        self._flows.extend([None] * (new_capacity - self._capacity))
        self._capacity = new_capacity
