"""Flows and congestion feedback signals.

A :class:`FlowDemand` is what the traffic generator produces (who talks to
whom, how many bytes, when); a :class:`Flow` is the runtime object the fluid
simulation advances (path, congestion-control state, remaining bytes); a
:class:`FeedbackSignal` is the per-RTT congestion feedback delivered to the
flow's congestion-control instance after the path round-trip delay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence, Tuple

from .link import RuntimeLink

__all__ = ["FlowDemand", "FeedbackSignal", "Flow"]


@dataclass(frozen=True)
class FlowDemand:
    """A flow the workload wants to send.

    Attributes:
        flow_id: unique integer id (also used as the ECMP/LCMP hash input).
        src_dc / dst_dc: datacenter names.
        src_host / dst_host: host indices within the datacenters.
        size_bytes: application bytes to transfer.
        arrival_s: arrival time in simulated seconds.
    """

    flow_id: int
    src_dc: str
    dst_dc: str
    src_host: int
    dst_host: int
    size_bytes: int
    arrival_s: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("flow size must be positive")
        if self.arrival_s < 0:
            raise ValueError("arrival time must be non-negative")
        if self.src_dc == self.dst_dc and self.src_host == self.dst_host:
            raise ValueError("flow source and destination must differ")


@dataclass(frozen=True)
class FeedbackSignal:
    """Congestion feedback observed along a flow's path during one step.

    The signal is *generated* when the congestion occurs and *delivered* to
    the sender one path round-trip later, reproducing the outdated-feedback
    property of long-haul networks.

    Attributes:
        generated_s: simulation time the signal was generated.
        ecn_fraction: fraction of the flow's traffic that would be
            ECN-marked given the per-link marking probabilities.
        max_utilization: highest link utilisation (offered / capacity) along
            the path — the HPCC-style in-band telemetry summary.
        rtt_s: base RTT plus total queueing delay along the path — the
            TIMELY-style delay sample.
        queue_delay_s: total queueing delay along the path.
    """

    generated_s: float
    ecn_fraction: float
    max_utilization: float
    rtt_s: float
    queue_delay_s: float


class Flow:
    """Runtime state of a single RDMA flow in the fluid model.

    Mutable numeric state (remaining bytes, base RTT, achieved rate, the
    disruption stamp, feedback-line bookkeeping) lives either in plain
    attributes (the scalar reference path, standalone use in tests) or in
    a row of the simulation's :class:`~repro.simulator.flow_table.FlowTable`
    when :meth:`bind_table` has been called (the vectorized SoA core).  The
    public surface is identical in both modes — properties dispatch to the
    table row when bound, and unbound flows behave exactly like the
    plain-attribute flows of earlier releases — so routers, the scenario
    injector and existing tests never see the difference.
    """

    def __init__(self, demand: FlowDemand, path: Sequence[RuntimeLink], cc, base_rtt_s: float):
        """Create a runtime flow.

        Args:
            demand: the originating demand.
            path: ordered runtime links from source host to destination host
                (host NIC uplink, inter-DC links, destination downlink).
            cc: a congestion-control instance exposing ``rate_bps``,
                ``on_feedback(signal, now)`` and ``on_interval(dt, now)``.
            base_rtt_s: propagation-only round-trip time of the path.
        """
        self.demand = demand
        self.path: Tuple[RuntimeLink, ...] = tuple(path)
        self.cc = cc
        self.start_s: float = demand.arrival_s
        self.finish_s: Optional[float] = None
        #: owning FlowTable / row slot while bound (None / -1 otherwise);
        #: ``_slot`` may be set without binding — the PR-2 compatibility
        #: core keys its incidence structure and feedback lanes by slot
        #: while object attributes stay authoritative
        self._table = None
        self._slot = -1
        #: position in the owning simulation's active list (swap-remove)
        self._active_pos = -1
        #: interned id of the flow's DC-level route in the run's
        #: MetricsStore (set at arrival / re-route time; -1 = unset, the
        #: collector derives the route from the path on demand).  Bound
        #: flows keep it in the FlowTable's ``path_id`` column.
        self._route_id_attr = -1
        self._base_rtt_s = float(base_rtt_s)
        self._remaining_bytes: float = float(demand.size_bytes)
        #: achieved throughput during the most recent update step (bps)
        self._achieved_bps: float = 0.0
        #: when the flow's path lost a link (None while the path is healthy)
        self._disrupted_s: Optional[float] = None
        #: congestion feedback in flight towards the sender, normally in
        #: non-decreasing deliver-time order (append-only); a re-route that
        #: shortens the path RTT may break the order, tracked by the flag
        self._pending_feedback: Deque[Tuple[float, FeedbackSignal]] = deque()
        self._feedback_unsorted = False
        #: False once the flow left the active set (finished or failed);
        #: the vectorized feedback delay line checks it so signals headed
        #: to a gone flow are dropped, exactly like the scalar path
        #: abandoning the flow's pending deque
        self._fb_live = True
        #: stamp of the last update tick that delivered feedback to this
        #: flow (vectorized core: detects several signals due at once)
        self._fb_tick = -1

    # ------------------------------------------------------------------ #
    # FlowTable binding (see repro.simulator.flow_table)
    # ------------------------------------------------------------------ #
    def bind_table(self, table, slot: int) -> None:
        """Move this flow's mutable state into ``table`` row ``slot``."""
        table.remaining_bytes[slot] = self._remaining_bytes
        table.base_rtt_s[slot] = self._base_rtt_s
        table.achieved_bps[slot] = self._achieved_bps
        table.disrupted_s[slot] = (
            self._disrupted_s if self._disrupted_s is not None else float("nan")
        )
        table.feedback_live[slot] = self._fb_live
        table.feedback_tick[slot] = self._fb_tick
        table.path_id[slot] = self._route_id_attr
        self._table = table
        self._slot = slot

    def unbind_table(self) -> None:
        """Copy the row's final values back and detach from the table."""
        table = self._table
        if table is None:
            return
        slot = self._slot
        self._table = None
        self._remaining_bytes = float(table.remaining_bytes[slot])
        self._base_rtt_s = float(table.base_rtt_s[slot])
        self._achieved_bps = float(table.achieved_bps[slot])
        stamp = float(table.disrupted_s[slot])
        self._disrupted_s = None if stamp != stamp else stamp
        self._fb_live = bool(table.feedback_live[slot])
        self._fb_tick = int(table.feedback_tick[slot])
        self._route_id_attr = int(table.path_id[slot])

    # ------------------------------------------------------------------ #
    # table-backed state
    # ------------------------------------------------------------------ #
    @property
    def remaining_bytes(self) -> float:
        """Bytes still to transfer."""
        t = self._table
        if t is None:
            return self._remaining_bytes
        return t.remaining_bytes[self._slot]

    @remaining_bytes.setter
    def remaining_bytes(self, value: float) -> None:
        t = self._table
        if t is None:
            self._remaining_bytes = value
        else:
            t.remaining_bytes[self._slot] = value

    @property
    def base_rtt_s(self) -> float:
        """Propagation-only round-trip time of the current path."""
        t = self._table
        if t is None:
            return self._base_rtt_s
        return t.base_rtt_s[self._slot]

    @base_rtt_s.setter
    def base_rtt_s(self, value: float) -> None:
        t = self._table
        if t is None:
            self._base_rtt_s = value
        else:
            t.base_rtt_s[self._slot] = value

    @property
    def achieved_bps(self) -> float:
        """Achieved throughput during the most recent update step (bps)."""
        t = self._table
        if t is None:
            return self._achieved_bps
        return t.achieved_bps[self._slot]

    @achieved_bps.setter
    def achieved_bps(self, value: float) -> None:
        t = self._table
        if t is None:
            self._achieved_bps = value
        else:
            t.achieved_bps[self._slot] = value

    @property
    def disrupted_s(self) -> Optional[float]:
        """When the flow's path lost a link (None while healthy)."""
        t = self._table
        if t is None:
            return self._disrupted_s
        stamp = t.disrupted_s[self._slot]
        return None if stamp != stamp else float(stamp)

    @disrupted_s.setter
    def disrupted_s(self, value: Optional[float]) -> None:
        t = self._table
        if t is None:
            self._disrupted_s = value
        else:
            t.disrupted_s[self._slot] = value if value is not None else float("nan")

    @property
    def route_id(self) -> int:
        """Interned id of the flow's current DC-level route (-1 = unset).

        Table-resident while bound (the FlowTable's ``path_id`` column —
        routing decisions write it at arrival / re-route time; the
        collector reads it back through the released flow at completion).
        """
        t = self._table
        if t is None:
            return self._route_id_attr
        return int(t.path_id[self._slot])

    @route_id.setter
    def route_id(self, value: int) -> None:
        t = self._table
        if t is None:
            self._route_id_attr = value
        else:
            t.path_id[self._slot] = value

    @property
    def _feedback_live(self) -> bool:
        t = self._table
        if t is None:
            return self._fb_live
        return bool(t.feedback_live[self._slot])

    @_feedback_live.setter
    def _feedback_live(self, value: bool) -> None:
        t = self._table
        if t is None:
            self._fb_live = value
        else:
            t.feedback_live[self._slot] = value

    @property
    def _feedback_tick(self) -> int:
        t = self._table
        if t is None:
            return self._fb_tick
        return int(t.feedback_tick[self._slot])

    @_feedback_tick.setter
    def _feedback_tick(self, value: int) -> None:
        t = self._table
        if t is None:
            self._fb_tick = value
        else:
            t.feedback_tick[self._slot] = value

    # ------------------------------------------------------------------ #
    @property
    def flow_id(self) -> int:
        """Unique flow identifier."""
        return self.demand.flow_id

    @property
    def size_bytes(self) -> int:
        """Total bytes the flow transfers."""
        return self.demand.size_bytes

    @property
    def completed(self) -> bool:
        """True once every byte has been transmitted."""
        return self.remaining_bytes <= 0

    @property
    def one_way_delay_s(self) -> float:
        """Propagation delay of the chosen path (source to destination)."""
        return sum(link.delay_s for link in self.path)

    @property
    def sending_rate_bps(self) -> float:
        """Rate the congestion controller currently allows."""
        return self.cc.rate_bps

    @property
    def inter_dc_links(self) -> Tuple[RuntimeLink, ...]:
        """The inter-DC links of the path (the ones LCMP chooses among)."""
        return tuple(link for link in self.path if link.spec.inter_dc)

    # ------------------------------------------------------------------ #
    def transfer(self, achieved_bps: float, dt: float) -> float:
        """Advance the flow by one update step at ``achieved_bps``.

        Returns:
            Bytes actually transferred during the step (bounded by the bytes
            still remaining).
        """
        self.achieved_bps = achieved_bps
        want = achieved_bps * dt / 8.0
        sent = min(want, self.remaining_bytes)
        self.remaining_bytes -= sent
        return sent

    def enqueue_feedback(self, signal: FeedbackSignal, deliver_s: float) -> None:
        """Put a congestion signal in flight; delivered at ``deliver_s``."""
        pending = self._pending_feedback
        if pending and deliver_s < pending[-1][0]:
            self._feedback_unsorted = True
        pending.append((deliver_s, signal))

    def deliver_due_feedback(self, now: float) -> int:
        """Deliver all feedback whose time has come to the CC instance.

        Signals are delivered in deliver-time order (ties in enqueue
        order).  Pending signals are almost always already sorted — one is
        enqueued per update step with a fixed RTT offset — so the common
        case pops a due prefix off the deque in O(delivered); only a
        re-route that shortened the RTT forces the full scan.

        Returns:
            Number of signals delivered.
        """
        pending = self._pending_feedback
        if not pending:
            return 0
        if self._feedback_unsorted:
            return self._deliver_unsorted(now)
        delivered = 0
        while pending and pending[0][0] <= now:
            _, signal = pending.popleft()
            self.cc.on_feedback(signal, now)
            delivered += 1
        return delivered

    def _deliver_unsorted(self, now: float) -> int:
        """Out-of-order slow path (after an RTT-shortening re-route)."""
        due = [item for item in self._pending_feedback if item[0] <= now]
        if not due:
            return 0
        rest = [item for item in self._pending_feedback if item[0] > now]
        self._pending_feedback = deque(rest)
        self._feedback_unsorted = any(
            rest[i][0] > rest[i + 1][0] for i in range(len(rest) - 1)
        )
        for _, signal in sorted(due, key=lambda item: item[0]):
            self.cc.on_feedback(signal, now)
        return len(due)

    def mark_finished(self, now: float) -> None:
        """Record completion; the last byte lands one propagation delay later."""
        if self.finish_s is None:
            self.finish_s = now + self.one_way_delay_s

    def fct_s(self) -> float:
        """Flow completion time in seconds.

        Raises:
            RuntimeError: if the flow has not finished yet.
        """
        if self.finish_s is None:
            raise RuntimeError(f"flow {self.flow_id} has not completed")
        return self.finish_s - self.start_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Flow(#{self.flow_id} {self.demand.src_dc}->{self.demand.dst_dc}, "
            f"{self.size_bytes}B, remaining={self.remaining_bytes:.0f}B)"
        )
