"""Runtime state of a directed link (an egress port with a queue).

Each :class:`RuntimeLink` corresponds to one directed
:class:`~repro.topology.graph.LinkSpec`.  The transmitting node owns the
egress queue; the fluid simulation integrates (offered load − capacity) into
the queue backlog every update step, applies DCQCN-style RED/ECN marking and
tracks carried bytes for utilisation statistics.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..topology.graph import LinkSpec

__all__ = ["RuntimeLink"]


class RuntimeLink:
    """Mutable runtime state layered over a static :class:`LinkSpec`.

    The scalar update path drives one link at a time through
    :meth:`integrate`; the vectorized core
    (:mod:`repro.simulator.incidence`) drives many links per step through
    the batched :meth:`integrate_batch`, which applies the exact same
    arithmetic over parallel arrays.

    Class attribute :attr:`state_version` is a global generation counter
    bumped whenever *any* link's capacity or liveness mutates
    (:meth:`fail` / :meth:`recover` / :meth:`set_capacity_factor` / the
    ``up`` setter).  The vectorized core caches per-link capacity/liveness
    arrays and re-gathers them only when this counter moves — an O(1)
    check per tick instead of an O(links) sweep.
    """

    #: global generation counter for capacity/liveness mutations
    state_version: int = 0

    def __init__(
        self,
        spec: LinkSpec,
        ecn_kmin_fraction: float = 0.05,
        ecn_kmax_fraction: float = 0.5,
        ecn_pmax: float = 0.2,
    ) -> None:
        self.spec = spec
        self.queue_bytes: float = 0.0
        self.peak_queue_bytes: float = 0.0
        self.carried_bytes: float = 0.0
        self.dropped_bytes: float = 0.0
        #: offered load (bps) during the most recent update step
        self.offered_bps: float = 0.0
        #: number of outstanding down-causes (0 = port is up); fail() and
        #: recover() pair up so overlapping faults (an explicit link cut
        #: during a DC maintenance window) compose instead of the second
        #: recovery silently resurrecting a still-failed port
        self._down_causes: int = 0
        #: effective capacity relative to the provisioned rate (scenario
        #: capacity-degradation events scale this; 1.0 = healthy)
        self.capacity_factor: float = 1.0
        #: capacity offered so far (bits) and the time it is accrued up to;
        #: keeps utilization() correct when the factor changes mid-run
        self._cap_integral_bits: float = 0.0
        self._cap_marker_s: float = 0.0
        self._ecn_kmin = ecn_kmin_fraction * spec.buffer_bytes
        self._ecn_kmax = ecn_kmax_fraction * spec.buffer_bytes
        self._ecn_pmax = ecn_pmax

    # ------------------------------------------------------------------ #
    # identity / static attributes
    # ------------------------------------------------------------------ #
    @property
    def key(self) -> tuple:
        """(src, dst) identity of the underlying directed link."""
        return self.spec.key

    @property
    def cap_bps(self) -> float:
        """Effective capacity in bits per second (provisioned x factor)."""
        return self.spec.cap_bps * self.capacity_factor

    @property
    def delay_s(self) -> float:
        """One-way propagation delay in seconds."""
        return self.spec.delay_s

    @property
    def buffer_bytes(self) -> int:
        """Egress buffer size in bytes."""
        return self.spec.buffer_bytes

    @property
    def up(self) -> bool:
        """True while the port has no outstanding down-cause."""
        return self._down_causes == 0

    @up.setter
    def up(self, value: bool) -> None:
        # direct assignment is an absolute override (used by tests and
        # ad-hoc scripts): it discards any down-cause bookkeeping
        self._down_causes = 0 if value else max(1, self._down_causes)
        RuntimeLink.state_version += 1

    @property
    def ecn_kmin_bytes(self) -> float:
        """Queue depth at which ECN marking starts (bytes)."""
        return self._ecn_kmin

    @property
    def ecn_kmax_bytes(self) -> float:
        """Queue depth at which ECN marking saturates (bytes)."""
        return self._ecn_kmax

    @property
    def ecn_pmax(self) -> float:
        """Marking probability at the ``kmax`` threshold."""
        return self._ecn_pmax

    # ------------------------------------------------------------------ #
    # fluid update
    # ------------------------------------------------------------------ #
    def integrate(self, offered_bps: float, dt: float) -> float:
        """Advance the egress queue by one update step.

        Args:
            offered_bps: total arrival rate at the port during the step.
            dt: step length in seconds.

        Returns:
            The fraction of offered traffic actually carried (1.0 when the
            buffer absorbed everything; less than 1.0 only when the buffer
            overflowed and bytes were dropped).
        """
        if not self.up:
            # a dead port carries nothing; traffic offered to it is lost
            self.offered_bps = offered_bps
            self.dropped_bytes += offered_bps * dt / 8.0
            return 0.0

        self.offered_bps = offered_bps
        arriving_bytes = offered_bps * dt / 8.0
        draining_bytes = self.cap_bps * dt / 8.0

        carried = min(arriving_bytes + self.queue_bytes, draining_bytes)
        new_queue = self.queue_bytes + arriving_bytes - carried
        dropped = 0.0
        if new_queue > self.buffer_bytes:
            dropped = new_queue - self.buffer_bytes
            new_queue = float(self.buffer_bytes)
        self.queue_bytes = max(0.0, new_queue)
        self.peak_queue_bytes = max(self.peak_queue_bytes, self.queue_bytes)
        self.carried_bytes += carried
        self.dropped_bytes += dropped

        if arriving_bytes <= 0:
            return 1.0
        accepted = arriving_bytes - dropped
        return max(0.0, min(1.0, accepted / arriving_bytes))

    @staticmethod
    def integrate_batch(
        offered_bps: np.ndarray,
        dt: float,
        cap_bps: np.ndarray,
        up: np.ndarray,
        buffer_bytes: np.ndarray,
        queue_bytes: np.ndarray,
        peak_queue_bytes: np.ndarray,
        carried_bytes: np.ndarray,
        dropped_bytes: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Batched :meth:`integrate` over parallel per-link arrays.

        Applies the exact same arithmetic as the scalar method to every
        link at once (element i of each array is link i), so a vectorized
        step produces bit-identical queue/byte state.  Dead links
        (``up[i]`` false) drop everything offered and leave their queue
        untouched, exactly like the scalar early-out.

        Args:
            offered_bps: total arrival rate per link during the step.
            dt: step length in seconds.
            cap_bps / up / buffer_bytes: per-link capacity, liveness and
                buffer size.
            queue_bytes / peak_queue_bytes / carried_bytes / dropped_bytes:
                current per-link state (not mutated).

        Returns:
            ``(queue, peak, carried, dropped, fraction)`` — the updated
            state arrays plus the carried fraction :meth:`integrate`
            reports.
        """
        arriving = offered_bps * dt / 8.0
        draining = cap_bps * dt / 8.0

        carried_step = np.minimum(arriving + queue_bytes, draining)
        new_queue = (queue_bytes + arriving) - carried_step
        overflow = new_queue > buffer_bytes
        dropped_step = np.where(overflow, new_queue - buffer_bytes, 0.0)
        new_queue = np.where(overflow, buffer_bytes, new_queue)
        new_queue = np.maximum(0.0, new_queue)

        # dead ports: queue/carried/peak untouched, everything offered lost
        dead = ~up
        queue = np.where(dead, queue_bytes, new_queue)
        peak = np.where(dead, peak_queue_bytes, np.maximum(peak_queue_bytes, new_queue))
        carried = np.where(dead, carried_bytes, carried_bytes + carried_step)
        dropped = dropped_bytes + np.where(dead, arriving, dropped_step)

        accepted = arriving - dropped_step
        fraction = np.ones_like(arriving)
        np.divide(accepted, arriving, out=fraction, where=arriving > 0)
        fraction = np.clip(fraction, 0.0, 1.0)
        fraction = np.where(dead, 0.0, fraction)
        return queue, peak, carried, dropped, fraction

    # ------------------------------------------------------------------ #
    # congestion signals
    # ------------------------------------------------------------------ #
    def ecn_mark_probability(self) -> float:
        """RED/ECN marking probability for the current queue occupancy."""
        q = self.queue_bytes
        if q <= self._ecn_kmin:
            return 0.0
        if q >= self._ecn_kmax:
            return 1.0
        span = self._ecn_kmax - self._ecn_kmin
        if span <= 0:
            return 1.0
        return self._ecn_pmax * (q - self._ecn_kmin) / span

    def queueing_delay_s(self) -> float:
        """Time a newly arriving byte waits behind the current backlog."""
        return self.queue_bytes * 8.0 / self.cap_bps

    def utilization(self, elapsed_s: float) -> float:
        """Average utilisation: carried bits over capacity offered so far.

        The denominator integrates the effective capacity over time, so a
        mid-run :meth:`set_capacity_factor` change (scenario brownout) does
        not retroactively re-rate the whole run.
        """
        if elapsed_s <= 0:
            return 0.0
        capacity_bits = self._cap_integral_bits + self.cap_bps * max(
            0.0, elapsed_s - self._cap_marker_s
        )
        if capacity_bits <= 0:
            return 0.0
        return min(1.0, (self.carried_bytes * 8.0) / capacity_bits)

    # ------------------------------------------------------------------ #
    # fault injection
    # ------------------------------------------------------------------ #
    def fail(self) -> None:
        """Add one down-cause (data-plane fast-failover experiments).

        Each :meth:`fail` pairs with one :meth:`recover`; the port is up
        only when every cause has been recovered, so overlapping faults
        (maintenance window + explicit cut) compose correctly.
        """
        self._down_causes += 1
        RuntimeLink.state_version += 1

    def recover(self) -> None:
        """Remove one down-cause; the port comes up when none remain."""
        self._down_causes = max(0, self._down_causes - 1)
        RuntimeLink.state_version += 1

    def set_capacity_factor(self, factor: float, now: float = 0.0) -> None:
        """Scale the effective capacity to ``factor`` x the provisioned rate.

        Args:
            factor: multiplier applied to the provisioned rate.
            now: simulated time of the change; capacity offered up to this
                instant is accrued at the old rate so utilisation stays
                correct across the change.

        Raises:
            ValueError: when ``factor`` is not positive (a zero-capacity
                port is an outage; use :meth:`fail` for that).
        """
        if factor <= 0:
            raise ValueError("capacity factor must be positive; use fail() for an outage")
        if now > self._cap_marker_s:
            self._cap_integral_bits += self.cap_bps * (now - self._cap_marker_s)
            self._cap_marker_s = now
        self.capacity_factor = float(factor)
        RuntimeLink.state_version += 1

    def reset_counters(self) -> None:
        """Zero carried/dropped byte counters (keeps queue state)."""
        self.carried_bytes = 0.0
        self.dropped_bytes = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RuntimeLink({self.spec.src}->{self.spec.dst}, "
            f"q={self.queue_bytes:.0f}B, up={self.up})"
        )
