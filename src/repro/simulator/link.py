"""Runtime state of a directed link (an egress port with a queue).

Each :class:`RuntimeLink` corresponds to one directed
:class:`~repro.topology.graph.LinkSpec`.  The transmitting node owns the
egress queue; the fluid simulation integrates (offered load − capacity) into
the queue backlog every update step, applies DCQCN-style RED/ECN marking and
tracks carried bytes for utilisation statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..topology.graph import LinkSpec

__all__ = ["RuntimeLink"]


class RuntimeLink:
    """Mutable runtime state layered over a static :class:`LinkSpec`."""

    def __init__(
        self,
        spec: LinkSpec,
        ecn_kmin_fraction: float = 0.05,
        ecn_kmax_fraction: float = 0.5,
        ecn_pmax: float = 0.2,
    ) -> None:
        self.spec = spec
        self.queue_bytes: float = 0.0
        self.peak_queue_bytes: float = 0.0
        self.carried_bytes: float = 0.0
        self.dropped_bytes: float = 0.0
        #: offered load (bps) during the most recent update step
        self.offered_bps: float = 0.0
        #: True while the port is administratively/physically up
        self.up: bool = True
        self._ecn_kmin = ecn_kmin_fraction * spec.buffer_bytes
        self._ecn_kmax = ecn_kmax_fraction * spec.buffer_bytes
        self._ecn_pmax = ecn_pmax

    # ------------------------------------------------------------------ #
    # identity / static attributes
    # ------------------------------------------------------------------ #
    @property
    def key(self) -> tuple:
        """(src, dst) identity of the underlying directed link."""
        return self.spec.key

    @property
    def cap_bps(self) -> float:
        """Provisioned capacity in bits per second."""
        return self.spec.cap_bps

    @property
    def delay_s(self) -> float:
        """One-way propagation delay in seconds."""
        return self.spec.delay_s

    @property
    def buffer_bytes(self) -> int:
        """Egress buffer size in bytes."""
        return self.spec.buffer_bytes

    # ------------------------------------------------------------------ #
    # fluid update
    # ------------------------------------------------------------------ #
    def integrate(self, offered_bps: float, dt: float) -> float:
        """Advance the egress queue by one update step.

        Args:
            offered_bps: total arrival rate at the port during the step.
            dt: step length in seconds.

        Returns:
            The fraction of offered traffic actually carried (1.0 when the
            buffer absorbed everything; less than 1.0 only when the buffer
            overflowed and bytes were dropped).
        """
        if not self.up:
            # a dead port carries nothing; traffic offered to it is lost
            self.offered_bps = offered_bps
            self.dropped_bytes += offered_bps * dt / 8.0
            return 0.0

        self.offered_bps = offered_bps
        arriving_bytes = offered_bps * dt / 8.0
        draining_bytes = self.cap_bps * dt / 8.0

        carried = min(arriving_bytes + self.queue_bytes, draining_bytes)
        new_queue = self.queue_bytes + arriving_bytes - carried
        dropped = 0.0
        if new_queue > self.buffer_bytes:
            dropped = new_queue - self.buffer_bytes
            new_queue = float(self.buffer_bytes)
        self.queue_bytes = max(0.0, new_queue)
        self.peak_queue_bytes = max(self.peak_queue_bytes, self.queue_bytes)
        self.carried_bytes += carried
        self.dropped_bytes += dropped

        if arriving_bytes <= 0:
            return 1.0
        accepted = arriving_bytes - dropped
        return max(0.0, min(1.0, accepted / arriving_bytes))

    # ------------------------------------------------------------------ #
    # congestion signals
    # ------------------------------------------------------------------ #
    def ecn_mark_probability(self) -> float:
        """RED/ECN marking probability for the current queue occupancy."""
        q = self.queue_bytes
        if q <= self._ecn_kmin:
            return 0.0
        if q >= self._ecn_kmax:
            return 1.0
        span = self._ecn_kmax - self._ecn_kmin
        if span <= 0:
            return 1.0
        return self._ecn_pmax * (q - self._ecn_kmin) / span

    def queueing_delay_s(self) -> float:
        """Time a newly arriving byte waits behind the current backlog."""
        return self.queue_bytes * 8.0 / self.cap_bps

    def utilization(self, elapsed_s: float) -> float:
        """Average utilisation (carried bits / capacity) since reset."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, (self.carried_bytes * 8.0) / (self.cap_bps * elapsed_s))

    # ------------------------------------------------------------------ #
    # fault injection
    # ------------------------------------------------------------------ #
    def fail(self) -> None:
        """Take the port down (data-plane fast-failover experiments)."""
        self.up = False

    def recover(self) -> None:
        """Bring the port back up."""
        self.up = True

    def reset_counters(self) -> None:
        """Zero carried/dropped byte counters (keeps queue state)."""
        self.carried_bytes = 0.0
        self.dropped_bytes = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RuntimeLink({self.spec.src}->{self.spec.dst}, "
            f"q={self.queue_bytes:.0f}B, up={self.up})"
        )
