"""Shared get-or-append intern table for the columnar stores.

The array-resident control plane keeps strings and tuples out of its
columns by interning them once and storing dense integer references — DC
names and DC-level routes in :class:`~repro.simulator.fct.MetricsStore`,
destinations and chosen paths in
:class:`~repro.simulator.switch.DecisionLog`.  One :class:`Interner`
serves all of them so the get-or-append pattern lives in a single place.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

__all__ = ["Interner"]


class Interner:
    """Maps hashable keys to dense integer references, append-only.

    ``values`` holds the interned object per reference; by default the key
    itself, or an explicit payload when :meth:`intern` is called with one
    (e.g. a CandidatePath keyed by its DC tuple).
    """

    __slots__ = ("_refs", "values")

    def __init__(self) -> None:
        self._refs: Dict[Hashable, int] = {}
        self.values: List[object] = []

    def intern(self, key: Hashable, value: object = None) -> int:
        """Reference of ``key``, appending ``value`` (or the key) if new."""
        ref = self._refs.get(key)
        if ref is None:
            ref = len(self.values)
            self._refs[key] = ref
            self.values.append(key if value is None else value)
        return ref

    def ref(self, key: Hashable, default: int = -1) -> int:
        """Reference of ``key`` without interning (``default`` if absent)."""
        return self._refs.get(key, default)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, ref: int) -> object:
        return self.values[ref]
