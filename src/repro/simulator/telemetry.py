"""Array-resident switch telemetry — the control plane's data layer.

The paper's LCMP prototype keeps per-port congestion registers on every DCI
switch, refreshed by a lightweight monitor routine.  Up to PR 3 this
repository modelled that with per-tick Python objects: every monitor sweep
materialised one :class:`~repro.simulator.switch.PortSample` per port per
switch and handed it to the router, whether or not the router cared.

:class:`TelemetryPlane` replaces that with per-switch × per-port *columns*:

* a **port registry** built once from the runtime network — every DCI
  egress port gets a stable row, ports of one switch are contiguous;
* **telemetry columns** (queue depth, cumulative carried bytes, offered
  load, capacity, liveness, per-interval utilisation, a queue-depth EWMA)
  refreshed by one :meth:`sweep` per monitor interval.  Under the
  vectorized cores the sweep is a handful of fancy-indexed gathers from the
  flow×link incidence arrays (:mod:`repro.simulator.incidence`) — the same
  arrays the update step writes — so a sweep costs O(1) numpy calls, not
  O(ports) Python object constructions;
* **router delivery** via :meth:`~repro.routing.base.Router.on_telemetry`
  with a :class:`TelemetryView` (a per-switch window over the columns).
  Routers that ignore telemetry (ECMP, WCMP, UCMP) are detected once and
  skipped entirely; routers written against the legacy per-sample hook get
  lazily built :class:`PortSample` shims through the base implementation.

Bit-equivalence contract: the columns are gathered from link state that the
vectorized cores sync back to the :class:`~repro.simulator.link.RuntimeLink`
objects at the end of every update step, and the monitor fires *before* the
update when both land on the same instant — so a sweep at time t observes
exactly the values the scalar core's object sampler reads, and router
state/traces stay bit-identical across all three cores (guarded by
``tests/simulator/test_telemetry.py`` and the equivalence suite).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..backend import get_backend
from .link import RuntimeLink
from .switch import PortSample, build_port_sample

__all__ = ["TelemetryPlane", "TelemetryView"]


class TelemetryView:
    """A read-only per-switch window over the telemetry plane's columns.

    Exposes the column slices of one switch's egress ports in port-registry
    order (``port_dcs[i]`` names the neighbouring DC of row ``i``).
    """

    __slots__ = ("_plane", "switch", "_start", "_stop")

    def __init__(self, plane: "TelemetryPlane", switch: str, start: int, stop: int) -> None:
        self._plane = plane
        self.switch = switch
        self._start = start
        self._stop = stop

    def __len__(self) -> int:
        return self._stop - self._start

    @property
    def port_dcs(self) -> List[str]:
        """Neighbouring DC per port row."""
        return self._plane.port_dcs[self._start : self._stop]

    def _col(self, name: str) -> np.ndarray:
        return getattr(self._plane, name)[self._start : self._stop]

    @property
    def queue_bytes(self) -> np.ndarray:
        """Instantaneous egress-queue occupancy per port."""
        return self._col("queue_bytes")

    @property
    def carried_bytes(self) -> np.ndarray:
        """Cumulative carried bytes per port."""
        return self._col("carried_bytes")

    @property
    def offered_bps(self) -> np.ndarray:
        """Offered load during the most recent update step per port."""
        return self._col("offered_bps")

    @property
    def cap_bps(self) -> np.ndarray:
        """Effective capacity per port."""
        return self._col("cap_bps")

    @property
    def up(self) -> np.ndarray:
        """Port liveness."""
        return self._col("up")

    @property
    def utilization(self) -> np.ndarray:
        """Carried-bits / capacity over the last monitor interval."""
        return self._col("utilization")

    @property
    def queue_ewma(self) -> np.ndarray:
        """Exponentially weighted moving average of the queue depth."""
        return self._col("queue_ewma")

    @property
    def buffer_bytes(self) -> np.ndarray:
        """Egress buffer size per port (static)."""
        return self._col("buffer_bytes")

    def build_samples(self, now: float) -> List[PortSample]:
        """Lazily build the compatibility :class:`PortSample` objects.

        Constructed from the synced :class:`RuntimeLink` objects through the
        same helper the object-path sampler uses, so the shim samples are
        field-for-field identical to :meth:`DCISwitch.sample_ports` output.
        """
        plane = self._plane
        return [
            build_port_sample(self.switch, plane.port_dcs[i], plane.links[i], now)
            for i in range(self._start, self._stop)
        ]


class TelemetryPlane:
    """Per-switch × per-port telemetry columns for one runtime network."""

    def __init__(self, network, ewma_alpha: float = 0.125, backend=None) -> None:
        """Build the port registry and allocate the columns.

        Args:
            network: the :class:`~repro.simulator.network.RuntimeNetwork`
                whose DCI switch ports are monitored.
            ewma_alpha: weight of the newest sample in the queue-depth EWMA
                column (``ewma = alpha * q + (1 - alpha) * ewma``).
            backend: the :class:`~repro.backend.ArrayBackend` the sweep
                gathers run on; defaults to the numpy reference backend.
        """
        if not 0 < ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self._network = network
        self.ewma_alpha = float(ewma_alpha)
        self.backend = backend if backend is not None else get_backend("numpy")

        #: links in port-registry order (rows of every column)
        self.links: List[RuntimeLink] = []
        #: neighbouring DC per row
        self.port_dcs: List[str] = []
        #: sampling switch per row
        self.port_switches: List[str] = []
        self._switch_slices: Dict[str, Tuple[int, int]] = {}
        for dc, switch in network.switches.items():
            start = len(self.links)
            for next_dc, link in switch.ports.items():
                self.links.append(link)
                self.port_dcs.append(next_dc)
                self.port_switches.append(dc)
            self._switch_slices[dc] = (start, len(self.links))

        n = len(self.links)
        self.queue_bytes = np.zeros(n)
        self.carried_bytes = np.zeros(n)
        self.offered_bps = np.zeros(n)
        self.cap_bps = np.zeros(n)
        self.up = np.ones(n, dtype=bool)
        self.utilization = np.zeros(n)
        self.queue_ewma = np.zeros(n)
        self.buffer_bytes = np.array([float(link.buffer_bytes) for link in self.links])
        self._prev_carried = np.zeros(n)
        self.last_sweep_s: Optional[float] = None
        self.sweeps = 0
        self._freeze()

        #: routers that actually consume telemetry, resolved once
        self._consumers: List[Tuple[str, object]] = [
            (dc, switch.router)
            for dc, switch in network.switches.items()
            if switch.router.consumes_telemetry()
        ]

        # trace ordering: rows permuted into network.inter_dc_links order so
        # array-backed traces keep the exact key order of the object path
        row_of = {id(link): i for i, link in enumerate(self.links)}
        self._trace_rows = np.array(
            [row_of[id(link)] for link in network.inter_dc_links if id(link) in row_of],
            dtype=np.intp,
        )
        self._trace_keys = [
            link.key for link in network.inter_dc_links if id(link) in row_of
        ]

        # optional fast gather path from the incidence arrays
        self._incidence = None
        self._inc_slots: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    @property
    def num_ports(self) -> int:
        """Number of registered egress ports across all switches."""
        return len(self.links)

    @property
    def switches(self) -> List[str]:
        """Switch names in registry order."""
        return list(self._switch_slices)

    def view(self, switch: str) -> TelemetryView:
        """The per-switch window over the columns."""
        start, stop = self._switch_slices[switch]
        return TelemetryView(self, switch, start, stop)

    # ------------------------------------------------------------------ #
    def attach_incidence(self, incidence) -> None:
        """Source sweeps from the vectorized core's link arrays.

        Registers every monitored port in the incidence link registry (their
        mutable state then lives in the arrays for the whole run) and
        remembers the registry slots so a sweep is a fancy-indexed gather.
        """
        slots = incidence.register_links(self.links)
        self._incidence = incidence
        self._inc_slots = np.asarray(slots, dtype=np.intp)

    # ------------------------------------------------------------------ #
    def sweep(self, now: float) -> None:
        """Refresh every column from current link state.

        Under the vectorized cores this reads the incidence arrays (the
        authoritative home of link state between update steps); without an
        attached incidence it gathers from the link objects — both observe
        the identical post-step values.
        """
        n = len(self.links)
        inc = self._incidence
        if inc is not None:
            inc.ensure_fresh_links()
            slots = self._inc_slots
            bk = self.backend
            self.queue_bytes = bk.gather_rows(inc.queue_bytes, slots)
            self.carried_bytes = bk.gather_rows(inc.carried_bytes, slots)
            self.offered_bps = bk.gather_rows(inc.offered_bps, slots)
            self.cap_bps = bk.gather_rows(inc.cap_bps, slots)
            self.up = bk.gather_rows(inc.up, slots)
        else:
            links = self.links
            self.queue_bytes = np.fromiter(
                (link.queue_bytes for link in links), dtype=np.float64, count=n
            )
            self.carried_bytes = np.fromiter(
                (link.carried_bytes for link in links), dtype=np.float64, count=n
            )
            self.offered_bps = np.fromiter(
                (link.offered_bps for link in links), dtype=np.float64, count=n
            )
            self.cap_bps = np.fromiter(
                (link.cap_bps for link in links), dtype=np.float64, count=n
            )
            self.up = np.fromiter((link.up for link in links), dtype=bool, count=n)

        if self.last_sweep_s is None:
            self.utilization = np.zeros(n)
            self.queue_ewma = self.queue_bytes.copy()
        else:
            dt = now - self.last_sweep_s
            if dt > 0:
                delta_bits = (self.carried_bytes - self._prev_carried) * 8.0
                denom = self.cap_bps * dt
                self.utilization = self.backend.masked_divide(
                    delta_bits, denom, denom > 0
                )
            alpha = self.ewma_alpha
            self.queue_ewma = alpha * self.queue_bytes + (1.0 - alpha) * self.queue_ewma
        self._prev_carried = self.carried_bytes
        self.last_sweep_s = now
        self.sweeps += 1
        self._freeze()

    def _freeze(self) -> None:
        """Mark every column read-only.

        Views hand out slices of the live arrays; freezing makes an
        accidental in-place write by a router raise instead of silently
        corrupting the EWMA/trace state every other consumer reads.  Each
        sweep builds fresh (writable) arrays, so freezing costs nothing.
        """
        for name in (
            "queue_bytes",
            "carried_bytes",
            "offered_bps",
            "cap_bps",
            "up",
            "utilization",
            "queue_ewma",
            "buffer_bytes",
        ):
            getattr(self, name).flags.writeable = False

    def feed_routers(self, now: float) -> None:
        """Deliver the sweep to every telemetry-consuming router."""
        for dc, router in self._consumers:
            start, stop = self._switch_slices[dc]
            router.on_telemetry(TelemetryView(self, dc, start, stop), now)

    def observe_trace(self, trace, now: float) -> None:
        """Append this sweep's inter-DC rows to an array-backed link trace."""
        rows = self._trace_rows
        trace.observe_batch(
            self._trace_keys,
            now,
            self.queue_bytes[rows],
            self.carried_bytes[rows],
            self.offered_bps[rows],
        )
