"""Flow-completion-time recording and slowdown computation.

The paper's primary metric is *FCT slowdown*: a flow's measured FCT divided
by its ideal FCT, where the ideal FCT is the completion time the same flow
would achieve running alone on the shortest-propagation-delay path of the
topology.  The collector computes the ideal reference from the static
topology (so it is identical across routing algorithms) and records one
:class:`FlowRecord` per completed flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..topology.graph import Topology
from ..topology.paths import PathSet, shortest_delay_path
from .flow import Flow, FlowDemand

__all__ = ["FlowRecord", "IdealFctModel", "FCTCollector"]


@dataclass(frozen=True)
class FlowRecord:
    """One completed flow and its slowdown.

    Attributes:
        flow_id: unique flow id.
        src_dc / dst_dc: endpoints.
        size_bytes: flow size.
        arrival_s: arrival time.
        fct_s: measured flow completion time.
        ideal_fct_s: ideal (unloaded, shortest-delay-path) completion time.
        slowdown: ``fct_s / ideal_fct_s`` (always >= 1 up to noise).
        path_dcs: the DC-level route the flow actually took.
    """

    flow_id: int
    src_dc: str
    dst_dc: str
    size_bytes: int
    arrival_s: float
    fct_s: float
    ideal_fct_s: float
    slowdown: float
    path_dcs: Tuple[str, ...]


class IdealFctModel:
    """Computes the ideal FCT reference for each DC pair.

    The paper normalises FCT by the completion time the flow would achieve
    running alone on the best path of the topology.  For a flow of size
    ``S`` between DCs (a, b) each candidate path ``p`` offers::

        fct_p = access_delay(a) + access_delay(b) + prop_delay(p)
                + S * 8 / min(NIC rate, bottleneck of p)

    and the ideal FCT is the minimum over candidates — for small flows that
    is the shortest-propagation-delay route (the paper's description), for
    very large flows a higher-capacity route may win.  Taking the minimum
    keeps the slowdown a true ratio >= ~1 for every flow size.
    """

    def __init__(self, topology: Topology, pathset: PathSet) -> None:
        self._topology = topology
        self._pathset = pathset
        self._cache: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}

    def reference(self, src_dc: str, dst_dc: str) -> List[Tuple[float, float]]:
        """Per-candidate (fixed delay seconds, attainable rate bps) options."""
        key = (src_dc, dst_dc)
        if key in self._cache:
            return self._cache[key]

        groups = self._topology.host_groups
        src_group = groups.get(src_dc)
        dst_group = groups.get(dst_dc)
        access_delay = 0.0
        nic_limit = float("inf")
        if src_group:
            access_delay += src_group.access_delay_s
            nic_limit = min(nic_limit, src_group.nic_bps)
        if dst_group:
            access_delay += dst_group.access_delay_s
            nic_limit = min(nic_limit, dst_group.nic_bps)

        options: List[Tuple[float, float]] = []
        if src_dc == dst_dc:
            rate = nic_limit if nic_limit != float("inf") else 100e9
            options.append((access_delay, rate))
        else:
            candidates = self._pathset.candidates(src_dc, dst_dc)
            if not candidates:
                best = shortest_delay_path(self._topology, src_dc, dst_dc)
                if best is None:
                    raise ValueError(f"no path between {src_dc} and {dst_dc}")
                candidates = [best]
            for candidate in candidates:
                options.append(
                    (
                        access_delay + candidate.delay_s,
                        min(nic_limit, candidate.bottleneck_bps),
                    )
                )
        self._cache[key] = options
        return options

    def ideal_fct_s(self, demand: FlowDemand) -> float:
        """Ideal FCT for a demand: best candidate, run alone (seconds)."""
        options = self.reference(demand.src_dc, demand.dst_dc)
        size_bits = demand.size_bytes * 8.0
        return min(delay + size_bits / rate for delay, rate in options)


class FCTCollector:
    """Accumulates :class:`FlowRecord` objects as flows complete."""

    def __init__(self, ideal_model: IdealFctModel, fidelity_noise: float = 0.0, rng=None):
        """Create a collector.

        Args:
            ideal_model: the ideal-FCT reference.
            fidelity_noise: sigma of multiplicative log-normal noise applied
                to measured FCTs (0 disables noise; used only by the Fig. 6
                testbed-fidelity profile).
            rng: numpy Generator used when noise is enabled.
        """
        self._ideal = ideal_model
        self._noise = fidelity_noise
        self._rng = rng
        self._records: List[FlowRecord] = []

    def record(self, flow: Flow) -> FlowRecord:
        """Record a completed flow and return its :class:`FlowRecord`."""
        demand = flow.demand
        fct = flow.fct_s()
        if self._noise > 0 and self._rng is not None:
            fct *= float(self._rng.lognormal(mean=0.0, sigma=self._noise))
        ideal = self._ideal.ideal_fct_s(demand)
        slowdown = fct / ideal if ideal > 0 else float("inf")
        path_dcs = tuple(
            dict.fromkeys(
                [demand.src_dc]
                + [link.spec.dst for link in flow.path if link.spec.inter_dc]
            )
        )
        rec = FlowRecord(
            flow_id=demand.flow_id,
            src_dc=demand.src_dc,
            dst_dc=demand.dst_dc,
            size_bytes=demand.size_bytes,
            arrival_s=demand.arrival_s,
            fct_s=fct,
            ideal_fct_s=ideal,
            slowdown=slowdown,
            path_dcs=path_dcs,
        )
        self._records.append(rec)
        return rec

    @property
    def records(self) -> List[FlowRecord]:
        """All records collected so far."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def filter_pair(self, src_dc: str, dst_dc: str) -> List[FlowRecord]:
        """Records for flows between a specific ordered DC pair."""
        return [r for r in self._records if r.src_dc == src_dc and r.dst_dc == dst_dc]

    def slowdowns(self) -> List[float]:
        """All slowdown values."""
        return [r.slowdown for r in self._records]
