"""Flow-completion-time recording: columnar metrics plus slowdown math.

The paper's primary metric is *FCT slowdown*: a flow's measured FCT divided
by its ideal FCT, where the ideal FCT is the completion time the same flow
would achieve running alone on the shortest-propagation-delay path of the
topology.  The collector computes the ideal reference from the static
topology (so it is identical across routing algorithms) and records every
completed flow.

Storage is columnar: :class:`MetricsStore` keeps one growable numpy column
per field (arrival, FCT, ideal FCT, slowdown, size, an interned path index,
interned endpoint ids) and two small intern tables (DC names, DC-level
routes).  Completions append scalars to columns — no per-flow record object
is built on the hot path — and analysis code
(:mod:`repro.analysis.fct_analysis`, the experiment runner, the figure
drivers) consumes the columns directly.  The legacy :class:`FlowRecord`
dataclass survives as a *view*: :meth:`MetricsStore.records` (and the
collector/result accessors built on it) materialise fresh record objects on
demand, so existing callers keep working and none of them can mutate
collector state through a returned list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..topology.graph import Topology
from ..topology.paths import PathSet, shortest_delay_path
from .flow import Flow, FlowDemand
from .interning import Interner

__all__ = ["FlowRecord", "IdealFctModel", "FCTCollector", "MetricsStore"]


@dataclass(frozen=True)
class FlowRecord:
    """One completed flow and its slowdown (a materialised column view).

    Attributes:
        flow_id: unique flow id.
        src_dc / dst_dc: endpoints.
        size_bytes: flow size.
        arrival_s: arrival time.
        fct_s: measured flow completion time.
        ideal_fct_s: ideal (unloaded, shortest-delay-path) completion time.
        slowdown: ``fct_s / ideal_fct_s`` (always >= 1 up to noise).
        path_dcs: the DC-level route the flow actually took.
    """

    flow_id: int
    src_dc: str
    dst_dc: str
    size_bytes: int
    arrival_s: float
    fct_s: float
    ideal_fct_s: float
    slowdown: float
    path_dcs: Tuple[str, ...]


def route_dcs_of(src_dc: str, path) -> Tuple[str, ...]:
    """DC-level route of a resolved link path (source DC first)."""
    return tuple(
        dict.fromkeys([src_dc] + [link.spec.dst for link in path if link.spec.inter_dc])
    )


class MetricsStore:
    """Growable columnar store of completed-flow metrics.

    Columns (one row per completed flow, in completion order):
    ``flow_id``, ``size_bytes``, ``arrival_s``, ``fct_s``, ``ideal_fct_s``,
    ``slowdown``, ``path_index`` (an id into the route intern table) and
    interned ``src``/``dst`` ids.  Column accessors return trimmed copies;
    the raw arrays stay private so callers cannot corrupt the store.
    """

    _COLUMNS = (
        ("flow_id", np.int64),
        ("size_bytes", np.int64),
        ("src_ref", np.int64),
        ("dst_ref", np.int64),
        ("arrival_s", np.float64),
        ("fct_s", np.float64),
        ("ideal_fct_s", np.float64),
        ("slowdown", np.float64),
        ("path_index", np.int64),
    )

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._n = 0
        for name, dtype in self._COLUMNS:
            setattr(self, f"_{name}", np.empty(capacity, dtype=dtype))
        #: DC-name intern table
        self._dcs = Interner()
        #: DC-level route intern table (the "path index" targets)
        self._routes = Interner()

    # ------------------------------------------------------------------ #
    # interning
    # ------------------------------------------------------------------ #
    def intern_dc(self, name: str) -> int:
        """Integer id of a DC name (registered on first use)."""
        return self._dcs.intern(name)

    def intern_route(self, route: Tuple[str, ...]) -> int:
        """Integer id of a DC-level route (registered on first use)."""
        return self._routes.intern(route)

    def route(self, path_index: int) -> Tuple[str, ...]:
        """The DC-level route interned under ``path_index``."""
        return self._routes[path_index]

    def dc_name(self, ref: int) -> str:
        """The DC name interned under ``ref``."""
        return self._dcs[ref]

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def _grow_to(self, need: int) -> None:
        capacity = len(self._flow_id)
        if need <= capacity:
            return
        while capacity < need:
            capacity *= 2
        n = self._n
        for name, _ in self._COLUMNS:
            old = getattr(self, f"_{name}")
            grown = np.empty(capacity, dtype=old.dtype)
            grown[:n] = old[:n]
            setattr(self, f"_{name}", grown)

    def append(
        self,
        flow_id: int,
        src_dc: str,
        dst_dc: str,
        size_bytes: int,
        arrival_s: float,
        fct_s: float,
        ideal_fct_s: float,
        slowdown: float,
        path_index: int,
    ) -> int:
        """Append one completed flow; returns its row index."""
        n = self._n
        self._grow_to(n + 1)
        self._flow_id[n] = flow_id
        self._size_bytes[n] = size_bytes
        self._src_ref[n] = self.intern_dc(src_dc)
        self._dst_ref[n] = self.intern_dc(dst_dc)
        self._arrival_s[n] = arrival_s
        self._fct_s[n] = fct_s
        self._ideal_fct_s[n] = ideal_fct_s
        self._slowdown[n] = slowdown
        self._path_index[n] = path_index
        self._n = n + 1
        return n

    # ------------------------------------------------------------------ #
    # column access (trimmed copies)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._n

    def column(self, name: str) -> np.ndarray:
        """A trimmed copy of one column (``"slowdown"``, ``"arrival_s"``…)."""
        return getattr(self, f"_{name}")[: self._n].copy()

    def slowdowns(self) -> np.ndarray:
        """Slowdown column (copy)."""
        return self.column("slowdown")

    def arrivals(self) -> np.ndarray:
        """Arrival-time column (copy)."""
        return self.column("arrival_s")

    def fcts(self) -> np.ndarray:
        """Measured-FCT column (copy)."""
        return self.column("fct_s")

    def sizes(self) -> np.ndarray:
        """Flow-size column (copy)."""
        return self.column("size_bytes")

    def path_indices(self) -> np.ndarray:
        """Path-index column (copy); decode with :meth:`route`."""
        return self.column("path_index")

    def pair_mask(self, src_dc: str, dst_dc: str, bidirectional: bool = False) -> np.ndarray:
        """Boolean row mask selecting flows between an ordered DC pair."""
        src_ref = self._dcs.ref(src_dc)
        dst_ref = self._dcs.ref(dst_dc)
        srcs = self._src_ref[: self._n]
        dsts = self._dst_ref[: self._n]
        mask = (srcs == src_ref) & (dsts == dst_ref)
        if bidirectional:
            mask |= (srcs == dst_ref) & (dsts == src_ref)
        return mask

    # ------------------------------------------------------------------ #
    # record views
    # ------------------------------------------------------------------ #
    def record(self, row: int) -> FlowRecord:
        """Materialise the ``row``-th completed flow as a :class:`FlowRecord`."""
        return FlowRecord(
            flow_id=int(self._flow_id[row]),
            src_dc=self._dcs[int(self._src_ref[row])],
            dst_dc=self._dcs[int(self._dst_ref[row])],
            size_bytes=int(self._size_bytes[row]),
            arrival_s=float(self._arrival_s[row]),
            fct_s=float(self._fct_s[row]),
            ideal_fct_s=float(self._ideal_fct_s[row]),
            slowdown=float(self._slowdown[row]),
            path_dcs=self._routes[int(self._path_index[row])],
        )

    def records(self, mask: Optional[np.ndarray] = None) -> List[FlowRecord]:
        """Materialise (optionally masked) rows as a fresh record list."""
        n = self._n
        rows = range(n) if mask is None else np.flatnonzero(mask[:n]).tolist()
        flow_ids = self._flow_id[:n].tolist()
        sizes = self._size_bytes[:n].tolist()
        src_refs = self._src_ref[:n].tolist()
        dst_refs = self._dst_ref[:n].tolist()
        arrivals = self._arrival_s[:n].tolist()
        fcts = self._fct_s[:n].tolist()
        ideals = self._ideal_fct_s[:n].tolist()
        slowdowns = self._slowdown[:n].tolist()
        paths = self._path_index[:n].tolist()
        names = self._dcs.values
        routes = self._routes.values
        return [
            FlowRecord(
                flow_id=flow_ids[i],
                src_dc=names[src_refs[i]],
                dst_dc=names[dst_refs[i]],
                size_bytes=sizes[i],
                arrival_s=arrivals[i],
                fct_s=fcts[i],
                ideal_fct_s=ideals[i],
                slowdown=slowdowns[i],
                path_dcs=routes[paths[i]],
            )
            for i in rows
        ]


class IdealFctModel:
    """Computes the ideal FCT reference for each DC pair.

    The paper normalises FCT by the completion time the flow would achieve
    running alone on the best path of the topology.  For a flow of size
    ``S`` between DCs (a, b) each candidate path ``p`` offers::

        fct_p = access_delay(a) + access_delay(b) + prop_delay(p)
                + S * 8 / min(NIC rate, bottleneck of p)

    and the ideal FCT is the minimum over candidates — for small flows that
    is the shortest-propagation-delay route (the paper's description), for
    very large flows a higher-capacity route may win.  Taking the minimum
    keeps the slowdown a true ratio >= ~1 for every flow size.
    """

    def __init__(self, topology: Topology, pathset: PathSet) -> None:
        self._topology = topology
        self._pathset = pathset
        self._cache: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}

    def reference(self, src_dc: str, dst_dc: str) -> List[Tuple[float, float]]:
        """Per-candidate (fixed delay seconds, attainable rate bps) options."""
        key = (src_dc, dst_dc)
        if key in self._cache:
            return self._cache[key]

        groups = self._topology.host_groups
        src_group = groups.get(src_dc)
        dst_group = groups.get(dst_dc)
        access_delay = 0.0
        nic_limit = float("inf")
        if src_group:
            access_delay += src_group.access_delay_s
            nic_limit = min(nic_limit, src_group.nic_bps)
        if dst_group:
            access_delay += dst_group.access_delay_s
            nic_limit = min(nic_limit, dst_group.nic_bps)

        options: List[Tuple[float, float]] = []
        if src_dc == dst_dc:
            rate = nic_limit if nic_limit != float("inf") else 100e9
            options.append((access_delay, rate))
        else:
            # columnar pair metrics: no CandidatePath views are built
            delays, bnecks = self._pathset.pair_metrics(src_dc, dst_dc)
            if len(delays) == 0:
                best = shortest_delay_path(self._topology, src_dc, dst_dc)
                if best is None:
                    raise ValueError(f"no path between {src_dc} and {dst_dc}")
                delays, bnecks = [best.delay_s], [best.bottleneck_bps]
            for delay_s, bneck_bps in zip(delays, bnecks):
                options.append(
                    (
                        access_delay + float(delay_s),
                        min(nic_limit, float(bneck_bps)),
                    )
                )
        self._cache[key] = options
        return options

    def ideal_fct_s(self, demand: FlowDemand) -> float:
        """Ideal FCT for a demand: best candidate, run alone (seconds)."""
        options = self.reference(demand.src_dc, demand.dst_dc)
        size_bits = demand.size_bytes * 8.0
        return min(delay + size_bits / rate for delay, rate in options)


class FCTCollector:
    """Accumulates completed-flow metrics in a :class:`MetricsStore`."""

    def __init__(self, ideal_model: IdealFctModel, fidelity_noise: float = 0.0, rng=None):
        """Create a collector.

        Args:
            ideal_model: the ideal-FCT reference.
            fidelity_noise: sigma of multiplicative log-normal noise applied
                to measured FCTs (0 disables noise; used only by the Fig. 6
                testbed-fidelity profile).
            rng: numpy Generator used when noise is enabled.
        """
        self._ideal = ideal_model
        self._noise = fidelity_noise
        self._rng = rng
        self.store = MetricsStore()

    def route_index_for(self, src_dc: str, path) -> int:
        """Intern the DC-level route of a resolved link path.

        The simulation calls this at flow-arrival (and re-route) time so
        completion only writes the precomputed integer — see
        :attr:`~repro.simulator.flow.Flow.route_id`.
        """
        return self.store.intern_route(route_dcs_of(src_dc, path))

    def collect(self, flow: Flow) -> int:
        """Record a completed flow; returns its store row (no object built)."""
        demand = flow.demand
        fct = flow.fct_s()
        if self._noise > 0 and self._rng is not None:
            fct *= float(self._rng.lognormal(mean=0.0, sigma=self._noise))
        ideal = self._ideal.ideal_fct_s(demand)
        slowdown = fct / ideal if ideal > 0 else float("inf")
        route_id = flow.route_id
        if route_id < 0:
            # standalone use (tests, ad-hoc flows): derive the route now
            route_id = self.route_index_for(demand.src_dc, flow.path)
        return self.store.append(
            flow_id=demand.flow_id,
            src_dc=demand.src_dc,
            dst_dc=demand.dst_dc,
            size_bytes=demand.size_bytes,
            arrival_s=demand.arrival_s,
            fct_s=fct,
            ideal_fct_s=ideal,
            slowdown=slowdown,
            path_index=route_id,
        )

    def record(self, flow: Flow) -> FlowRecord:
        """Record a completed flow and return its :class:`FlowRecord` view."""
        return self.store.record(self.collect(flow))

    @property
    def records(self) -> List[FlowRecord]:
        """All records collected so far (freshly materialised copies)."""
        return self.store.records()

    def __len__(self) -> int:
        return len(self.store)

    def filter_pair(self, src_dc: str, dst_dc: str) -> List[FlowRecord]:
        """Records for flows between a specific ordered DC pair."""
        return self.store.records(self.store.pair_mask(src_dc, dst_dc))

    def slowdowns(self) -> List[float]:
        """All slowdown values."""
        return self.store.slowdowns().tolist()
