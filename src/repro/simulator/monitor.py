"""Queue monitoring and time-series tracing.

The paper's LCMP prototype runs a lightweight monitor routine on each DCI
switch that samples per-port queue depth at a modest cadence and feeds the
on-switch congestion estimator.  :class:`QueueMonitor` reproduces that: it is
driven by a periodic engine event and forwards
:class:`~repro.simulator.switch.PortSample` objects to each switch's router.

:class:`LinkTrace` optionally records per-link time series (queue depth,
utilisation) for the motivation figure (Fig. 1b) and for debugging.

Both samplers read state off the :class:`~repro.simulator.link.RuntimeLink`
objects.  That stays correct under the vectorized update core — which keeps
link state in arrays (:mod:`repro.simulator.incidence`) — because the core
syncs every inter-DC slot back to its link object at the end of each update
step, and the monitor fires *before* the update when both land on the same
instant; a sample at time t therefore observes exactly the post-step state
of t − 1 on either core, which is what keeps traces bit-identical between
the scalar and vectorized paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .link import RuntimeLink
from .network import RuntimeNetwork

__all__ = ["QueueMonitor", "LinkTrace", "LinkTraceSample"]


@dataclass(frozen=True)
class LinkTraceSample:
    """One point of a per-link time series."""

    time_s: float
    queue_bytes: float
    carried_bytes: float
    offered_bps: float


class LinkTrace:
    """Records per-link time series at the monitoring cadence."""

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, str], List[LinkTraceSample]] = {}

    def observe(self, link: RuntimeLink, now: float) -> None:
        """Append one sample for ``link`` at time ``now``."""
        self._series.setdefault(link.key, []).append(
            LinkTraceSample(
                time_s=now,
                queue_bytes=link.queue_bytes,
                carried_bytes=link.carried_bytes,
                offered_bps=link.offered_bps,
            )
        )

    def series(self, key: Tuple[str, str]) -> List[LinkTraceSample]:
        """Time series for a directed link key, empty when never observed."""
        return list(self._series.get(key, []))

    def keys(self) -> List[Tuple[str, str]]:
        """All link keys with recorded samples."""
        return list(self._series.keys())

    def peak_queue(self, key: Tuple[str, str]) -> float:
        """Maximum observed queue depth for a link."""
        samples = self._series.get(key, [])
        return max((s.queue_bytes for s in samples), default=0.0)


class QueueMonitor:
    """Drives per-switch port sampling and optional link tracing."""

    def __init__(self, network: RuntimeNetwork, trace: Optional[LinkTrace] = None) -> None:
        self._network = network
        self._trace = trace
        self.samples_taken = 0

    def sample(self, now: float) -> None:
        """Sample every DCI port once; called by the periodic engine event."""
        self._network.sample_all_ports(now)
        self.samples_taken += 1
        if self._trace is not None:
            for link in self._network.inter_dc_links:
                self._trace.observe(link, now)

    @property
    def trace(self) -> Optional[LinkTrace]:
        """The attached trace, if any."""
        return self._trace
