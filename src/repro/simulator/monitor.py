"""Queue monitoring and time-series tracing.

The paper's LCMP prototype runs a lightweight monitor routine on each DCI
switch that samples per-port queue depth at a modest cadence and feeds the
on-switch congestion estimator.  :class:`QueueMonitor` reproduces that.  It
drives one of two equivalent paths per sweep:

* the **array path** (the batched control plane): one
  :meth:`~repro.simulator.telemetry.TelemetryPlane.sweep` gathers every
  port's state into columns, telemetry-consuming routers receive a columnar
  view, and oblivious routers cost nothing;
* the **object path** (the scalar reference core, and standalone use): each
  switch builds one :class:`~repro.simulator.switch.PortSample` per port
  and feeds its router, exactly as before.

Both observe identical values: the vectorized cores sync link state back to
the :class:`~repro.simulator.link.RuntimeLink` objects at the end of each
update step, and the monitor fires *before* the update when both land on
the same instant — a sample at time t therefore sees exactly the post-step
state of t − 1 on every core, which is what keeps traces and router state
bit-identical across the scalar, legacy-vectorized and SoA paths.

:class:`LinkTrace` records per-link time series (queue depth, utilisation)
for the motivation figure (Fig. 1b) and debugging.  Samples live in
growable numpy columns per link — long sweep-run traces no longer hold one
dataclass per point — and the legacy :class:`LinkTraceSample` objects are
materialised freshly on access, so callers cannot mutate trace state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .link import RuntimeLink
from .network import RuntimeNetwork

__all__ = ["QueueMonitor", "LinkTrace", "LinkTraceSample"]


@dataclass(frozen=True)
class LinkTraceSample:
    """One point of a per-link time series."""

    time_s: float
    queue_bytes: float
    carried_bytes: float
    offered_bps: float


class _TraceColumns:
    """Growable parallel arrays holding one link's time series."""

    __slots__ = ("n", "time_s", "queue_bytes", "carried_bytes", "offered_bps")

    def __init__(self, capacity: int = 64) -> None:
        self.n = 0
        self.time_s = np.empty(capacity)
        self.queue_bytes = np.empty(capacity)
        self.carried_bytes = np.empty(capacity)
        self.offered_bps = np.empty(capacity)

    def append(self, time_s: float, queue: float, carried: float, offered: float) -> None:
        n = self.n
        if n == len(self.time_s):
            for name in self.__slots__[1:]:
                old = getattr(self, name)
                grown = np.empty(2 * len(old))
                grown[:n] = old
                setattr(self, name, grown)
        self.time_s[n] = time_s
        self.queue_bytes[n] = queue
        self.carried_bytes[n] = carried
        self.offered_bps[n] = offered
        self.n = n + 1


class LinkTrace:
    """Records per-link time series at the monitoring cadence (columnar)."""

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, str], _TraceColumns] = {}

    def _columns_for(self, key: Tuple[str, str]) -> _TraceColumns:
        cols = self._series.get(key)
        if cols is None:
            cols = self._series[key] = _TraceColumns()
        return cols

    def observe(self, link: RuntimeLink, now: float) -> None:
        """Append one sample for ``link`` at time ``now``."""
        self._columns_for(link.key).append(
            now, link.queue_bytes, link.carried_bytes, link.offered_bps
        )

    def observe_batch(
        self,
        keys: Sequence[Tuple[str, str]],
        now: float,
        queue_bytes: np.ndarray,
        carried_bytes: np.ndarray,
        offered_bps: np.ndarray,
    ) -> None:
        """Append one sweep's worth of samples (element i belongs to keys[i])."""
        queue_l = queue_bytes.tolist()
        carried_l = carried_bytes.tolist()
        offered_l = offered_bps.tolist()
        for i, key in enumerate(keys):
            self._columns_for(key).append(now, queue_l[i], carried_l[i], offered_l[i])

    # ------------------------------------------------------------------ #
    def series(self, key: Tuple[str, str]) -> List[LinkTraceSample]:
        """Time series for a directed link key, empty when never observed.

        Materialised freshly per call — the returned samples are copies,
        mutating the list cannot affect the trace.
        """
        cols = self._series.get(key)
        if cols is None:
            return []
        n = cols.n
        times = cols.time_s[:n].tolist()
        queues = cols.queue_bytes[:n].tolist()
        carried = cols.carried_bytes[:n].tolist()
        offered = cols.offered_bps[:n].tolist()
        return [
            LinkTraceSample(
                time_s=times[i],
                queue_bytes=queues[i],
                carried_bytes=carried[i],
                offered_bps=offered[i],
            )
            for i in range(n)
        ]

    def columns(
        self, key: Tuple[str, str]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The raw column arrays ``(time_s, queue, carried, offered)``.

        Returned as copies so callers cannot mutate the trace in place.
        """
        cols = self._series.get(key)
        if cols is None:
            empty = np.empty(0)
            return empty, empty.copy(), empty.copy(), empty.copy()
        n = cols.n
        return (
            cols.time_s[:n].copy(),
            cols.queue_bytes[:n].copy(),
            cols.carried_bytes[:n].copy(),
            cols.offered_bps[:n].copy(),
        )

    def keys(self) -> List[Tuple[str, str]]:
        """All link keys with recorded samples."""
        return list(self._series.keys())

    def peak_queue(self, key: Tuple[str, str]) -> float:
        """Maximum observed queue depth for a link."""
        cols = self._series.get(key)
        if cols is None or cols.n == 0:
            return 0.0
        return float(cols.queue_bytes[: cols.n].max())


class QueueMonitor:
    """Drives per-switch port sampling and optional link tracing."""

    def __init__(
        self,
        network: RuntimeNetwork,
        trace: Optional[LinkTrace] = None,
        plane=None,
    ) -> None:
        """Create the monitor.

        Args:
            network: the runtime network to sample.
            trace: optional per-link time-series recorder.
            plane: optional
                :class:`~repro.simulator.telemetry.TelemetryPlane`; when
                given, sweeps run through the array path instead of
                materialising per-port samples.
        """
        self._network = network
        self._trace = trace
        self._plane = plane
        self.samples_taken = 0

    def sample(self, now: float) -> None:
        """Sample every DCI port once; called by the periodic engine event."""
        plane = self._plane
        if plane is not None:
            plane.sweep(now)
            plane.feed_routers(now)
            self.samples_taken += 1
            if self._trace is not None:
                plane.observe_trace(self._trace, now)
            return
        self._network.sample_all_ports(now)
        self.samples_taken += 1
        if self._trace is not None:
            for link in self._network.inter_dc_links:
                self._trace.observe(link, now)

    @property
    def trace(self) -> Optional[LinkTrace]:
        """The attached trace, if any."""
        return self._trace

    @property
    def plane(self):
        """The attached telemetry plane, if any."""
        return self._plane
