"""Fluid flow-level discrete-event network simulator.

The substrate that replaces the paper's NS-3 simulations (see DESIGN.md for
the substitution rationale).  Public entry points:

* :class:`~repro.simulator.engine.SimulationEngine` — the event loop.
* :class:`~repro.simulator.network.RuntimeNetwork` — runtime topology state.
* :class:`~repro.simulator.fluid.FluidSimulation` — one simulation run.
* :class:`~repro.simulator.config.SimulationConfig` — tunables.
"""

from .config import SimulationConfig
from .engine import Event, EventQueue, SimulationEngine, SimulationError
from .fct import FCTCollector, FlowRecord, IdealFctModel, MetricsStore
from .flow import FeedbackSignal, Flow, FlowDemand
from .flow_table import ColumnBlock, FlowTable
from .fluid import FlowFailure, FluidSimulation, LinkStats, SimulationResult
from .incidence import FlowLinkIncidence
from .link import RuntimeLink
from .monitor import LinkTrace, LinkTraceSample, QueueMonitor
from .network import RoutingLoopError, RuntimeNetwork
from .switch import DCISwitch, DecisionLog, PortSample, RoutingDecision
from .telemetry import TelemetryPlane, TelemetryView

__all__ = [
    "SimulationConfig",
    "SimulationEngine",
    "SimulationError",
    "Event",
    "EventQueue",
    "FCTCollector",
    "FlowRecord",
    "IdealFctModel",
    "MetricsStore",
    "FeedbackSignal",
    "Flow",
    "FlowDemand",
    "FlowFailure",
    "FluidSimulation",
    "LinkStats",
    "SimulationResult",
    "RuntimeLink",
    "FlowLinkIncidence",
    "FlowTable",
    "ColumnBlock",
    "LinkTrace",
    "LinkTraceSample",
    "QueueMonitor",
    "RoutingLoopError",
    "RuntimeNetwork",
    "DCISwitch",
    "DecisionLog",
    "PortSample",
    "RoutingDecision",
    "TelemetryPlane",
    "TelemetryView",
]
