"""Runtime metrics primitives: counters, gauges, histograms, registry.

The simulator's observability plane (see DESIGN.md, "Observability plane")
records *what the simulator itself is doing* — how often slow-path
fallbacks fire, how deep the event heap gets, how large arrival batches
are — separately from the *simulated* metrics (FCTs, link stats) that live
in :class:`~repro.simulator.fct.MetricsStore`.

Three metric kinds cover every instrumentation site:

* :class:`Counter` — a monotonically increasing count (events fired,
  slow-path invocations).  ``inc()`` is one Python integer add, cheap
  enough for any per-step site.
* :class:`Gauge` — a last-value-plus-high-watermark pair (heap depth,
  active-flow count).
* :class:`Histogram` — a running ``count/sum/max`` plus a bounded numpy
  ring buffer of recent observations, from which percentiles are computed
  on demand (arrival batch sizes, span durations).  The ring keeps memory
  bounded on million-step runs while the snapshot stays mergeable: the
  retained samples travel with it, so cross-worker aggregation
  (:func:`repro.obs.export.merge_snapshots`) concatenates rings and
  recomputes percentiles instead of averaging averages.

A :class:`MetricsRegistry` owns one namespace of metrics; names follow a
dotted ``layer.event`` taxonomy (``engine.events_fired``,
``slow_path.deliver_repeated``).  ``snapshot()`` renders everything into a
plain JSON-serialisable dict — the object attached to
:attr:`~repro.simulator.fluid.SimulationResult.stats`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value gauge that also tracks its high watermark."""

    __slots__ = ("name", "value", "high")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.high = 0.0

    def set(self, v: float) -> None:
        """Record the current value (updates the high watermark)."""
        self.value = v
        if v > self.high:
            self.high = v

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value}, high={self.high})"


class Histogram:
    """Running stats plus a bounded ring of recent observations.

    The ring holds the most recent ``capacity`` observations in a
    preallocated numpy array; ``count``/``total``/``max`` cover the full
    lifetime, so long runs lose percentile resolution on ancient samples
    but never lose the aggregate picture.
    """

    __slots__ = ("name", "count", "total", "max", "_ring", "_pos", "capacity")

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._ring = np.empty(capacity)
        self._pos = 0

    def observe(self, v: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += v
        if v > self.max:
            self.max = v
        self._ring[self._pos] = v
        self._pos += 1
        if self._pos == self.capacity:
            self._pos = 0

    def samples(self) -> np.ndarray:
        """The retained observations (a copy, unordered)."""
        if self.count >= self.capacity:
            return self._ring.copy()
        return self._ring[: self._pos].copy()

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) over the retained samples."""
        retained = self.samples()
        if not len(retained):
            return 0.0
        return float(np.percentile(retained, q))

    @property
    def mean(self) -> float:
        """Lifetime mean observation."""
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """One namespace of named metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first call
    for a name creates the metric, later calls return the same object, so
    instrumentation sites can bind their metric once at setup time and pay
    only the update cost afterwards.  A name is pinned to the kind that
    created it; asking for the same name as a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, capacity: int = 4096) -> Histogram:
        """Get or create the histogram ``name``."""
        return self._get_or_create(name, Histogram, capacity)

    def get(self, name: str) -> Optional[object]:
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Render every metric into a plain JSON-serialisable dict.

        Layout (the ``counters``/``gauges``/``histograms`` sections of the
        :meth:`~repro.obs.spans.Instrumentation.snapshot` schema)::

            {
              "counters":   {name: int},
              "gauges":     {name: {"last": float, "max": float}},
              "histograms": {name: {"count": int, "sum": float,
                                    "max": float, "samples": [float, ...]}},
            }
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, dict] = {}
        histograms: Dict[str, dict] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = {"last": metric.value, "max": metric.high}
            elif isinstance(metric, Histogram):
                histograms[name] = {
                    "count": metric.count,
                    "sum": metric.total,
                    "max": metric.max,
                    "samples": metric.samples().tolist(),
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}
