"""Phase timers and the ``Instrumentation`` facade.

An :class:`Instrumentation` object is the single handle a simulator run
carries for observability: it owns a
:class:`~repro.obs.metrics.MetricsRegistry` and a set of phase timers.
When ``SimulationConfig.instrumentation`` is off the simulator holds the
module-level :data:`NOOP` singleton instead, whose ``span()`` returns a
shared do-nothing context manager and whose metric accessors return inert
objects — the hot loops then execute one attribute load plus an empty
``with`` block per instrumented site, and ``snapshot()`` is ``None`` so
``SimulationResult.stats`` stays empty.

Span usage — bind the handle once at setup, enter it per occurrence::

    span = instrumentation.span("update.signals")
    ...
    with span:                     # 2x perf_counter_ns + list append
        compute_signals(...)

Handles are **reusable but not re-entrant**: each call site gets its own
handle, and a handle must not be entered again before it exits (phases in
the simulator nest by *different* names — ``step.update`` around
``update.signals`` — never recursively by the same name).

Each exit accumulates into per-phase ``count``/``total_ns``/``max_ns``
aggregates and, up to :attr:`Instrumentation.max_trace_events`, appends a
``(name, start_ns, dur_ns)`` trace event for Chrome trace export
(:func:`repro.obs.export.chrome_trace`).  The cap bounds memory on long
runs; aggregates keep counting past it.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Dict, List, Optional

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["Instrumentation", "NullInstrumentation", "NOOP"]


class _SpanHandle:
    """A reusable (non-re-entrant) timer for one phase name."""

    __slots__ = ("_instr", "_name", "_start")

    def __init__(self, instr: "Instrumentation", name: str) -> None:
        self._instr = instr
        self._name = name
        self._start = 0

    def __enter__(self) -> "_SpanHandle":
        self._start = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = perf_counter_ns()
        self._instr._record(self._name, self._start, end - self._start)


class _Phase:
    """Aggregate timing for one phase name."""

    __slots__ = ("count", "total_ns", "max_ns")

    def __init__(self) -> None:
        self.count = 0
        self.total_ns = 0
        self.max_ns = 0


class Instrumentation:
    """Live observability state for one simulation run.

    Parameters
    ----------
    max_trace_events:
        Cap on retained Chrome-trace events; span aggregates keep
        accumulating after the cap is hit.
    """

    enabled = True

    def __init__(self, max_trace_events: int = 200_000) -> None:
        self.registry = MetricsRegistry()
        self.max_trace_events = max_trace_events
        self._phases: Dict[str, _Phase] = {}
        self._spans: Dict[str, _SpanHandle] = {}
        # flat parallel lists: one trace event per completed span occurrence
        self._ev_name: List[str] = []
        self._ev_start: List[int] = []
        self._ev_dur: List[int] = []
        self._origin_ns = perf_counter_ns()

    # -- spans ---------------------------------------------------------- #
    def span(self, name: str) -> _SpanHandle:
        """Get (or create) the reusable span handle for phase ``name``."""
        handle = self._spans.get(name)
        if handle is None:
            handle = _SpanHandle(self, name)
            self._spans[name] = handle
            self._phases.setdefault(name, _Phase())
        return handle

    def _record(self, name: str, start_ns: int, dur_ns: int) -> None:
        phase = self._phases[name]
        phase.count += 1
        phase.total_ns += dur_ns
        if dur_ns > phase.max_ns:
            phase.max_ns = dur_ns
        if len(self._ev_name) < self.max_trace_events:
            self._ev_name.append(name)
            self._ev_start.append(start_ns - self._origin_ns)
            self._ev_dur.append(dur_ns)

    # -- metrics passthrough -------------------------------------------- #
    def counter(self, name: str) -> Counter:
        """Get or create a counter in the run's registry."""
        return self.registry.counter(name)

    def gauge(self, name: str) -> Gauge:
        """Get or create a gauge in the run's registry."""
        return self.registry.gauge(name)

    def histogram(self, name: str, capacity: int = 4096) -> Histogram:
        """Get or create a histogram in the run's registry."""
        return self.registry.histogram(name, capacity)

    # -- export --------------------------------------------------------- #
    def trace_events(self) -> List[dict]:
        """Completed spans as Chrome trace-event dicts (``"ph": "X"``)."""
        return [
            {
                "name": self._ev_name[i],
                "ph": "X",
                "ts": self._ev_start[i] / 1000.0,  # trace format wants µs
                "dur": self._ev_dur[i] / 1000.0,
                "pid": 0,
                "tid": 0,
                "cat": "sim",
            }
            for i in range(len(self._ev_name))
        ]

    def snapshot(self) -> dict:
        """Counters, gauges, histograms, and phase aggregates as one dict.

        The schema attached to ``SimulationResult.stats``::

            {
              "counters":   {name: int},
              "gauges":     {name: {"last", "max"}},
              "histograms": {name: {"count", "sum", "max", "samples"}},
              "phases":     {name: {"count": int, "total_ns": int,
                                    "max_ns": int}},
            }
        """
        snap = self.registry.snapshot()
        snap["phases"] = {
            name: {
                "count": phase.count,
                "total_ns": phase.total_ns,
                "max_ns": phase.max_ns,
            }
            for name, phase in sorted(self._phases.items())
        }
        return snap


class _NullSpan:
    """Shared do-nothing span handle for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NullCounter:
    """Shared do-nothing counter for the disabled path."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        return None


class _NullGauge:
    """Shared do-nothing gauge for the disabled path."""

    __slots__ = ()

    def set(self, v: float) -> None:
        return None


class _NullHistogram:
    """Shared do-nothing histogram for the disabled path."""

    __slots__ = ()

    def observe(self, v: float) -> None:
        return None


class NullInstrumentation:
    """The ``instrumentation=False`` implementation: every call is inert.

    All accessors return shared singletons, so a disabled run allocates
    nothing and records nothing; ``snapshot()`` is ``None`` so no ``stats``
    payload is attached to results.
    """

    enabled = False

    _span = _NullSpan()
    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()

    def span(self, name: str) -> _NullSpan:
        """A shared no-op context manager."""
        return self._span

    def counter(self, name: str) -> _NullCounter:
        """A shared no-op counter."""
        return self._counter

    def gauge(self, name: str) -> _NullGauge:
        """A shared no-op gauge."""
        return self._gauge

    def histogram(self, name: str, capacity: int = 4096) -> _NullHistogram:
        """A shared no-op histogram."""
        return self._histogram

    def trace_events(self) -> List[dict]:
        """Always empty."""
        return []

    def snapshot(self) -> Optional[dict]:
        """Always ``None`` — disabled runs attach no stats."""
        return None


NOOP = NullInstrumentation()
"""Module-level singleton used whenever instrumentation is off."""
