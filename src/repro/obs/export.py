"""Exporters for observability snapshots: Chrome trace, Prometheus, merge.

Three output formats, one source of truth (the
:meth:`~repro.obs.spans.Instrumentation.snapshot` dict):

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event JSON format (``{"traceEvents": [...]}`` with ``"ph": "X"``
  complete events, timestamps in microseconds).  Load the file at
  https://ui.perfetto.dev or ``chrome://tracing`` to see the per-step
  phase timeline.
* :func:`prometheus_text` — the Prometheus text exposition format (one
  ``# TYPE`` header + sample line per metric; dots become underscores).
  Meant for scraping long-lived twin-service runs, and as a stable
  greppable dump for CI logs.
* :func:`merge_snapshots` — cross-worker aggregation: sums counters and
  phase aggregates, takes maxima of gauges, and concatenates retained
  histogram samples, so a ProcessPool sweep's per-run snapshots collapse
  into one fleet-wide profile with the same schema as a single run.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "merge_snapshots",
]


def chrome_trace(instrumentation) -> dict:
    """The Chrome trace-event document for a run's recorded spans.

    ``instrumentation`` is a live :class:`~repro.obs.spans.Instrumentation`
    (trace events are not part of the snapshot dict — they can be large, so
    they are exported separately and on demand).
    """
    return {"traceEvents": instrumentation.trace_events(), "displayTimeUnit": "ms"}


def write_chrome_trace(instrumentation, path) -> None:
    """Write :func:`chrome_trace` as JSON to ``path`` (perfetto-loadable)."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(instrumentation), fh)


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def prometheus_text(snapshot: dict) -> str:
    """Render a snapshot dict in the Prometheus text exposition format.

    Counters become ``counter`` samples, gauges become two ``gauge``
    samples (``<name>`` and ``<name>_max``), histograms become
    ``_count``/``_sum``/``_max`` summary samples, and phase timers become
    ``<name>_seconds_count`` / ``<name>_seconds_total`` pairs.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, g in snapshot.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {g['last']}")
        lines.append(f"{prom}_max {g['max']}")
    for name, h in snapshot.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {h['count']}")
        lines.append(f"{prom}_sum {h['sum']}")
        lines.append(f"{prom}_max {h['max']}")
    for name, p in snapshot.get("phases", {}).items():
        prom = _prom_name(name) + "_seconds"
        lines.append(f"# TYPE {prom} summary")
        lines.append(f"{prom}_count {p['count']}")
        lines.append(f"{prom}_total {p['total_ns'] / 1e9}")
    return "\n".join(lines) + "\n"


def merge_snapshots(snapshots: List[Optional[dict]]) -> Optional[dict]:
    """Merge per-run snapshot dicts into one aggregate with the same schema.

    ``None`` entries (uninstrumented runs) are skipped; if every entry is
    ``None`` the merge is ``None`` too.  Counters, histogram
    ``count``/``sum``, and phase ``count``/``total_ns`` sum across runs;
    gauge/histogram/phase maxima take the max; histogram ``samples``
    concatenate (so merged percentiles are computed over the union of
    retained samples); gauge ``last`` keeps the last run's value.
    """
    live = [s for s in snapshots if s is not None]
    if not live:
        return None
    counters: Dict[str, int] = {}
    gauges: Dict[str, dict] = {}
    histograms: Dict[str, dict] = {}
    phases: Dict[str, dict] = {}
    for snap in live:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, g in snap.get("gauges", {}).items():
            agg = gauges.setdefault(name, {"last": 0.0, "max": 0.0})
            agg["last"] = g["last"]
            agg["max"] = max(agg["max"], g["max"])
        for name, h in snap.get("histograms", {}).items():
            agg = histograms.setdefault(
                name, {"count": 0, "sum": 0.0, "max": 0.0, "samples": []}
            )
            agg["count"] += h["count"]
            agg["sum"] += h["sum"]
            agg["max"] = max(agg["max"], h["max"])
            agg["samples"] = agg["samples"] + list(h.get("samples", []))
        for name, p in snap.get("phases", {}).items():
            agg = phases.setdefault(name, {"count": 0, "total_ns": 0, "max_ns": 0})
            agg["count"] += p["count"]
            agg["total_ns"] += p["total_ns"]
            agg["max_ns"] = max(agg["max_ns"], p["max_ns"])
    return {
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {k: histograms[k] for k in sorted(histograms)},
        "phases": {k: phases[k] for k in sorted(phases)},
    }
