"""Low-overhead observability plane for the simulator runtime.

See DESIGN.md, "Observability plane".  The package splits into:

* :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram`` and the
  :class:`MetricsRegistry` namespace.
* :mod:`repro.obs.spans` — ``perf_counter_ns`` phase timers behind the
  :class:`Instrumentation` facade, and the :data:`NOOP` null object that
  makes every site a no-op when ``SimulationConfig.instrumentation`` is
  off.
* :mod:`repro.obs.export` — Chrome trace-event JSON, Prometheus text, and
  cross-worker snapshot merging.
"""

from .export import chrome_trace, merge_snapshots, prometheus_text, write_chrome_trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .spans import NOOP, Instrumentation, NullInstrumentation

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Instrumentation",
    "NullInstrumentation",
    "NOOP",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "merge_snapshots",
]
