"""Plain-text rendering of analysis results.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers format them as aligned text tables so benchmark output and the
EXPERIMENTS.md records stay readable without a plotting stack.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from .fct_analysis import SlowdownProfile
from .utilization import LinkUtilization

__all__ = ["format_table", "slowdown_table", "utilization_report", "reduction_report"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def slowdown_table(profiles: Sequence[SlowdownProfile], percentile: str = "p50") -> str:
    """Per-size-bin slowdown table, one column per algorithm (a paper curve)."""
    if not profiles:
        return "(no profiles)"
    labels: List[str] = []
    for profile in profiles:
        for label in profile.bin_labels():
            if label not in labels:
                labels.append(label)
    headers = ["flow size"] + [p.name for p in profiles]
    rows = []
    for label in labels:
        row: List[object] = [label]
        for profile in profiles:
            match = next((b for b in profile.bins if b.label == label), None)
            row.append(f"{getattr(match, percentile):.2f}" if match else "-")
        rows.append(row)
    overall: List[object] = ["overall"]
    for profile in profiles:
        overall.append(f"{getattr(profile, f'overall_{percentile}'):.2f}")
    rows.append(overall)
    return format_table(headers, rows)


def utilization_report(rows_by_algorithm: Mapping[str, Sequence[LinkUtilization]]) -> str:
    """Fig. 1b-style table: per-link utilisation, one column per algorithm."""
    algorithms = list(rows_by_algorithm)
    if not algorithms:
        return "(no data)"
    labels: List[str] = []
    for rows in rows_by_algorithm.values():
        for row in rows:
            if row.label not in labels:
                labels.append(row.label)
    headers = ["link"] + algorithms
    table_rows = []
    for label in labels:
        row: List[object] = [label]
        for algorithm in algorithms:
            match = next((r for r in rows_by_algorithm[algorithm] if r.label == label), None)
            row.append(f"{match.utilization * 100:.1f}%" if match else "-")
        table_rows.append(row)
    return format_table(headers, table_rows)


def reduction_report(reductions: Mapping[str, Mapping[str, float]]) -> str:
    """Render the "LCMP reduces X by Y % vs Z" summary lines."""
    headers = ["baseline", "median reduction", "p99 reduction"]
    rows = [
        [name, f"{vals['p50'] * 100:.0f}%", f"{vals['p99'] * 100:.0f}%"]
        for name, vals in reductions.items()
    ]
    return format_table(headers, rows)
