"""Analysis of simulation results: FCT slowdown, utilisation, fidelity, reports."""

from .fct_analysis import (
    DEFAULT_SIZE_BINS,
    BinStats,
    SlowdownProfile,
    compare,
    reduction,
)
from .fidelity import FidelityResult, fidelity_study, pearson
from .perf_report import (
    perf_report,
    phase_breakdown,
    phase_breakdown_json,
    top_counters,
)
from .report import format_table, reduction_report, slowdown_table, utilization_report
from .scenario_analysis import (
    EventImpact,
    event_impacts,
    recovery_report,
    slowdown_timeline,
)
from .utilization import LinkUtilization, imbalance, jain_fairness, utilization_table

__all__ = [
    "DEFAULT_SIZE_BINS",
    "BinStats",
    "SlowdownProfile",
    "compare",
    "reduction",
    "FidelityResult",
    "fidelity_study",
    "pearson",
    "perf_report",
    "phase_breakdown",
    "phase_breakdown_json",
    "top_counters",
    "EventImpact",
    "event_impacts",
    "recovery_report",
    "slowdown_timeline",
    "format_table",
    "reduction_report",
    "slowdown_table",
    "utilization_report",
    "LinkUtilization",
    "imbalance",
    "jain_fairness",
    "utilization_table",
]
