"""Simulator-fidelity analysis (paper Fig. 6).

The paper validates NS-3 against its SoftRoCE/Mininet testbed by plotting the
per-size-bin FCT slowdown measured on each platform against the other and
reporting Pearson correlations of 95 % (P50) and 97 % (P99).  We reproduce the
study by running the same workload through two simulator profiles — a clean
"simulator" profile and a noisier "testbed" profile (measurement noise on
recorded FCTs) — and correlating the binned slowdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .fct_analysis import SlowdownProfile

__all__ = ["FidelityResult", "pearson", "fidelity_study"]


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length series."""
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to correlate")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.std() == 0 or y.std() == 0:
        return 1.0 if np.allclose(x - x.mean(), y - y.mean()) else 0.0
    return float(np.corrcoef(x, y)[0, 1])


@dataclass(frozen=True)
class FidelityResult:
    """Correlation of per-bin slowdowns between two platforms."""

    p50_correlation: float
    p99_correlation: float
    pairs_p50: List[Tuple[float, float]]
    pairs_p99: List[Tuple[float, float]]


def fidelity_study(
    testbed_profile: SlowdownProfile, simulator_profile: SlowdownProfile
) -> FidelityResult:
    """Correlate the binned slowdowns of the two platform profiles.

    Only bins present in both profiles are compared (the bin structure is
    identical when both runs used the same workload, which the experiment
    harness guarantees).
    """
    testbed_bins = {b.label: b for b in testbed_profile.bins}
    simulator_bins = {b.label: b for b in simulator_profile.bins}
    shared = [label for label in testbed_bins if label in simulator_bins]
    if len(shared) < 2:
        raise ValueError("profiles share fewer than two size bins")

    pairs_p50 = [(testbed_bins[l].p50, simulator_bins[l].p50) for l in shared]
    pairs_p99 = [(testbed_bins[l].p99, simulator_bins[l].p99) for l in shared]
    return FidelityResult(
        p50_correlation=pearson([p[0] for p in pairs_p50], [p[1] for p in pairs_p50]),
        p99_correlation=pearson([p[0] for p in pairs_p99], [p[1] for p in pairs_p99]),
        pairs_p50=pairs_p50,
        pairs_p99=pairs_p99,
    )
