"""FCT-slowdown analysis: percentiles per flow-size bin, as the paper plots.

Every evaluation figure in the paper reports the median (P50) and tail (P99)
FCT slowdown as a function of flow size (10 kB … 10 MB+ on a log axis).
:class:`SlowdownProfile` bins completed flows by size and computes the two
percentiles per bin; :func:`compare` lines up several profiles (one per
routing algorithm) and :func:`reduction` computes the "LCMP reduces … by X %"
numbers quoted in the text.

Profiles build straight from metric columns: :meth:`SlowdownProfile
.from_result` reads the run's :class:`~repro.simulator.fct.MetricsStore`
arrays (no per-flow record objects), :meth:`SlowdownProfile.from_arrays` is
the raw-column entry point, and :meth:`SlowdownProfile.from_records` remains
for record lists (it extracts the columns and delegates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..simulator.fct import FlowRecord

__all__ = [
    "DEFAULT_SIZE_BINS",
    "BinStats",
    "SlowdownProfile",
    "compare",
    "reduction",
]

#: flow-size bin edges in bytes (log-spaced, matching the paper's x-axis:
#: 10 kB, 100 kB, 1 MB, 10 MB)
DEFAULT_SIZE_BINS: Tuple[float, ...] = (
    0,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    float("inf"),
)


@dataclass(frozen=True)
class BinStats:
    """P50/P99 slowdown of the flows falling into one size bin."""

    lo_bytes: float
    hi_bytes: float
    count: int
    p50: float
    p99: float
    mean: float

    @property
    def label(self) -> str:
        """Human-readable bin label, e.g. ``"10k-100k"``."""

        def fmt(value: float) -> str:
            if value == float("inf"):
                return "inf"
            if value >= 1_000_000:
                return f"{value / 1_000_000:g}M"
            if value >= 1_000:
                return f"{value / 1_000:g}k"
            return f"{value:g}"

        return f"{fmt(self.lo_bytes)}-{fmt(self.hi_bytes)}"


@dataclass
class SlowdownProfile:
    """Binned slowdown statistics of one simulation run."""

    name: str
    bins: List[BinStats]
    overall_p50: float
    overall_p99: float
    overall_mean: float
    total_flows: int

    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(
        cls,
        name: str,
        records: Sequence[FlowRecord],
        size_bins: Sequence[float] = DEFAULT_SIZE_BINS,
    ) -> "SlowdownProfile":
        """Build a profile from flow records (column extraction + delegate).

        Args:
            name: label (typically the routing algorithm).
            records: completed flows.
            size_bins: increasing bin edges in bytes.

        Raises:
            ValueError: when ``records`` is empty or bins are not increasing.
        """
        slowdowns = np.array([r.slowdown for r in records], dtype=float)
        sizes = np.array([r.size_bytes for r in records], dtype=float)
        return cls.from_arrays(name, sizes, slowdowns, size_bins)

    @classmethod
    def from_result(
        cls,
        name: str,
        result,
        mask: Optional[np.ndarray] = None,
        size_bins: Sequence[float] = DEFAULT_SIZE_BINS,
    ) -> "SlowdownProfile":
        """Build a profile straight from a simulation result's metric columns.

        Args:
            name: label (typically the routing algorithm).
            result: a :class:`~repro.simulator.fluid.SimulationResult`; its
                :class:`~repro.simulator.fct.MetricsStore` columns are used
                when present (no record materialisation), falling back to
                the records view otherwise.
            mask: optional boolean row mask (e.g. a DC-pair restriction).
            size_bins: increasing bin edges in bytes.
        """
        store = getattr(result, "store", None)
        if store is not None and not result.records_overridden:
            sizes = store.sizes().astype(float)
            slowdowns = store.slowdowns()
        else:
            records = result.records
            sizes = np.array([r.size_bytes for r in records], dtype=float)
            slowdowns = np.array([r.slowdown for r in records], dtype=float)
        if mask is not None:
            sizes = sizes[mask]
            slowdowns = slowdowns[mask]
        return cls.from_arrays(name, sizes, slowdowns, size_bins)

    @classmethod
    def from_arrays(
        cls,
        name: str,
        sizes: np.ndarray,
        slowdowns: np.ndarray,
        size_bins: Sequence[float] = DEFAULT_SIZE_BINS,
    ) -> "SlowdownProfile":
        """Build a profile from raw size/slowdown columns.

        Args:
            name: label (typically the routing algorithm).
            sizes: flow sizes in bytes (one element per completed flow).
            slowdowns: FCT slowdowns, aligned with ``sizes``.
            size_bins: increasing bin edges in bytes.

        Raises:
            ValueError: when the columns are empty or bins not increasing.
        """
        if len(sizes) == 0:
            raise ValueError("cannot build a slowdown profile from zero records")
        edges = list(size_bins)
        if sorted(edges) != edges or len(edges) < 2:
            raise ValueError("size_bins must be increasing with >= 2 edges")

        bins: List[BinStats] = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (sizes >= lo) & (sizes < hi)
            selected = slowdowns[mask]
            if selected.size == 0:
                continue
            bins.append(
                BinStats(
                    lo_bytes=lo,
                    hi_bytes=hi,
                    count=int(selected.size),
                    p50=float(np.percentile(selected, 50)),
                    p99=float(np.percentile(selected, 99)),
                    mean=float(selected.mean()),
                )
            )
        return cls(
            name=name,
            bins=bins,
            overall_p50=float(np.percentile(slowdowns, 50)),
            overall_p99=float(np.percentile(slowdowns, 99)),
            overall_mean=float(slowdowns.mean()),
            total_flows=len(slowdowns),
        )

    # ------------------------------------------------------------------ #
    def bin_labels(self) -> List[str]:
        """Labels of the populated bins."""
        return [b.label for b in self.bins]

    def series(self, percentile: str = "p50") -> List[float]:
        """The per-bin series for ``"p50"`` or ``"p99"`` (paper's curves)."""
        if percentile not in ("p50", "p99", "mean"):
            raise ValueError("percentile must be 'p50', 'p99' or 'mean'")
        return [getattr(b, percentile) for b in self.bins]


def compare(profiles: Sequence[SlowdownProfile]) -> Dict[str, Dict[str, float]]:
    """Summarise several profiles side by side.

    Returns:
        ``{profile name: {"p50": ..., "p99": ..., "mean": ..., "flows": ...}}``
    """
    return {
        p.name: {
            "p50": p.overall_p50,
            "p99": p.overall_p99,
            "mean": p.overall_mean,
            "flows": float(p.total_flows),
        }
        for p in profiles
    }


def reduction(ours: SlowdownProfile, baseline: SlowdownProfile) -> Dict[str, float]:
    """Relative reduction of ours vs a baseline (positive = we are better).

    The paper quotes e.g. "LCMP reduces median FCT slowdown by 76 % compared
    to UCMP"; this helper computes exactly that number.
    """
    def rel(base: float, new: float) -> float:
        if base <= 0:
            return 0.0
        return (base - new) / base

    return {
        "p50": rel(baseline.overall_p50, ours.overall_p50),
        "p99": rel(baseline.overall_p99, ours.overall_p99),
        "mean": rel(baseline.overall_mean, ours.overall_mean),
    }
