"""Per-link utilisation analysis (motivation figure, Fig. 1b).

The motivation experiment shows that ECMP and UCMP place traffic poorly on
the capacity/delay-asymmetric 8-DC topology — some links run hot while others
sit idle — and that LCMP balances them.  This module turns a simulation
result into the per-link utilisation table of Fig. 1b plus simple imbalance
metrics used by the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..simulator.fluid import SimulationResult

__all__ = ["LinkUtilization", "utilization_table", "imbalance", "jain_fairness"]


@dataclass(frozen=True)
class LinkUtilization:
    """Average utilisation of one directed inter-DC link over a run."""

    src: str
    dst: str
    cap_bps: float
    utilization: float
    carried_bytes: float

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``"1-2"`` for the DC1->DC2 link."""
        return f"{self.src.replace('DC', '')}-{self.dst.replace('DC', '')}"


def utilization_table(
    result: SimulationResult,
    sources: Optional[Sequence[str]] = None,
) -> List[LinkUtilization]:
    """Per-link utilisation rows, optionally restricted to given source DCs.

    Fig. 1b plots the six DC1-facing links of the 8-DC topology; pass
    ``sources=["DC1"]`` to reproduce exactly that view.
    """
    rows = []
    for stats in result.link_stats:
        src, dst = stats.key
        if sources is not None and src not in sources:
            continue
        rows.append(
            LinkUtilization(
                src=src,
                dst=dst,
                cap_bps=stats.cap_bps,
                utilization=stats.utilization,
                carried_bytes=stats.carried_bytes,
            )
        )
    rows.sort(key=lambda r: (r.src, r.dst))
    return rows


def imbalance(rows: Sequence[LinkUtilization]) -> float:
    """Coefficient of variation of link utilisation (0 = perfectly balanced)."""
    if not rows:
        return 0.0
    values = np.array([r.utilization for r in rows], dtype=float)
    mean = values.mean()
    if mean <= 0:
        return 0.0
    return float(values.std() / mean)


def jain_fairness(rows: Sequence[LinkUtilization]) -> float:
    """Jain's fairness index of the link utilisations (1 = perfectly balanced)."""
    if not rows:
        return 1.0
    values = np.array([r.utilization for r in rows], dtype=float)
    total = values.sum()
    if total <= 0:
        return 1.0
    return float(total ** 2 / (len(values) * (values ** 2).sum()))
