"""Per-phase performance reports over observability snapshots.

Turns the snapshot dict a run attaches to ``SimulationResult.stats`` (or a
sweep-merged snapshot from
:meth:`~repro.experiments.runner.ExperimentRunner.aggregate_stats`) into:

* :func:`phase_breakdown` — per-phase rows (count, total/mean/max duration,
  share of the accounted time), sorted by total time;
* :func:`top_counters` — the top-N counters by value;
* :func:`perf_report` — a human-readable text report of both;
* :func:`phase_breakdown_json` — the structured per-phase payload the bench
  lanes embed next to their wall-clock numbers, so ``BENCH_*.json``
  artifacts carry a breakdown instead of a single number (schema in
  ``benchmarks/README.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "phase_breakdown",
    "top_counters",
    "perf_report",
    "phase_breakdown_json",
]


def phase_breakdown(snapshot: dict, top: Optional[int] = None) -> List[dict]:
    """Per-phase timing rows, sorted by total time (descending).

    Each row carries ``name``, ``count``, ``total_ms``, ``mean_us``,
    ``max_us`` and ``share`` — the phase's fraction of the sum of all
    phase totals.  Nested phases (``update.*`` inside ``step.update``)
    are reported as-is, so shares can sum past 1.0 across nesting levels;
    compare within one level.
    """
    phases = snapshot.get("phases", {})
    grand_total = sum(p["total_ns"] for p in phases.values()) or 1
    rows = [
        {
            "name": name,
            "count": p["count"],
            "total_ms": p["total_ns"] / 1e6,
            "mean_us": (p["total_ns"] / p["count"] / 1e3) if p["count"] else 0.0,
            "max_us": p["max_ns"] / 1e3,
            "share": p["total_ns"] / grand_total,
        }
        for name, p in phases.items()
    ]
    rows.sort(key=lambda r: (-r["total_ms"], r["name"]))
    return rows[:top] if top is not None else rows


def top_counters(snapshot: dict, top: int = 10) -> List[dict]:
    """The ``top`` counters by value, as ``{"name", "value"}`` rows."""
    counters = snapshot.get("counters", {})
    rows = [{"name": name, "value": value} for name, value in counters.items()]
    rows.sort(key=lambda r: (-r["value"], r["name"]))
    return rows[:top]


def perf_report(snapshot: Optional[dict], top: int = 10) -> str:
    """Human-readable top-N phase / counter report.

    Accepts ``None`` (an uninstrumented run) and says so, so callers can
    pipe ``result.stats`` straight in.
    """
    if snapshot is None:
        return "no observability data (run with instrumentation=True)\n"
    lines = ["phase breakdown (top %d by total time)" % top]
    lines.append(
        f"{'phase':<28} {'count':>8} {'total ms':>10} {'mean µs':>10} "
        f"{'max µs':>10} {'share':>7}"
    )
    for row in phase_breakdown(snapshot, top=top):
        lines.append(
            f"{row['name']:<28} {row['count']:>8} {row['total_ms']:>10.3f} "
            f"{row['mean_us']:>10.2f} {row['max_us']:>10.2f} {row['share']:>6.1%}"
        )
    lines.append("")
    lines.append("counters (top %d)" % top)
    lines.append(f"{'counter':<40} {'value':>12}")
    for row in top_counters(snapshot, top=top):
        lines.append(f"{row['name']:<40} {row['value']:>12}")
    return "\n".join(lines) + "\n"


def phase_breakdown_json(snapshot: Optional[dict], top_n_counters: int = 20) -> Dict:
    """The structured per-phase payload the bench lanes write to disk.

    Schema (documented in ``benchmarks/README.md``)::

        {
          "phases":   [{"name", "count", "total_ms", "mean_us",
                        "max_us", "share"}, ...],   # sorted by total_ms
          "counters": {name: int},                  # top-N by value
          "gauges":   {name: {"last", "max"}},
        }

    ``None`` in, ``{}`` out, so callers can write it unconditionally.
    """
    if snapshot is None:
        return {}
    return {
        "phases": phase_breakdown(snapshot),
        "counters": {
            row["name"]: row["value"]
            for row in top_counters(snapshot, top=top_n_counters)
        },
        "gauges": snapshot.get("gauges", {}),
    }
