"""Analysis of scenario runs: per-event recovery impact on FCT slowdown.

A scenario run produces two things worth lining up: the injector's per-event
recovery metrics (flows disrupted / re-routed / failed, re-route latency)
and the flow records themselves.  :func:`event_impacts` joins them: for each
applied event it compares the median FCT slowdown of flows *arriving* in a
window before the event against the window after it, yielding the
"post-event FCT slowdown delta" — positive for disruptive events (a link
cut makes flows slower), negative for recoveries.

:func:`slowdown_timeline` buckets slowdown over arrival time for plotting
or eyeballing recovery curves, and :func:`recovery_report` renders the
impact rows as an aligned text table in the style of the figure benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..simulator.fluid import SimulationResult
from .report import format_table

__all__ = ["EventImpact", "event_impacts", "slowdown_timeline", "recovery_report"]


@dataclass(frozen=True)
class EventImpact:
    """One scenario event joined with its FCT-slowdown footprint.

    Attributes:
        index / kind / description: identity of the timeline event.
        applied_s: when the event fired.
        flows_disrupted / flows_rerouted / flows_restored / flows_failed:
            recovery counts from the injector.
        flows_injected / flows_cancelled: traffic-event counts.
        links_affected: directed runtime links the event failed or degraded
            when it fired (the blast radius of correlated events — an SRLG
            cut or regional power event hits many links at once).
        mean_reroute_latency_s / max_reroute_latency_s: disruption-to-
            healthy-path latency.
        pre_p50 / post_p50: median slowdown of flows arriving in the window
            before / after the event (``None`` when the window is empty).
        slowdown_delta: ``post_p50 - pre_p50`` (``None`` when either window
            is empty).
    """

    index: int
    kind: str
    description: str
    applied_s: float
    flows_disrupted: int
    flows_rerouted: int
    flows_restored: int
    flows_failed: int
    flows_injected: int
    flows_cancelled: int
    links_affected: int
    mean_reroute_latency_s: float
    max_reroute_latency_s: float
    pre_p50: Optional[float]
    post_p50: Optional[float]
    slowdown_delta: Optional[float]


def _window_p50(
    arrivals: np.ndarray, slowdowns: np.ndarray, lo: float, hi: float
) -> Optional[float]:
    selected = slowdowns[(arrivals >= lo) & (arrivals < hi)]
    if selected.size == 0:
        return None
    return float(np.percentile(selected, 50))


def event_impacts(result: SimulationResult, window_s: float = 0.5) -> List[EventImpact]:
    """Per-event recovery metrics joined with slowdown deltas.

    Args:
        result: a simulation result carrying ``scenario_metrics``.
        window_s: width of the arrival-time windows compared around each
            event.

    Raises:
        ValueError: when the result has no scenario metrics or the window
            is not positive.
    """
    if result.scenario_metrics is None:
        raise ValueError("result carries no scenario metrics (run had no scenario)")
    if window_s <= 0:
        raise ValueError("window_s must be positive")

    # one column fetch serves every event window (no record objects built)
    arrivals, slowdowns = result.arrival_slowdown_columns()

    impacts: List[EventImpact] = []
    for outcome in result.scenario_metrics.outcomes:
        if outcome.applied_s is None:
            continue  # the run ended before this event fired
        at = outcome.applied_s
        pre = _window_p50(arrivals, slowdowns, at - window_s, at)
        post = _window_p50(arrivals, slowdowns, at, at + window_s)
        delta = (post - pre) if pre is not None and post is not None else None
        impacts.append(
            EventImpact(
                index=outcome.index,
                kind=outcome.kind,
                description=outcome.description,
                applied_s=at,
                flows_disrupted=outcome.flows_disrupted,
                flows_rerouted=outcome.flows_rerouted,
                flows_restored=outcome.flows_restored,
                flows_failed=outcome.flows_failed,
                flows_injected=outcome.flows_injected,
                flows_cancelled=outcome.flows_cancelled,
                links_affected=outcome.links_affected,
                mean_reroute_latency_s=outcome.mean_reroute_latency_s,
                max_reroute_latency_s=outcome.max_reroute_latency_s,
                pre_p50=pre,
                post_p50=post,
                slowdown_delta=delta,
            )
        )
    return impacts


def slowdown_timeline(
    result: SimulationResult, bucket_s: float = 0.25
) -> List[Tuple[float, float]]:
    """Median slowdown per arrival-time bucket (a recovery curve).

    Returns:
        ``(bucket_start_s, p50_slowdown)`` pairs for every non-empty bucket,
        in time order.
    """
    if bucket_s <= 0:
        raise ValueError("bucket_s must be positive")
    arrivals, slowdowns = result.arrival_slowdown_columns()
    if arrivals.size == 0:
        return []
    starts = (arrivals / bucket_s).astype(np.int64) * bucket_s
    return [
        (float(start), float(np.percentile(slowdowns[starts == start], 50)))
        for start in np.unique(starts)
    ]


def recovery_report(impacts: Sequence[EventImpact]) -> str:
    """Aligned text table of per-event recovery metrics."""
    if not impacts:
        return "(no events fired)"

    def fmt(value: Optional[float], pattern: str = "{:+.2f}") -> str:
        return pattern.format(value) if value is not None else "-"

    headers = [
        "event",
        "t (s)",
        "links",
        "disrupted",
        "rerouted",
        "restored",
        "failed",
        "reroute ms",
        "p50 delta",
    ]
    rows = []
    for impact in impacts:
        rows.append(
            [
                impact.kind,
                f"{impact.applied_s:.3f}",
                impact.links_affected,
                impact.flows_disrupted,
                impact.flows_rerouted,
                impact.flows_restored,
                impact.flows_failed,
                f"{impact.mean_reroute_latency_s * 1e3:.2f}",
                fmt(impact.slowdown_delta),
            ]
        )
    return format_table(headers, rows)
