"""Array-backend abstraction — named kernels over a swappable array library.

The SoA migration (PRs 2–5) turned every hot structure into column blocks,
but the fluid update step, the batched routers and the CC kernels still
hard-coded numpy-specific idioms (``np.add.at``, ``*.reduceat``,
``searchsorted``, positional path walks) at the call sites.  This module
pins each of those idioms behind a *named kernel* on an
:class:`ArrayBackend` so the same call sites can run on

* the **numpy reference backend** (:mod:`repro.backend.numpy_ref`) — the
  exact idioms the cores used through PR 5, bit-for-bit;
* the **fused numpy backend** (:mod:`repro.backend.numpy_fused`) —
  ``bincount`` scatter-adds and uniform-path-length reshape reductions,
  proven bit-identical to the reference (see DESIGN.md, "Array backends &
  kernels") and measurably faster on the 20k-flow lanes;
* the optional **torch backend** (:mod:`repro.backend.torch_backend`) —
  registered only when torch imports; equivalent within a documented float
  tolerance (the scalar core stays the exact reference).

Kernel contract: kernels take and return arrays of the backend's *host
interface* dtype conventions (``float64`` values, ``intp``/``int64``
indices).  A backend may execute on another device internally;
:meth:`ArrayBackend.asarray` / :meth:`ArrayBackend.to_numpy` are the only
sanctioned host↔device sync points, and the simulator calls them only at
event boundaries (step entry/exit), never inside a kernel chain.

Segment layout: ``(values, starts, lengths)`` is the CSR layout of
:mod:`repro.simulator.incidence` — segment ``i`` is
``values[starts[i] : starts[i] + lengths[i]]``.  Empty segments reduce to
the op identity (``sum`` → 0, ``prod`` → 1, ``min`` → +inf, ``max`` →
-inf).  ``sum`` and ``prod`` accumulate strictly left to right inside each
segment (the bit-identity contract of the fluid feedback path); ``min``
and ``max`` are order-exact, so backends may associate them freely.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

__all__ = [
    "ArrayBackend",
    "available_backends",
    "get_backend",
    "register_backend",
]

#: op name -> (numpy ufunc, identity) for :meth:`ArrayBackend.segment_reduce`
_REDUCE_OPS: Dict[str, Tuple[np.ufunc, float]] = {
    "sum": (np.add, 0.0),
    "prod": (np.multiply, 1.0),
    "min": (np.minimum, np.inf),
    "max": (np.maximum, -np.inf),
}


class ArrayBackend:
    """One execution platform for the simulator's hot array kernels.

    Subclasses override the kernels; the base class holds the generic,
    loop-free helpers every backend shares and the naive per-segment
    fallbacks the parity tests compare against.  All kernels are pure:
    they never mutate their inputs (``scatter_rows`` mutates its
    explicitly-named output column, nothing else).
    """

    #: registry key (``SimulationConfig.backend`` value)
    name: str = "abstract"
    #: the array namespace for free-form element-wise math at call sites
    xp = np
    #: True when kernels execute off the host (documentation/telemetry)
    is_device: bool = False

    # ------------------------------------------------------------------ #
    # sync points
    # ------------------------------------------------------------------ #
    def asarray(self, values, dtype=None):
        """Adopt host data into the backend's native array type."""
        return np.asarray(values, dtype=dtype)

    def to_numpy(self, values) -> np.ndarray:
        """Materialise a backend array on the host as numpy."""
        return np.asarray(values)

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #
    def scatter_add(self, size: int, idx, values) -> np.ndarray:
        """Dense float64 accumulation: ``out[idx[k]] += values[k]``.

        Duplicate indices accumulate sequentially in input order (the
        per-link offered-load contract: lane order == scalar dict order).
        """
        raise NotImplementedError

    def segment_reduce(self, values, starts, lengths, op: str) -> np.ndarray:
        """Reduce each CSR segment of ``values`` with ``op``.

        Args:
            values: lane array (float64).
            starts: segment start offsets into ``values``.
            lengths: segment lengths (empty segments allowed).
            op: ``"sum"`` | ``"prod"`` | ``"min"`` | ``"max"``.

        Returns:
            One reduced float64 value per segment; empty segments yield
            the op identity.
        """
        raise NotImplementedError

    def segment_cumidx(self, lengths) -> np.ndarray:
        """Lane → segment-id map: ``repeat(arange(len(lengths)), lengths)``."""
        lengths = np.asarray(lengths)
        return np.repeat(np.arange(len(lengths), dtype=np.intp), lengths)

    def expand_segments(self, values, lengths) -> np.ndarray:
        """Expand one value per segment into its lanes (``np.repeat``)."""
        return np.repeat(values, lengths)

    def path_signals(
        self, idx, starts, lengths, not_marked_links, delay_links
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-segment ECN-survival product and queue-delay sum.

        Equivalent to ``segment_reduce(not_marked_links[idx], …, "prod")``
        and ``segment_reduce(delay_links[idx], …, "sum")`` fused into one
        pass, preserving the strict left-to-right accumulation order of
        the scalar feedback loop (the bit-identity contract — see
        :meth:`~repro.simulator.fluid.FluidSimulation._update_step_scalar`).

        Returns:
            ``(not_marked, queue_delay)`` float64 arrays, one entry per
            segment (identity 1.0 / 0.0 for empty segments).
        """
        raise NotImplementedError

    def weighted_choice_searchsorted(self, cumulative, points) -> np.ndarray:
        """Map uniform draws to weighted candidate indices.

        ``cumulative`` is the inclusive cumulative weight table of the
        candidates; each point lands in the first bucket whose cumulative
        weight reaches it (``side="left"``), clamped to the last candidate
        so cumulative-rounding at the top of the table cannot fall off the
        end.  Returns ``intp`` indices.
        """
        raise NotImplementedError

    def gather_rows(self, column, rows) -> np.ndarray:
        """Fancy-indexed gather ``column[rows]``."""
        raise NotImplementedError

    def scatter_rows(self, column, rows, values) -> None:
        """Fancy-indexed scatter ``column[rows] = values`` (in place)."""
        raise NotImplementedError

    def masked_where(self, cond, a, b) -> np.ndarray:
        """Element-wise select ``where(cond, a, b)``."""
        raise NotImplementedError

    def masked_divide(self, num, den, mask) -> np.ndarray:
        """``num / den`` where ``mask``, exactly 0.0 elsewhere.

        The masked lanes never execute the division (the
        ``np.divide(out=, where=)`` idiom), so zero or dead denominators
        raise no warnings and contribute exact zeros.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # shared reference fallback (also the parity-test oracle)
    # ------------------------------------------------------------------ #
    def _segment_reduce_loop(self, values, starts, lengths, op: str) -> np.ndarray:
        """Naive per-segment loop — well-defined for any CSR geometry."""
        ufunc, identity = _REDUCE_OPS[op]
        values = np.asarray(values, dtype=np.float64)
        starts = np.asarray(starts)
        lengths = np.asarray(lengths)
        out = np.full(len(starts), identity, dtype=np.float64)
        for i in range(len(starts)):
            acc = identity
            for k in range(int(lengths[i])):
                acc = ufunc(acc, values[starts[i] + k])
            out[i] = acc
        return out


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
#: name -> zero-argument backend factory (instantiated lazily, cached)
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register a backend factory under ``name`` (idempotent per name)."""
    _FACTORIES[name] = factory


def available_backends() -> List[str]:
    """Names of every backend that can actually be constructed here.

    Probes each registered factory once (a factory whose import guard
    fails — e.g. torch absent — is reported unavailable, not an error).
    """
    names: List[str] = []
    for name in _FACTORIES:
        try:
            get_backend(name)
        except (ImportError, RuntimeError):
            continue
        names.append(name)
    return names


def get_backend(name: str) -> ArrayBackend:
    """The shared backend instance registered under ``name``.

    Backends are stateless kernel bundles, so one instance per name is
    shared process-wide.

    Raises:
        ValueError: unknown backend name.
        ImportError: the backend's array library is not installed.
    """
    inst = _INSTANCES.get(name)
    if inst is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise ValueError(
                f"unknown array backend {name!r} "
                f"(registered: {', '.join(sorted(_FACTORIES))})"
            )
        inst = factory()
        _INSTANCES[name] = inst
    return inst
