"""The fused numpy backend — faster kernels, still bit-identical.

Two measured wins over the reference idioms (numbers from the container
this PR was developed on, numpy 2.4; see
``benchmarks/test_kernel_micro.py`` for the recorded trajectory):

* ``scatter_add`` uses ``np.bincount(idx, weights=…)`` instead of
  ``np.add.at``.  Both accumulate duplicates sequentially in input order,
  so the result is bit-identical; bincount is ~1.4× faster at 80k lanes.
* Segment reductions and the path-signal walk detect the **uniform
  path-length** geometry (every segment the same length — the common case
  on the testbed topologies, where all candidate paths have equal hop
  count) and reshape the lane array to ``(flows, hops)``: the per-hop
  masked ``flatnonzero`` gathers of the reference walk collapse into
  contiguous column strides (~4.8× on the walk at 20k×4 lanes).  Column
  order equals hop order, so left-to-right association — and therefore
  bit-identity — is preserved; ``min``/``max`` are order-exact either way.

Non-uniform geometries fall back to the reference kernels, so
``backend="numpy_fused"`` is bit-identical to ``backend="numpy"`` on every
input, not just the fast-path ones (guarded end to end by
``tests/backend/test_backend_equivalence.py`` and the scenario-fuzz
harness core config).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .core import register_backend
from .numpy_ref import NumpyBackend

__all__ = ["FusedNumpyBackend"]


def _uniform_length(n_lanes: int, starts, lengths) -> Optional[int]:
    """The common segment length, if all segments tile ``values`` uniformly.

    Returns:
        The shared positive length ``L`` when every segment has length
        ``L`` and segment ``i`` starts at ``i * L`` (so the lane array
        reshapes to ``(len(starts), L)``); None otherwise.
    """
    n = len(starts)
    if n == 0 or not len(lengths):
        return None
    first = int(lengths[0])
    if first <= 0 or n * first != n_lanes:
        return None
    if not (lengths == first).all():
        return None
    # uniform lengths + matching total size still allows permuted starts;
    # the tiled layout additionally needs starts[i] == i * first
    if starts[0] != 0 or starts[-1] != (n - 1) * first:
        return None
    if not np.array_equal(starts, np.arange(n, dtype=starts.dtype) * first):
        return None
    return first


class FusedNumpyBackend(NumpyBackend):
    """Fused kernels: bincount scatter-add, reshape segment reductions."""

    name = "numpy_fused"

    def scatter_add(self, size: int, idx, values) -> np.ndarray:
        """``np.bincount`` accumulation (same order, same bits)."""
        if not len(idx):
            return np.zeros(size)
        return np.bincount(idx, weights=values, minlength=size)

    def segment_reduce(self, values, starts, lengths, op: str) -> np.ndarray:
        """Reshape reduction on uniform geometry, reference otherwise."""
        values = np.asarray(values)
        starts = np.asarray(starts)
        lengths = np.asarray(lengths)
        if op in ("min", "max"):
            width = _uniform_length(len(values), starts, lengths)
            if width is not None:
                # column-by-column with an explicit out= buffer: numpy's
                # strided axis-1 reduce (``grid.min(axis=1)``) is ~20x
                # slower at hop-count-sized inner dimensions
                grid = values.reshape(len(starts), width)
                ufunc = np.minimum if op == "min" else np.maximum
                out = grid[:, 0].copy()
                for k in range(1, width):
                    ufunc(out, grid[:, k], out=out)
                return out
        elif op in ("sum", "prod"):
            width = _uniform_length(len(values), starts, lengths)
            if width is not None:
                # column-by-column accumulation: identical left-to-right
                # association as the masked walk (starting from the op
                # identity, as the walk does — a first-column copy would
                # diverge on signed zeros), contiguous strides
                grid = values.reshape(len(starts), width)
                n = len(starts)
                out = np.zeros(n) if op == "sum" else np.ones(n)
                for k in range(width):
                    if op == "sum":
                        out += grid[:, k]
                    else:
                        out *= grid[:, k]
                return out
        return super().segment_reduce(values, starts, lengths, op)

    def path_signals(
        self, idx, starts, lengths, not_marked_links, delay_links
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Uniform-geometry reshape walk; reference masked walk otherwise."""
        num_flows = len(starts)
        if num_flows:
            width = _uniform_length(len(idx), starts, lengths)
            if width is not None:
                grid = idx.reshape(num_flows, width)
                not_marked = np.ones(num_flows)
                queue_delay = np.zeros(num_flows)
                for k in range(width):
                    hop = grid[:, k]
                    not_marked *= not_marked_links[hop]
                    queue_delay += delay_links[hop]
                return not_marked, queue_delay
        return super().path_signals(
            idx, starts, lengths, not_marked_links, delay_links
        )


register_backend("numpy_fused", FusedNumpyBackend)
