"""Optional torch backend — the same kernels on torch tensors.

Import-guarded: the module always imports, but the backend factory raises
``ImportError`` when torch is absent, so ``available_backends()`` simply
omits ``"torch"`` and every torch test skips.  Nothing in the default
code paths touches torch.

Execution model: kernels take and return float64 host arrays (the
simulator's column dtype), execute on torch tensors internally, and are
**zero-copy on CPU** — ``torch.from_numpy`` aliases the numpy buffer and
``Tensor.numpy()`` aliases it back, so the FlowTable / incidence /
telemetry columns the kernels read *are* the device-resident arrays and a
CPU-torch step performs no host↔device transfers at all (the ≥50k-flow
benchmark lane asserts the step loop stays transfer-free).  On a CUDA
device each kernel boundary is a sync point; keeping columns resident
across steps on an accelerator is the remaining ROADMAP item this layer
was built to unlock.

Tolerance policy (documented; see DESIGN.md, "Array backends & kernels"):
``scatter_add`` uses ``Tensor.index_add_``, whose duplicate-index
accumulation order is unspecified (on GPUs it is hardware atomic
accumulation), so torch results are *equivalent within tolerance* — FCTs
within ``rtol=1e-9`` of the scalar reference — rather than bit-identical.
The numpy backends keep the bit-identity contract.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .core import ArrayBackend, register_backend

__all__ = ["TorchBackend", "torch_available"]

try:  # pragma: no cover - exercised only where torch is installed
    import torch as _torch
except ImportError:  # pragma: no cover
    _torch = None


def torch_available() -> bool:
    """True when the torch library is importable."""
    return _torch is not None


class TorchBackend(ArrayBackend):
    """Torch kernels (CPU by default; ``device="cuda"`` when available)."""

    name = "torch"
    is_device = True

    def __init__(self, device: str = "cpu") -> None:
        """Bind the backend to one torch device.

        Raises:
            ImportError: torch is not installed.
        """
        if _torch is None:
            raise ImportError("torch is not installed; backend 'torch' unavailable")
        self.torch = _torch
        self.device = _torch.device(device)
        #: the array namespace call sites may use for element-wise math
        self.xp = _torch
        #: host↔device copies performed (0 forever on CPU: zero-copy
        #: aliasing; the ≥50k-flow lane asserts it stays 0 in-step)
        self.transfers = 0

    # ------------------------------------------------------------------ #
    # sync points (zero-copy on CPU)
    # ------------------------------------------------------------------ #
    def asarray(self, values, dtype=None):
        """Adopt host data as a tensor (aliasing the buffer on CPU)."""
        arr = np.asarray(values, dtype=dtype)
        if self.device.type == "cpu":
            return self.torch.from_numpy(arr)
        self.transfers += 1  # pragma: no cover - CUDA only
        return self.torch.as_tensor(arr, device=self.device)

    def to_numpy(self, values) -> np.ndarray:
        """Materialise a tensor on the host (aliasing on CPU)."""
        if isinstance(values, self.torch.Tensor):
            if values.device.type != "cpu":  # pragma: no cover - CUDA only
                self.transfers += 1
            return values.cpu().numpy()
        return np.asarray(values)

    def _t(self, values):
        """Tensor view of a host array (no copy on CPU)."""
        if isinstance(values, self.torch.Tensor):
            return values
        return self.asarray(values)

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #
    def scatter_add(self, size: int, idx, values) -> np.ndarray:
        """``index_add_`` accumulation (unordered duplicates — tolerance)."""
        vals = self._t(np.asarray(values, dtype=np.float64))
        index = self._t(np.asarray(idx)).long()
        out = self.torch.zeros(size, dtype=self.torch.float64, device=self.device)
        out.index_add_(0, index, vals)
        return self.to_numpy(out)

    def segment_reduce(self, values, starts, lengths, op: str) -> np.ndarray:
        """Positional walk over hop columns (min/max/sum/prod)."""
        values_np = np.asarray(values, dtype=np.float64)
        starts_np = np.asarray(starts)
        lengths_np = np.asarray(lengths)
        n = len(starts_np)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        torch = self.torch
        vals = self._t(values_np)
        starts_t = self._t(starts_np).long()
        lengths_t = self._t(lengths_np).long()
        init = {"sum": 0.0, "prod": 1.0, "min": np.inf, "max": -np.inf}[op]
        out = torch.full((n,), init, dtype=torch.float64, device=self.device)
        max_len = int(lengths_np.max()) if lengths_np.size else 0
        for k in range(max_len):
            sel = (lengths_t > k).nonzero(as_tuple=True)[0]
            lane = vals[starts_t[sel] + k]
            if op == "sum":
                out[sel] += lane
            elif op == "prod":
                out[sel] *= lane
            elif op == "min":
                out[sel] = torch.minimum(out[sel], lane)
            else:
                out[sel] = torch.maximum(out[sel], lane)
        return self.to_numpy(out)

    def path_signals(
        self, idx, starts, lengths, not_marked_links, delay_links
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Fused survival-product / delay-sum walk on tensors."""
        torch = self.torch
        n = len(starts)
        not_marked = torch.ones(n, dtype=torch.float64, device=self.device)
        queue_delay = torch.zeros(n, dtype=torch.float64, device=self.device)
        if n and len(lengths):
            idx_t = self._t(np.asarray(idx)).long()
            starts_t = self._t(np.asarray(starts)).long()
            lengths_t = self._t(np.asarray(lengths)).long()
            nml = self._t(np.asarray(not_marked_links, dtype=np.float64))
            dl = self._t(np.asarray(delay_links, dtype=np.float64))
            for k in range(int(np.max(lengths))):
                sel = (lengths_t > k).nonzero(as_tuple=True)[0]
                link = idx_t[starts_t[sel] + k]
                not_marked[sel] *= nml[link]
                queue_delay[sel] += dl[link]
        return self.to_numpy(not_marked), self.to_numpy(queue_delay)

    def weighted_choice_searchsorted(self, cumulative, points) -> np.ndarray:
        """``torch.searchsorted`` (left side) + clamp to the last bucket."""
        torch = self.torch
        cum = self._t(np.asarray(cumulative, dtype=np.float64))
        pts = self._t(np.asarray(points, dtype=np.float64))
        idx = torch.searchsorted(cum, pts, side="left")
        idx = torch.clamp(idx, max=len(cum) - 1)
        return self.to_numpy(idx).astype(np.intp)

    def gather_rows(self, column, rows) -> np.ndarray:
        """``index_select`` gather."""
        col = self._t(column)
        index = self._t(np.asarray(rows)).long()
        return self.to_numpy(col.index_select(0, index))

    def scatter_rows(self, column, rows, values) -> None:
        """``index_copy_`` scatter into the (aliased) host column."""
        col = self._t(column)
        index = self._t(np.asarray(rows)).long()
        vals = self._t(np.asarray(values, dtype=np.asarray(column).dtype))
        col.index_copy_(0, index, vals)
        if self.device.type != "cpu":  # pragma: no cover - CUDA only
            np.asarray(column)[...] = self.to_numpy(col)

    def masked_where(self, cond, a, b) -> np.ndarray:
        """``torch.where`` select (scalars broadcast as in numpy)."""
        torch = self.torch
        cond_t = self._t(np.asarray(cond))
        a_t = self._t(np.asarray(a, dtype=np.float64))
        b_t = self._t(np.asarray(b, dtype=np.float64))
        return self.to_numpy(torch.where(cond_t, a_t, b_t))

    def masked_divide(self, num, den, mask) -> np.ndarray:
        """Masked division with exact zeros on the masked-out lanes."""
        torch = self.torch
        num_t = self._t(np.asarray(num, dtype=np.float64))
        den_t = self._t(np.asarray(den, dtype=np.float64))
        mask_t = self._t(np.asarray(mask))
        safe = torch.where(mask_t, den_t, torch.ones_like(den_t))
        quotient = num_t / safe
        out = torch.where(mask_t, quotient, torch.zeros_like(quotient))
        return self.to_numpy(out)


register_backend("torch", TorchBackend)
