"""The numpy reference backend — today's exact idioms, bit for bit.

Every kernel here is the literal array idiom the simulator cores used
through PR 5 (``np.add.at`` scatter-adds, ``*.reduceat`` min/max
reductions, the masked positional path walk), so selecting
``backend="numpy"`` reproduces the PR-5 SoA core byte for byte — it is
both the default and the measured baseline of the fused-backend speedup
gate (``benchmarks/test_backend_throughput.py``).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .core import ArrayBackend, register_backend

__all__ = ["NumpyBackend"]


def _csr_contiguous(n_lanes: int, starts, lengths) -> bool:
    """True when segments tile ``[0, n_lanes)`` back to back in order."""
    if len(starts) == 0:
        return n_lanes == 0
    if starts[0] != 0 or starts[-1] + lengths[-1] != n_lanes:
        return False
    return bool(np.array_equal(starts[1:], starts[:-1] + lengths[:-1]))


class NumpyBackend(ArrayBackend):
    """Reference kernels: the pre-backend numpy idioms, unchanged."""

    name = "numpy"
    xp = np

    def scatter_add(self, size: int, idx, values) -> np.ndarray:
        """``np.add.at`` accumulation (sequential in input order)."""
        out = np.zeros(size)
        np.add.at(out, idx, values)
        return out

    def segment_reduce(self, values, starts, lengths, op: str) -> np.ndarray:
        """``reduceat`` for order-exact min/max, exact walk for sum/prod.

        ``min``/``max`` are associative and commutative (NaNs propagate
        either way), so ``np.minimum.reduceat`` / ``np.maximum.reduceat``
        are usable whenever the CSR is contiguous with no empty segments —
        the geometry the incidence structure guarantees.  ``sum``/``prod``
        must accumulate strictly left to right (reduceat's intra-segment
        association is unspecified), so they go through the positional
        walk.  Degenerate geometries fall back to the naive loop.
        """
        values = np.asarray(values)
        starts = np.asarray(starts)
        lengths = np.asarray(lengths)
        if len(starts) == 0:
            return np.empty(0, dtype=np.float64)
        if op in ("min", "max"):
            if (lengths > 0).all() and _csr_contiguous(len(values), starts, lengths):
                ufunc = np.minimum if op == "min" else np.maximum
                return ufunc.reduceat(values, starts)
            return self._segment_reduce_loop(values, starts, lengths, op)
        if op in ("sum", "prod"):
            return self._segment_walk(values, starts, lengths, op)
        raise ValueError(f"unknown segment_reduce op {op!r}")

    def _segment_walk(self, values, starts, lengths, op: str) -> np.ndarray:
        """Masked positional walk: exact left-to-right association."""
        n = len(starts)
        out = np.zeros(n) if op == "sum" else np.ones(n)
        if n == 0 or not lengths.size or int(lengths.max()) == 0:
            return out
        for k in range(int(lengths.max())):
            sel = np.flatnonzero(lengths > k)
            lane = values[starts[sel] + k]
            if op == "sum":
                out[sel] += lane
            else:
                out[sel] *= lane
        return out

    def path_signals(
        self, idx, starts, lengths, not_marked_links, delay_links
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The PR-5 masked walk, fusing the product and the sum per hop."""
        num_flows = len(starts)
        not_marked = np.ones(num_flows)
        queue_delay = np.zeros(num_flows)
        if not num_flows or not len(lengths):
            return not_marked, queue_delay
        for k in range(int(np.max(lengths))):
            sel = np.flatnonzero(lengths > k)
            link = idx[starts[sel] + k]
            not_marked[sel] *= not_marked_links[link]
            queue_delay[sel] += delay_links[link]
        return not_marked, queue_delay

    def weighted_choice_searchsorted(self, cumulative, points) -> np.ndarray:
        """``searchsorted(side="left")`` + clamp, as the batched routers do."""
        idx = np.searchsorted(cumulative, points, side="left")
        return np.minimum(idx, len(cumulative) - 1).astype(np.intp)

    def gather_rows(self, column, rows) -> np.ndarray:
        """Plain fancy-indexed gather."""
        return column[rows]

    def scatter_rows(self, column, rows, values) -> None:
        """Plain fancy-indexed scatter."""
        column[rows] = values

    def masked_where(self, cond, a, b) -> np.ndarray:
        """``np.where`` select."""
        return np.where(cond, a, b)

    def masked_divide(self, num, den, mask) -> np.ndarray:
        """The ``np.divide(out=, where=)`` idiom (exact zeros off-mask)."""
        out = np.zeros(np.broadcast(num, den).shape)
        np.divide(num, den, out=out, where=mask)
        return out


register_backend("numpy", NumpyBackend)
