"""Pluggable array backends for the simulator's hot kernels.

See :mod:`repro.backend.core` for the kernel contract and DESIGN.md
("Array backends & kernels") for the registry table, sync-point rules and
the tolerance policy.  Importing this package registers the always-on
numpy backends and the import-guarded torch backend.
"""

from .core import ArrayBackend, available_backends, get_backend, register_backend
from .numpy_fused import FusedNumpyBackend
from .numpy_ref import NumpyBackend
from .torch_backend import TorchBackend, torch_available

__all__ = [
    "ArrayBackend",
    "FusedNumpyBackend",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "torch_available",
]
