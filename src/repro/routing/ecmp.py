"""Equal-Cost Multi-Path routing (ECMP).

The widely deployed default: the switch hashes the flow identifier and picks
a candidate uniformly, ignoring both static path asymmetry (delay/capacity)
and current congestion.  This is the paper's primary deployed baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..simulator.flow import FlowDemand
from ..topology.paths import CandidatePath
from .base import Router, flow_hash, flow_hash_array, register_router

__all__ = ["ECMPRouter"]


@register_router
class ECMPRouter(Router):
    """Oblivious hashing across all candidates."""

    name = "ecmp"

    def __init__(self, salt: int = 0x9E3779B1) -> None:
        """Create an ECMP router.

        Args:
            salt: hash salt; varying it across experiments changes the hash
                function the same way reshuffling the ECMP seed would.
        """
        super().__init__()
        self.salt = salt

    def select(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demand: FlowDemand,
        now: float,
    ) -> CandidatePath:
        """Hash the flow id over the candidate list."""
        self.decisions += 1
        index = flow_hash(demand.flow_id, self.salt) % len(candidates)
        return candidates[index]

    def select_batch(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demands: Sequence[FlowDemand],
        times: Optional[Sequence[float]] = None,
        now: float = 0.0,
        path_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Vectorized hashing: one array op for the whole batch."""
        self.decisions += len(demands)
        ids = np.fromiter(
            (d.flow_id for d in demands), dtype=np.int64, count=len(demands)
        )
        return (flow_hash_array(ids, self.salt) % len(candidates)).astype(np.intp)
