"""UCMP reproduction (Li et al., SIGCOMM 2024).

UCMP (Uniform-Cost Multi-Path) was designed for reconfigurable datacenter
networks: it folds circuit-waiting latency and link capacity into a unified
cost and steers flows toward the cheapest class.  The paper reproduces UCMP
as its capacity-aware baseline and observes that, in a conventional WAN where
the circuit-wait term vanishes, UCMP's cost degenerates to a capacity-first
ranking: it concentrates traffic on the highest-capacity candidates even when
they have much higher propagation delay, and may leave low-delay/low-capacity
paths completely unused (Fig. 1b shows 0 % utilisation on some links).

This implementation mirrors that reproduction: candidates are ranked by a
uniform cost dominated by inverse capacity with a minor delay tie-break, the
cheapest capacity class is retained, and flows are hashed inside that class.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..simulator.flow import FlowDemand
from ..topology.paths import CandidatePath
from .base import Router, flow_hash, flow_hash_array, register_router

__all__ = ["UCMPRouter"]


@register_router
class UCMPRouter(Router):
    """Capacity-first unified-cost selection (UCMP reproduction)."""

    name = "ucmp"

    def __init__(
        self,
        salt: int = 0x7FEB352D,
        capacity_class_tolerance: float = 0.05,
        delay_weight: float = 1e-3,
    ) -> None:
        """Create a UCMP router.

        Args:
            salt: hash salt for selection inside the cheapest class.
            capacity_class_tolerance: candidates whose bottleneck capacity is
                within this relative tolerance of the best are considered the
                same capacity class.
            delay_weight: weight of the (secondary) delay term in the unified
                cost; small so capacity dominates, as in the reproduction.
        """
        super().__init__()
        self.salt = salt
        self.capacity_class_tolerance = capacity_class_tolerance
        self.delay_weight = delay_weight
        #: cheapest-class index table per candidate set (static attributes,
        #: so the filter + cost sort is computed once per set)
        self._class_cache: Dict[Tuple, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    def unified_cost(self, candidate: CandidatePath) -> float:
        """UCMP's unified cost: inverse capacity plus a minor delay term."""
        inv_capacity = 1e9 / max(candidate.bottleneck_bps, 1.0)
        return inv_capacity + self.delay_weight * candidate.delay_s

    def select(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demand: FlowDemand,
        now: float,
    ) -> CandidatePath:
        """Keep the cheapest capacity class, hash within it."""
        self.decisions += 1
        best_capacity = max(c.bottleneck_bps for c in candidates)
        threshold = best_capacity * (1.0 - self.capacity_class_tolerance)
        cheapest_class: List[CandidatePath] = [
            c for c in candidates if c.bottleneck_bps >= threshold
        ]
        cheapest_class.sort(key=self.unified_cost)
        index = flow_hash(demand.flow_id, self.salt) % len(cheapest_class)
        return cheapest_class[index]

    def _cheapest_class_for(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        path_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Candidate indices of the cost-sorted cheapest capacity class.

        The filter and the stable cost sort are flow-independent, so the
        resulting index array matches the list ``select`` hashes into,
        position for position.  With ``path_ids`` the cache keys on the
        integer ids (cheap to hash); otherwise on the candidates' DC name
        tuples.
        """
        if path_ids is not None:
            key = (dst_dc,) + tuple(path_ids)
        else:
            key = (dst_dc,) + tuple(c.dcs for c in candidates)
        entry = self._class_cache.get(key)
        if entry is None:
            best_capacity = max(c.bottleneck_bps for c in candidates)
            threshold = best_capacity * (1.0 - self.capacity_class_tolerance)
            class_idx = [
                j for j, c in enumerate(candidates) if c.bottleneck_bps >= threshold
            ]
            class_idx.sort(key=lambda j: self.unified_cost(candidates[j]))
            entry = np.asarray(class_idx, dtype=np.intp)
            self._class_cache[key] = entry
        return entry

    def select_batch(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demands: Sequence[FlowDemand],
        times: Optional[Sequence[float]] = None,
        now: float = 0.0,
        path_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Hash the batch inside the cached cheapest capacity class."""
        self.decisions += len(demands)
        cheapest = self._cheapest_class_for(dst_dc, candidates, path_ids)
        ids = np.fromiter(
            (d.flow_id for d in demands), dtype=np.int64, count=len(demands)
        )
        inner = (flow_hash_array(ids, self.salt) % len(cheapest)).astype(np.intp)
        return self.backend.gather_rows(cheapest, inner)
