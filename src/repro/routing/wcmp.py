"""Weighted-Cost Multi-Path routing (WCMP, Zhou et al., EuroSys 2014).

WCMP extends ECMP with static weights so that hashing spreads flows in
proportion to provisioned capacity.  It repairs ECMP's blindness to capacity
asymmetry but remains oblivious to propagation delay and to transient
congestion — the gap the paper highlights for slow, topology-only schemes.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..simulator.flow import FlowDemand
from ..topology.paths import CandidatePath
from .base import Router, flow_hash, flow_hash_array, register_router

__all__ = ["WCMPRouter"]


@register_router
class WCMPRouter(Router):
    """Static capacity-weighted hashing."""

    name = "wcmp"

    def __init__(self, salt: int = 0x2545F491) -> None:
        super().__init__()
        self.salt = salt
        #: cumulative-weight table per candidate set (weights are static,
        #: so the per-(dst, candidate-set) arrays are computed once)
        self._cumulative_cache: Dict[Tuple, Tuple[np.ndarray, float]] = {}

    def select(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demand: FlowDemand,
        now: float,
    ) -> CandidatePath:
        """Pick a candidate with probability proportional to its bottleneck capacity.

        The selection is deterministic per flow: the flow hash is mapped onto
        the cumulative capacity distribution of the candidates (the software
        analogue of WCMP's replicated ECMP table entries).
        """
        self.decisions += 1
        weights = [max(c.bottleneck_bps, 1.0) for c in candidates]
        total = sum(weights)
        point = (flow_hash(demand.flow_id, self.salt) / 0xFFFFFFFF) * total
        cumulative = 0.0
        for candidate, weight in zip(candidates, weights):
            cumulative += weight
            if point <= cumulative:
                return candidate
        return candidates[-1]

    def _cumulative_for(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        path_ids: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, float]:
        # integer path ids (when the caller has them) hash far cheaper
        # than per-candidate DC name tuples
        if path_ids is not None:
            key = (dst_dc,) + tuple(path_ids)
        else:
            key = (dst_dc,) + tuple(c.dcs for c in candidates)
        entry = self._cumulative_cache.get(key)
        if entry is None:
            weights = [max(c.bottleneck_bps, 1.0) for c in candidates]
            # np.cumsum accumulates sequentially, so cumulative[i] equals
            # the scalar loop's running sum bit for bit; ``total`` is the
            # same Python sum select() uses for the hash point
            entry = (np.cumsum(np.asarray(weights)), sum(weights))
            self._cumulative_cache[key] = entry
        return entry

    def select_batch(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demands: Sequence[FlowDemand],
        times: Optional[Sequence[float]] = None,
        now: float = 0.0,
        path_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Vectorized weighted hashing over the cached cumulative table.

        ``searchsorted(..., side="left")`` returns the first index whose
        cumulative weight is >= the hash point — exactly the scalar loop's
        ``point <= cumulative`` exit; the final clip reproduces its
        ``candidates[-1]`` fallthrough.
        """
        self.decisions += len(demands)
        cumulative, total = self._cumulative_for(dst_dc, candidates, path_ids)
        ids = np.fromiter(
            (d.flow_id for d in demands), dtype=np.int64, count=len(demands)
        )
        points = (flow_hash_array(ids, self.salt).astype(np.float64) / 0xFFFFFFFF) * total
        return self.backend.weighted_choice_searchsorted(cumulative, points)
