"""Weighted-Cost Multi-Path routing (WCMP, Zhou et al., EuroSys 2014).

WCMP extends ECMP with static weights so that hashing spreads flows in
proportion to provisioned capacity.  It repairs ECMP's blindness to capacity
asymmetry but remains oblivious to propagation delay and to transient
congestion — the gap the paper highlights for slow, topology-only schemes.
"""

from __future__ import annotations

from typing import Sequence

from ..simulator.flow import FlowDemand
from ..topology.paths import CandidatePath
from .base import Router, flow_hash, register_router

__all__ = ["WCMPRouter"]


@register_router
class WCMPRouter(Router):
    """Static capacity-weighted hashing."""

    name = "wcmp"

    def __init__(self, salt: int = 0x2545F491) -> None:
        super().__init__()
        self.salt = salt

    def select(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demand: FlowDemand,
        now: float,
    ) -> CandidatePath:
        """Pick a candidate with probability proportional to its bottleneck capacity.

        The selection is deterministic per flow: the flow hash is mapped onto
        the cumulative capacity distribution of the candidates (the software
        analogue of WCMP's replicated ECMP table entries).
        """
        self.decisions += 1
        weights = [max(c.bottleneck_bps, 1.0) for c in candidates]
        total = sum(weights)
        point = (flow_hash(demand.flow_id, self.salt) / 0xFFFFFFFF) * total
        cumulative = 0.0
        for candidate, weight in zip(candidates, weights):
            cumulative += weight
            if point <= cumulative:
                return candidate
        return candidates[-1]
