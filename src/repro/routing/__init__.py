"""Baseline routing algorithms (ECMP, WCMP, UCMP, RedTE) and the router registry.

The LCMP router itself lives in :mod:`repro.core.lcmp_router`; importing
:mod:`repro.core` registers it under the name ``"lcmp"`` so
:func:`make_router_factory` can build any of the evaluated schemes by name.
"""

from .base import (
    Router,
    RouterFactory,
    available_routers,
    flow_hash,
    make_router_factory,
    register_router,
)
from .ecmp import ECMPRouter
from .redte import RedTERouter
from .ucmp import UCMPRouter
from .wcmp import WCMPRouter

__all__ = [
    "Router",
    "RouterFactory",
    "available_routers",
    "flow_hash",
    "make_router_factory",
    "register_router",
    "ECMPRouter",
    "WCMPRouter",
    "UCMPRouter",
    "RedTERouter",
]
