"""RedTE-style distributed traffic engineering baseline (Gui et al., SIGCOMM 2024).

RedTE is the state-of-the-art distributed WAN TE system the paper compares
against: each edge router runs an agent (trained with multi-agent RL) that
adjusts per-destination traffic-splitting ratios on a ~100 ms control loop to
mitigate sub-second bursts.

This reproduction keeps the deployment model (per-switch agent, split ratios
over next hops, a 100 ms control period) and replaces the learned policy with
the utilisation-equalising update such a policy converges to: every control
interval the agent measures the utilisation of its egress ports and shifts
split weight from over-utilised ports toward under-utilised ones.  The paper
itself observes that at RDMA's microsecond burst timescale the 100 ms loop is
far too coarse and RedTE "effectively degenerates to static hashing"; the
deterministic control law reproduces exactly that behaviour (documented
substitution, see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..simulator.flow import FlowDemand
from ..simulator.switch import PortSample
from ..topology.paths import CandidatePath
from .base import Router, flow_hash, flow_hash_array, register_router

__all__ = ["RedTERouter"]


@register_router
class RedTERouter(Router):
    """Split-ratio TE with a coarse (100 ms) control loop."""

    name = "redte"

    def __init__(
        self,
        control_interval_s: float = 0.1,
        step_size: float = 0.3,
        min_weight: float = 0.05,
        salt: int = 0x61C88647,
    ) -> None:
        """Create a RedTE agent.

        Args:
            control_interval_s: control-loop period (100 ms in the paper).
            step_size: how aggressively weight moves toward under-utilised
                ports each control interval (0 = static, 1 = jump straight
                to the utilisation-equalising split).
            min_weight: floor that keeps every port reachable.
            salt: hash salt used for per-flow placement within the split.
        """
        super().__init__()
        self.control_interval_s = control_interval_s
        self.step_size = step_size
        self.min_weight = min_weight
        self.salt = salt

        #: per next-hop split weight (shared across destinations, as the
        #: telemetry is per egress port)
        self._weights: Dict[str, float] = {}
        #: latest cumulative carried bytes per port
        self._carried: Dict[str, float] = {}
        #: carried bytes at the start of the current control interval
        self._carried_at_interval_start: Dict[str, float] = {}
        self._capacity: Dict[str, float] = {}
        self._last_control_s: float = 0.0
        #: number of control-loop executions (used by tests)
        self.control_updates = 0

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    def on_port_sample(self, sample: PortSample, now: float) -> None:
        """Track cumulative carried bytes and capacity per egress port."""
        self._observe_port(sample.next_dc, sample.carried_bytes, sample.cap_bps)

    def on_telemetry(self, view, now: float) -> None:
        """Columnar sweep delivery: same per-port updates, no sample objects."""
        carried = view.carried_bytes.tolist()
        caps = view.cap_bps.tolist()
        for i, port in enumerate(view.port_dcs):
            self._observe_port(port, carried[i], caps[i])

    def _observe_port(self, port: str, carried_bytes: float, cap_bps: float) -> None:
        self._carried[port] = carried_bytes
        self._capacity[port] = cap_bps
        if port not in self._weights:
            self._weights[port] = 1.0
            self._carried_at_interval_start[port] = carried_bytes

    def on_tick(self, now: float) -> None:
        """Run the control loop when a full control interval has elapsed."""
        if now - self._last_control_s < self.control_interval_s:
            return
        elapsed = now - self._last_control_s
        self._last_control_s = now
        self._run_control_loop(elapsed)

    # ------------------------------------------------------------------ #
    # control loop
    # ------------------------------------------------------------------ #
    def _run_control_loop(self, elapsed_s: float) -> None:
        if not self._weights or elapsed_s <= 0:
            return
        utilisation: Dict[str, float] = {}
        for port, weight in self._weights.items():
            carried_now = self._carried.get(port, 0.0)
            carried_before = self._carried_at_interval_start.get(port, carried_now)
            self._carried_at_interval_start[port] = carried_now
            capacity = max(self._capacity.get(port, 1.0), 1.0)
            utilisation[port] = (carried_now - carried_before) * 8.0 / (capacity * elapsed_s)

        mean_util = sum(utilisation.values()) / len(utilisation)
        if mean_util <= 0:
            return
        for port in self._weights:
            # ports running hotter than average lose weight, cooler ports gain
            imbalance = (mean_util - utilisation[port]) / mean_util
            updated = self._weights[port] * (1.0 + self.step_size * imbalance)
            self._weights[port] = max(self.min_weight, updated)
        self.control_updates += 1

    # ------------------------------------------------------------------ #
    # selection
    # ------------------------------------------------------------------ #
    def select(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demand: FlowDemand,
        now: float,
    ) -> CandidatePath:
        """Weighted hash across candidates using the current split ratios."""
        self.decisions += 1
        weights: List[float] = [
            self._weights.get(c.first_hop, 1.0) for c in candidates
        ]
        total = sum(weights)
        if total <= 0:
            weights = [1.0] * len(candidates)
            total = float(len(candidates))
        point = (flow_hash(demand.flow_id, self.salt) / 0xFFFFFFFF) * total
        cumulative = 0.0
        for candidate, weight in zip(candidates, weights):
            cumulative += weight
            if point <= cumulative:
                return candidate
        return candidates[-1]

    def select_batch(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demands: Sequence[FlowDemand],
        times: Optional[Sequence[float]] = None,
        now: float = 0.0,
        path_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Vectorized weighted hashing under the current split ratios.

        The split weights only move on the (coarse) control loop, so one
        cumulative table covers the whole batch; the ``searchsorted`` /
        clip pair reproduces the scalar loop's ``point <= cumulative`` exit
        and ``candidates[-1]`` fallthrough exactly.
        """
        self.decisions += len(demands)
        weights: List[float] = [
            self._weights.get(c.first_hop, 1.0) for c in candidates
        ]
        total = sum(weights)
        if total <= 0:
            weights = [1.0] * len(candidates)
            total = float(len(candidates))
        cumulative = np.cumsum(np.asarray(weights))
        ids = np.fromiter(
            (d.flow_id for d in demands), dtype=np.int64, count=len(demands)
        )
        points = (flow_hash_array(ids, self.salt).astype(np.float64) / 0xFFFFFFFF) * total
        return self.backend.weighted_choice_searchsorted(cumulative, points)
