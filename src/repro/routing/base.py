"""Routing-algorithm interface and registry.

Every routing scheme in the evaluation — ECMP, WCMP, UCMP, RedTE and LCMP —
implements the same switch-local interface: it is attached to one DCI switch,
receives periodic queue-monitor telemetry of that switch's egress ports, and
is asked to pick one candidate route when the first packet of a new flow
arrives.  The interface mirrors what the paper's data-plane prototype can do:
decisions use only locally available state (precomputed path attributes plus
the switch's own port telemetry).

Two batched entry points exist alongside the per-flow ones:

* :meth:`Router.select_batch` routes many simultaneous arrivals in one call.
  The base implementation loops :meth:`Router.select` (so batch decisions
  are identical to sequential ones by construction); every shipped router
  overrides it with array operations over the candidate table —
  :func:`flow_hash_array` is the vectorized twin of :func:`flow_hash` and
  produces bit-identical hashes.
* :meth:`Router.on_telemetry` receives one queue-monitor sweep as a columnar
  per-switch view (:class:`~repro.simulator.telemetry.TelemetryView`).  The
  base implementation materialises the legacy per-port
  :class:`~repro.simulator.switch.PortSample` objects and forwards them to
  :meth:`Router.on_port_sample`, so routers written against the per-sample
  hook keep working unchanged under the array-resident control plane.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Sequence, Type

import numpy as np

from ..backend import get_backend
from ..simulator.flow import FlowDemand
from ..simulator.switch import PortSample
from ..topology.paths import CandidatePath

__all__ = [
    "Router",
    "RouterFactory",
    "register_router",
    "make_router_factory",
    "available_routers",
    "flow_hash",
    "flow_hash_array",
]


def flow_hash(flow_id: int, salt: int = 0x9E3779B1) -> int:
    """Deterministic 32-bit hash of a flow identifier.

    Stands in for the five-tuple hash a switch ASIC computes; a simple
    multiplicative (Fibonacci) hash gives good dispersion for consecutive
    flow ids, which is what the traffic generator produces.
    """
    x = (flow_id * salt) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & 0xFFFFFFFF
    x ^= x >> 13
    return x


_HASH_MASK = np.uint64(0xFFFFFFFF)
_HASH_MUL2 = np.uint64(0x85EBCA6B)
_SHIFT_16 = np.uint64(16)
_SHIFT_13 = np.uint64(13)


def flow_hash_array(flow_ids: np.ndarray, salt: int = 0x9E3779B1) -> np.ndarray:
    """Vectorized :func:`flow_hash` over an array of flow identifiers.

    Performs the same 32-bit arithmetic in ``uint64`` lanes (the products
    fit, and wrap-then-mask equals Python's mask), so
    ``flow_hash_array(ids)[i] == flow_hash(int(ids[i]))`` for every id —
    the batched routers rely on that exactness.
    """
    x = (np.asarray(flow_ids).astype(np.uint64) * np.uint64(salt)) & _HASH_MASK
    x ^= x >> _SHIFT_16
    x = (x * _HASH_MUL2) & _HASH_MASK
    x ^= x >> _SHIFT_13
    return x


class Router(abc.ABC):
    """Base class for switch-local routing algorithms."""

    #: registry name, e.g. ``"ecmp"``
    name: str = "base"

    def __init__(self) -> None:
        self.switch = None
        #: array backend for the batched selection kernels
        #: (:meth:`~repro.backend.core.ArrayBackend
        #: .weighted_choice_searchsorted`); the runtime network rebinds it
        #: to the simulation config's backend at construction
        self.backend = get_backend("numpy")
        #: number of select() calls served
        self.decisions = 0
        #: decisions served through the base sequential select_batch loop
        #: (routers without an array override fall back here)
        self.sequential_batch_decisions = 0

    # ------------------------------------------------------------------ #
    def attach(self, switch) -> None:
        """Bind the router to its DCI switch (called by the switch)."""
        self.switch = switch

    @property
    def switch_name(self) -> str:
        """Name of the attached switch (empty before attachment)."""
        return self.switch.dc if self.switch is not None else ""

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def select(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demand: FlowDemand,
        now: float,
    ) -> CandidatePath:
        """Pick one candidate route for a new flow toward ``dst_dc``.

        ``candidates`` is never empty and contains only routes whose first
        hop port is currently alive.
        """

    def select_batch(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demands: Sequence[FlowDemand],
        times: Optional[Sequence[float]] = None,
        now: float = 0.0,
        path_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Pick one candidate per demand for a batch of new flows.

        Semantically equivalent to calling :meth:`select` once per demand in
        order (:meth:`select` is the batch-of-one case); the base
        implementation does exactly that, so any router is batch-capable.
        Overrides replace the per-flow Python work with array operations
        over the candidate table and must keep the decisions *identical*
        to the sequential loop (guarded by
        ``tests/routing/test_select_batch.py``).

        Args:
            dst_dc: destination datacenter.
            candidates: live candidate routes (never empty).
            demands: the arriving flows, in arrival order.
            times: per-demand decision times (each flow is routed at its own
                arrival instant even when a batch is drained early); falls
                back to ``now`` for every demand when omitted.
            now: scalar decision time used when ``times`` is omitted.
            path_ids: global integer path ids aligned with ``candidates``
                (see :meth:`PathSet.candidate_ids`).  Routers that cache
                per-candidate-set state key on these ids when given —
                integer tuples hash far cheaper than per-candidate DC name
                tuples on the arrival hot path.

        Returns:
            Integer index into ``candidates`` per demand.
        """
        self.sequential_batch_decisions += len(demands)
        positions = {id(c): j for j, c in enumerate(candidates)}
        out = np.empty(len(demands), dtype=np.intp)
        for i, demand in enumerate(demands):
            t = now if times is None else float(times[i])
            chosen = self.select(dst_dc, candidates, demand, t)
            out[i] = positions[id(chosen)]
        return out

    # ------------------------------------------------------------------ #
    # optional hooks
    # ------------------------------------------------------------------ #
    def on_port_sample(self, sample: PortSample, now: float) -> None:
        """Receive one queue-monitor observation of a local egress port."""

    def on_telemetry(self, view, now: float) -> None:
        """Receive one queue-monitor sweep as a columnar per-switch view.

        ``view`` is a :class:`~repro.simulator.telemetry.TelemetryView` over
        the attached switch's egress-port columns.  The base implementation
        lazily materialises the compatibility :class:`PortSample` objects
        and forwards them to :meth:`on_port_sample` — routers overriding
        only the per-sample hook behave identically under both control
        planes.  Telemetry-hungry routers override this to read the columns
        directly (no per-port object construction).
        """
        for sample in view.build_samples(now):
            self.on_port_sample(sample, now)

    def consumes_telemetry(self) -> bool:
        """True when this router actually reads queue-monitor telemetry.

        The array-resident control plane skips per-router delivery entirely
        for oblivious routers (ECMP/WCMP): writing the telemetry columns is
        enough.  Detection is by override: a router that customises neither
        :meth:`on_port_sample` nor :meth:`on_telemetry` cannot observe the
        sweep.
        """
        cls = type(self)
        return (
            cls.on_port_sample is not Router.on_port_sample
            or cls.on_telemetry is not Router.on_telemetry
        )

    def on_tick(self, now: float) -> None:
        """Periodic housekeeping (flow-cache GC, control loops)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(switch={self.switch_name!r})"


#: a router factory: (dc name) -> Router instance
RouterFactory = Callable[[str], Router]

_REGISTRY: Dict[str, Type[Router]] = {}


def register_router(cls: Type[Router]) -> Type[Router]:
    """Class decorator registering a routing algorithm by name."""
    if not cls.name or cls.name == "base":
        raise ValueError("router classes must define a unique name")
    _REGISTRY[cls.name] = cls
    return cls


def available_routers() -> List[str]:
    """Names of all registered routing algorithms."""
    return sorted(_REGISTRY)


def make_router_factory(name: str, **params) -> RouterFactory:
    """Build a per-switch router factory for the named algorithm.

    Each DCI switch receives its own router instance (the schemes are
    distributed); ``params`` are forwarded to every instance.

    Raises:
        KeyError: for unknown router names.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown router {name!r}; available: {available_routers()}"
        ) from None

    def factory(dc: str) -> Router:
        return cls(**params)

    return factory
