"""Routing-algorithm interface and registry.

Every routing scheme in the evaluation — ECMP, WCMP, UCMP, RedTE and LCMP —
implements the same switch-local interface: it is attached to one DCI switch,
receives periodic queue-monitor samples of that switch's egress ports, and is
asked to pick one candidate route when the first packet of a new flow
arrives.  The interface mirrors what the paper's data-plane prototype can do:
decisions use only locally available state (precomputed path attributes plus
the switch's own port telemetry).
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Sequence, Type

from ..simulator.flow import FlowDemand
from ..simulator.switch import PortSample
from ..topology.paths import CandidatePath

__all__ = [
    "Router",
    "RouterFactory",
    "register_router",
    "make_router_factory",
    "available_routers",
    "flow_hash",
]


def flow_hash(flow_id: int, salt: int = 0x9E3779B1) -> int:
    """Deterministic 32-bit hash of a flow identifier.

    Stands in for the five-tuple hash a switch ASIC computes; a simple
    multiplicative (Fibonacci) hash gives good dispersion for consecutive
    flow ids, which is what the traffic generator produces.
    """
    x = (flow_id * salt) & 0xFFFFFFFF
    x ^= x >> 16
    x = (x * 0x85EBCA6B) & 0xFFFFFFFF
    x ^= x >> 13
    return x


class Router(abc.ABC):
    """Base class for switch-local routing algorithms."""

    #: registry name, e.g. ``"ecmp"``
    name: str = "base"

    def __init__(self) -> None:
        self.switch = None
        #: number of select() calls served
        self.decisions = 0

    # ------------------------------------------------------------------ #
    def attach(self, switch) -> None:
        """Bind the router to its DCI switch (called by the switch)."""
        self.switch = switch

    @property
    def switch_name(self) -> str:
        """Name of the attached switch (empty before attachment)."""
        return self.switch.dc if self.switch is not None else ""

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def select(
        self,
        dst_dc: str,
        candidates: Sequence[CandidatePath],
        demand: FlowDemand,
        now: float,
    ) -> CandidatePath:
        """Pick one candidate route for a new flow toward ``dst_dc``.

        ``candidates`` is never empty and contains only routes whose first
        hop port is currently alive.
        """

    # ------------------------------------------------------------------ #
    # optional hooks
    # ------------------------------------------------------------------ #
    def on_port_sample(self, sample: PortSample, now: float) -> None:
        """Receive one queue-monitor observation of a local egress port."""

    def on_tick(self, now: float) -> None:
        """Periodic housekeeping (flow-cache GC, control loops)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(switch={self.switch_name!r})"


#: a router factory: (dc name) -> Router instance
RouterFactory = Callable[[str], Router]

_REGISTRY: Dict[str, Type[Router]] = {}


def register_router(cls: Type[Router]) -> Type[Router]:
    """Class decorator registering a routing algorithm by name."""
    if not cls.name or cls.name == "base":
        raise ValueError("router classes must define a unique name")
    _REGISTRY[cls.name] = cls
    return cls


def available_routers() -> List[str]:
    """Names of all registered routing algorithms."""
    return sorted(_REGISTRY)


def make_router_factory(name: str, **params) -> RouterFactory:
    """Build a per-switch router factory for the named algorithm.

    Each DCI switch receives its own router instance (the schemes are
    distributed); ``params`` are forwarded to every instance.

    Raises:
        KeyError: for unknown router names.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown router {name!r}; available: {available_routers()}"
        ) from None

    def factory(dc: str) -> Router:
        return cls(**params)

    return factory
