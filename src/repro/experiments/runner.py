"""Experiment runner: :class:`ExperimentSpec` in, analysed results out.

The runner builds (and caches) the topology and candidate-path set, resolves
the routing algorithm and congestion control by name, generates the traffic
matrix, runs the fluid simulation and wraps the outcome in an
:class:`ExperimentRun` carrying both the raw simulation result and the binned
slowdown profile the figures plot.

Run one experiment::

    from repro.experiments import ExperimentRunner, ExperimentSpec

    runner = ExperimentRunner()
    run = runner.run(ExperimentSpec(name="demo", router="lcmp", num_flows=500))
    print(run.profile.overall_p50, run.profile.overall_p99)

Sweep many specs — they fan out over a process pool, one worker per core,
and return in spec order with results identical to a serial sweep (every
stochastic component is seeded from the spec)::

    specs = [
        ExperimentSpec(name=f"load-{load:g}", load=load, num_flows=500)
        for load in (0.3, 0.5, 0.8)
    ]
    runs = runner.run_many(specs)                  # parallel by default
    runs = runner.run_many(specs, parallel=False)  # force serial

Compare routing algorithms on one scenario (same traffic matrix, also
parallelised)::

    by_router = runner.run_router_comparison(
        ExperimentSpec(name="base", num_flows=500), ["lcmp", "ecmp", "ucmp"]
    )
    print(by_router["lcmp"].profile.overall_p99)
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.fct_analysis import SlowdownProfile
from ..congestion_control import make_cc_factory, make_mixed_cc_factory
from ..core import LCMPConfig, lcmp_router_factory
from ..obs import merge_snapshots
from ..routing import make_router_factory
from ..simulator import FluidSimulation, RuntimeNetwork, SimulationConfig, SimulationResult
from ..simulator.fct import FlowRecord
from ..topology import (
    PathSet,
    Topology,
    bso13_pathset,
    build_bso13,
    build_fabric,
    build_testbed8,
    fabric_pathset,
    testbed8_pathset,
)
from ..workloads import TrafficConfig, TrafficGenerator
from .configs import ExperimentSpec

__all__ = ["ExperimentRun", "ExperimentRunner"]

#: per-worker-process runner, so a worker that runs several specs of one
#: sweep reuses its topology/path-set cache (see _run_spec_in_worker)
_WORKER_RUNNER: Optional["ExperimentRunner"] = None


def _run_spec_in_worker(spec: "ExperimentSpec") -> "ExperimentRun":
    """Process-pool entry point: run one spec on this worker's runner."""
    global _WORKER_RUNNER
    if _WORKER_RUNNER is None:
        _WORKER_RUNNER = ExperimentRunner()
    return _WORKER_RUNNER.run(spec)


@dataclass
class ExperimentRun:
    """The outcome of one experiment run."""

    spec: ExperimentSpec
    result: SimulationResult
    profile: SlowdownProfile

    def pair_profile(self, src_dc: str, dst_dc: str, bidirectional: bool = True) -> SlowdownProfile:
        """Slowdown profile restricted to one DC pair (the Fig. 8 view).

        Served straight from the metrics-store columns (one boolean mask,
        no record materialisation) when the run carries a store.
        """
        store = self.result.store
        if store is not None and not self.result.records_overridden:
            mask = store.pair_mask(src_dc, dst_dc, bidirectional=bidirectional)
            return SlowdownProfile.from_result(self.profile.name, self.result, mask=mask)
        records: List[FlowRecord] = [
            r
            for r in self.result.records
            if (r.src_dc == src_dc and r.dst_dc == dst_dc)
            or (bidirectional and r.src_dc == dst_dc and r.dst_dc == src_dc)
        ]
        return SlowdownProfile.from_records(self.profile.name, records)


class ExperimentRunner:
    """Runs experiment specs, caching topology construction."""

    def __init__(self) -> None:
        self._topology_cache: Dict[Tuple[str, float], Tuple[Topology, PathSet]] = {}
        #: merged observability snapshot of the most recent :meth:`run_many`
        #: sweep (``None`` when no run in the sweep was instrumented)
        self.last_sweep_stats: Optional[dict] = None

    @staticmethod
    def aggregate_stats(runs: Sequence[ExperimentRun]) -> Optional[dict]:
        """Merge the runs' observability snapshots into one profile.

        Counters and phase aggregates sum across runs, histogram samples
        concatenate, gauges keep their maxima
        (:func:`repro.obs.merge_snapshots`); uninstrumented runs are
        skipped, and the merge is ``None`` when no run carried stats.  The
        merged snapshot is deterministic in everything except wall-clock
        phase timings, so a parallel sweep aggregates to the same counters
        as a serial one.
        """
        return merge_snapshots([run.result.stats for run in runs])

    # ------------------------------------------------------------------ #
    # building blocks
    # ------------------------------------------------------------------ #
    def topology_for(self, spec: ExperimentSpec) -> Tuple[Topology, PathSet]:
        """Build (or fetch from cache) the topology + path set of a spec."""
        key = (spec.topology, spec.capacity_scale, spec.fabric, spec.lazy_paths)
        if key not in self._topology_cache:
            if spec.topology == "testbed8":
                topo = build_testbed8(capacity_scale=spec.capacity_scale)
                pathset = testbed8_pathset(topo, lazy=spec.lazy_paths)
            elif spec.topology == "bso13":
                topo = build_bso13(capacity_scale=spec.capacity_scale)
                pathset = bso13_pathset(topo, lazy=spec.lazy_paths)
            elif spec.topology == "fabric":
                if spec.fabric is None:
                    raise ValueError('topology "fabric" requires a FabricSpec in spec.fabric')
                topo = build_fabric(spec.fabric, capacity_scale=spec.capacity_scale)
                pathset = fabric_pathset(topo, lazy=spec.lazy_paths)
            else:
                raise ValueError(f"unknown topology {spec.topology!r}")
            self._topology_cache[key] = (topo, pathset)
        return self._topology_cache[key]

    def router_factory_for(self, spec: ExperimentSpec, topology: Topology, pathset: PathSet):
        """Resolve the routing algorithm named by the spec."""
        if spec.router == "lcmp":
            return lcmp_router_factory(
                topology,
                pathset,
                config=spec.lcmp_config or LCMPConfig(),
                monitor_interval_s=spec.monitor_interval_s,
            )
        return make_router_factory(spec.router)

    def simulation_config_for(self, spec: ExperimentSpec) -> SimulationConfig:
        """Simulator tunables derived from the spec."""
        return SimulationConfig(
            update_interval_s=spec.update_interval_s,
            monitor_interval_s=spec.monitor_interval_s,
            fidelity_noise=spec.fidelity_noise,
            seed=spec.seed,
            vectorized=spec.vectorized,
            backend=spec.backend,
            instrumentation=spec.instrumentation,
        )

    def cc_factory_for(self, spec: ExperimentSpec):
        """Resolve the congestion control named by the spec.

        A spec carrying :attr:`~ExperimentSpec.cc_mix` gets a per-flow
        :class:`~repro.congestion_control.mix.MixedCCFactory` seeded from
        the spec (deterministic heterogeneous fleets); otherwise the
        uniform single-class factory of :attr:`~ExperimentSpec.cc`.
        """
        if spec.cc_mix is not None:
            return make_mixed_cc_factory(spec.cc_mix, seed=spec.seed)
        return make_cc_factory(spec.cc)

    def demands_for(self, spec: ExperimentSpec, topology: Topology, pathset: PathSet):
        """Generate the traffic matrix of a spec."""
        traffic = TrafficConfig(
            workload=spec.workload,
            load=spec.load,
            num_flows=spec.num_flows,
            pairs=spec.pairs,
            seed=spec.seed,
        )
        return TrafficGenerator(topology, pathset, traffic).generate()

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #
    def run(self, spec: ExperimentSpec) -> ExperimentRun:
        """Run one experiment end to end."""
        spec.validate()
        topology, pathset = self.topology_for(spec)
        demands = self.demands_for(spec, topology, pathset)
        config = self.simulation_config_for(spec)
        network = RuntimeNetwork(
            topology, pathset, self.router_factory_for(spec, topology, pathset), config
        )
        simulation = FluidSimulation(
            network,
            demands,
            self.cc_factory_for(spec),
            config,
            trace_links=spec.trace_links,
            scenario=spec.resolve_scenario(),
        )
        result = simulation.run()
        profile = SlowdownProfile.from_result(spec.name, result)
        return ExperimentRun(spec=spec, result=result, profile=profile)

    def run_many(
        self,
        specs: Sequence[ExperimentSpec],
        parallel: Optional[bool] = None,
        max_workers: Optional[int] = None,
    ) -> List[ExperimentRun]:
        """Run several specs, fanning out over a process pool.

        Results come back in spec order and are identical to a serial
        sweep: every stochastic component (traffic matrix, fidelity noise,
        surge generation) derives its RNG stream from the spec's own seed,
        so placement on workers cannot perturb anything
        (``tests/experiments/test_parallel_runner.py`` asserts this).

        Args:
            specs: the experiments to run.
            parallel: force parallel (True) or serial (False) execution;
                ``None`` picks parallel when there are at least two specs
                and more than one worker is available.  Specs that cannot
                be pickled (e.g. a scenario carrying a lambda) fall back
                to a serial sweep.
            max_workers: process-pool size; defaults to
                ``min(len(specs), cpu_count)``.

        Returns:
            One :class:`ExperimentRun` per spec, in order.  When any spec
            ran instrumented, the sweep's merged observability snapshot is
            left in :attr:`last_sweep_stats` (see :meth:`aggregate_stats`).
        """
        specs = list(specs)
        workers = max_workers if max_workers is not None else (os.cpu_count() or 1)
        workers = max(1, min(workers, len(specs)))
        if parallel is None:
            parallel = len(specs) > 1 and workers > 1
        if parallel and workers > 1:
            try:
                pickle.dumps(specs)
            except Exception:
                parallel = False
        if not parallel or workers <= 1:
            runs = [self.run(spec) for spec in specs]
        else:
            try:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    runs = list(pool.map(_run_spec_in_worker, specs))
            except (OSError, BrokenProcessPool):
                # no usable process pool in this environment (restricted
                # sandbox, missing semaphores, killed workers): degrade to
                # the serial sweep; errors raised *by a spec* propagate
                # unchanged
                runs = [self.run(spec) for spec in specs]
        self.last_sweep_stats = self.aggregate_stats(runs)
        return runs

    def run_router_comparison(
        self,
        base_spec: ExperimentSpec,
        routers: Sequence[str],
        lcmp_config: Optional[LCMPConfig] = None,
        parallel: Optional[bool] = None,
    ) -> Dict[str, ExperimentRun]:
        """Run the same scenario under several routing algorithms.

        Every run shares the traffic matrix (same workload seed) so the only
        varying factor is the routing decision, exactly as in the paper.
        The per-router runs are independent, so they fan out through
        :meth:`run_many`.
        """
        specs = [
            base_spec.with_overrides(
                name=router,
                router=router,
                lcmp_config=lcmp_config if router == "lcmp" else None,
            )
            for router in routers
        ]
        runs = self.run_many(specs, parallel=parallel)
        return {router: run for router, run in zip(routers, runs)}
