"""Per-figure experiment drivers.

One function per table/figure of the paper's evaluation; each assembles the
relevant :class:`~repro.experiments.configs.ExperimentSpec` matrix, runs it
through an :class:`~repro.experiments.runner.ExperimentRunner` and returns a
:class:`FigureResult` whose ``render()`` prints the same rows/series the
paper plots.  Every function takes ``num_flows`` so tests and benchmarks can
trade fidelity for runtime; the defaults regenerate publication-shaped data
in a few minutes on a laptop.

Figure index (see DESIGN.md for the full mapping):

* :func:`figure1`  — motivation: link utilisation + FCT slowdown (Fig. 1b/1c)
* :func:`figure5`  — 8-DC testbed, 3 loads, 4 routing schemes (Fig. 5)
* :func:`figure6`  — simulator-fidelity correlation (Fig. 6)
* :func:`figure7`  — 13-DC system-wide all-to-all (Fig. 7)
* :func:`figure8`  — DC1–DC13 case study (Fig. 8)
* :func:`figure9`  — workload sensitivity (Fig. 9)
* :func:`figure10` — congestion-control orthogonality (Fig. 10)
* :func:`figure11_ablation` / :func:`figure11_global_weights` /
  :func:`figure11_path_weights` / :func:`figure11_congestion_weights`
  — ablation and weight sensitivity (Fig. 11a–11d)
* :func:`section4_resources` — the §4 resource-cost accounting
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.fct_analysis import SlowdownProfile, reduction
from ..analysis.fidelity import FidelityResult, fidelity_study
from ..analysis.report import reduction_report, slowdown_table, utilization_report
from ..analysis.utilization import imbalance, utilization_table
from ..core import LCMPConfig
from ..core.resource_model import estimate as resource_estimate
from ..core.resource_model import per_new_flow_ops
from .configs import (
    ALL_ROUTERS,
    CASE_STUDY_PAIRS,
    DEFAULT_CC_MIX,
    LOADS,
    TESTBED_ENDPOINT_PAIRS,
    WORKLOAD_NAMES,
    ExperimentSpec,
)
from .runner import ExperimentRun, ExperimentRunner

__all__ = [
    "FigureResult",
    "figure1",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11_ablation",
    "figure11_global_weights",
    "figure11_path_weights",
    "figure11_congestion_weights",
    "section4_resources",
    "ALL_FIGURES",
]


@dataclass
class FigureResult:
    """Structured output of one figure driver.

    Attributes:
        figure: figure identifier, e.g. ``"fig5"``.
        description: one-line description of what the figure shows.
        groups: nested mapping ``{group label: {series label: profile}}`` —
            a group corresponds to one subplot (e.g. ``"30% load"``) and a
            series to one curve (e.g. ``"lcmp"``).
        tables: extra pre-rendered text tables (utilisation, correlations...).
        metrics: scalar metrics for programmatic assertions in benchmarks.
    """

    figure: str
    description: str
    groups: Dict[str, Dict[str, SlowdownProfile]] = field(default_factory=dict)
    tables: Dict[str, str] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Render the figure data as text (P50 and P99 tables per group)."""
        parts = [f"=== {self.figure}: {self.description} ==="]
        for group, series in self.groups.items():
            profiles = list(series.values())
            if not profiles:
                continue
            parts.append(f"-- {group} | P50 slowdown --")
            parts.append(slowdown_table(profiles, "p50"))
            parts.append(f"-- {group} | P99 slowdown --")
            parts.append(slowdown_table(profiles, "p99"))
        for title, table in self.tables.items():
            parts.append(f"-- {title} --")
            parts.append(table)
        if self.metrics:
            parts.append("-- metrics --")
            for key, value in sorted(self.metrics.items()):
                parts.append(f"{key} = {value:.4f}")
        return "\n".join(parts)

    def profile(self, group: str, series: str) -> SlowdownProfile:
        """Convenience accessor for one curve."""
        return self.groups[group][series]


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #
def _load_label(load: float) -> str:
    return f"{int(round(load * 100))}% load"


def _comparison_group(
    runner: ExperimentRunner,
    base: ExperimentSpec,
    routers: Sequence[str] = ALL_ROUTERS,
    lcmp_config: Optional[LCMPConfig] = None,
) -> Dict[str, ExperimentRun]:
    return runner.run_router_comparison(base, routers, lcmp_config=lcmp_config)


# --------------------------------------------------------------------- #
# E0 — Fig. 1: motivation
# --------------------------------------------------------------------- #
def figure1(
    num_flows: int = 1500,
    seed: int = 11,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Motivation experiment (Fig. 1b/1c): utilisation imbalance and FCT.

    WebSearch at 30 % load between DC1 and DC8 on the 8-DC topology under
    DCQCN, comparing LCMP against ECMP and UCMP.
    """
    runner = runner or ExperimentRunner()
    base = ExperimentSpec(
        name="fig1",
        topology="testbed8",
        workload="websearch",
        load=0.3,
        num_flows=num_flows,
        pairs=TESTBED_ENDPOINT_PAIRS,
        seed=seed,
        trace_links=True,
    )
    runs = _comparison_group(runner, base, routers=("lcmp", "ecmp", "ucmp"))

    result = FigureResult(
        figure="fig1",
        description="Motivation: per-link utilisation and FCT slowdown (8-DC, WebSearch, 30%)",
    )
    result.groups["30% load"] = {name: run.profile for name, run in runs.items()}

    utilisation_rows = {
        name: utilization_table(run.result, sources=["DC1"]) for name, run in runs.items()
    }
    result.tables["per-link utilisation (DC1 egress)"] = utilization_report(utilisation_rows)
    for name, rows in utilisation_rows.items():
        result.metrics[f"imbalance_{name}"] = imbalance(rows)
    for name, run in runs.items():
        result.metrics[f"p50_{name}"] = run.profile.overall_p50
        result.metrics[f"p99_{name}"] = run.profile.overall_p99
        # absolute FCT summary straight off the metrics-store column
        result.metrics[f"mean_fct_ms_{name}"] = float(
            run.result.store.fcts().mean() * 1e3
        )
    return result


# --------------------------------------------------------------------- #
# E1 — Fig. 5: testbed comparison
# --------------------------------------------------------------------- #
def figure5(
    num_flows: int = 2000,
    loads: Sequence[float] = LOADS,
    seed: int = 5,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Testbed comparison (Fig. 5): 8-DC, WebSearch, DCQCN, 3 loads, 4 schemes."""
    runner = runner or ExperimentRunner()
    result = FigureResult(
        figure="fig5",
        description="Median and tail FCT slowdown on the 8-DC testbed (WebSearch, DCQCN)",
    )
    for load in loads:
        base = ExperimentSpec(
            name="fig5",
            topology="testbed8",
            workload="websearch",
            load=load,
            num_flows=num_flows,
            pairs=TESTBED_ENDPOINT_PAIRS,
            seed=seed,
        )
        runs = _comparison_group(runner, base)
        group = _load_label(load)
        result.groups[group] = {name: run.profile for name, run in runs.items()}
        reductions = {
            name: reduction(runs["lcmp"].profile, run.profile)
            for name, run in runs.items()
            if name != "lcmp"
        }
        result.tables[f"LCMP reduction vs baselines ({group})"] = reduction_report(reductions)
        for name, vals in reductions.items():
            result.metrics[f"{group}_p50_reduction_vs_{name}"] = vals["p50"]
            result.metrics[f"{group}_p99_reduction_vs_{name}"] = vals["p99"]
    return result


# --------------------------------------------------------------------- #
# E1b — Fig. 6: simulator fidelity
# --------------------------------------------------------------------- #
def figure6(
    num_flows: int = 1500,
    seed: int = 6,
    testbed_noise: float = 0.08,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Simulator-fidelity study (Fig. 6).

    The same WebSearch/30 % scenario is measured under a clean "simulator"
    profile and a noisier, smaller-scale "testbed" profile (SoftRoCE +
    Mininet emulation); the per-size-bin P50/P99 slowdowns of the two are
    correlated.
    """
    runner = runner or ExperimentRunner()
    result = FigureResult(
        figure="fig6",
        description="Simulator fidelity: testbed-profile vs simulator-profile slowdown",
    )
    pairs_p50: List[Tuple[float, float]] = []
    pairs_p99: List[Tuple[float, float]] = []
    for router in ("lcmp", "ecmp", "ucmp"):
        simulator_spec = ExperimentSpec(
            name=f"{router}-simulator",
            router=router,
            topology="testbed8",
            load=0.3,
            num_flows=num_flows,
            pairs=TESTBED_ENDPOINT_PAIRS,
            seed=seed,
        )
        testbed_spec = simulator_spec.with_overrides(
            name=f"{router}-testbed",
            num_flows=max(200, num_flows // 3),
            fidelity_noise=testbed_noise,
            seed=seed + 1,
        )
        sim_run = runner.run(simulator_spec)
        testbed_run = runner.run(testbed_spec)
        result.groups[router] = {
            "simulator": sim_run.profile,
            "testbed": testbed_run.profile,
        }
        study: FidelityResult = fidelity_study(testbed_run.profile, sim_run.profile)
        pairs_p50.extend(study.pairs_p50)
        pairs_p99.extend(study.pairs_p99)
        result.metrics[f"pearson_p50_{router}"] = study.p50_correlation
        result.metrics[f"pearson_p99_{router}"] = study.p99_correlation

    from ..analysis.fidelity import pearson

    result.metrics["pearson_p50"] = pearson(
        [p[0] for p in pairs_p50], [p[1] for p in pairs_p50]
    )
    result.metrics["pearson_p99"] = pearson(
        [p[0] for p in pairs_p99], [p[1] for p in pairs_p99]
    )
    return result


# --------------------------------------------------------------------- #
# E2/E3 — Fig. 7 and Fig. 8: 13-DC simulations
# --------------------------------------------------------------------- #
def figure7(
    num_flows: int = 2500,
    loads: Sequence[float] = LOADS,
    seed: int = 7,
    runner: Optional[ExperimentRunner] = None,
    _keep_runs: Optional[Dict[str, Dict[str, ExperimentRun]]] = None,
) -> FigureResult:
    """System-wide validation (Fig. 7): 13-DC all-to-all, 3 loads, 4 schemes."""
    runner = runner or ExperimentRunner()
    result = FigureResult(
        figure="fig7",
        description="System-wide FCT slowdown on the 13-DC topology (all-to-all, WebSearch)",
    )
    for load in loads:
        base = ExperimentSpec(
            name="fig7",
            topology="bso13",
            workload="websearch",
            load=load,
            num_flows=num_flows,
            pairs="all_to_all",
            seed=seed,
        )
        runs = _comparison_group(runner, base)
        group = _load_label(load)
        result.groups[group] = {name: run.profile for name, run in runs.items()}
        if _keep_runs is not None:
            _keep_runs[group] = runs
        reductions = {
            name: reduction(runs["lcmp"].profile, run.profile)
            for name, run in runs.items()
            if name != "lcmp"
        }
        result.tables[f"LCMP reduction vs baselines ({group})"] = reduction_report(reductions)
        for name, vals in reductions.items():
            result.metrics[f"{group}_p99_reduction_vs_{name}"] = vals["p99"]
    return result


def figure8(
    num_flows: int = 2500,
    loads: Sequence[float] = LOADS,
    seed: int = 7,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """DC-pair case study (Fig. 8): flows between DC1 and DC13 on the 13-DC topology.

    The paper filters the Fig. 7 runs down to the representative multi-path
    pair; we do the same by re-running the identical specs and restricting
    the analysis to that pair's flows.
    """
    runner = runner or ExperimentRunner()
    kept: Dict[str, Dict[str, ExperimentRun]] = {}
    figure7(num_flows=num_flows, loads=loads, seed=seed, runner=runner, _keep_runs=kept)

    result = FigureResult(
        figure="fig8",
        description="FCT slowdown for flows between DC1 and DC13 (13-DC topology)",
    )
    src, dst = CASE_STUDY_PAIRS[0]
    for group, runs in kept.items():
        series = {}
        for name, run in runs.items():
            series[name] = run.pair_profile(src, dst, bidirectional=True)
        result.groups[group] = series
        reductions = {
            name: reduction(series["lcmp"], profile)
            for name, profile in series.items()
            if name != "lcmp"
        }
        result.tables[f"LCMP reduction vs baselines ({group})"] = reduction_report(reductions)
        for name, vals in reductions.items():
            result.metrics[f"{group}_p50_reduction_vs_{name}"] = vals["p50"]
            result.metrics[f"{group}_p99_reduction_vs_{name}"] = vals["p99"]
    return result


# --------------------------------------------------------------------- #
# E4 — Fig. 9: workload sensitivity
# --------------------------------------------------------------------- #
def figure9(
    num_flows: int = 2000,
    workloads: Sequence[str] = WORKLOAD_NAMES,
    seed: int = 9,
    runner: Optional[ExperimentRunner] = None,
) -> FigureResult:
    """Workload sensitivity (Fig. 9): WebSearch / AliStorage / FB Hadoop at 30 %."""
    runner = runner or ExperimentRunner()
    result = FigureResult(
        figure="fig9",
        description="FCT slowdown for three workloads (8-DC, 30% load, DCQCN)",
    )
    for workload in workloads:
        base = ExperimentSpec(
            name="fig9",
            topology="testbed8",
            workload=workload,
            load=0.3,
            num_flows=num_flows,
            pairs=TESTBED_ENDPOINT_PAIRS,
            seed=seed,
        )
        runs = _comparison_group(runner, base, routers=("lcmp", "ecmp", "ucmp"))
        result.groups[workload] = {name: run.profile for name, run in runs.items()}
        for baseline in ("ecmp", "ucmp"):
            vals = reduction(runs["lcmp"].profile, runs[baseline].profile)
            result.metrics[f"{workload}_p50_reduction_vs_{baseline}"] = vals["p50"]
            result.metrics[f"{workload}_p99_reduction_vs_{baseline}"] = vals["p99"]
    return result


# --------------------------------------------------------------------- #
# E5 — Fig. 10: congestion-control orthogonality
# --------------------------------------------------------------------- #
def figure10(
    num_flows: int = 2000,
    ccs: Sequence[str] = ("hpcc", "timely", "dctcp"),
    seed: int = 10,
    runner: Optional[ExperimentRunner] = None,
    include_mixed: bool = True,
) -> FigureResult:
    """CC orthogonality (Fig. 10): HPCC / TIMELY / DCTCP under WebSearch, 30 %.

    With ``include_mixed`` (the default) a fourth group runs the canned
    heterogeneous fleet (:data:`~repro.experiments.configs.DEFAULT_CC_MIX`,
    80 % DCQCN + 20 % HPCC with deterministic per-seed assignment) — the
    orthogonality claim should survive a datacenter mid-CC-migration too.
    """
    runner = runner or ExperimentRunner()
    result = FigureResult(
        figure="fig10",
        description="FCT slowdown under different RDMA congestion controls (8-DC, 30%)",
    )
    groups = [(cc, {"cc": cc}) for cc in ccs]
    if include_mixed:
        groups.append(("mixed", {"cc_mix": DEFAULT_CC_MIX}))
    for label, cc_fields in groups:
        base = ExperimentSpec(
            name="fig10",
            topology="testbed8",
            workload="websearch",
            load=0.3,
            num_flows=num_flows,
            pairs=TESTBED_ENDPOINT_PAIRS,
            seed=seed,
            **cc_fields,
        )
        runs = _comparison_group(runner, base, routers=("lcmp", "ecmp", "ucmp"))
        result.groups[label] = {name: run.profile for name, run in runs.items()}
        for baseline in ("ecmp", "ucmp"):
            vals = reduction(runs["lcmp"].profile, runs[baseline].profile)
            result.metrics[f"{label}_p50_reduction_vs_{baseline}"] = vals["p50"]
            result.metrics[f"{label}_p99_reduction_vs_{baseline}"] = vals["p99"]
    return result


# --------------------------------------------------------------------- #
# E6 — Fig. 11: ablation and weight sensitivity
# --------------------------------------------------------------------- #
def _weight_sweep(
    figure: str,
    description: str,
    variants: Dict[str, LCMPConfig],
    num_flows: int,
    seed: int,
    runner: Optional[ExperimentRunner],
    load: float = 0.3,
) -> FigureResult:
    runner = runner or ExperimentRunner()
    result = FigureResult(figure=figure, description=description)
    series: Dict[str, SlowdownProfile] = {}
    for label, lcmp_config in variants.items():
        spec = ExperimentSpec(
            name=label,
            topology="testbed8",
            router="lcmp",
            workload="websearch",
            load=load,
            num_flows=num_flows,
            pairs=TESTBED_ENDPOINT_PAIRS,
            seed=seed,
            lcmp_config=lcmp_config,
        )
        run = runner.run(spec)
        series[label] = run.profile
        result.metrics[f"p50_{label}"] = run.profile.overall_p50
        result.metrics[f"p99_{label}"] = run.profile.overall_p99
    result.groups[_load_label(load)] = series
    return result


def figure11_ablation(
    num_flows: int = 2000, seed: int = 111, runner: Optional[ExperimentRunner] = None
) -> FigureResult:
    """Ablation (Fig. 11a): full LCMP vs rm-alpha (α=0) vs rm-beta (β=0)."""
    base = LCMPConfig()
    variants = {
        "full": base,
        "rm-alpha": base.ablate_path_quality(),
        "rm-beta": base.ablate_congestion(),
    }
    return _weight_sweep(
        "fig11a",
        "Ablation: removing the path-quality or congestion term",
        variants,
        num_flows,
        seed,
        runner,
    )


def figure11_global_weights(
    num_flows: int = 2000, seed: int = 112, runner: Optional[ExperimentRunner] = None
) -> FigureResult:
    """Global fusion-weight sweep (Fig. 11b): (α, β) in {(3,1), (1,1), (1,3)}."""
    base = LCMPConfig()
    variants = {
        "alpha:beta=3:1": base.with_overrides(alpha=3, beta=1),
        "alpha:beta=1:1": base.with_overrides(alpha=1, beta=1),
        "alpha:beta=1:3": base.with_overrides(alpha=1, beta=3),
    }
    return _weight_sweep(
        "fig11b",
        "Global fusion weights (alpha, beta)",
        variants,
        num_flows,
        seed,
        runner,
    )


def figure11_path_weights(
    num_flows: int = 2000, seed: int = 113, runner: Optional[ExperimentRunner] = None
) -> FigureResult:
    """Path-quality weight sweep (Fig. 11c): (w_dl, w_lc) in {(3,1), (1,1), (1,3)}."""
    base = LCMPConfig()
    variants = {
        "dl:lc=3:1": base.with_overrides(w_dl=3, w_lc=1),
        "dl:lc=1:1": base.with_overrides(w_dl=1, w_lc=1),
        "dl:lc=1:3": base.with_overrides(w_dl=1, w_lc=3),
    }
    return _weight_sweep(
        "fig11c",
        "Path-quality weights (w_dl, w_lc)",
        variants,
        num_flows,
        seed,
        runner,
    )


def figure11_congestion_weights(
    num_flows: int = 2000, seed: int = 114, runner: Optional[ExperimentRunner] = None
) -> FigureResult:
    """Congestion weight sweep (Fig. 11d): (w_ql, w_tl, w_dp) allocations."""
    base = LCMPConfig()
    variants = {
        "ql:tl:dp=2:1:1": base.with_overrides(w_ql=2, w_tl=1, w_dp=1),
        "ql:tl:dp=1:2:1": base.with_overrides(w_ql=1, w_tl=2, w_dp=1),
        "ql:tl:dp=1:1:2": base.with_overrides(w_ql=1, w_tl=1, w_dp=2),
    }
    return _weight_sweep(
        "fig11d",
        "Congestion-cost weights (w_ql, w_tl, w_dp)",
        variants,
        num_flows,
        seed,
        runner,
    )


# --------------------------------------------------------------------- #
# §4 — resource accounting
# --------------------------------------------------------------------- #
def section4_resources() -> FigureResult:
    """Resource-cost accounting (paper §4): memory and per-decision compute."""
    est = resource_estimate(num_ports=48, flow_cache_entries=50_000, num_paths=10_000)
    result = FigureResult(
        figure="sec4",
        description="Resource cost: per-port/per-flow memory and per-new-flow compute",
    )
    result.metrics = {
        "per_port_bytes": 24.0,
        "per_flow_bytes": 20.0,
        "port_cache_bytes": float(est.port_bytes),
        "flow_cache_bytes": float(est.flow_bytes),
        "total_megabytes": est.total_megabytes,
        "ops_per_new_flow_m6": float(per_new_flow_ops(6)),
    }
    rows = [
        ["per-port registers", "24 B"],
        ["per-flow cache entry", "20 B"],
        ["48-port register cache", f"{est.port_bytes} B"],
        ["50k-entry flow cache", f"{est.flow_bytes / 1e6:.2f} MB"],
        ["control tables (10k paths)", f"{est.table_bytes / 1e3:.1f} kB"],
        ["total working set", f"{est.total_megabytes:.2f} MB"],
        ["integer ops per new flow (m=6)", str(per_new_flow_ops(6))],
    ]
    from ..analysis.report import format_table

    result.tables["resource accounting"] = format_table(["item", "value"], rows)
    return result


#: registry used by the benchmark harness and the ``examples`` scripts
ALL_FIGURES = {
    "fig1": figure1,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11a": figure11_ablation,
    "fig11b": figure11_global_weights,
    "fig11c": figure11_path_weights,
    "fig11d": figure11_congestion_weights,
    "sec4": section4_resources,
}
