"""Experiment specifications for every figure of the paper's evaluation.

An :class:`ExperimentSpec` fully describes one simulation run (topology,
workload, load, congestion control, routing algorithm, seeds and simulator
tunables); the per-figure helpers at the bottom enumerate the runs each paper
figure needs.  The experiment harness runs the fluid simulator in a
time-scaled regime (``capacity_scale``, default 1/10 of the provisioned
rates) so that a few thousand Python-simulated flows sustain the paper's
30/50/80 % loads over several seconds — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..core.config import LCMPConfig
from ..topology.generators import FabricSpec

__all__ = [
    "DEFAULT_CAPACITY_SCALE",
    "LOADS",
    "BASELINE_ROUTERS",
    "ALL_ROUTERS",
    "WORKLOAD_NAMES",
    "CC_NAMES",
    "DEFAULT_CC_MIX",
    "TESTBED_ENDPOINT_PAIRS",
    "CASE_STUDY_PAIRS",
    "ExperimentSpec",
    "mixed_fleet_spec",
]

#: capacity scale used by all experiment specs (see DESIGN.md)
DEFAULT_CAPACITY_SCALE = 0.1
#: the three offered loads of the evaluation
LOADS: Tuple[float, ...] = (0.3, 0.5, 0.8)
#: baselines the paper compares against
BASELINE_ROUTERS: Tuple[str, ...] = ("ecmp", "ucmp", "redte")
#: every routing algorithm including LCMP
ALL_ROUTERS: Tuple[str, ...] = ("lcmp",) + BASELINE_ROUTERS
#: the three workloads of §6.3.1
WORKLOAD_NAMES: Tuple[str, ...] = ("websearch", "alistorage", "fbhadoop")
#: the congestion controls of §6.3.2 (DCQCN is the default everywhere)
CC_NAMES: Tuple[str, ...] = ("dcqcn", "hpcc", "timely", "dctcp")
#: canned heterogeneous fleet: a datacenter mid-migration from DCQCN to
#: HPCC (per-flow assignment, deterministic in the spec's seed)
DEFAULT_CC_MIX: Tuple[Tuple[str, float], ...] = (("dcqcn", 0.8), ("hpcc", 0.2))
#: all-to-all traffic between the testbed endpoints DC1 and DC8
TESTBED_ENDPOINT_PAIRS: Tuple[Tuple[str, str], ...] = (("DC1", "DC8"), ("DC8", "DC1"))
#: the representative multi-path pair of the 13-DC case study (§6.2.2)
CASE_STUDY_PAIRS: Tuple[Tuple[str, str], ...] = (("DC1", "DC13"), ("DC13", "DC1"))


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully described simulation run.

    Attributes:
        name: label used in reports.
        topology: ``"testbed8"``, ``"bso13"``, or ``"fabric"`` (requires
            :attr:`fabric`).
        fabric: :class:`~repro.topology.generators.FabricSpec` describing
            a generated continent-scale fabric; only consulted when
            :attr:`topology` is ``"fabric"``.
        lazy_paths: materialize candidate paths on first request (the
            default) or eagerly for every pair at construction time.
            Routing decisions are bit-identical either way.
        router: routing algorithm name (``"lcmp"``, ``"ecmp"``, ``"ucmp"``,
            ``"wcmp"``, ``"redte"``).
        workload: flow-size distribution name.
        load: offered load fraction (0.3 / 0.5 / 0.8).
        cc: congestion-control name.
        cc_mix: optional heterogeneous fleet — ``((name, weight), ...)``
            pairs (e.g. :data:`DEFAULT_CC_MIX`); each flow's algorithm is
            assigned deterministically from the spec's seed and the flow
            id, overriding :attr:`cc`.  ``None`` keeps the uniform fleet.
        num_flows: number of flows to generate.
        pairs: ``"all_to_all"`` or an explicit tuple of ordered DC pairs.
        lcmp_config: LCMP weight configuration (ignored by baselines).
        scenario: optional dynamic scenario the run executes under — a
            :class:`~repro.scenarios.events.Scenario` instance or the name
            of a canned one (see :func:`repro.scenarios.scenario_names`);
            ``None`` runs the static workload exactly as before.
        capacity_scale: time-scaling factor for the fluid simulator.
        seed: RNG seed shared by traffic generation and the simulator.
        update_interval_s / monitor_interval_s: simulator cadences.
        fidelity_noise: measurement-noise sigma (testbed profile of Fig. 6).
        trace_links: record per-link time series (needed by Fig. 1b).
        vectorized: run the simulator's numpy update core (default) or the
            pure-Python scalar reference path — both produce bit-identical
            results (see DESIGN.md, "Vectorized core").
        backend: array backend the vectorized cores execute on —
            ``"numpy"`` (reference), ``"numpy_fused"`` (bit-identical fused
            kernels) or ``"torch"`` (device-resident, equivalent within a
            documented tolerance; requires torch).  See DESIGN.md, "Array
            backends & kernels".
        instrumentation: enable the simulator's observability plane for
            this run; the run's ``result.stats`` then carries the phase
            timer / counter snapshot, and sweeps aggregate the per-run
            snapshots (see DESIGN.md, "Observability plane").  Numerics are
            unaffected either way.
    """

    name: str
    topology: str = "testbed8"
    fabric: Optional[FabricSpec] = None
    lazy_paths: bool = True
    router: str = "lcmp"
    workload: str = "websearch"
    load: float = 0.3
    cc: str = "dcqcn"
    cc_mix: object = None
    num_flows: int = 2000
    pairs: object = TESTBED_ENDPOINT_PAIRS
    lcmp_config: Optional[LCMPConfig] = None
    scenario: object = None
    capacity_scale: float = DEFAULT_CAPACITY_SCALE
    seed: int = 1
    update_interval_s: float = 1e-3
    monitor_interval_s: float = 1e-3
    fidelity_noise: float = 0.0
    trace_links: bool = False
    vectorized: bool = True
    backend: str = "numpy"
    instrumentation: bool = False

    def with_overrides(self, **kwargs) -> "ExperimentSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def resolve_scenario(self):
        """The :class:`~repro.scenarios.events.Scenario` to run under.

        A string is looked up in the canned-scenario registry; a scenario
        instance passes through; ``None`` means a static run.

        Raises:
            ValueError: for a name the registry does not know.
        """
        if self.scenario is None or not isinstance(self.scenario, str):
            return self.scenario
        from ..scenarios.library import get_scenario

        try:
            return get_scenario(self.scenario)
        except KeyError as exc:
            raise ValueError(exc.args[0]) from None

    def validate(self) -> None:
        """Check the spec names known components.

        Raises:
            ValueError: for unknown topology names or non-positive loads.
        """
        if self.topology == "fabric":
            if self.fabric is None:
                raise ValueError('topology "fabric" requires a FabricSpec in spec.fabric')
            self.fabric.validate()
        elif self.topology not in ("testbed8", "bso13"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.load <= 0:
            raise ValueError("load must be positive")
        if self.num_flows <= 0:
            raise ValueError("num_flows must be positive")
        if self.capacity_scale <= 0:
            raise ValueError("capacity_scale must be positive")
        if self.cc_mix is not None:
            from ..congestion_control import available_ccs

            # accept the same shapes make_mixed_cc_factory does: a mapping
            # {name: weight} or a sequence of (name, weight) pairs
            mix = self.cc_mix
            components = (
                tuple(mix.items()) if hasattr(mix, "items") else tuple(mix)
            )
            if not components:
                raise ValueError("cc_mix must name at least one component")
            known = set(available_ccs())
            for name, weight in components:
                if isinstance(name, str) and name not in known:
                    raise ValueError(
                        f"unknown congestion control {name!r} in cc_mix; "
                        f"available: {sorted(known)}"
                    )
                if float(weight) <= 0:
                    raise ValueError("cc_mix weights must be positive")
        if isinstance(self.scenario, str):
            self.resolve_scenario()


def mixed_fleet_spec(name: str = "mixed-fleet", **overrides) -> ExperimentSpec:
    """A canned heterogeneous-CC experiment (80 % DCQCN + 20 % HPCC).

    The per-flow assignment is deterministic in the spec's seed, so the
    same spec reproduces the same fleet on every simulator core and in
    every worker of a parallel sweep.  Any :class:`ExperimentSpec` field
    can be overridden::

        spec = mixed_fleet_spec(load=0.5, num_flows=1000, router="lcmp")
    """
    overrides.setdefault("cc_mix", DEFAULT_CC_MIX)
    return ExperimentSpec(name=name, **overrides)
