"""repro — a Python reproduction of LCMP (EuroSys 2026).

LCMP is a distributed, long-haul, cost-aware multi-path routing framework for
inter-datacenter RDMA networks.  This package reimplements the full system in
Python: the LCMP switch pipeline (:mod:`repro.core`), the fluid flow-level
network simulator it is evaluated on (:mod:`repro.simulator`), the evaluation
topologies (:mod:`repro.topology`), RDMA congestion-control models
(:mod:`repro.congestion_control`), baseline routing schemes
(:mod:`repro.routing`), workload generators (:mod:`repro.workloads`),
analysis tools (:mod:`repro.analysis`) and the per-figure experiment harness
(:mod:`repro.experiments`).

Quickstart::

    from repro.experiments import ExperimentRunner, ExperimentSpec

    runner = ExperimentRunner()
    run = runner.run(ExperimentSpec(name="demo", router="lcmp", num_flows=500))
    print(run.profile.overall_p50, run.profile.overall_p99)
"""

from . import analysis, congestion_control, core, experiments, routing, scenarios, simulator, topology, workloads
from .core import LCMPConfig, LCMPRouter
from .experiments import ExperimentRunner, ExperimentSpec
from .scenarios import Scenario

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "congestion_control",
    "core",
    "experiments",
    "routing",
    "scenarios",
    "simulator",
    "topology",
    "workloads",
    "LCMPConfig",
    "LCMPRouter",
    "ExperimentRunner",
    "ExperimentSpec",
    "Scenario",
    "__version__",
]
