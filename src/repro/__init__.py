"""repro — a Python reproduction of LCMP (EuroSys 2026).

LCMP is a distributed, long-haul, cost-aware multi-path routing framework for
inter-datacenter RDMA networks.  This package reimplements the full system in
Python: the LCMP switch pipeline (:mod:`repro.core`), the fluid flow-level
network simulator it is evaluated on (:mod:`repro.simulator`), the evaluation
topologies (:mod:`repro.topology`), RDMA congestion-control models
(:mod:`repro.congestion_control`), baseline routing schemes
(:mod:`repro.routing`), workload generators (:mod:`repro.workloads`),
analysis tools (:mod:`repro.analysis`) and the per-figure experiment harness
(:mod:`repro.experiments`).

Quickstart (see README.md for install, examples and the benchmark
suite)::

    from repro.experiments import ExperimentRunner, ExperimentSpec

    runner = ExperimentRunner()
    run = runner.run(ExperimentSpec(name="demo", router="lcmp", num_flows=500))
    print(run.profile.overall_p50, run.profile.overall_p99)

The two public entry points beyond single runs:

* :mod:`repro.experiments.runner` — parallel, deterministic sweeps
  (``runner.run_many(specs)``, ``runner.run_router_comparison(...)``);
* :mod:`repro.scenarios.library` — the canned dynamic-scenario registry
  (``ExperimentSpec(scenario="single-link-cut")``), surfaced here as
  :func:`get_scenario` / :func:`scenario_names`.
"""

from . import analysis, congestion_control, core, experiments, routing, scenarios, simulator, topology, workloads
from .core import LCMPConfig, LCMPRouter
from .experiments import ExperimentRunner, ExperimentSpec
from .scenarios import Scenario
from .scenarios.library import get_scenario, scenario_names

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "congestion_control",
    "core",
    "experiments",
    "routing",
    "scenarios",
    "simulator",
    "topology",
    "workloads",
    "LCMPConfig",
    "LCMPRouter",
    "ExperimentRunner",
    "ExperimentSpec",
    "Scenario",
    "get_scenario",
    "scenario_names",
    "__version__",
]
