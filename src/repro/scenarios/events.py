"""Declarative scenario events and timelines.

A :class:`Scenario` is a named, immutable timeline of
:class:`ScenarioEvent` objects — link failures and recoveries, capacity
degradations, traffic surges and drains, whole-DC maintenance windows.  The
timeline is pure data: nothing here touches the simulator.  The
:class:`~repro.scenarios.injector.ScenarioInjector` schedules the events on
the simulation engine's heap and applies them to the runtime network
mid-run, which is what finally drives the paper's data-plane fast-failover
machinery (lazy flow-cache invalidation, §3.4) from inside the simulator
instead of from hand-written test scaffolding.

Event semantics:

* :class:`LinkDown` / :class:`LinkUp` — fail/recover an inter-DC link
  (bidirectionally by default, matching a fiber cut).
* :class:`CapacityChange` — scale a link's capacity relative to its
  provisioned rate (brownouts, partial LAG failures); ``factor=1`` restores.
* :class:`TrafficSurge` — inject an extra open-loop Poisson flow batch
  starting at the event time (diurnal peaks, replication bursts).
* :class:`TrafficDrain` — cancel a fraction of the not-yet-arrived demands
  matching a DC filter (upstream throttling, tenant migration).
* :class:`DCMaintenance` — take every inter-DC link adjacent to one DC down
  for a window (rolling maintenance drains).
* :class:`SRLGFailure` — one named conduit/cable fails a *set* of links
  atomically (a shared-risk link group), with optional staggered per-link
  repair.
* :class:`RegionalPowerEvent` — drop every DC matching a region/tier
  filter; DCs with sufficient power redundancy ride through with degraded
  capacity instead of blacking out.
* :class:`MaintenanceCalendar` — a recurring :class:`DCMaintenance`
  schedule, compiled to a flat timeline of windows at injection time.

Coincident timestamps
---------------------

The engine heap orders same-time events by scheduling sequence number
(FIFO).  The injector is installed before the run schedules workload
arrivals and the periodic ticks, so when several things share one float
timestamp the deterministic order is:

1. scenario events, in compiled-timeline order (so a ``LinkDown`` listed
   before a ``LinkUp`` at the same instant nets to *down then up* — the
   port ends the instant up, in-flight disruption accounting still runs);
2. workload flow arrivals (including surge-injected arrivals);
3. the periodic monitor, rate-update and gc ticks.

The batched-arrival control plane preserves this order by deferring any
arrival whose timestamp exactly equals a scheduled scenario instant (see
:meth:`~repro.scenarios.injector.ScenarioInjector.scheduled_event_times`).
This ordering is locked in by ``tests/scenarios/fuzz/test_event_ordering.py``
across all four simulation cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Tuple

from ..topology.graph import power_redundancy_rank

__all__ = [
    "ScenarioEvent",
    "LinkEvent",
    "LinkDown",
    "LinkUp",
    "CapacityChange",
    "TrafficSurge",
    "TrafficDrain",
    "DCMaintenance",
    "SRLGFailure",
    "RegionalPowerEvent",
    "MaintenanceCalendar",
    "Scenario",
]

#: multiplicative hash constant used for deterministic fractional draining
_GOLDEN = 0x9E3779B1


@dataclass(frozen=True)
class ScenarioEvent:
    """Base class: something that happens at one simulated instant."""

    time_s: float
    kind: ClassVar[str] = "event"

    def validate(self, topology) -> None:
        """Check the event against a topology.

        Raises:
            ValueError: when the event is malformed for ``topology``.
        """
        if self.time_s < 0:
            raise ValueError(f"{self.kind}: time_s must be non-negative")

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"t={self.time_s:.3f}s {self.kind}"

    def compile(self) -> Tuple["ScenarioEvent", ...]:
        """Expand this event into concrete timeline events.

        Most events represent themselves; recurring events
        (:class:`MaintenanceCalendar`) override this to expand into their
        occurrences.  :meth:`Scenario.compiled_events` flattens the result.
        """
        return (self,)


def _require_link(topology, src: str, dst: str, kind: str) -> None:
    keys = {spec.key for spec in topology.inter_dc_links()}
    if (src, dst) not in keys:
        raise ValueError(f"{kind}: no inter-DC link {src!r}->{dst!r} in topology {topology.name!r}")


@dataclass(frozen=True)
class LinkEvent(ScenarioEvent):
    """Shared shape of events targeting one (optionally bidirectional) link."""

    src: str = ""
    dst: str = ""
    bidirectional: bool = True

    def validate(self, topology) -> None:
        super().validate(topology)
        _require_link(topology, self.src, self.dst, self.kind)
        if self.bidirectional:
            _require_link(topology, self.dst, self.src, self.kind)

    def describe(self) -> str:
        arrow = "<->" if self.bidirectional else "->"
        return f"t={self.time_s:.3f}s {self.kind} {self.src}{arrow}{self.dst}"


@dataclass(frozen=True)
class LinkDown(LinkEvent):
    """Fail the inter-DC link ``src -> dst`` (both directions by default).

    Down-causes are reference-counted on the runtime link: each
    :class:`LinkDown` adds one cause and pairs with one :class:`LinkUp`,
    so a cut that overlaps a :class:`DCMaintenance` window on the same
    link keeps the port down until *both* causes are cleared.
    """

    kind: ClassVar[str] = "link-down"

    def apply(self, network, now: float = 0.0) -> None:
        """Take the port(s) down on the runtime network."""
        network.fail_link(self.src, self.dst)
        if self.bidirectional:
            network.fail_link(self.dst, self.src)

    def affected_link_keys(self, network) -> Tuple[Tuple[str, str], ...]:
        """Directed (src, dst) keys this event takes down."""
        if self.bidirectional:
            return ((self.src, self.dst), (self.dst, self.src))
        return ((self.src, self.dst),)


@dataclass(frozen=True)
class LinkUp(LinkEvent):
    """Recover a previously failed inter-DC link.

    Removes one down-cause; the port only comes back up once no other
    cause (another cut, an open maintenance window) remains.
    """

    kind: ClassVar[str] = "link-up"

    def apply(self, network, now: float = 0.0) -> None:
        """Bring the port(s) back up."""
        network.recover_link(self.src, self.dst)
        if self.bidirectional:
            network.recover_link(self.dst, self.src)


@dataclass(frozen=True)
class CapacityChange(LinkEvent):
    """Scale a link's capacity to ``factor`` x its provisioned rate.

    Models brownouts (optical degradation, partial LAG-member failures):
    the port stays up but drains slower, so congestion-aware routers shift
    load away while oblivious ones keep hashing onto it.  ``factor=1``
    restores the provisioned rate; use :class:`LinkDown` for a full outage.
    """

    factor: float = 1.0
    kind: ClassVar[str] = "capacity-change"

    def validate(self, topology) -> None:
        super().validate(topology)
        if self.factor <= 0:
            raise ValueError(f"{self.kind}: factor must be positive (use LinkDown for an outage)")

    def apply(self, network, now: float = 0.0) -> None:
        """Apply the capacity factor to the runtime link(s)."""
        network.link(self.src, self.dst).set_capacity_factor(self.factor, now)
        if self.bidirectional:
            network.link(self.dst, self.src).set_capacity_factor(self.factor, now)

    def describe(self) -> str:
        return super().describe() + f" x{self.factor:g}"


@dataclass(frozen=True)
class TrafficSurge(ScenarioEvent):
    """Inject an extra Poisson flow batch starting at the event time.

    The surge is generated deterministically at scenario-install time (its
    own seed, flow ids offset far above the base workload's) and its
    arrivals are scheduled on the engine heap like any other demand, so a
    surge composes with the base traffic matrix without perturbing it.

    Exactly one of ``num_flows`` and ``duration_s`` must be given: with
    ``duration_s`` the flow count is derived from the surge load so the
    batch spans roughly that long.
    """

    pairs: Tuple[Tuple[str, str], ...] = ()
    load: float = 0.3
    num_flows: Optional[int] = None
    duration_s: Optional[float] = None
    workload: str = "websearch"
    seed: int = 4242
    kind: ClassVar[str] = "traffic-surge"

    def validate(self, topology) -> None:
        super().validate(topology)
        if not self.pairs:
            raise ValueError(f"{self.kind}: needs at least one (src, dst) DC pair")
        dcs = set(topology.dcs)
        for src, dst in self.pairs:
            if src not in dcs or dst not in dcs:
                raise ValueError(f"{self.kind}: unknown DC in pair ({src!r}, {dst!r})")
            if src == dst:
                raise ValueError(f"{self.kind}: surge pairs must connect distinct DCs")
        if self.load <= 0:
            raise ValueError(f"{self.kind}: load must be positive")
        if (self.num_flows is None) == (self.duration_s is None):
            raise ValueError(f"{self.kind}: give exactly one of num_flows / duration_s")
        if self.num_flows is not None and self.num_flows <= 0:
            raise ValueError(f"{self.kind}: num_flows must be positive")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError(f"{self.kind}: duration_s must be positive")

    def describe(self) -> str:
        span = (
            f"{self.num_flows} flows" if self.num_flows is not None
            else f"~{self.duration_s:g}s"
        )
        return f"t={self.time_s:.3f}s {self.kind} load={self.load:g} ({span})"


@dataclass(frozen=True)
class TrafficDrain(ScenarioEvent):
    """Cancel a fraction of the not-yet-arrived demands matching a filter.

    ``src_dc`` / ``dst_dc`` restrict which pending demands are drained
    (``None`` matches any); ``fraction`` selects a deterministic hash-based
    subset so repeated runs drain the same flows.
    """

    src_dc: Optional[str] = None
    dst_dc: Optional[str] = None
    fraction: float = 1.0
    kind: ClassVar[str] = "traffic-drain"

    def validate(self, topology) -> None:
        super().validate(topology)
        if not 0 < self.fraction <= 1.0:
            raise ValueError(f"{self.kind}: fraction must be in (0, 1]")
        dcs = set(topology.dcs)
        for name in (self.src_dc, self.dst_dc):
            if name is not None and name not in dcs:
                raise ValueError(f"{self.kind}: unknown DC {name!r}")

    def matches(self, demand) -> bool:
        """Whether a pending demand is drained by this event."""
        if self.src_dc is not None and demand.src_dc != self.src_dc:
            return False
        if self.dst_dc is not None and demand.dst_dc != self.dst_dc:
            return False
        if self.fraction >= 1.0:
            return True
        bucket = ((demand.flow_id * _GOLDEN) & 0xFFFFFFFF) / float(1 << 32)
        return bucket < self.fraction

    def describe(self) -> str:
        scope = f"{self.src_dc or '*'}->{self.dst_dc or '*'}"
        return f"t={self.time_s:.3f}s {self.kind} {scope} ({self.fraction:.0%})"


@dataclass(frozen=True)
class DCMaintenance(ScenarioEvent):
    """Take every inter-DC link adjacent to ``dc`` down for a window.

    Models a maintenance drain of one datacenter: all its DCI ports go dark
    at ``time_s`` and return at ``time_s + duration_s``.  In-flight flows
    relayed through the DC are disrupted and must fail over; flows sourced
    or sunk there are stranded until the window ends (or are failed once the
    scenario's stranded timeout expires).
    """

    dc: str = ""
    duration_s: float = 0.0
    kind: ClassVar[str] = "dc-maintenance"

    def validate(self, topology) -> None:
        super().validate(topology)
        if self.dc not in set(topology.dcs):
            raise ValueError(f"{self.kind}: unknown DC {self.dc!r}")
        if self.duration_s <= 0:
            raise ValueError(f"{self.kind}: duration_s must be positive")

    def _adjacent_links(self, network):
        return [
            link
            for link in network.inter_dc_links
            if self.dc in (link.spec.src, link.spec.dst)
        ]

    def apply(self, network, now: float = 0.0) -> None:
        """Start the maintenance window: all adjacent ports go down."""
        for link in self._adjacent_links(network):
            link.fail()

    def revert(self, network, now: float = 0.0) -> None:
        """End the maintenance window: all adjacent ports come back."""
        for link in self._adjacent_links(network):
            link.recover()

    def affected_link_keys(self, network) -> Tuple[Tuple[str, str], ...]:
        """Directed (src, dst) keys the maintenance window takes down."""
        return tuple(link.spec.key for link in self._adjacent_links(network))

    @property
    def end_s(self) -> float:
        """Absolute time the maintenance window closes."""
        return self.time_s + self.duration_s

    def describe(self) -> str:
        return f"t={self.time_s:.3f}s {self.kind} {self.dc} for {self.duration_s:g}s"


@dataclass(frozen=True)
class SRLGFailure(ScenarioEvent):
    """One shared-risk link group fails atomically (a conduit/cable cut).

    Real inter-DC links share physical conduits, submarine cable segments
    and microwave towers; one backhoe or one cable fault therefore takes
    down *several* logical links at the same instant.  The group is named
    after the shared resource; every listed link fails atomically at
    ``time_s``, and repair proceeds link by link: link ``i`` recovers at
    ``recover_at_s + i * stagger_s`` (splicing crews fix one fiber pair at
    a time).  With ``recover_at_s=None`` the cut is permanent for the run.

    Down-causes are reference-counted on the runtime links, so an SRLG cut
    overlapping a :class:`DCMaintenance` window (or another SRLG sharing a
    link) keeps each port down until every cause has cleared.

    Attributes:
        name: label of the shared resource, e.g. ``"west-conduit"``.
        links: the (src, dst) inter-DC links sharing the resource.
        bidirectional: fail both directions of each link (a physical cut).
        recover_at_s: absolute time the first link is repaired; ``None``
            means no repair within the run.
        stagger_s: delay between successive per-link repairs.
    """

    name: str = ""
    links: Tuple[Tuple[str, str], ...] = ()
    bidirectional: bool = True
    recover_at_s: Optional[float] = None
    stagger_s: float = 0.0
    kind: ClassVar[str] = "srlg-failure"

    def validate(self, topology) -> None:
        super().validate(topology)
        if not self.name:
            raise ValueError(f"{self.kind}: needs a group name")
        if not self.links:
            raise ValueError(f"{self.kind}: needs at least one link")
        if len(set(self.links)) != len(self.links):
            raise ValueError(f"{self.kind} {self.name!r}: duplicate link in group")
        for src, dst in self.links:
            _require_link(topology, src, dst, self.kind)
            if self.bidirectional:
                _require_link(topology, dst, src, self.kind)
        if self.recover_at_s is not None and self.recover_at_s <= self.time_s:
            raise ValueError(f"{self.kind} {self.name!r}: recover_at_s must come after time_s")
        if self.stagger_s < 0:
            raise ValueError(f"{self.kind} {self.name!r}: stagger_s must be non-negative")

    def apply(self, network, now: float = 0.0) -> None:
        """Fail every link of the group atomically."""
        for src, dst in self.links:
            network.fail_link(src, dst)
            if self.bidirectional:
                network.fail_link(dst, src)

    def revert_link(self, network, index: int, now: float = 0.0) -> None:
        """Repair the ``index``-th link of the group."""
        src, dst = self.links[index]
        network.recover_link(src, dst)
        if self.bidirectional:
            network.recover_link(dst, src)

    def recovery_times(self) -> Tuple[float, ...]:
        """Absolute per-link repair times (empty when never repaired)."""
        if self.recover_at_s is None:
            return ()
        return tuple(
            self.recover_at_s + i * self.stagger_s for i in range(len(self.links))
        )

    def affected_link_keys(self, network) -> Tuple[Tuple[str, str], ...]:
        """Directed (src, dst) keys the cut takes down."""
        keys: List[Tuple[str, str]] = []
        for src, dst in self.links:
            keys.append((src, dst))
            if self.bidirectional:
                keys.append((dst, src))
        return tuple(keys)

    def describe(self) -> str:
        repair = (
            f", repair from {self.recover_at_s:g}s every {self.stagger_s:g}s"
            if self.recover_at_s is not None
            else ", no repair"
        )
        return (
            f"t={self.time_s:.3f}s {self.kind} {self.name!r} "
            f"({len(self.links)} links{repair})"
        )


@dataclass(frozen=True)
class RegionalPowerEvent(ScenarioEvent):
    """A power event drops every DC matching a region/tier filter.

    For the window ``[time_s, time_s + duration_s)`` each matched DC is
    classified by its provisioned power redundancy
    (:func:`~repro.topology.graph.power_redundancy_rank`):

    * redundancy below ``survives_redundancy`` — **blackout**: every
      adjacent inter-DC link fails (reference-counted, like
      :class:`DCMaintenance`);
    * redundancy at or above ``survives_redundancy`` — **degraded**: the
      facility rides through on its spare feed but sheds cooling/optical
      margin, so adjacent links (those not already dark from a blacked-out
      neighbour) run at ``degraded_factor`` x provisioned capacity.

    Reverting restores degraded links to their provisioned rate
    (``factor=1``), so an overlapping :class:`CapacityChange` on the same
    link is clobbered at the window end — capacity factors are absolute,
    not reference-counted, and scenario authors should not aim two
    capacity writers at one link.

    Attributes:
        region / tier: DC filter (``None`` matches any; at least one must
            be set).
        duration_s: window length.
        survives_redundancy: minimum power-redundancy level that downgrades
            the blackout to a capacity loss.
        degraded_factor: capacity factor applied to surviving DCs' links.
    """

    region: Optional[str] = None
    tier: Optional[str] = None
    duration_s: float = 0.0
    survives_redundancy: str = "2N"
    degraded_factor: float = 0.5
    kind: ClassVar[str] = "regional-power"

    def validate(self, topology) -> None:
        super().validate(topology)
        if self.region is None and self.tier is None:
            raise ValueError(f"{self.kind}: needs a region and/or tier filter")
        if self.duration_s <= 0:
            raise ValueError(f"{self.kind}: duration_s must be positive")
        if not 0 < self.degraded_factor <= 1:
            raise ValueError(f"{self.kind}: degraded_factor must be in (0, 1]")
        power_redundancy_rank(self.survives_redundancy)
        if not topology.dcs_matching(region=self.region, tier=self.tier):
            raise ValueError(
                f"{self.kind}: no DC matches region={self.region!r} tier={self.tier!r}"
            )

    def classify_dcs(self, topology) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Matched DCs split into (blackout, degraded), insertion order."""
        threshold = power_redundancy_rank(self.survives_redundancy)
        blackout: List[str] = []
        degraded: List[str] = []
        for dc in topology.dcs_matching(region=self.region, tier=self.tier):
            rank = power_redundancy_rank(topology.dc_attrs(dc).power_redundancy)
            (degraded if rank >= threshold else blackout).append(dc)
        return tuple(blackout), tuple(degraded)

    def _partition_links(self, network):
        """Runtime links split into (dark, dimmed), insertion order.

        A link adjacent to any blacked-out DC goes dark; a link adjacent
        only to degraded DCs is dimmed.  Each link lands in at most one
        bucket so apply/revert stay balanced.
        """
        blackout, degraded = self.classify_dcs(network.topology)
        blackout_set, degraded_set = set(blackout), set(degraded)
        dark, dimmed = [], []
        for link in network.inter_dc_links:
            ends = {link.spec.src, link.spec.dst}
            if ends & blackout_set:
                dark.append(link)
            elif ends & degraded_set:
                dimmed.append(link)
        return dark, dimmed

    def apply(self, network, now: float = 0.0) -> None:
        """Start the power event: blackout links fail, survivors degrade."""
        dark, dimmed = self._partition_links(network)
        for link in dark:
            link.fail()
        for link in dimmed:
            link.set_capacity_factor(self.degraded_factor, now)

    def revert(self, network, now: float = 0.0) -> None:
        """End the power event: recover dark links, restore dimmed ones."""
        dark, dimmed = self._partition_links(network)
        for link in dark:
            link.recover()
        for link in dimmed:
            link.set_capacity_factor(1.0, now)

    def affected_link_keys(self, network) -> Tuple[Tuple[str, str], ...]:
        """Directed (src, dst) keys failed or degraded by this event."""
        dark, dimmed = self._partition_links(network)
        return tuple(link.spec.key for link in dark + dimmed)

    @property
    def end_s(self) -> float:
        """Absolute time the power event ends."""
        return self.time_s + self.duration_s

    def describe(self) -> str:
        scope = "/".join(s for s in (self.region, self.tier) if s is not None)
        return (
            f"t={self.time_s:.3f}s {self.kind} {scope} for {self.duration_s:g}s "
            f"(>= {self.survives_redundancy} survives at x{self.degraded_factor:g})"
        )


@dataclass(frozen=True)
class MaintenanceCalendar(ScenarioEvent):
    """A recurring :class:`DCMaintenance` schedule for one DC.

    Real fleets drain DCs on calendars (weekly patch windows, quarterly
    power tests), not as one-off events.  The calendar is pure data: it
    compiles to ``occurrences`` concrete :class:`DCMaintenance` windows —
    one every ``period_s`` starting at ``time_s``, each ``window_s`` long
    — via :meth:`compile`, which :meth:`Scenario.compiled_events` invokes
    before injection.  Per-window recovery metrics are therefore reported
    per occurrence, not per calendar.

    Attributes:
        dc: the datacenter drained by each window.
        window_s: length of each maintenance window.
        period_s: time between successive window starts; must be at least
            ``window_s`` so a window closes before the next opens
            (back-to-back windows, ``period_s == window_s``, are allowed).
        occurrences: number of windows.
    """

    dc: str = ""
    window_s: float = 0.0
    period_s: float = 0.0
    occurrences: int = 1
    kind: ClassVar[str] = "maintenance-calendar"

    def validate(self, topology) -> None:
        super().validate(topology)
        if self.occurrences < 1:
            raise ValueError(f"{self.kind}: occurrences must be at least 1")
        if self.window_s <= 0:
            raise ValueError(f"{self.kind}: window_s must be positive")
        if self.period_s < self.window_s:
            raise ValueError(f"{self.kind}: period_s must be at least window_s")
        for window in self.compile():
            window.validate(topology)

    def compile(self) -> Tuple[DCMaintenance, ...]:
        """Expand the calendar into its concrete maintenance windows."""
        return tuple(
            DCMaintenance(
                self.time_s + i * self.period_s, dc=self.dc, duration_s=self.window_s
            )
            for i in range(self.occurrences)
        )

    def describe(self) -> str:
        return (
            f"t={self.time_s:.3f}s {self.kind} {self.dc}: {self.occurrences} "
            f"windows of {self.window_s:g}s every {self.period_s:g}s"
        )


@dataclass(frozen=True)
class Scenario:
    """A named, immutable event timeline plus failure-handling policy.

    Attributes:
        name: label used in reports and metrics.
        events: the timeline (any order; sorted by time when injected).
        stranded_timeout_s: when set, a disrupted in-flight flow that cannot
            be re-routed onto a healthy path within this many seconds is
            explicitly failed (recorded in
            :attr:`~repro.simulator.fluid.SimulationResult.failed_flows`);
            when ``None`` stranded flows stay pinned and resume if their
            path recovers — the pre-scenario simulator behaviour.
        description: free-form notes for reports.
    """

    name: str
    events: Tuple[ScenarioEvent, ...] = ()
    stranded_timeout_s: Optional[float] = None
    description: str = ""

    def sorted_events(self) -> Tuple[ScenarioEvent, ...]:
        """Events ordered by time (stable for equal times)."""
        return tuple(sorted(self.events, key=lambda e: e.time_s))

    def compiled_events(self) -> Tuple[ScenarioEvent, ...]:
        """The concrete timeline: recurring events expanded, time-sorted.

        Each event's :meth:`ScenarioEvent.compile` is flattened (a
        :class:`MaintenanceCalendar` becomes its windows; every other
        event represents itself) and the result is stably sorted by time.
        For a scenario without recurring events this equals
        :meth:`sorted_events`, so injection order — and therefore results —
        are unchanged.  The injector schedules (and reports outcomes for)
        exactly this timeline.
        """
        flat = [concrete for event in self.events for concrete in event.compile()]
        return tuple(sorted(flat, key=lambda e: e.time_s))

    def validate(self, topology) -> None:
        """Validate every event against ``topology``.

        Raises:
            ValueError: when any event is malformed.
        """
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.stranded_timeout_s is not None and self.stranded_timeout_s <= 0:
            raise ValueError("stranded_timeout_s must be positive when set")
        for event in self.events:
            event.validate(topology)

    def describe(self) -> str:
        """Multi-line summary of the timeline."""
        lines = [f"scenario {self.name!r} ({len(self.events)} events)"]
        lines.extend("  " + event.describe() for event in self.sorted_events())
        return "\n".join(lines)
