"""Declarative scenario events and timelines.

A :class:`Scenario` is a named, immutable timeline of
:class:`ScenarioEvent` objects — link failures and recoveries, capacity
degradations, traffic surges and drains, whole-DC maintenance windows.  The
timeline is pure data: nothing here touches the simulator.  The
:class:`~repro.scenarios.injector.ScenarioInjector` schedules the events on
the simulation engine's heap and applies them to the runtime network
mid-run, which is what finally drives the paper's data-plane fast-failover
machinery (lazy flow-cache invalidation, §3.4) from inside the simulator
instead of from hand-written test scaffolding.

Event semantics:

* :class:`LinkDown` / :class:`LinkUp` — fail/recover an inter-DC link
  (bidirectionally by default, matching a fiber cut).
* :class:`CapacityChange` — scale a link's capacity relative to its
  provisioned rate (brownouts, partial LAG failures); ``factor=1`` restores.
* :class:`TrafficSurge` — inject an extra open-loop Poisson flow batch
  starting at the event time (diurnal peaks, replication bursts).
* :class:`TrafficDrain` — cancel a fraction of the not-yet-arrived demands
  matching a DC filter (upstream throttling, tenant migration).
* :class:`DCMaintenance` — take every inter-DC link adjacent to one DC down
  for a window (rolling maintenance drains).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple

__all__ = [
    "ScenarioEvent",
    "LinkEvent",
    "LinkDown",
    "LinkUp",
    "CapacityChange",
    "TrafficSurge",
    "TrafficDrain",
    "DCMaintenance",
    "Scenario",
]

#: multiplicative hash constant used for deterministic fractional draining
_GOLDEN = 0x9E3779B1


@dataclass(frozen=True)
class ScenarioEvent:
    """Base class: something that happens at one simulated instant."""

    time_s: float
    kind: ClassVar[str] = "event"

    def validate(self, topology) -> None:
        """Check the event against a topology.

        Raises:
            ValueError: when the event is malformed for ``topology``.
        """
        if self.time_s < 0:
            raise ValueError(f"{self.kind}: time_s must be non-negative")

    def describe(self) -> str:
        """One-line human-readable summary."""
        return f"t={self.time_s:.3f}s {self.kind}"


def _require_link(topology, src: str, dst: str, kind: str) -> None:
    keys = {spec.key for spec in topology.inter_dc_links()}
    if (src, dst) not in keys:
        raise ValueError(f"{kind}: no inter-DC link {src!r}->{dst!r} in topology {topology.name!r}")


@dataclass(frozen=True)
class LinkEvent(ScenarioEvent):
    """Shared shape of events targeting one (optionally bidirectional) link."""

    src: str = ""
    dst: str = ""
    bidirectional: bool = True

    def validate(self, topology) -> None:
        super().validate(topology)
        _require_link(topology, self.src, self.dst, self.kind)
        if self.bidirectional:
            _require_link(topology, self.dst, self.src, self.kind)

    def describe(self) -> str:
        arrow = "<->" if self.bidirectional else "->"
        return f"t={self.time_s:.3f}s {self.kind} {self.src}{arrow}{self.dst}"


@dataclass(frozen=True)
class LinkDown(LinkEvent):
    """Fail the inter-DC link ``src -> dst`` (both directions by default).

    Down-causes are reference-counted on the runtime link: each
    :class:`LinkDown` adds one cause and pairs with one :class:`LinkUp`,
    so a cut that overlaps a :class:`DCMaintenance` window on the same
    link keeps the port down until *both* causes are cleared.
    """

    kind: ClassVar[str] = "link-down"

    def apply(self, network, now: float = 0.0) -> None:
        """Take the port(s) down on the runtime network."""
        network.fail_link(self.src, self.dst)
        if self.bidirectional:
            network.fail_link(self.dst, self.src)


@dataclass(frozen=True)
class LinkUp(LinkEvent):
    """Recover a previously failed inter-DC link.

    Removes one down-cause; the port only comes back up once no other
    cause (another cut, an open maintenance window) remains.
    """

    kind: ClassVar[str] = "link-up"

    def apply(self, network, now: float = 0.0) -> None:
        """Bring the port(s) back up."""
        network.recover_link(self.src, self.dst)
        if self.bidirectional:
            network.recover_link(self.dst, self.src)


@dataclass(frozen=True)
class CapacityChange(LinkEvent):
    """Scale a link's capacity to ``factor`` x its provisioned rate.

    Models brownouts (optical degradation, partial LAG-member failures):
    the port stays up but drains slower, so congestion-aware routers shift
    load away while oblivious ones keep hashing onto it.  ``factor=1``
    restores the provisioned rate; use :class:`LinkDown` for a full outage.
    """

    factor: float = 1.0
    kind: ClassVar[str] = "capacity-change"

    def validate(self, topology) -> None:
        super().validate(topology)
        if self.factor <= 0:
            raise ValueError(f"{self.kind}: factor must be positive (use LinkDown for an outage)")

    def apply(self, network, now: float = 0.0) -> None:
        """Apply the capacity factor to the runtime link(s)."""
        network.link(self.src, self.dst).set_capacity_factor(self.factor, now)
        if self.bidirectional:
            network.link(self.dst, self.src).set_capacity_factor(self.factor, now)

    def describe(self) -> str:
        return super().describe() + f" x{self.factor:g}"


@dataclass(frozen=True)
class TrafficSurge(ScenarioEvent):
    """Inject an extra Poisson flow batch starting at the event time.

    The surge is generated deterministically at scenario-install time (its
    own seed, flow ids offset far above the base workload's) and its
    arrivals are scheduled on the engine heap like any other demand, so a
    surge composes with the base traffic matrix without perturbing it.

    Exactly one of ``num_flows`` and ``duration_s`` must be given: with
    ``duration_s`` the flow count is derived from the surge load so the
    batch spans roughly that long.
    """

    pairs: Tuple[Tuple[str, str], ...] = ()
    load: float = 0.3
    num_flows: Optional[int] = None
    duration_s: Optional[float] = None
    workload: str = "websearch"
    seed: int = 4242
    kind: ClassVar[str] = "traffic-surge"

    def validate(self, topology) -> None:
        super().validate(topology)
        if not self.pairs:
            raise ValueError(f"{self.kind}: needs at least one (src, dst) DC pair")
        dcs = set(topology.dcs)
        for src, dst in self.pairs:
            if src not in dcs or dst not in dcs:
                raise ValueError(f"{self.kind}: unknown DC in pair ({src!r}, {dst!r})")
            if src == dst:
                raise ValueError(f"{self.kind}: surge pairs must connect distinct DCs")
        if self.load <= 0:
            raise ValueError(f"{self.kind}: load must be positive")
        if (self.num_flows is None) == (self.duration_s is None):
            raise ValueError(f"{self.kind}: give exactly one of num_flows / duration_s")
        if self.num_flows is not None and self.num_flows <= 0:
            raise ValueError(f"{self.kind}: num_flows must be positive")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError(f"{self.kind}: duration_s must be positive")

    def describe(self) -> str:
        span = (
            f"{self.num_flows} flows" if self.num_flows is not None
            else f"~{self.duration_s:g}s"
        )
        return f"t={self.time_s:.3f}s {self.kind} load={self.load:g} ({span})"


@dataclass(frozen=True)
class TrafficDrain(ScenarioEvent):
    """Cancel a fraction of the not-yet-arrived demands matching a filter.

    ``src_dc`` / ``dst_dc`` restrict which pending demands are drained
    (``None`` matches any); ``fraction`` selects a deterministic hash-based
    subset so repeated runs drain the same flows.
    """

    src_dc: Optional[str] = None
    dst_dc: Optional[str] = None
    fraction: float = 1.0
    kind: ClassVar[str] = "traffic-drain"

    def validate(self, topology) -> None:
        super().validate(topology)
        if not 0 < self.fraction <= 1.0:
            raise ValueError(f"{self.kind}: fraction must be in (0, 1]")
        dcs = set(topology.dcs)
        for name in (self.src_dc, self.dst_dc):
            if name is not None and name not in dcs:
                raise ValueError(f"{self.kind}: unknown DC {name!r}")

    def matches(self, demand) -> bool:
        """Whether a pending demand is drained by this event."""
        if self.src_dc is not None and demand.src_dc != self.src_dc:
            return False
        if self.dst_dc is not None and demand.dst_dc != self.dst_dc:
            return False
        if self.fraction >= 1.0:
            return True
        bucket = ((demand.flow_id * _GOLDEN) & 0xFFFFFFFF) / float(1 << 32)
        return bucket < self.fraction

    def describe(self) -> str:
        scope = f"{self.src_dc or '*'}->{self.dst_dc or '*'}"
        return f"t={self.time_s:.3f}s {self.kind} {scope} ({self.fraction:.0%})"


@dataclass(frozen=True)
class DCMaintenance(ScenarioEvent):
    """Take every inter-DC link adjacent to ``dc`` down for a window.

    Models a maintenance drain of one datacenter: all its DCI ports go dark
    at ``time_s`` and return at ``time_s + duration_s``.  In-flight flows
    relayed through the DC are disrupted and must fail over; flows sourced
    or sunk there are stranded until the window ends (or are failed once the
    scenario's stranded timeout expires).
    """

    dc: str = ""
    duration_s: float = 0.0
    kind: ClassVar[str] = "dc-maintenance"

    def validate(self, topology) -> None:
        super().validate(topology)
        if self.dc not in set(topology.dcs):
            raise ValueError(f"{self.kind}: unknown DC {self.dc!r}")
        if self.duration_s <= 0:
            raise ValueError(f"{self.kind}: duration_s must be positive")

    def _adjacent_links(self, network):
        return [
            link
            for link in network.inter_dc_links
            if self.dc in (link.spec.src, link.spec.dst)
        ]

    def apply(self, network, now: float = 0.0) -> None:
        """Start the maintenance window: all adjacent ports go down."""
        for link in self._adjacent_links(network):
            link.fail()

    def revert(self, network, now: float = 0.0) -> None:
        """End the maintenance window: all adjacent ports come back."""
        for link in self._adjacent_links(network):
            link.recover()

    @property
    def end_s(self) -> float:
        """Absolute time the maintenance window closes."""
        return self.time_s + self.duration_s

    def describe(self) -> str:
        return f"t={self.time_s:.3f}s {self.kind} {self.dc} for {self.duration_s:g}s"


@dataclass(frozen=True)
class Scenario:
    """A named, immutable event timeline plus failure-handling policy.

    Attributes:
        name: label used in reports and metrics.
        events: the timeline (any order; sorted by time when injected).
        stranded_timeout_s: when set, a disrupted in-flight flow that cannot
            be re-routed onto a healthy path within this many seconds is
            explicitly failed (recorded in
            :attr:`~repro.simulator.fluid.SimulationResult.failed_flows`);
            when ``None`` stranded flows stay pinned and resume if their
            path recovers — the pre-scenario simulator behaviour.
        description: free-form notes for reports.
    """

    name: str
    events: Tuple[ScenarioEvent, ...] = ()
    stranded_timeout_s: Optional[float] = None
    description: str = ""

    def sorted_events(self) -> Tuple[ScenarioEvent, ...]:
        """Events ordered by time (stable for equal times)."""
        return tuple(sorted(self.events, key=lambda e: e.time_s))

    def validate(self, topology) -> None:
        """Validate every event against ``topology``.

        Raises:
            ValueError: when any event is malformed.
        """
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.stranded_timeout_s is not None and self.stranded_timeout_s <= 0:
            raise ValueError("stranded_timeout_s must be positive when set")
        for event in self.events:
            event.validate(topology)

    def describe(self) -> str:
        """Multi-line summary of the timeline."""
        lines = [f"scenario {self.name!r} ({len(self.events)} events)"]
        lines.extend("  " + event.describe() for event in self.sorted_events())
        return "\n".join(lines)
